// Regenerates Figure 2: performance-bottleneck importance as rated by the
// 174 survey respondents (three levels per component).
#include <cstdio>

#include "survey/aggregate.h"

using namespace jsceres::survey;

int main() {
  const Dataset dataset = Dataset::paper_reconstruction();
  const Fig2Data data = fig2_bottlenecks(dataset);
  std::fputs(render_fig2(data).c_str(), stdout);
  std::printf(
      "\nkey findings (paper SS2.2): resource loading %.0f%% bottleneck, DOM "
      "%.0f%%, Canvas %.0f%%, number crunching %.0f%% (with another %.0f%% not "
      "dismissing it)\n",
      data.share(Component::ResourceLoading, Rating::Bottleneck) * 100,
      data.share(Component::DomManipulation, Rating::Bottleneck) * 100,
      data.share(Component::CanvasImages, Rating::Bottleneck) * 100,
      data.share(Component::NumberCrunching, Rating::Bottleneck) * 100,
      data.share(Component::NumberCrunching, Rating::SoSo) * 100);
  return 0;
}
