// Regenerates Figure 4: variable polymorphism self-rating, from purely
// monomorphic (1) to heavy polymorphism (5), plus the SS2.4 globals-usage
// coding.
#include <cstdio>

#include "survey/aggregate.h"

using namespace jsceres::survey;

int main() {
  const Dataset dataset = Dataset::paper_reconstruction();
  const ScaleData data = fig4_polymorphism(dataset);
  std::fputs(render_scale(data,
                          "Figure 4. Preference scale for variables",
                          "monomorphic", "polymorphic")
                 .c_str(),
             stdout);
  std::printf("\npurely monomorphic: %.0f%% (paper: ~58%%); heavy polymorphism: "
              "%.0f%% (paper: ~1%%)\n",
              data.share(1) * 100, data.share(5) * 100);

  const GlobalsUsage globals = globals_usage(dataset);
  std::printf(
      "\nSS2.4 globals usage (%d answers): namespace emulation %d (paper: 33), "
      "inter-script communication %d, singletons %d, other %d\n",
      globals.answered, globals.namespace_emulation,
      globals.inter_script_communication, globals.singletons, globals.other);
  return 0;
}
