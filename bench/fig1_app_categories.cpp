// Regenerates Figure 1: future web application categories, as identified by
// survey respondents, via the full thematic-coding pipeline (codebook, two
// independent raters, Jaccard inter-rater agreement on 20% of the data).
#include <cstdio>

#include "survey/aggregate.h"

using namespace jsceres::survey;

int main() {
  const Dataset dataset = Dataset::paper_reconstruction();
  const Coder rater_a = Coder::rater_a();
  const Coder rater_b = Coder::rater_b();

  const double agreement = inter_rater_agreement(dataset, rater_a, rater_b, 0.2);
  std::printf("inter-rater agreement (Jaccard, 20%% sample): %.1f%% %s\n\n",
              agreement * 100,
              agreement > 0.8 ? "(> 80%, codebook accepted)" : "(codebook REJECTED)");

  const Fig1Data data = fig1_categories(dataset, rater_a);
  std::fputs(render_fig1(data).c_str(), stdout);

  std::printf("\npaper reference counts: 26 / 17 / 15 / 7 / 8 / 7 / 5 (45 no answer)\n");
  return 0;
}
