// Regenerates Table 1: the case-study application inventory (name/URL,
// category, description), straight from the workload registry.
#include <cstdio>

#include "support/table.h"
#include "workloads/workload.h"

using namespace jsceres;

int main() {
  Table table({"Name/URL", "Category/Description"});
  for (const auto& w : workloads::all_workloads()) {
    table.add_row({w.name + " / " + w.url, w.category + " / " + w.description});
  }
  std::fputs("Table 1. Case study - web applications\n", stdout);
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%zu workloads; every Table 1 entry is implemented in the\n"
              "engine's JavaScript subset under src/workloads/.\n",
              workloads::all_workloads().size());
  return 0;
}
