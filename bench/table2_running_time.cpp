// Regenerates Table 2: Total / Active / In-Loops time for the 12 case-study
// applications, using instrumentation mode 1 (lightweight profiling) plus
// the Gecko-style sampling profiler on the deterministic virtual clock.
// Snapshots the rendered table into the ResultStore (the paper's step 6).
#include <cstdio>

#include "report/result_store.h"
#include "report/tables.h"

using namespace jsceres;

int main() {
  const auto rows = report::build_table2();
  const std::string rendered = report::render_table2(rows);
  std::fputs(rendered.c_str(), stdout);

  int compute_intensive = 0;
  for (const auto& row : rows) {
    if (row.measured.active_s / std::max(row.measured.total_s, 1e-9) > 0.3) {
      ++compute_intensive;
    }
  }
  std::printf(
      "\ncompute-intensive apps (active > 30%% of total): %d of %zu "
      "(paper: \"at least half of the applications can be considered "
      "computationally intensive\")\n",
      compute_intensive, rows.size());

  report::ResultStore store("results");
  const std::string path = store.store("table2", rendered);
  std::printf("snapshot: %s\n", path.c_str());
  return 0;
}
