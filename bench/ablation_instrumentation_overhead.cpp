// Ablation: the cost of the three staged instrumentation modes (paper SS3:
// "the three modes are separated in order to minimize the bias in the
// results due to the instrumentation overhead").
//
// Host wall-clock per mode quantifies the tool overhead; virtual-time
// invariance across modes 0-2 checks that the instrumentation does not bias
// the measured application (the virtual clock only advances with executed
// program work, never with analysis work).
//
// Also sweeps the sampling profiler's function-granularity artifact, which
// reproduces the paper's Gecko anomaly (sampled active time undercounting a
// long single-function computation).
#include <chrono>
#include <cstdio>

#include "ceres/sampling_profiler.h"
#include "interp/interpreter.h"
#include "js/parser.h"
#include "workloads/runner.h"

using namespace jsceres;

namespace {

double host_ms(workloads::Mode mode, const workloads::Workload& workload,
               double* virtual_s) {
  const auto start = std::chrono::steady_clock::now();
  auto run = workloads::run_workload(workload, mode);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  *virtual_s = run.clock.cpu_seconds();
  return ms;
}

}  // namespace

int main() {
  std::printf("instrumentation overhead per mode (host ms; virtual CPU s)\n");
  std::printf("%-20s %12s %12s %12s %12s\n", "workload", "mode0-none",
              "mode1-light", "mode2-loops", "mode3-deps");
  for (const char* name : {"CamanJS", "fluidSim", "Tear-able Cloth"}) {
    const auto& workload = workloads::workload_by_name(name);
    double v0 = 0;
    double v1 = 0;
    double v2 = 0;
    double v3 = 0;
    const double m0 = host_ms(workloads::Mode::Uninstrumented, workload, &v0);
    const double m1 = host_ms(workloads::Mode::Lightweight, workload, &v1);
    const double m2 = host_ms(workloads::Mode::LoopProfile, workload, &v2);
    const double m3 = host_ms(workloads::Mode::Dependence, workload, &v3);
    std::printf("%-20s %9.0fms %9.0fms %9.0fms %9.0fms   (mode3: x%.1f over mode 1, x%.1f over mode 0)\n",
                name, m0, m1, m2, m3, m3 / m1, m3 / m0);
    std::printf("%-20s virtual CPU: %.2fs / %.2fs / %.2fs / %.2fs %s\n", "", v0,
                v1, v2, v3,
                v0 == v1 && v1 == v2 ? "(modes 0-2 bias-free)"
                                     : "(WARNING: virtual drift)");
  }

  std::printf("\nsampling-profiler artifact sweep (400k-iteration single-function loop)\n");
  const char* source =
      "function hot() { var s = 0; for (var i = 0; i < 400000; i++) { s += i; } return s; }\n"
      "hot();\n";
  for (const int max_run : {0, 256, 64, 16}) {
    js::Program program = js::parse(source);
    VirtualClock clock;
    ceres::SamplingProfiler::Options options;
    options.function_granularity_artifact = max_run > 0;
    options.max_same_fn_samples = max_run > 0 ? max_run : 1;
    ceres::SamplingProfiler sampler(clock, options);
    interp::Interpreter interp(program, clock, &sampler);
    interp.run();
    sampler.finish();
    std::printf("  max same-function samples %-5s -> active %6.2fs of true %6.2fs (%.0f%%)\n",
                max_run > 0 ? std::to_string(max_run).c_str() : "off",
                sampler.active_seconds(), clock.cpu_seconds(),
                100.0 * sampler.active_seconds() / clock.cpu_seconds());
  }
  std::printf("  (the paper observed exactly this: Gecko's function-level sampling\n"
              "   can report less active time than JS-CERES measures inside loops)\n");
  return 0;
}
