// Ablation: the cost of the three staged instrumentation modes (paper SS3:
// "the three modes are separated in order to minimize the bias in the
// results due to the instrumentation overhead").
//
// Host wall-clock per mode quantifies the tool overhead; virtual-time
// invariance across modes 0-2 checks that the instrumentation does not bias
// the measured application (the virtual clock only advances with executed
// program work, never with analysis work).
//
// Also sweeps the sampling profiler's function-granularity artifact, which
// reproduces the paper's Gecko anomaly (sampled active time undercounting a
// long single-function computation).
//
// Finally, gates the observability layer's own cost: a probed-vs-plain loop
// at interpreter-tick work density must show <= 5% overhead with probes
// compiled in (JSCERES_OBS=1), and <= 1% — i.e. free within noise — with
// probes compiled out (JSCERES_OBS=0). A breach exits nonzero so CI fails.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "ceres/sampling_profiler.h"
#include "interp/interpreter.h"
#include "js/parser.h"
#include "support/obs.h"
#include "workloads/runner.h"

using namespace jsceres;

namespace {

double host_ms(workloads::Mode mode, const workloads::Workload& workload,
               double* virtual_s) {
  const auto start = std::chrono::steady_clock::now();
  auto run = workloads::run_workload(workload, mode);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  *virtual_s = run.clock.cpu_seconds();
  return ms;
}

// --- observability probe overhead gate -------------------------------------
//
// Per-iteration work: a chain of dependent 64-bit mixes (loads, shifts,
// multiplies — the same ALU/branch shape as interpreter dispatch) sized as a
// conservative LOWER bound on one interpreter tick (~80ns here vs hundreds
// of ns for a real tick). Understating the work overstates the probe's
// relative cost, so the gate errs strict. Integer work on purpose: the
// interpreter loop is integer/pointer-dominated, and a probe's cold init
// path (guard + shard registration calls) costs a tight *FP* chain extra
// xmm spills that the real hot loop never pays. noinline keeps the two
// loops structurally identical.

constexpr int kWorkRounds = 16;
constexpr std::size_t kProbeIters = 1'000'000;

inline std::uint64_t obs_mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

__attribute__((noinline)) std::uint64_t obs_plain_loop(std::size_t iters) {
  std::uint64_t acc = 1;
  for (std::size_t i = 0; i < iters; ++i) {
    for (int u = 0; u < kWorkRounds; ++u) acc = obs_mix(acc + std::uint64_t(u));
  }
  return acc;
}

__attribute__((noinline)) std::uint64_t obs_probed_loop(std::size_t iters) {
  std::uint64_t acc = 1;
  for (std::size_t i = 0; i < iters; ++i) {
    for (int u = 0; u < kWorkRounds; ++u) acc = obs_mix(acc + std::uint64_t(u));
    JSCERES_OBS_COUNT("bench.obs_ticks", 1);
  }
  return acc;
}

/// Best-of-N wall time of `fn(kProbeIters)` in ns (min defeats scheduling
/// noise; the loops are deterministic so min is the honest cost).
template <typename Fn>
std::int64_t best_of(Fn fn, std::uint64_t* sink) {
  std::int64_t best = INT64_MAX;
  for (int rep = 0; rep < 7; ++rep) {
    const std::int64_t t0 = obs::mono_ns();
    *sink += fn(kProbeIters);
    best = std::min(best, obs::mono_ns() - t0);
  }
  return best;
}

/// Returns 0 when the probe overhead is within this build's budget, 1 on a
/// breach.
int run_obs_overhead_gate() {
#if JSCERES_OBS
  constexpr double kBudget = 0.05;  // metrics probes: <= 5% on the hot loop
  const char* config = "JSCERES_OBS=1 (probes compiled in)";
#else
  constexpr double kBudget = 0.01;  // compiled-out probes must be free
  const char* config = "JSCERES_OBS=0 (probes compiled out)";
#endif
  std::uint64_t sink = 0;
  // Warm both paths (first JSCERES_OBS_COUNT pays one-time registry
  // interning; that is setup, not steady-state probe cost).
  sink += obs_plain_loop(1000);
  sink += obs_probed_loop(1000);
  const std::int64_t plain_ns = best_of(obs_plain_loop, &sink);
  const std::int64_t probed_ns = best_of(obs_probed_loop, &sink);
  const double overhead =
      double(probed_ns - plain_ns) / double(plain_ns > 0 ? plain_ns : 1);

  std::printf("\nobservability probe overhead gate [%s]\n", config);
  std::printf("  %zu iterations x %d-mix tick: plain %.2f ms, probed %.2f ms "
              "-> %+.2f%% (budget %.0f%%)  [%s]  (sink %llu)\n",
              kProbeIters, kWorkRounds, double(plain_ns) / 1e6,
              double(probed_ns) / 1e6, overhead * 100.0, kBudget * 100.0,
              overhead <= kBudget ? "ok" : "BREACH",
              static_cast<unsigned long long>(sink & 7));
  return overhead <= kBudget ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("instrumentation overhead per mode (host ms; virtual CPU s)\n");
  std::printf("%-20s %12s %12s %12s %12s\n", "workload", "mode0-none",
              "mode1-light", "mode2-loops", "mode3-deps");
  for (const char* name : {"CamanJS", "fluidSim", "Tear-able Cloth"}) {
    const auto& workload = workloads::workload_by_name(name);
    double v0 = 0;
    double v1 = 0;
    double v2 = 0;
    double v3 = 0;
    const double m0 = host_ms(workloads::Mode::Uninstrumented, workload, &v0);
    const double m1 = host_ms(workloads::Mode::Lightweight, workload, &v1);
    const double m2 = host_ms(workloads::Mode::LoopProfile, workload, &v2);
    const double m3 = host_ms(workloads::Mode::Dependence, workload, &v3);
    std::printf("%-20s %9.0fms %9.0fms %9.0fms %9.0fms   (mode3: x%.1f over mode 1, x%.1f over mode 0)\n",
                name, m0, m1, m2, m3, m3 / m1, m3 / m0);
    std::printf("%-20s virtual CPU: %.2fs / %.2fs / %.2fs / %.2fs %s\n", "", v0,
                v1, v2, v3,
                v0 == v1 && v1 == v2 ? "(modes 0-2 bias-free)"
                                     : "(WARNING: virtual drift)");
  }

  std::printf("\nsampling-profiler artifact sweep (400k-iteration single-function loop)\n");
  const char* source =
      "function hot() { var s = 0; for (var i = 0; i < 400000; i++) { s += i; } return s; }\n"
      "hot();\n";
  for (const int max_run : {0, 256, 64, 16}) {
    js::Program program = js::parse(source);
    VirtualClock clock;
    ceres::SamplingProfiler::Options options;
    options.function_granularity_artifact = max_run > 0;
    options.max_same_fn_samples = max_run > 0 ? max_run : 1;
    ceres::SamplingProfiler sampler(clock, options);
    interp::Interpreter interp(program, clock, &sampler);
    interp.run();
    sampler.finish();
    std::printf("  max same-function samples %-5s -> active %6.2fs of true %6.2fs (%.0f%%)\n",
                max_run > 0 ? std::to_string(max_run).c_str() : "off",
                sampler.active_seconds(), clock.cpu_seconds(),
                100.0 * sampler.active_seconds() / clock.cpu_seconds());
  }
  std::printf("  (the paper observed exactly this: Gecko's function-level sampling\n"
              "   can report less active time than JS-CERES measures inside loops)\n");
  return run_obs_overhead_gate();
}
