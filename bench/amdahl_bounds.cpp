// Regenerates the SS4.2 Amdahl analysis: per application, the speedup upper
// bound obtainable from the easy-to-parallelize loop nests alone (the paper
// finds a bound above 3x for 5 of the 12 applications).
#include <cstdio>

#include "report/tables.h"

using namespace jsceres;

int main() {
  const auto rows = report::build_amdahl(analysis::Difficulty::Easy);
  std::fputs(report::render_amdahl(rows).c_str(), stdout);

  std::printf("\nsweep over admissible difficulty:\n");
  for (const auto difficulty :
       {analysis::Difficulty::VeryEasy, analysis::Difficulty::Easy,
        analysis::Difficulty::Medium}) {
    const auto sweep = report::build_amdahl(difficulty);
    int above = 0;
    for (const auto& row : sweep) {
      if (row.bound_infinite > 3.0) ++above;
    }
    std::printf("  allowing <= %-9s : %d of %zu apps above 3x\n",
                analysis::difficulty_label(difficulty), above, sweep.size());
  }
  return 0;
}
