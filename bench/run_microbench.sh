#!/usr/bin/env bash
# Regenerate the interpreter microbenchmark snapshot (BENCH_interp_baseline.json
# records the before/after of the hot-path overhaul; this script reproduces the
# 'after' column on the current tree).
#
# Usage:
#   bench/run_microbench.sh [build-dir] [output.json]
#
# Requires google-benchmark (the microbench target is skipped by CMake when it
# is not installed).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-/dev/stdout}"
FILTER='BM_Lex|BM_Parse|BM_Interpret|BM_Resolve|BM_PropertyAccess'

if [[ ! -x "${BUILD_DIR}/microbench" ]]; then
  echo "building ${BUILD_DIR}/microbench ..." >&2
  cmake -B "${BUILD_DIR}" -S "$(dirname "$0")/.." >&2
  cmake --build "${BUILD_DIR}" --target microbench -j >&2
fi

"${BUILD_DIR}/microbench" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.3 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"${OUT}"
