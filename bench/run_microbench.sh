#!/usr/bin/env bash
# Regenerate microbenchmark snapshots.
#
#   bench/run_microbench.sh [--smoke] [--rivertrail|--interp|--ceres|--pipeline|--all] [build-dir] [output.json]
#
# --interp (default): the interpreter hot-path set backing
#   BENCH_interp_baseline.json.
# --rivertrail: the parallel-runtime set backing BENCH_rivertrail_baseline.json
#   (dispatch latency, divergent-balance, scaling).
# --ceres: the mode-3 dependence-analysis set backing BENCH_ceres_baseline.json
#   (var/prop event processing, characterization depth sweep, end-to-end).
# --pipeline: the task-graph / parallel_pipeline set backing
#   BENCH_pipeline_baseline.json (pipeline dispatch, frame-shaped stages,
#   diamond-graph retirement).
# --all: everything.
# --smoke: single fast pass (CI wiring check, not a measurement).
#
# Requires google-benchmark (the microbench target is skipped by CMake when it
# is not installed). Compare ratios, not absolute times.
set -euo pipefail

FILTER_INTERP='BM_Lex|BM_Parse|BM_Interpret|BM_Resolve|BM_PropertyAccess'
FILTER_RIVERTRAIL='BM_ParallelFor|BM_NBodyStepPar'
FILTER_CERES='BM_Dependence|BM_Characterize'
FILTER_PIPELINE='BM_Pipeline|BM_TaskGraph'

FILTER="${FILTER_INTERP}"
MIN_TIME=0.3
REPS=3
AGGREGATES=true

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke)
      MIN_TIME=0.01
      REPS=1
      AGGREGATES=false
      shift
      ;;
    --rivertrail)
      FILTER="${FILTER_RIVERTRAIL}"
      shift
      ;;
    --interp)
      FILTER="${FILTER_INTERP}"
      shift
      ;;
    --ceres)
      FILTER="${FILTER_CERES}"
      shift
      ;;
    --pipeline)
      FILTER="${FILTER_PIPELINE}"
      shift
      ;;
    --all)
      FILTER="${FILTER_INTERP}|${FILTER_RIVERTRAIL}|${FILTER_CERES}|${FILTER_PIPELINE}"
      shift
      ;;
    *)
      break
      ;;
  esac
done

BUILD_DIR="${1:-build}"
OUT="${2:-/dev/stdout}"

if [[ ! -x "${BUILD_DIR}/microbench" ]]; then
  echo "building ${BUILD_DIR}/microbench ..." >&2
  cmake -B "${BUILD_DIR}" -S "$(dirname "$0")/.." >&2
  cmake --build "${BUILD_DIR}" --target microbench -j >&2
fi

"${BUILD_DIR}/microbench" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_report_aggregates_only="${AGGREGATES}" \
  --benchmark_format=json >"${OUT}"
