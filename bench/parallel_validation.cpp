// Validation of the paper's central claim: the loop nests Table 3 classifies
// as (very) easy really are latently data-parallel. C++ ports of those
// kernels run on the River-Trail-style runtime; outputs must match the
// sequential reference, and the schedule sweep shows the divergence story
// (dynamic scheduling pays off exactly for the divergent raytracer).
#include <chrono>
#include <cstdio>

#include "rivertrail/kernels.h"
#include "rivertrail/validator.h"

using namespace jsceres::rivertrail;

namespace {

double run_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

int main() {
  ThreadPool pool;
  const auto results = validate_all(pool, /*scale=*/2.0);
  std::fputs(render_validation_table(results, pool.size()).c_str(), stdout);

  bool all_match = true;
  for (const auto& r : results) all_match &= r.outputs_match;
  std::printf("all kernels produce sequential-identical results: %s\n",
              all_match ? "yes" : "NO");

  // Schedule ablation on the divergent kernel (raytracer) vs a uniform one
  // (pixel filter): static vs dynamic chunking.
  std::printf("\nschedule ablation (DESIGN.md SS6):\n");
  kernels::RayScene scene;
  scene.width = 192;
  scene.height = 192;
  std::vector<std::uint8_t> img;
  const double ray_static = run_ms([&] {
    kernels::raytrace_par(pool, scene, img, Schedule::Static);
  });
  const double ray_dynamic = run_ms([&] {
    kernels::raytrace_par(pool, scene, img, Schedule::Dynamic);
  });
  std::printf("  raytrace (divergent): static %7.2fms  dynamic %7.2fms\n",
              ray_static, ray_dynamic);

  auto image = kernels::make_test_image(512, 512, 7);
  auto image2 = image;
  const double px_static = run_ms([&] {
    kernels::pixel_filter_par(pool, image, 10, 1.1, Schedule::Static);
  });
  const double px_dynamic = run_ms([&] {
    kernels::pixel_filter_par(pool, image2, 10, 1.1, Schedule::Dynamic);
  });
  std::printf("  pixel filter (uniform): static %7.2fms  dynamic %7.2fms\n",
              px_static, px_dynamic);
  return all_match ? 0 : 1;
}
