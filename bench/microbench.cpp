// google-benchmark microbenchmarks for the substrate hot paths: lexing,
// parsing, interpretation throughput, canvas raster ops, characterization
// diffs, and the parallel runtime.
#include <benchmark/benchmark.h>

#include <atomic>
#include <ctime>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "ceres/char_stack.h"
#include "ceres/dependence_analyzer.h"
#include "dom/canvas.h"
#include "interp/interpreter.h"
#include "js/lexer.h"
#include "js/parser.h"
#include "rivertrail/kernels.h"
#include "rivertrail/parallel_for.h"
#include "rivertrail/parallel_pipeline.h"
#include "rivertrail/task_graph.h"

namespace {

using namespace jsceres;

const char* kSample = R"JS(
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
var total = 0;
for (var i = 0; i < 32; i++) { total += fib(10); }
)JS";

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(js::lex(kSample));
  }
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(js::parse(kSample));
  }
}
BENCHMARK(BM_Parse);

void BM_InterpretArithmeticLoop(benchmark::State& state) {
  const js::Program program = js::parse(
      "var s = 0;\n"
      "for (var i = 0; i < 10000; i++) { s += i * 2 - (i & 3); }\n");
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
    benchmark::DoNotOptimize(clock.cpu_ns());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_InterpretArithmeticLoop);

void BM_InterpretCalls(benchmark::State& state) {
  const js::Program program = js::parse(kSample);
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
  }
}
BENCHMARK(BM_InterpretCalls);

// Call-dominated with a wide activation: 2 params + 10 hoisted vars per
// call. The per-call declare scan is quadratic in the name count, which is
// what the resolver's activation-layout template (stamped name vector +
// direct slot stores) removes.
void BM_InterpretCallsLocals(benchmark::State& state) {
  const js::Program program = js::parse(
      "function mix(a, b) {\n"
      "  var c = a + b; var d = a - b; var e = a * 2; var f = b * 2;\n"
      "  var g = c + d; var h = e + f; var i2 = g - h; var j = g + h;\n"
      "  var k = i2 * j; var l = k & 1023;\n"
      "  return l;\n"
      "}\n"
      "var total = 0;\n"
      "for (var i = 0; i < 4000; i++) { total += mix(i, i + 1); }\n");
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_InterpretCallsLocals);

void BM_InterpretPropertyAccess(benchmark::State& state) {
  const js::Program program = js::parse(
      "var o = {a: 1, b: 2};\n"
      "var s = 0;\n"
      "for (var i = 0; i < 5000; i++) { o.a = o.a + 1; s += o.b; }\n");
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_InterpretPropertyAccess);

// Resolution-bound loop: every iteration reads three closure variables one
// scope level up plus two locals, isolating identifier-resolution cost from
// arithmetic and property traffic.
void BM_ResolveIdentifier(benchmark::State& state) {
  const js::Program program = js::parse(
      "function outer() {\n"
      "  var a = 1; var b = 2; var c = 3;\n"
      "  function inner() {\n"
      "    var t = 0;\n"
      "    for (var i = 0; i < 1000; i++) { t += a + b + c; }\n"
      "    return t;\n"
      "  }\n"
      "  return inner();\n"
      "}\n"
      "var result = 0;\n"
      "for (var j = 0; j < 10; j++) { result += outer(); }\n");
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
  }
  state.SetItemsProcessed(state.iterations() * 10 * 1000 * 3);
}
BENCHMARK(BM_ResolveIdentifier);

// Monomorphic named-property reads and writes on one receiver: the shape
// inline-cache steady state (three reads + one write per iteration).
void BM_PropertyAccess(benchmark::State& state) {
  const js::Program program = js::parse(
      "var o = {x: 1, y: 2, z: 3};\n"
      "var s = 0;\n"
      "for (var i = 0; i < 5000; i++) { s += o.x + o.y + o.z; o.x = i & 7; }\n");
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
  }
  state.SetItemsProcessed(state.iterations() * 5000 * 4);
}
BENCHMARK(BM_PropertyAccess);

// Shape-polymorphic member sites: ten read/write sites each see N distinct
// receiver shapes in rotation (the `a`/`x` slot indices differ per shape,
// so a stale hit would corrupt `s`). A monomorphic cache thrashes — every
// access is a miss — while a polymorphic cache holds all N ways. Arg(1) is
// the monomorphic control: the *thrash cost* of an IC design is the /2 or
// /4 time minus the /1 time (end-to-end time is dominated by tree-walking
// dispatch, which alternation does not change).
void BM_InterpretPolymorphicProps(benchmark::State& state) {
  const int nshapes = int(state.range(0));
  std::string source =
      "function mk(k) {\n"
      "  if (k === 0) { return {a: 1, x: 2}; }\n"
      "  if (k === 1) { return {b: 1, a: 2, x: 3}; }\n"
      "  if (k === 2) { return {c: 1, b: 2, a: 3, x: 4}; }\n"
      "  return {d: 1, c: 2, b: 3, a: 4, x: 5};\n"
      "}\n"
      "var objs = [];\n"
      "for (var i = 0; i < " + std::to_string(nshapes) + "; i++) { objs.push(mk(i)); }\n"
      "var s = 0;\n"
      "for (var i = 0; i < 4000; i++) {\n"
      "  var o = objs[i & " + std::to_string(nshapes - 1) + "];\n"
      "  s += o.a + o.x + o.a + o.x + o.a + o.x + o.a + o.x;\n"
      "  o.x = i & 7;\n"
      "  o.a = i;\n"
      "}\n";
  const js::Program program = js::parse(source);
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
  }
  state.SetItemsProcessed(state.iterations() * 4000 * 10);
}
BENCHMARK(BM_InterpretPolymorphicProps)->Arg(1)->Arg(2)->Arg(4);

// Shape growth: build an object with N properties, then read them all back.
// The property names are freshened every benchmark iteration (the `prefix`
// global changes), so each iteration creates a brand-new shape-transition
// chain — the regime where transitions that copy the parent's full slot
// table cost O(N^2) allocations per object built. Note the atom table and
// shape tree are process-lifetime arenas, so this benchmark intentionally
// grows them; that is the measured scenario, not a leak.
void BM_InterpretManyProps(benchmark::State& state) {
  const int nprops = int(state.range(0));
  const std::string n = std::to_string(nprops);
  const js::Program program = js::parse(
      "var o = {};\n"
      "for (var i = 0; i < " + n + "; i++) { o[prefix + i] = i; }\n"
      "var s = 0;\n"
      "for (var j = 0; j < " + n + "; j++) { s += o[prefix + j]; }\n");
  // `fresh` must never repeat a prefix — not across repetitions and not
  // across google-benchmark's calibration runs — or the chains already
  // exist and the benchmark silently degrades to steady-state probing.
  static std::uint64_t fresh = 0;
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.define_global(
        "prefix", interp::Value::str("p" + std::to_string(fresh++) + "_"));
    interp.run();
  }
  state.SetItemsProcessed(state.iterations() * nprops * 2);
}
BENCHMARK(BM_InterpretManyProps)->Arg(32)->Arg(128);

// Argument-passing cost in call-dominated code: a 4-argument callee invoked
// from a loop, including a nested call in argument position. Isolates the
// per-call arguments vector (one heap allocation per call in the seed
// convention) from activation-environment cost, which EnvPool already pools.
void BM_InterpretCallsArgs(benchmark::State& state) {
  const js::Program program = js::parse(
      "function sum4(a, b, c, d) { return a + b + c + d; }\n"
      "function twice(x) { return x + x; }\n"
      "var t = 0;\n"
      "for (var i = 0; i < 5000; i++) { t += sum4(i, twice(i), i + 2, i + 3); }\n");
  for (auto _ : state) {
    VirtualClock clock;
    interp::Interpreter interp(program, clock);
    interp.run();
  }
  state.SetItemsProcessed(state.iterations() * 5000 * 2);
}
BENCHMARK(BM_InterpretCallsArgs);

void BM_CanvasFillRect(benchmark::State& state) {
  dom::CanvasContext ctx(256, 256);
  ctx.set_fill_color(dom::Rgba{10, 20, 30, 255});
  for (auto _ : state) {
    ctx.fill_rect(0, 0, 256, 256);
    benchmark::DoNotOptimize(ctx.drain_cost());
  }
}
BENCHMARK(BM_CanvasFillRect);

void BM_CharacterizeCreation(benchmark::State& state) {
  const ceres::Stamp stamp = {{1, 4, 2}, {2, 9, 5}};
  const ceres::Stamp current = {{1, 4, 2}, {2, 9, 7}, {3, 1, 1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ceres::characterize_creation(stamp, current));
  }
}
BENCHMARK(BM_CharacterizeCreation);

// ---------------------------------------------------------------------------
// Mode-3 dependence-analysis hot path (BENCH_ceres_baseline.json). These
// drive DependenceAnalyzer's hook interface directly — the cost of event
// processing (stamping, characterization, last-write tables), isolated from
// tree-walking the program — which is exactly the overhead the paper calls
// "very high" in §3.3.
// ---------------------------------------------------------------------------

// A tiny program whose loop table provides ids 1 (while) and 2.. (nested
// fors) for synthesized events; depth-8 nest for BM_CharacterizeDepth.
const js::Program& dependence_bench_program() {
  static const js::Program program = js::parse(
      "while (0) {\n"
      "  for (var a = 0; a < 0; a++) {\n"
      "    for (var b = 0; b < 0; b++) {\n"
      "      for (var c = 0; c < 0; c++) {\n"
      "        for (var d = 0; d < 0; d++) {\n"
      "          for (var e = 0; e < 0; e++) {\n"
      "            for (var f = 0; f < 0; f++) {\n"
      "              for (var g = 0; g < 0; g++) { }\n"
      "            }\n"
      "          }\n"
      "        }\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "}\n");
  return program;
}

interp::LoopEvent bench_loop(int loop_id) { return interp::LoopEvent{loop_id, 1, 0}; }

// The dominant mode-3 traffic shape: a function called per iteration creates
// an activation and writes its locals ("ok ok" private accesses), plus one
// write to a loop-invariant env per iteration (deduplicated warning).
void BM_DependenceVarWrites(benchmark::State& state) {
  const js::Program& program = dependence_bench_program();
  const js::Atom local = js::Atom::intern("p");
  const js::Atom shared = js::Atom::intern("total");
  const std::int64_t kIters = 512;
  for (auto _ : state) {
    ceres::DependenceAnalyzer analyzer(program);
    std::uint64_t env_id = 1;
    analyzer.on_env_created(env_id);  // pre-loop env: writes to it are shared
    analyzer.on_loop_enter(bench_loop(1));
    for (std::int64_t i = 0; i < kIters; ++i) {
      analyzer.on_loop_iteration(bench_loop(1));
      const std::uint64_t activation = ++env_id;
      analyzer.on_env_created(activation);
      for (int w = 0; w < 7; ++w) analyzer.on_var_write(activation, local, 5);
      analyzer.on_var_write(1, shared, 9);
    }
    analyzer.on_loop_exit(bench_loop(1));
    benchmark::DoNotOptimize(analyzer.warnings().size());
  }
  state.SetItemsProcessed(state.iterations() * kIters * 8);
}
BENCHMARK(BM_DependenceVarWrites);

// Property traffic: per iteration a fresh object takes private field writes
// and reads, and one shared (pre-loop) object takes a write + flow read —
// exercising creation stamps, the per-(object, property) last-write table,
// and flow characterization.
void BM_DependencePropWrites(benchmark::State& state) {
  const js::Program& program = dependence_bench_program();
  const js::Atom kx = js::Atom::intern("x");
  const js::Atom ky = js::Atom::intern("y");
  const js::Atom ksum = js::Atom::intern("sum");
  const interp::BaseProvenance obj_base{interp::BaseProvenance::Kind::Object, 0};
  const std::int64_t kIters = 512;
  for (auto _ : state) {
    ceres::DependenceAnalyzer analyzer(program);
    std::uint64_t obj_id = 1;
    analyzer.on_object_created(obj_id, 1);  // pre-loop shared accumulator
    analyzer.on_loop_enter(bench_loop(1));
    for (std::int64_t i = 0; i < kIters; ++i) {
      analyzer.on_loop_iteration(bench_loop(1));
      const std::uint64_t fresh = ++obj_id;
      analyzer.on_object_created(fresh, 5);
      for (int w = 0; w < 3; ++w) {
        analyzer.on_prop_write(fresh, kx, 6, obj_base);
        analyzer.on_prop_read(fresh, kx, 7, obj_base);
        analyzer.on_prop_write(fresh, ky, 6, obj_base);
      }
      analyzer.on_prop_read(1, ksum, 8, obj_base);
      analyzer.on_prop_write(1, ksum, 8, obj_base);
    }
    analyzer.on_loop_exit(bench_loop(1));
    benchmark::DoNotOptimize(analyzer.warnings().size());
  }
  state.SetItemsProcessed(state.iterations() * kIters * 11);
}
BENCHMARK(BM_DependencePropWrites);

// Characterization cost against nesting depth: all eight loops of the nest
// open, private writes to an activation created at full depth plus shared
// writes to a pre-nest env — the per-level diff the stamp representation
// must make cheap.
void BM_CharacterizeDepth(benchmark::State& state) {
  const js::Program& program = dependence_bench_program();
  const js::Atom local = js::Atom::intern("q");
  const js::Atom shared = js::Atom::intern("acc");
  const int depth = int(state.range(0));
  const std::int64_t kIters = 256;
  for (auto _ : state) {
    ceres::DependenceAnalyzer analyzer(program);
    analyzer.on_env_created(1);
    for (int l = 1; l <= depth; ++l) {
      analyzer.on_loop_enter(bench_loop(l));
      analyzer.on_loop_iteration(bench_loop(l));
    }
    for (std::int64_t i = 0; i < kIters; ++i) {
      analyzer.on_loop_iteration(bench_loop(depth));
      analyzer.on_env_created(100 + std::uint64_t(i));
      for (int w = 0; w < 4; ++w) {
        analyzer.on_var_write(100 + std::uint64_t(i), local, 5);
      }
      analyzer.on_var_write(1, shared, 9);
    }
    for (int l = depth; l >= 1; --l) analyzer.on_loop_exit(bench_loop(l));
    benchmark::DoNotOptimize(analyzer.warnings().size());
  }
  state.SetItemsProcessed(state.iterations() * kIters * 5);
}
BENCHMARK(BM_CharacterizeDepth)->Arg(2)->Arg(8);

// End-to-end mode-3 run of a reduction-shaped program: what a user pays for
// dependence analysis including the interpreter's event emission.
void BM_DependenceEndToEnd(benchmark::State& state) {
  const js::Program program = js::parse(
      "var acc = {sum: 0};\n"
      "var data = [];\n"
      "for (var i0 = 0; i0 < 64; i0++) { data.push(i0); }\n"
      "function stepSum(i) { var v = data[i] * 2; acc.sum = acc.sum + v; return v; }\n"
      "for (var r = 0; r < 40; r++) {\n"
      "  for (var i = 0; i < data.length; i++) { stepSum(i); }\n"
      "}\n");
  for (auto _ : state) {
    VirtualClock clock;
    ceres::DependenceAnalyzer analyzer(program);
    interp::Interpreter interp(program, clock, &analyzer);
    interp.run();
    benchmark::DoNotOptimize(analyzer.warnings().size());
  }
  state.SetItemsProcessed(state.iterations() * 40 * 64);
}
BENCHMARK(BM_DependenceEndToEnd);

// Same program, but with the analyzer behind a HookList — the exact hook
// topology workloads::run_workload builds for mode 3 (fan-out composite).
void BM_DependenceEndToEndHooked(benchmark::State& state) {
  const js::Program program = js::parse(
      "var acc = {sum: 0};\n"
      "var data = [];\n"
      "for (var i0 = 0; i0 < 64; i0++) { data.push(i0); }\n"
      "function stepSum(i) { var v = data[i] * 2; acc.sum = acc.sum + v; return v; }\n"
      "for (var r = 0; r < 40; r++) {\n"
      "  for (var i = 0; i < data.length; i++) { stepSum(i); }\n"
      "}\n");
  for (auto _ : state) {
    VirtualClock clock;
    ceres::DependenceAnalyzer analyzer(program);
    interp::HookList hooks;
    hooks.add(&analyzer);
    interp::Interpreter interp(program, clock, &hooks);
    interp.run();
    benchmark::DoNotOptimize(analyzer.warnings().size());
  }
  state.SetItemsProcessed(state.iterations() * 40 * 64);
}
BENCHMARK(BM_DependenceEndToEndHooked);

// Dispatch latency: what a parallel_for of a near-empty body costs end to
// end. This is the number the work-stealing runtime targets — for small
// kernels the old mutex-queue pool spends its time on std::function heap
// allocation, one locked queue push per chunk, and a cv round trip before
// any work runs.
void BM_ParallelForDispatch(benchmark::State& state) {
  rivertrail::ThreadPool pool(4);
  const std::int64_t n = state.range(0);
  std::atomic<std::int64_t> sink{0};
  // Warm up the workers so thread start-up is not measured.
  rivertrail::parallel_for(pool, 0, 1 << 12,
                           [&](std::int64_t lo, std::int64_t) { benchmark::DoNotOptimize(lo); });
  for (auto _ : state) {
    rivertrail::parallel_for(pool, 0, n, [&](std::int64_t lo, std::int64_t hi) {
      sink.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(64)->Arg(4096);

namespace divergent {

// Raytrace-shaped iteration cost: a few cheap iterations, then a heavy tail
// clustered at one end of the range (mirrors the raytracer's reflective rows
// all sitting in the same image band). Static equal chunking hands the whole
// heavy band to one worker.
double spin_work(std::int64_t i) {
  const std::int64_t reps = (i < 3584) ? 4 : 1200;  // heavy tail: last 512 of 4096
  double acc = 0.017 * double(i);
  for (std::int64_t r = 0; r < reps; ++r) acc = acc * 1.0000001 + 0.5;
  return acc;
}

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

}  // namespace divergent

// Divergent-cost load balance. Each body(lo, hi) call is an indivisible
// span bound to one worker; the largest span's share of total busy time
// lower-bounds the makespan on ANY machine (a worker stuck with a span
// holding 95% of the work caps speedup at ~1x no matter the core count).
// Reported as `worst_span_share` — 1/chunks is ideal for uniform cost; the
// schedule balances divergent cost iff the share stays small when the cost
// is skewed. Host-independent, so the metric is meaningful even on the
// single-core CI container where wall-clock speedup cannot show.
template <rivertrail::Schedule kSchedule>
void BM_ParallelForDivergentImpl(benchmark::State& state) {
  rivertrail::ThreadPool pool(4);
  const std::int64_t n = 4096;
  std::vector<double> out(static_cast<std::size_t>(n));
  std::mutex span_mutex;
  double share_sum = 0;
  for (auto _ : state) {
    double total_busy = 0;
    double worst_span = 0;
    rivertrail::parallel_for(
        pool, 0, n,
        [&](std::int64_t lo, std::int64_t hi) {
          const double t0 = divergent::thread_cpu_seconds();
          for (std::int64_t i = lo; i < hi; ++i) {
            out[std::size_t(i)] = divergent::spin_work(i);
          }
          const double dt = divergent::thread_cpu_seconds() - t0;
          const std::lock_guard lock(span_mutex);
          total_busy += dt;
          worst_span = std::max(worst_span, dt);
        },
        kSchedule);
    benchmark::DoNotOptimize(out.data());
    share_sum += total_busy > 0 ? worst_span / total_busy : 0;
  }
  state.counters["worst_span_share"] = share_sum / double(state.iterations());
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_ParallelForDivergentStatic(benchmark::State& state) {
  BM_ParallelForDivergentImpl<rivertrail::Schedule::Static>(state);
}
BENCHMARK(BM_ParallelForDivergentStatic);

void BM_ParallelForDivergentDynamic(benchmark::State& state) {
  BM_ParallelForDivergentImpl<rivertrail::Schedule::Dynamic>(state);
}
BENCHMARK(BM_ParallelForDivergentDynamic);

void BM_ParallelFor(benchmark::State& state) {
  rivertrail::ThreadPool pool;
  std::vector<double> data(1 << state.range(0));
  for (auto _ : state) {
    rivertrail::parallel_for(pool, 0, std::int64_t(data.size()),
                             [&](std::int64_t lo, std::int64_t hi) {
                               for (std::int64_t i = lo; i < hi; ++i) {
                                 data[std::size_t(i)] = double(i) * 1.5;
                               }
                             });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(data.size()));
}
BENCHMARK(BM_ParallelFor)->Arg(12)->Arg(16)->Arg(20);

// ---------------------------------------------------------------------------
// Task-graph / pipeline set (BENCH_pipeline_baseline.json): the scheduling
// cost of the frame-graph primitives, isolated from stage bodies.
// ---------------------------------------------------------------------------

// End-to-end cost of pushing n near-empty tokens through a 3-stage
// serial-in / parallel / serial-out pipeline: per-token turnstile locks,
// task spawns and the retire/spawn chain — the frame-graph dispatch price.
void BM_PipelineDispatch(benchmark::State& state) {
  rivertrail::ThreadPool pool(4);
  const std::size_t n = std::size_t(state.range(0));
  std::atomic<std::int64_t> sink{0};
  for (auto _ : state) {
    rivertrail::parallel_pipeline(
        pool, n, 4,
        rivertrail::serial_stage([&](std::size_t t) { sink.fetch_add(std::int64_t(t), std::memory_order_relaxed); }),
        rivertrail::parallel_stage([&](std::size_t) { sink.fetch_add(1, std::memory_order_relaxed); }),
        rivertrail::serial_stage([&](std::size_t) { sink.fetch_add(1, std::memory_order_relaxed); }));
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_PipelineDispatch)->Arg(16)->Arg(256);

// Pipeline with frame-shaped stage costs (upload ~ kernel): measures that
// token hand-off keeps up when stages do real work. Wall-clock here is
// roughly the serialized sum on the 1-core container; the overlap metric
// lives in bench_fig5_pipeline's makespan lower bound.
void BM_PipelineFrameShaped(benchmark::State& state) {
  rivertrail::ThreadPool pool(2);
  constexpr std::size_t kTokens = 32;
  std::atomic<std::int64_t> sink{0};
  // volatile accumulator: the stage cost must not fold away, or this
  // degenerates into a second dispatch benchmark.
  const auto spin = [](std::int64_t units) {
    volatile double acc = 1.0;
    for (std::int64_t u = 0; u < units; ++u) acc = acc * 1.0000001 + 1e-9;
    return std::int64_t(acc);
  };
  for (auto _ : state) {
    rivertrail::parallel_pipeline(
        pool, kTokens, 2,
        rivertrail::serial_stage([&](std::size_t) { sink.fetch_add(spin(2000), std::memory_order_relaxed); }),
        rivertrail::parallel_stage([&](std::size_t) { sink.fetch_add(spin(1600), std::memory_order_relaxed); }),
        rivertrail::serial_stage([&](std::size_t) { sink.fetch_add(spin(200), std::memory_order_relaxed); }));
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kTokens);
}
BENCHMARK(BM_PipelineFrameShaped);

// Build-once/run-many diamond lattice: dependency-counter retirement and
// help-first successor scheduling, re-armed every run (the reusable
// frame-graph shape). 2 + 2*depth nodes, all bodies empty.
void BM_TaskGraphDiamondChain(benchmark::State& state) {
  rivertrail::ThreadPool pool(4);
  rivertrail::TaskGraph graph(pool);
  const int depth = int(state.range(0));
  std::atomic<std::int64_t> sink{0};
  auto head = graph.add([&] { sink.fetch_add(1, std::memory_order_relaxed); });
  for (int d = 0; d < depth; ++d) {
    const auto left = graph.add([&] { sink.fetch_add(1, std::memory_order_relaxed); });
    const auto right = graph.add([&] { sink.fetch_add(1, std::memory_order_relaxed); });
    const auto join = graph.add([&] { sink.fetch_add(1, std::memory_order_relaxed); });
    graph.depend(head, left);
    graph.depend(head, right);
    graph.depend(left, join);
    graph.depend(right, join);
    head = join;
  }
  for (auto _ : state) {
    graph.run();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * std::int64_t(graph.node_count()));
}
BENCHMARK(BM_TaskGraphDiamondChain)->Arg(4)->Arg(32);

void BM_NBodyStepPar(benchmark::State& state) {
  rivertrail::ThreadPool pool;
  auto bodies = rivertrail::kernels::make_bodies(int(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rivertrail::kernels::nbody_step_par(pool, bodies, 0.01));
  }
}
BENCHMARK(BM_NBodyStepPar)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
