// The SS2.3 / SS5.5 anomaly check: developers *say* they prefer functional
// Array operators (74% in the survey), yet "all loops that are
// compute-intensive are written in an imperative style" (SS5.3). This census
// statically scans all 12 case-study programs for imperative loops vs
// functional operator call sites.
#include <cstdio>

#include "js/loop_scanner.h"
#include "js/parser.h"
#include "js/refactor.h"
#include "support/table.h"
#include "workloads/workload.h"

using namespace jsceres;

int main() {
  Table table({"workload", "for", "for-in", "while", "do-while",
               "functional ops"});
  for (std::size_t c = 1; c <= 5; ++c) table.set_align(c, Table::Align::Right);
  int total_imperative = 0;
  int total_functional = 0;
  for (const auto& workload : workloads::all_workloads()) {
    const js::Program program = js::parse(workload.source, workload.name);
    const js::StyleCensus census = js::census(program);
    total_imperative += census.imperative_loops();
    total_functional += census.functional_op_calls;
    table.add_row({workload.name, std::to_string(census.for_loops),
                   std::to_string(census.for_in_loops),
                   std::to_string(census.while_loops),
                   std::to_string(census.do_while_loops),
                   std::to_string(census.functional_op_calls)});
  }
  std::fputs("Style census over the 12 case-study programs\n", stdout);
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nimperative loops: %d, functional operator call sites: %d\n"
      "(paper SS5.5: \"the case study applications contain very few loops that "
      "use functional operators\" despite the survey's 74%% stated preference)\n",
      total_imperative, total_functional);

  // SS5.3's proposed remedy, applied: how many of those imperative loops can
  // the refactoring tool mechanically convert to functional operators?
  int candidates = 0;
  int rewritten = 0;
  for (const auto& workload : workloads::all_workloads()) {
    js::Program program = js::parse(workload.source, workload.name);
    const js::RefactorReport report = js::to_functional(program);
    candidates += report.candidates;
    rewritten += report.rewritten;
  }
  std::printf(
      "\nrefactoring tool (SS5.3): %d canonical array loops found, %d safely "
      "rewritten to forEach\n(the rest use strided indices, scalar bounds, or "
      "early exits — the paper's point that the conversion often needs a "
      "human)\n",
      candidates, rewritten);
  return 0;
}
