// Regenerates Table 3: the detailed inspection of the computationally
// intensive loop nests — runtime share, instances, trip statistics
// (instrumentation mode 2), and the divergence / DOM / dependence /
// difficulty classification (mode 3 + classifiers).
#include <cstdio>

#include "report/result_store.h"
#include "report/tables.h"

using namespace jsceres;

int main() {
  const auto rows = report::build_table3();
  const std::string rendered = report::render_table3(rows);
  std::fputs(rendered.c_str(), stdout);

  int with_parallelism = 0;
  int dom_nests = 0;
  for (const auto& row : rows) {
    if (row.breaking_deps <= analysis::Difficulty::Medium) ++with_parallelism;
    if (row.dom_access) ++dom_nests;
  }
  std::printf(
      "\nnests with intrinsic parallelism (deps <= medium): %d of %zu (paper: "
      "\"about three fourths\")\nnests accessing the DOM: %d of %zu (paper: "
      "\"half of the loop nests\")\n",
      with_parallelism, rows.size(), dom_nests, rows.size());

  report::ResultStore store("results");
  const std::string path = store.store("table3", rendered);
  std::printf("snapshot: %s\n", path.c_str());
  return 0;
}
