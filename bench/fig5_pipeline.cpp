// Exercises the paper's Fig. 5 process end to end: for every case-study
// application, run the staged analyses and commit a human-readable report to
// the versioned ResultStore (steps 1-7). Prints one summary line per app.
#include <cstdio>

#include "report/pipeline.h"

using namespace jsceres;

int main() {
  report::ResultStore store("results/apps");
  for (const auto& workload : workloads::all_workloads()) {
    const auto result = report::run_pipeline(workload, store);
    // First line of the report is "# JS-CERES report: <name>".
    std::printf("%-20s -> %s (%zu bytes)\n", workload.name.c_str(),
                result.stored_path.c_str(), result.report.size());
  }
  std::printf("\n%zu reports filed under results/apps (see index.md)\n",
              workloads::all_workloads().size());
  return 0;
}
