// The event-loop-to-pipeline transformation, measured on the real
// primitive: rebuild of the old report-pipeline placeholder on top of
// rivertrail::parallel_pipeline and the event loop's frame-graph mode.
//
// The paper's Table 2 shows In-Loops time exceeding Active time: frames
// spend wall-clock in post-kernel stages (canvas upload, compositor sync)
// that serialize behind the computation on the browser main thread. This
// bench quantifies what the kernel -> canvas-upload -> commit frame graph
// recovers:
//
//  1. A synthetic frame study with calibrated stage costs: per-stage spans
//     are measured with thread-CPU clocks, and the pipelined makespan is
//     reported as a LOWER BOUND computed from the measured spans (this
//     container is single-core, so overlapped stages timeshare one core and
//     wall clock cannot show the speedup — same convention as
//     BENCH_rivertrail_baseline.json's worst_span_share).
//  2. A determinism check: the serial-out commit order must be
//     byte-identical across runs.
//  3. An end-to-end workload demonstration: the Normal Mapping case study
//     run with its FrameGraph pipeline_schedule knob, reporting committed
//     frames and per-stage spans read back from the observability layer's
//     trace recorder (the same spans a soak trace carries); on a
//     JSCERES_OBS=0 build the probes are compiled out, so the bench falls
//     back to the event loop's own FrameGraphStats accumulators.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "rivertrail/parallel_pipeline.h"
#include "rivertrail/thread_pool.h"
#include "support/obs.h"
#include "workloads/runner.h"

using namespace jsceres;

namespace {

std::int64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return std::int64_t(ts.tv_sec) * 1'000'000'000 + std::int64_t(ts.tv_nsec);
}

/// Busy work calibrated in abstract "units" (multiplies of a small FMA
/// loop); returns a value so the work cannot be optimized away.
double spin(std::int64_t units) {
  double acc = 1.0;
  for (std::int64_t u = 0; u < units * 400; ++u) acc = acc * 1.0000001 + 1e-9;
  return acc;
}

struct StageSpans {
  std::int64_t kernel_ns = 0;
  std::int64_t upload_ns = 0;
  std::int64_t commit_ns = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kFrames = 96;
  constexpr unsigned kWorkers = 2;  // the ">= 2 simulated workers" bound
  // Stage cost shape from Table 2's draw-heavy rows: upload comparable to
  // the kernel (that is exactly why In-Loops > Active), commit small.
  constexpr std::int64_t kKernelUnits = 60;
  constexpr std::int64_t kUploadUnits = 50;
  constexpr std::int64_t kCommitUnits = 5;

  rivertrail::ThreadPool pool(kWorkers);
  // Atomic: the parallel upload stage and the serial kernel stage of
  // ADJACENT frames run concurrently and both feed the sink.
  std::atomic<std::int64_t> sink{0};

  // --- 1. serialized baseline: kernel + upload + commit back to back ------
  StageSpans serial;
  for (std::size_t frame = 0; frame < kFrames; ++frame) {
    std::int64_t t0 = thread_cpu_ns();
    sink.fetch_add(std::int64_t(spin(kKernelUnits)), std::memory_order_relaxed);
    serial.kernel_ns += thread_cpu_ns() - t0;
    t0 = thread_cpu_ns();
    sink.fetch_add(std::int64_t(spin(kUploadUnits)), std::memory_order_relaxed);
    serial.upload_ns += thread_cpu_ns() - t0;
    t0 = thread_cpu_ns();
    sink.fetch_add(std::int64_t(spin(kCommitUnits)), std::memory_order_relaxed);
    serial.commit_ns += thread_cpu_ns() - t0;
  }
  const std::int64_t serialized_sum =
      serial.kernel_ns + serial.upload_ns + serial.commit_ns;

  // --- 2. the same frames through parallel_pipeline -----------------------
  const auto run_pipelined = [&](std::vector<std::uint64_t>* commit_log) {
    StageSpans spans;
    std::atomic<std::int64_t> upload_acc{0};
    std::vector<std::uint64_t> tokens(kFrames, 0);
    rivertrail::parallel_pipeline(
        pool, kFrames, /*max_in_flight=*/2,
        rivertrail::serial_stage([&](std::size_t token) {
          const std::int64_t t0 = thread_cpu_ns();
          sink.fetch_add(std::int64_t(spin(kKernelUnits)), std::memory_order_relaxed);
          tokens[token] = token * 0x9e3779b97f4a7c15ull;
          spans.kernel_ns += thread_cpu_ns() - t0;
        }),
        rivertrail::parallel_stage([&](std::size_t token) {
          const std::int64_t t0 = thread_cpu_ns();
          sink.fetch_add(std::int64_t(spin(kUploadUnits)), std::memory_order_relaxed);
          tokens[token] ^= tokens[token] >> 31;
          // Parallel stage: span accumulation must be race-free.
          upload_acc.fetch_add(thread_cpu_ns() - t0, std::memory_order_relaxed);
        }),
        rivertrail::serial_stage([&](std::size_t token) {
          const std::int64_t t0 = thread_cpu_ns();
          sink.fetch_add(std::int64_t(spin(kCommitUnits)), std::memory_order_relaxed);
          commit_log->push_back(tokens[token]);
          spans.commit_ns += thread_cpu_ns() - t0;
        }));
    spans.upload_ns = upload_acc.load(std::memory_order_relaxed);
    return spans;
  };

  std::vector<std::uint64_t> log_a;
  std::vector<std::uint64_t> log_b;
  const StageSpans piped = run_pipelined(&log_a);
  run_pipelined(&log_b);
  const bool deterministic = log_a == log_b && log_a.size() == kFrames;

  // Pipelined makespan lower bound on W workers, from the measured spans:
  // each serial stage is a chain (its total span bounds the makespan from
  // below), adjacent-frame stages overlap, and total work / W bounds any
  // schedule. On a single-core container this is the honest number — the
  // same convention as worst_span_share.
  const std::int64_t piped_sum = piped.kernel_ns + piped.upload_ns + piped.commit_ns;
  const std::int64_t makespan_lb =
      std::max({piped.kernel_ns, piped.upload_ns, piped.commit_ns,
                piped_sum / std::int64_t(kWorkers)});
  const double ratio = double(makespan_lb) / double(serialized_sum);

  std::printf("fig5: event-loop frames as a software pipeline "
              "(kernel -> canvas-upload -> commit, %zu frames, %u workers)\n\n",
              kFrames, kWorkers);
  std::printf("  serialized per-frame sum: %8.2f ms  (kernel %.2f, upload %.2f, "
              "commit %.2f)\n",
              double(serialized_sum) / 1e6, double(serial.kernel_ns) / 1e6,
              double(serial.upload_ns) / 1e6, double(serial.commit_ns) / 1e6);
  std::printf("  pipelined stage spans:    kernel %.2f ms, upload %.2f ms, "
              "commit %.2f ms\n",
              double(piped.kernel_ns) / 1e6, double(piped.upload_ns) / 1e6,
              double(piped.commit_ns) / 1e6);
  std::printf("  pipelined makespan lower bound (%u workers): %.2f ms -> "
              "%.2fx of serialized (target <= 0.75)  [%s]\n",
              kWorkers, double(makespan_lb) / 1e6, ratio,
              ratio <= 0.75 ? "ok" : "MISS");
  std::printf("  serial-out commit order deterministic across runs: %s\n\n",
              deterministic ? "yes" : "NO");

  // --- 3. end-to-end: a real workload under the frame-graph knob ----------
  obs::TraceRecorder::instance().start();
  const workloads::Workload& normalmap = workloads::workload_by_name("Normal Mapping");
  const auto run = workloads::run_workload(normalmap, workloads::Mode::Lightweight);
  obs::TraceRecorder::instance().stop();
  const dom::FrameGraphStats stats = run.page->event_loop().frame_graph_stats();
  const auto row = run.table2_row();

  // Per-stage spans from the recorder: sum the thread-CPU durations of the
  // frame.kernel / frame.upload / frame.commit 'X' events the event loop's
  // probes emitted — the same spans a soak trace shows in Perfetto.
  StageSpans traced;
  std::int64_t traced_frames = 0;
  for (const obs::TraceEvent& event : obs::TraceRecorder::instance().collect()) {
    if (event.ph != 'X' || std::strcmp(event.cat, "frame") != 0) continue;
    if (std::strcmp(event.name, "frame.kernel") == 0) {
      traced.kernel_ns += event.tdur_ns;
    } else if (std::strcmp(event.name, "frame.upload") == 0) {
      traced.upload_ns += event.tdur_ns;
    } else if (std::strcmp(event.name, "frame.commit") == 0) {
      traced.commit_ns += event.tdur_ns;
      ++traced_frames;
    }
  }
#if JSCERES_OBS
  const bool spans_from_trace = true;
#else
  // Probes compiled out: the recorder saw nothing. Fall back to the event
  // loop's own accumulators so the bench still reports real numbers.
  const bool spans_from_trace = false;
  traced.kernel_ns = stats.kernel_ns;
  traced.upload_ns = stats.upload_ns;
  traced.commit_ns = stats.commit_ns;
  traced_frames = stats.frames;
#endif

  std::printf("  end-to-end (%s, pipeline_schedule=FrameGraph):\n",
              normalmap.name.c_str());
  std::printf("    virtual Total %.2f s / Active %.2f s / In-Loops %.2f s "
              "(identical to serial mode by construction)\n",
              row.total_s, row.active_s, row.in_loops_s);
  std::printf("    frames committed through the pipeline: %lld "
              "(trace recorder saw %lld commit spans)\n",
              static_cast<long long>(stats.frames),
              static_cast<long long>(traced_frames));
  std::printf("    real stage spans (%s): kernel %.2f ms, upload %.2f ms, "
              "commit %.2f ms — upload runs on a worker while the next "
              "frame's kernel executes\n",
              spans_from_trace ? "from trace recorder" : "from event loop",
              double(traced.kernel_ns) / 1e6, double(traced.upload_ns) / 1e6,
              double(traced.commit_ns) / 1e6);

  const bool ok = ratio <= 0.75 && deterministic && stats.frames > 0 &&
                  traced_frames == stats.frames;
  std::printf("\nfig5: %s (sink %lld)\n", ok ? "PASS" : "FAIL",
              static_cast<long long>(sink.load() % 1000));
  return ok ? 0 : 1;
}
