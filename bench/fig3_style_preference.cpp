// Regenerates Figure 3: programming style preference, from functional (1) to
// imperative (5), plus the SS2.3 operators-vs-loops result.
#include <cstdio>

#include "survey/aggregate.h"

using namespace jsceres::survey;

int main() {
  const Dataset dataset = Dataset::paper_reconstruction();
  const ScaleData data = fig3_style(dataset);
  std::fputs(render_scale(data,
                          "Figure 3. Programming style preference scale",
                          "strongly functional", "strongly imperative")
                 .c_str(),
             stdout);

  const OperatorPreference ops = operators_preference(dataset);
  std::printf(
      "\nSS2.3 high-level Array operators vs for-loops: %d of %d answerers "
      "(%.0f%%) prefer the builtin operators (paper: 74%%)\n",
      ops.prefer_operators, ops.answered, ops.share() * 100);
  std::printf("functional-leaning (1-2): %.0f%%  imperative-leaning (4-5): %.0f%%\n",
              (data.share(1) + data.share(2)) * 100,
              (data.share(4) + data.share(5)) * 100);
  return 0;
}
