#!/usr/bin/env python3
"""Bench regression guard: diff a fresh microbench JSON run against a
committed BENCH_*_baseline.json snapshot and fail on regressions beyond a
noise threshold.

Absolute times are machine-dependent (the baselines were recorded on the
study container, CI runs elsewhere), so the comparison is on RATIOS: each
benchmark's time is normalized by an anchor benchmark from the SAME run,
and compared against the baseline's after-times normalized the same way. A
benchmark regresses when

    (measured[b] / measured[anchor]) / (baseline[b] / baseline[anchor])
        > threshold

The default threshold is deliberately generous (CI smoke runs are
single-repetition): this catches order-of-magnitude slips — an inline cache
that stopped hitting, a fast path that fell off — not single-digit noise.

Usage:
    diff_bench.py measured.json baseline.json [--threshold 2.5]
    diff_bench.py --metrics soak_metrics.json

measured.json: google-benchmark --benchmark_format=json output.
baseline.json: this repo's snapshot format ({"benchmarks": {name:
{"after_ms"|"after_ns": ...}}}, optional "anchor": name).

--metrics mode ingests the observability snapshot the soak smoke dumps
(fuzz_driver --soak --metrics-out; {"counters": {...}, "gauges": {...},
"histograms": {...}}) and emits NON-FATAL ::notice annotations when an
engine health ratio looks off — an inline-cache hit rate below its floor,
or sessions shed by admission control during a smoke that should sail
through. These are trend flags, not gates (a loaded CI runner can shed
legitimately), so this mode always exits 0.
"""

import argparse
import json
import sys

# Health floors for --metrics mode. The IC floor is far below the steady
# observed rate (~98%) so only a real fast-path loss trips it.
IC_HIT_RATE_FLOOR = 0.90
SHED_COUNTERS = (
    "governor.shed",
    "service.shed_memory",
    "service.shed_queue_full",
)


def check_metrics(path):
    """Non-fatal health notices from a soak metrics snapshot. Returns 0."""
    with open(path) as f:
        snap = json.load(f)
    counters = snap.get("counters", {})

    print(f"metrics check: {path}")
    for prefix in ("read", "write"):
        hits = counters.get(f"interp.ic_{prefix}_hits", 0)
        misses = counters.get(f"interp.ic_{prefix}_misses", 0)
        total = hits + misses
        if total == 0:
            continue
        rate = hits / total
        status = "ok" if rate >= IC_HIT_RATE_FLOOR else "LOW"
        print(f"  interp.ic_{prefix} hit rate: {rate:.4f} "
              f"({hits}/{total}) {status}")
        if rate < IC_HIT_RATE_FLOOR:
            print(f"::notice title=IC {prefix} hit rate below floor::"
                  f"interp.ic_{prefix} hit rate {rate:.4f} < "
                  f"{IC_HIT_RATE_FLOOR:.2f} in {path}; the inline-cache "
                  f"fast path may have regressed (megamorphic trips: "
                  f"{counters.get('interp.ic_megamorphic_trips', 0)}, "
                  f"re-caches: {counters.get('interp.ic_recaches', 0)}).")

    shed = {name: counters.get(name, 0) for name in SHED_COUNTERS}
    total_shed = sum(shed.values())
    submitted = counters.get("service.submitted", 0)
    print(f"  sessions shed: {total_shed} of {submitted} submitted")
    if total_shed > 0:
        detail = ", ".join(f"{k}={v}" for k, v in shed.items() if v > 0)
        print(f"::notice title=soak smoke shed sessions::"
              f"{total_shed} of {submitted} sessions shed ({detail}) in "
              f"{path}; admission control fired during a smoke that should "
              f"admit everything — check memory estimates and queue bounds.")
    return 0


def baseline_time(entry):
    """Baseline after-time in ns, or None for non-time entries."""
    if "after_ns" in entry:
        return float(entry["after_ns"])
    if "after_ms" in entry:
        return float(entry["after_ms"]) * 1e6
    return None


def measured_times(doc):
    """name -> real_time in ns from a google-benchmark JSON document."""
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" and bench.get(
                "aggregate_name") != "median":
            continue
        name = bench["name"]
        for suffix in ("_median", "_mean"):
            if name.endswith(suffix):
                name = name[: -len(suffix)]
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        times[name] = float(bench["real_time"]) * scale
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", nargs="?")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("--threshold", type=float, default=2.5)
    parser.add_argument("--metrics", metavar="SNAP_JSON",
                        help="observability snapshot to health-check "
                             "(non-fatal notices; exits 0)")
    args = parser.parse_args()

    if args.metrics:
        return check_metrics(args.metrics)
    if not args.measured or not args.baseline:
        parser.error("measured and baseline are required without --metrics")

    with open(args.measured) as f:
        measured = measured_times(json.load(f))
    with open(args.baseline) as f:
        baseline_doc = json.load(f)

    baseline = {}
    for name, entry in baseline_doc.get("benchmarks", {}).items():
        time_ns = baseline_time(entry)
        if time_ns is not None:
            baseline[name] = time_ns

    common = [name for name in baseline if name in measured]
    if len(common) < 2:
        print(f"diff_bench: <2 common benchmarks between {args.measured} and "
              f"{args.baseline}; nothing to compare", file=sys.stderr)
        return 0

    anchor = baseline_doc.get("anchor")
    if anchor not in measured or anchor not in baseline:
        anchor = sorted(common)[0]

    failures = []
    improved = []
    print(f"bench guard: {args.baseline} (anchor {anchor}, "
          f"threshold {args.threshold:.2f}x)")
    for name in sorted(common):
        if name == anchor:
            continue
        measured_rel = measured[name] / measured[anchor]
        baseline_rel = baseline[name] / baseline[anchor]
        ratio = measured_rel / baseline_rel
        status = "ok"
        if ratio > args.threshold:
            status = "REGRESSION"
            failures.append(name)
        elif ratio < 1.0 / args.threshold:
            status = "improved (consider refreshing the baseline)"
            improved.append(name)
        print(f"  {name}: rel {measured_rel:.3f} vs baseline {baseline_rel:.3f} "
              f"-> x{ratio:.2f} {status}")

    if improved:
        # Non-fatal baseline-refresh reminder. A benchmark running far ahead
        # of its snapshot means the snapshot no longer anchors the guard: a
        # later regression back to the recorded level would pass silently.
        # The ::notice:: line renders as a GitHub Actions annotation on the
        # workflow run (and is harmless noise locally).
        names = ", ".join(improved)
        print(f"diff_bench: {len(improved)} benchmark(s) ran >= "
              f"{args.threshold:.2f}x ahead of {args.baseline}: {names}")
        print(f"::notice title=bench baseline refresh suggested::"
              f"{names} outran {args.baseline} by >= {args.threshold:.2f}x; "
              f"regenerate the snapshot (bench/run_microbench.sh) so the "
              f"regression guard re-anchors at the new level.")

    if failures:
        print(f"diff_bench: {len(failures)} regression(s) beyond "
              f"x{args.threshold:.2f}: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
