#include "workloads/workload.h"

namespace jsceres::workloads {

namespace {

std::vector<dom::UserEvent> d3_events() {
  std::vector<dom::UserEvent> events;
  events.push_back({300, "mousedown", 48, 48, ""});
  for (int t = 380; t < 3600; t += 700) {
    events.push_back({t, "mousemove", 48.0 + (t - 380) * 0.02, 48.0, ""});
  }
  events.push_back({3650, "mouseup", 112, 48, ""});
  return events;
}

}  // namespace

/// D3.js — interactive azimuthal projection map (Table 1: "Visualization").
///
/// Table 3 shape: one nest is ~99% of loop time — the per-feature point
/// loop of the projection path generator. Points behind the horizon are
/// clipped by *recursive* great-arc subdivision ("yes" divergence); the
/// path generator threads prev-point and bounding-box state through the
/// iterations (5 flow-dependence sites -> "hard"); each feature's <path>
/// element is updated once per ~150 points (DOM access "yes", but
/// incidental — the paper keeps D3 at "hard" overall).
Workload make_d3() {
  Workload w;
  w.name = "D3.js";
  w.url = "d3js.org";
  w.category = "Visualization";
  w.description = "interactive azimuthal projection map";
  w.paper = {18, 5, 4};
  w.session_ms = 17000;
  // Full scale even under mode 3: the horizon-clip recursion (the divergence
  // source) only triggers with enough points per feature.
  w.dependence_scale = 1.0;
  w.nest_markers = {"for (pi = 0; pi < pts.length; pi++) { // project points"};
  w.events = d3_events();
  w.source = R"JS(
var FEATURES = Math.max(3, Math.floor(6 * SCALE));
var POINTS = Math.max(20, Math.floor(90 * SCALE));
var features = [];
var rotationLambda = 0;
var redraws = 0;
var path = {prevX: 0, prevY: 0, minX: 1e9, maxX: -1e9, minY: 1e9, segments: 0};
var dragging = false;
var dragStartX = 0;

function buildFeatures() {
  var f;
  for (f = 0; f < FEATURES; f++) {
    var pts = [];
    var k;
    for (k = 0; k < POINTS; k++) {
      var lon = -3.1 + 6.2 * k / POINTS + 0.4 * Math.sin(f * 2.1 + k * 0.3);
      var lat = (f - FEATURES / 2) * 0.25 + 0.3 * Math.cos(k * 0.21);
      pts.push({lon: lon, lat: lat});
    }
    var el = document.createElement('path');
    el.setAttribute('id', 'feature-' + f);
    document.body.appendChild(el);
    features.push({points: pts, el: el, d: ''});
  }
}

// Recursive adaptive resampling along the clip horizon (the divergence
// source: depth depends on where the arc crosses the horizon).
function resampleDepth(cosA, cosB, depth) {
  if (depth === 0) { return 1; }
  var mid = (cosA + cosB) / 2;
  if (mid > 0.05 || (cosA < 0 && cosB < 0)) { return 1; }
  return 1 + resampleDepth(cosA, mid, depth - 1) +
         resampleDepth(mid, cosB, depth - 1);
}

function project(lon, lat) {
  // Azimuthal orthographic projection with rotation.
  var cosc = Math.cos(lat) * Math.cos(lon - rotationLambda);
  return {
    x: 48 + 44 * Math.cos(lat) * Math.sin(lon - rotationLambda),
    y: 48 - 44 * Math.sin(lat),
    visible: cosc
  };
}

function redraw() {
  redraws = redraws + 1;
  var f;
  for (f = 0; f < features.length; f++) {
    var pts = features[f].points;
    var d = '';
    path.prevX = 0;
    path.prevY = 0;
    path.segments = 0;
    var prevCos = -1;
    var pi;
    for (pi = 0; pi < pts.length; pi++) { // project points into the path
      var pr = project(pts[pi].lon, pts[pi].lat);
      if (pr.visible > 0 && prevCos > 0) {
        // Adaptive resampling between consecutive visible points.
        var extra = resampleDepth(prevCos, pr.visible, 2);
        var sx = (path.prevX + pr.x) / 2;
        var sy = (path.prevY + pr.y) / 2;
        d = d + 'L' + Math.floor(sx * extra % 97) + ' ' + Math.floor(sy);
        path.segments = path.segments + 1;
      }
      path.minX = Math.min(path.minX, pr.x);
      path.maxX = Math.max(path.maxX, pr.x);
      path.minY = Math.min(path.minY, pr.y);
      path.prevX = pr.x;
      path.prevY = pr.y;
      prevCos = pr.visible;
      if (pi % 24 === 0) {
        features[f].el.setAttribute('data-progress', '' + pi);
      }
    }
    features[f].d = d;
    features[f].el.setAttribute('d', d);
  }
}

addEventListener('mousedown', function (e) {
  dragging = true;
  dragStartX = e.x;
});
addEventListener('mousemove', function (e) {
  if (!dragging) { return; }
  rotationLambda = rotationLambda + (e.x - dragStartX) * 0.002;
  redraw();
});
addEventListener('mouseup', function (e) { dragging = false; });

buildFeatures();
redraw();
)JS";
  return w;
}

}  // namespace jsceres::workloads
