#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dom/event_loop.h"
#include "rivertrail/schedule.h"

namespace jsceres::rivertrail {
class ThreadPool;
}

namespace jsceres::workloads {

/// Reference values from the paper, used by the benches/EXPERIMENTS.md to
/// print paper-vs-measured side by side.
struct PaperTable2Row {
  double total_s = 0;
  double active_s = 0;
  double in_loops_s = 0;
};

/// One case-study application (Table 1): the program (in the engine's JS
/// subset), the synthetic interaction script that exercises it, and the
/// markers identifying which loop nests Table 3 reports.
struct Workload {
  std::string name;         // e.g. "HAAR.js"
  std::string url;          // Table 1 source URL
  std::string category;     // Table 1 category / description
  std::string description;
  std::string source;       // JS program text

  // Page setup.
  bool canvas = false;
  std::string canvas_id = "stage";
  int canvas_w = 64;
  int canvas_h = 64;

  // Interaction (paper step 4: "exercise any computationally-intensive
  // code") and session length (Table 2 "Total").
  std::vector<dom::UserEvent> events;
  std::int64_t session_ms = 2000;

  /// Source-text markers (unique substrings) on the header lines of the
  /// loop nests Table 3 reports, in the paper's row order. Resolved to loop
  /// ids after parsing (robust against line renumbering while editing JS).
  std::vector<std::string> nest_markers;

  /// SCALE global for dependence-analysis runs (mode 3 is very heavy; the
  /// paper's tool "failed to scale to some of the case studies").
  double dependence_scale = 0.5;

  /// Simulated thread preemption while this app runs (paper §3.1: loop time
  /// includes suspensions). 0 = none.
  std::int64_t preempt_interval_ticks = 0;
  std::int64_t preempt_block_ns = 0;

  /// Rivertrail schedule knobs for this workload's certified kernel port
  /// (src/rivertrail/kernels.*), consumed by run_certified_kernel. Uniform
  /// kernels keep the defaults; divergent ones (raytrace's variable-depth
  /// recursion, fluid's banded rows) pick the schedule/grain that lets the
  /// work-stealing runtime rebalance them. `kernel_grain` 0 = runtime
  /// default.
  rivertrail::Schedule kernel_schedule = rivertrail::Schedule::Static;
  std::int64_t kernel_grain = 0;

  /// Frame-pipeline knob consumed by workloads::run_workload: FrameGraph
  /// runs the session's requestAnimationFrame ticks through the event
  /// loop's kernel -> canvas-upload -> commit pipeline (overlapping
  /// adjacent frames); Serial is the browser-faithful baseline. Only the
  /// rAF-driven canvas workloads opt in.
  rivertrail::PipelineSchedule pipeline_schedule = rivertrail::PipelineSchedule::Serial;
  /// Frames in flight for FrameGraph (2 = double buffering).
  std::size_t pipeline_depth = 2;

  PaperTable2Row paper;
};

/// Outcome of running a workload's certified kernel port under its schedule
/// knobs. `ran` is false for workloads without a kernel port (their hot
/// loops are DOM-bound or "hard" in Table 3).
struct KernelRun {
  bool ran = false;
  bool outputs_match = false;  // parallel output == sequential reference
  double par_ms = 0;
};

/// Execute the kernel port matching `workload` (by name) on `pool`, using
/// the workload's kernel_schedule / kernel_grain, and validate the output
/// against the sequential reference.
KernelRun run_certified_kernel(const Workload& workload,
                               rivertrail::ThreadPool& pool);

/// Line number (1-based) of the first occurrence of `marker` in `source`,
/// or 0 when absent.
int line_of_marker(const std::string& source, const std::string& marker);

/// The 12 case-study applications of Table 1.
const std::vector<Workload>& all_workloads();

/// Lookup by name; throws std::out_of_range when unknown.
const Workload& workload_by_name(const std::string& name);

// Individual builders (one translation unit each).
Workload make_haar();
Workload make_cloth();
Workload make_caman();
Workload make_fluid();
Workload make_harmony();
Workload make_ace();
Workload make_myscript();
Workload make_raytrace();
Workload make_normalmap();
Workload make_sigma();
Workload make_processing();
Workload make_d3();

}  // namespace jsceres::workloads
