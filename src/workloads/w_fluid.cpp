#include "workloads/workload.h"

namespace jsceres::workloads {

namespace {

std::vector<dom::UserEvent> fluid_events() {
  std::vector<dom::UserEvent> events;
  // Stir the fluid with the pointer for the whole session.
  for (int t = 150; t < 3800; t += 120) {
    events.push_back(
        {t, "mousemove", 20.0 + (t / 40) % 40, 20.0 + (t / 55) % 30, ""});
  }
  return events;
}

}  // namespace

/// fluidSim — Navier-Stokes fluid dynamics (Table 1: "Games").
///
/// Table 3 shape: one dominant nest, the Jacobi linear-solver row loop:
/// branch-free body -> "none" divergence; double-buffered reads/writes with
/// disjoint indices plus one shared convergence scalar -> "easy"
/// dependences; no DOM access inside the nest (density rendering is a
/// separate canvas pass).
Workload make_fluid() {
  Workload w;
  w.name = "fluidSim";
  w.url = "nerget.com/fluidSim";
  w.category = "Games";
  w.description = "fluid dynamics simulation (Navier-Stokes)";
  w.paper = {22, 17, 12};
  w.session_ms = 4000;
  w.canvas = true;
  w.canvas_w = 80;
  w.canvas_h = 80;
  w.dependence_scale = 0.5;
  // Jacobi rows are near-uniform, but the grid edge rows are cheaper than
  // interior ones; a modest fixed grain keeps spans cache-friendly while
  // still letting hungry thieves peel bands off a lagging worker.
  w.kernel_schedule = rivertrail::Schedule::Static;
  w.kernel_grain = 4;
  // Density field re-uploaded every rAF tick: frame-graph the session.
  w.pipeline_schedule = rivertrail::PipelineSchedule::FrameGraph;
  w.nest_markers = {"for (j = 1; j <= N; j++) { // lin_solve"};
  w.events = fluid_events();
  w.source = R"JS(
var N = Math.max(8, Math.floor(14 * SCALE));
var SIZE = (N + 2) * (N + 2);
var density = [];
var densityNext = [];
var velX = [];
var velY = [];
var maxDelta = 0;
var frames = 0;
var ctx = document.getElementById('stage').getContext('2d');

function ix(i, j) { return j * (N + 2) + i; }

function reset() {
  var k;
  for (k = 0; k < SIZE; k++) {
    density.push(0);
    densityNext.push(0);
    velX.push(0);
    velY.push(0);
    velXNext.push(0);
    velYNext.push(0);
  }
}

// The reported nest: one Jacobi sweep of the linear solver. Double-buffered
// (reads src, writes dst) so iterations are independent; the only shared
// write is the convergence tracker.
function linSolve(src, dst, a, c) {
  var j;
  for (j = 1; j <= N; j++) { // lin_solve row sweep
    var i;
    for (i = 1; i <= N; i++) {
      var at = ix(i, j);
      var v = (src[at] + a * (src[at - 1] + src[at + 1] +
               src[at - (N + 2)] + src[at + (N + 2)])) / c;
      dst[at] = v;
      maxDelta = Math.max(maxDelta, v - src[at]);
    }
  }
}

function swapDensity() {
  var tmp = density;
  density = densityNext;
  densityNext = tmp;
}

function setBoundary(grid) {
  var i;
  for (i = 1; i <= N; i++) {
    grid[ix(0, i)] = grid[ix(1, i)];
    grid[ix(N + 1, i)] = grid[ix(N, i)];
    grid[ix(i, 0)] = grid[ix(i, 1)];
    grid[ix(i, N + 1)] = grid[ix(i, N)];
  }
}

function advect(src, dst, dt) {
  var j;
  for (j = 1; j <= N; j++) {
    var i;
    for (i = 1; i <= N; i++) {
      var x = i - dt * N * velX[ix(i, j)];
      var y = j - dt * N * velY[ix(i, j)];
      x = Math.max(0.5, Math.min(N + 0.5, x));
      y = Math.max(0.5, Math.min(N + 0.5, y));
      var i0 = Math.floor(x);
      var j0 = Math.floor(y);
      var s1 = x - i0;
      var t1 = y - j0;
      dst[ix(i, j)] = (1 - s1) * ((1 - t1) * src[ix(i0, j0)] + t1 * src[ix(i0, j0 + 1)]) +
                      s1 * ((1 - t1) * src[ix(i0 + 1, j0)] + t1 * src[ix(i0 + 1, j0 + 1)]);
    }
  }
}

function renderDensity() {
  var cell = Math.floor(80 / N);
  var j;
  for (j = 1; j <= N; j++) {
    var i;
    for (i = 1; i <= N; i++) {
      var shade = Math.floor(Math.min(255, density[ix(i, j)] * 255));
      ctx.fillStyle = 'rgb(' + shade + ',' + shade + ',255)';
      ctx.fillRect((i - 1) * cell, (j - 1) * cell, cell, cell);
    }
  }
}

var velXNext = [];
var velYNext = [];
function step() {
  frames = frames + 1;
  maxDelta = 0;
  // Diffuse both velocity components and the density field (Stam's stable
  // fluids): six Jacobi sweeps per frame, all through the reported nest.
  var k;
  for (k = 0; k < 4; k++) {
    linSolve(velX, velXNext, 0.1, 1.4);
    var tx = velX; velX = velXNext; velXNext = tx;
    linSolve(velY, velYNext, 0.1, 1.4);
    var ty = velY; velY = velYNext; velYNext = ty;
    linSolve(density, densityNext, 0.18, 1.72);
    swapDensity();
  }
  setBoundary(density);
  if (frames % 2 === 0) { advect(density, densityNext, 0.1); swapDensity(); }
  if (frames % 3 === 0) { renderDensity(); }
  requestAnimationFrame(step);
}

addEventListener('mousemove', function (e) {
  var gx = Math.max(1, Math.min(N, Math.floor(e.x / (80 / N))));
  var gy = Math.max(1, Math.min(N, Math.floor(e.y / (80 / N))));
  density[ix(gx, gy)] = 1;
  velX[ix(gx, gy)] = (e.x - 40) * 0.01;
  velY[ix(gx, gy)] = (e.y - 40) * 0.01;
});

reset();
requestAnimationFrame(step);
)JS";
  return w;
}

}  // namespace jsceres::workloads
