#include "workloads/workload.h"

namespace jsceres::workloads {

namespace {

/// Mouse drag across the cloth for a couple of seconds.
std::vector<dom::UserEvent> cloth_events() {
  std::vector<dom::UserEvent> events;
  events.push_back({200, "mousedown", 40, 30, ""});
  for (int t = 230; t < 6500; t += 90) {
    events.push_back({t, "mousemove", 40.0 + (t - 230) * 0.01, 30.0 + (t % 300) * 0.05, ""});
  }
  events.push_back({6500, "mouseup", 100, 45, ""});
  return events;
}

}  // namespace

/// Tear-able Cloth — Verlet cloth physics (Table 1: "Games").
///
/// Table 3 shape: one dominant nest (the constraint-relaxation loop),
/// "little" divergence (pin/tear branches only), no DOM inside the nest
/// (rendering is a separate loop), and "medium" dependence difficulty: the
/// relaxation reads particle positions written by *earlier iterations* over
/// the shared constraint graph — a handful of genuine flow dependencies a
/// programmer can break with red-black ordering.
Workload make_cloth() {
  Workload w;
  w.name = "Tear-able Cloth";
  w.url = "lonely-pixel.com/lab/cloth";
  w.category = "Games";
  w.description = "cloth physics simulation (Verlet integration)";
  w.paper = {14, 7, 9};
  w.session_ms = 8000;
  w.canvas = true;
  w.canvas_w = 160;
  w.canvas_h = 120;
  w.dependence_scale = 0.5;
  // Verlet integration is uniform per particle except for pinned points
  // (early-continue): Static with the default grain degenerates to equal
  // chunks when nobody is hungry, which is the right call here.
  w.kernel_schedule = rivertrail::Schedule::Static;
  w.kernel_grain = 0;
  // Canvas redraw dominates the tail of each tick: frame-graph the session.
  w.pipeline_schedule = rivertrail::PipelineSchedule::FrameGraph;
  w.nest_markers = {"for (ci = 0; ci < constraints.length"};
  w.events = cloth_events();
  w.source = R"JS(
var COLS = Math.max(6, Math.floor(11 * SCALE));
var ROWS = Math.max(5, Math.floor(8 * SCALE));
var SPACING = 8;
var GRAVITY = 0.4;
var TEAR_DIST = 28;
var particles = [];
var constraints = [];
var mouse = {down: false, x: 0, y: 0};
var frames = 0;

function buildCloth() {
  var y;
  var x;
  for (y = 0; y < ROWS; y++) {
    for (x = 0; x < COLS; x++) {
      particles.push({
        x: 20 + x * SPACING, y: 10 + y * SPACING,
        px: 20 + x * SPACING, py: 10 + y * SPACING,
        pinned: y === 0 && x % 3 === 0
      });
      if (x > 0) {
        constraints.push({a: y * COLS + x - 1, b: y * COLS + x, rest: SPACING, alive: true});
      }
      if (y > 0) {
        constraints.push({a: (y - 1) * COLS + x, b: y * COLS + x, rest: SPACING, alive: true});
      }
    }
  }
}

function integrate() {
  var i;
  for (i = 0; i < particles.length; i++) {
    var p = particles[i];
    if (p.pinned) { continue; }
    var vx = (p.x - p.px) * 0.98;
    var vy = (p.y - p.py) * 0.98;
    p.px = p.x;
    p.py = p.y;
    p.x = p.x + vx;
    p.y = p.y + vy + GRAVITY;
  }
}

// The reported nest: constraint relaxation over the shared particle graph.
function relax() {
  var ci;
  for (ci = 0; ci < constraints.length; ci++) {
    var c = constraints[ci];
    if (!c.alive) { continue; }
    var p1 = particles[c.a];
    var p2 = particles[c.b];
    // One read site per coordinate (positions written by earlier iterations
    // over the shared constraint graph: the loop's four flow dependences).
    var x1 = p1.x;
    var y1 = p1.y;
    var x2 = p2.x;
    var y2 = p2.y;
    var dx = x2 - x1;
    var dy = y2 - y1;
    var dist = Math.sqrt(dx * dx + dy * dy);
    if (dist > TEAR_DIST) { c.alive = false; continue; }
    var diff = (c.rest - dist) / (dist + 0.0001) * 0.5;
    var ox = dx * diff;
    var oy = dy * diff;
    if (!p1.pinned) { p1.x = x1 - ox; p1.y = y1 - oy; }
    if (!p2.pinned) { p2.x = x2 + ox; p2.y = y2 + oy; }
  }
}

function applyMouse() {
  if (!mouse.down) { return; }
  var i;
  for (i = 0; i < particles.length; i++) {
    var p = particles[i];
    var dx = p.x - mouse.x;
    var dy = p.y - mouse.y;
    if (dx * dx + dy * dy < 100 && !p.pinned) {
      p.x = p.x + (mouse.x - p.x) * 0.3;
      p.y = p.y + (mouse.y - p.y) * 0.3;
    }
  }
}

var ctx = document.getElementById('stage').getContext('2d');
function render() {
  ctx.fillStyle = '#ffffff';
  ctx.fillRect(0, 0, 160, 120);
  ctx.strokeStyle = '#334455';
  var ci;
  for (ci = 0; ci < constraints.length; ci++) {
    var c = constraints[ci];
    if (!c.alive) { continue; }
    ctx.beginPath();
    ctx.moveTo(particles[c.a].x, particles[c.a].y);
    ctx.lineTo(particles[c.b].x, particles[c.b].y);
    ctx.stroke();
  }
}

function frame() {
  frames = frames + 1;
  applyMouse();
  integrate();
  var iter;
  for (iter = 0; iter < 2; iter++) {
    relax();
  }
  render();
  requestAnimationFrame(frame);
}

addEventListener('mousedown', function (e) { mouse.down = true; mouse.x = e.x; mouse.y = e.y; });
addEventListener('mousemove', function (e) { mouse.x = e.x; mouse.y = e.y; });
addEventListener('mouseup', function (e) { mouse.down = false; });

buildCloth();
requestAnimationFrame(frame);
)JS";
  return w;
}

}  // namespace jsceres::workloads
