#pragma once

#include <memory>

#include "ceres/dependence_analyzer.h"
#include "ceres/lightweight_profiler.h"
#include "ceres/loop_profiler.h"
#include "ceres/sampling_profiler.h"
#include "dom/page.h"
#include "js/parser.h"
#include "rivertrail/thread_pool.h"
#include "support/supervisor.h"
#include "workloads/workload.h"

namespace jsceres::workloads {

/// Table 2 row: the three time bases of instrumentation mode 1 + the Gecko
/// emulation.
struct LightweightResult {
  double total_s = 0;     // virtual wall clock at session end
  double active_s = 0;    // sampled CPU-active time
  double in_loops_s = 0;  // mode-1 loop time
};

/// A completed instrumented run; owns everything the analyses reference.
struct InstrumentedRun {
  js::Program program;
  VirtualClock clock;
  std::unique_ptr<interp::HookList> hooks;
  std::unique_ptr<ceres::LightweightProfiler> lightweight;
  std::unique_ptr<ceres::SamplingProfiler> sampler;
  std::unique_ptr<ceres::LoopProfiler> loops;
  std::unique_ptr<ceres::DependenceAnalyzer> dependence;
  std::unique_ptr<interp::Interpreter> interp;
  std::unique_ptr<dom::Page> page;
  /// Worker pool backing the event loop's frame-graph mode; non-null only
  /// when the workload's pipeline_schedule is FrameGraph. Declared after
  /// `page` so the pool outlives nothing that could still reference it
  /// (the pipeline is always joined before run_workload returns).
  std::unique_ptr<rivertrail::ThreadPool> pool;

  /// Loop ids of the workload's reported nests (resolved nest_markers).
  std::vector<int> nest_roots;

  [[nodiscard]] LightweightResult table2_row() const;
};

/// The three staged instrumentation modes of the paper (§3), plus
/// Uninstrumented (mode 0: no hooks at all — the engine-only baseline the
/// ablation bench divides by) and Combined for tests that want everything
/// from a single run.
enum class Mode { Uninstrumented, Lightweight, LoopProfile, Dependence, Combined };

/// Supervisor-facing knobs threaded into a run_workload session: the
/// sandbox limits, tick budget, and cooperative cancel token of one
/// supervised attempt. All-default knobs reproduce the unsupervised run.
struct SessionKnobs {
  EngineLimits limits;
  std::int64_t max_ticks = 0;
  CancelToken cancel;
};

/// Parse, instrument, run to completion (init + event script + session
/// horizon). `scale_override` > 0 forces the SCALE global (otherwise 1.0
/// for profiling modes, workload.dependence_scale for dependence mode).
/// `knobs` (optional) sandboxes and time-bounds the run for supervision.
InstrumentedRun run_workload(const Workload& workload, Mode mode,
                             double scale_override = 0,
                             const SessionKnobs* knobs = nullptr);

/// Runner integration of the session supervisor: run each named workload as
/// one supervised analysis session over the shared `pool`, requesting mode 3
/// (dependence analysis) and letting the supervisor's policy degrade to
/// mode 1 / mode 0 on limit trips or deadline misses. Outcome i corresponds
/// to names[i].
std::vector<SessionOutcome> run_workloads_supervised(
    const std::vector<std::string>& names, rivertrail::ThreadPool& pool,
    SupervisorOptions options = {}, std::int64_t deadline_ms = 0,
    const EngineLimits& limits = {}, std::int64_t max_ticks = 0);

}  // namespace jsceres::workloads
