#pragma once

#include <memory>

#include "ceres/dependence_analyzer.h"
#include "ceres/lightweight_profiler.h"
#include "ceres/loop_profiler.h"
#include "ceres/sampling_profiler.h"
#include "dom/page.h"
#include "js/parser.h"
#include "rivertrail/thread_pool.h"
#include "workloads/workload.h"

namespace jsceres::workloads {

/// Table 2 row: the three time bases of instrumentation mode 1 + the Gecko
/// emulation.
struct LightweightResult {
  double total_s = 0;     // virtual wall clock at session end
  double active_s = 0;    // sampled CPU-active time
  double in_loops_s = 0;  // mode-1 loop time
};

/// A completed instrumented run; owns everything the analyses reference.
struct InstrumentedRun {
  js::Program program;
  VirtualClock clock;
  std::unique_ptr<interp::HookList> hooks;
  std::unique_ptr<ceres::LightweightProfiler> lightweight;
  std::unique_ptr<ceres::SamplingProfiler> sampler;
  std::unique_ptr<ceres::LoopProfiler> loops;
  std::unique_ptr<ceres::DependenceAnalyzer> dependence;
  std::unique_ptr<interp::Interpreter> interp;
  std::unique_ptr<dom::Page> page;
  /// Worker pool backing the event loop's frame-graph mode; non-null only
  /// when the workload's pipeline_schedule is FrameGraph. Declared after
  /// `page` so the pool outlives nothing that could still reference it
  /// (the pipeline is always joined before run_workload returns).
  std::unique_ptr<rivertrail::ThreadPool> pool;

  /// Loop ids of the workload's reported nests (resolved nest_markers).
  std::vector<int> nest_roots;

  [[nodiscard]] LightweightResult table2_row() const;
};

/// The three staged instrumentation modes of the paper (§3), plus
/// Uninstrumented (mode 0: no hooks at all — the engine-only baseline the
/// ablation bench divides by) and Combined for tests that want everything
/// from a single run.
enum class Mode { Uninstrumented, Lightweight, LoopProfile, Dependence, Combined };

/// Parse, instrument, run to completion (init + event script + session
/// horizon). `scale_override` > 0 forces the SCALE global (otherwise 1.0
/// for profiling modes, workload.dependence_scale for dependence mode).
InstrumentedRun run_workload(const Workload& workload, Mode mode,
                             double scale_override = 0);

}  // namespace jsceres::workloads
