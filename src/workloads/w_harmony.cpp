#include "workloads/workload.h"

namespace jsceres::workloads {

namespace {

std::vector<dom::UserEvent> harmony_events() {
  std::vector<dom::UserEvent> events;
  events.push_back({400, "mousedown", 20, 20, ""});
  // A long free-hand sketching session: the app is on screen for ~36 s but
  // each stroke handler is light — Table 2's Total >> Active shape.
  for (int t = 450; t < 35600; t += 240) {
    const double x = 20 + 50.0 * (0.5 + 0.5 * ((t / 240) % 19) / 19.0);
    const double y = 20 + 40.0 * (0.5 + 0.5 * ((t / 240) % 13) / 13.0);
    events.push_back({t, "mousemove", x, y, ""});
  }
  events.push_back({35650, "mouseup", 60, 40, ""});
  return events;
}

}  // namespace

/// Harmony — procedural brush drawing app (Table 1: "Audio and Video").
///
/// Table 3 shape: three small nests (web-brush connections, ink shading,
/// stroke smoothing), all branch-free ("none" divergence), all touching the
/// canvas every iteration — which is why the paper rates them "easy" to
/// break dependences but "very hard" to parallelize (non-concurrent
/// DOM/Canvas is the binding constraint).
Workload make_harmony() {
  Workload w;
  w.name = "Harmony";
  w.url = "mrdoob.com/projects/harmony";
  w.category = "Audio and Video";
  w.description = "drawing application";
  w.paper = {41, 0.36, 0.28};
  w.session_ms = 36000;
  w.canvas = true;
  w.canvas_w = 96;
  w.canvas_h = 72;
  w.dependence_scale = 1.0;
  w.nest_markers = {"for (i = start; i < points.length; i++) { // web",
                    "for (k = 1; k < SHADE_STEPS; k++) { // shading",
                    "for (s = smoothFrom; s < points.length; s++) { // smoothing"};
  w.events = harmony_events();
  w.source = R"JS(
var WEB_NEIGHBORS = Math.max(3, Math.floor(9 * SCALE));
var SHADE_STEPS = Math.max(3, Math.floor(7 * SCALE));
var SMOOTH_WINDOW = Math.max(3, Math.floor(6 * SCALE));
var ctx = document.getElementById('stage').getContext('2d');
var points = [];
var smoothed = [];
var drawing = false;
var lastX = 0;
var lastY = 0;
var smoothCount = 0;

function brushStroke(x, y) {
  points.push({x: x, y: y});

  // Nest 1: the "web" brush — connect the new point to its recent
  // neighbours. Branch-free body, one canvas stroke per iteration.
  var start = Math.max(0, points.length - WEB_NEIGHBORS);
  var i;
  for (i = start; i < points.length; i++) { // web connections
    var p = points[i];
    ctx.beginPath();
    ctx.moveTo(p.x, p.y);
    ctx.lineTo(x, y);
    ctx.stroke();
    lastX = p.x;
    lastY = p.y;
  }

  // Nest 2: ink shading along the fresh segment.
  var dx = (x - lastX) / SHADE_STEPS;
  var dy = (y - lastY) / SHADE_STEPS;
  var k;
  for (k = 1; k < SHADE_STEPS; k++) { // shading dots
    ctx.beginPath();
    ctx.arc(lastX + dx * k, lastY + dy * k, 1.2);
    ctx.fill();
    lastX = lastX + dx * 0.01;
  }

  // Nest 3: smooth the tail of the stroke into a fresh buffer (writes go to
  // a new array, keeping the dependences trivial).
  var smoothFrom = Math.max(1, points.length - SMOOTH_WINDOW);
  var s;
  for (s = smoothFrom; s < points.length; s++) { // smoothing pass
    var a = points[s - 1];
    var b = points[s];
    smoothed[s] = {x: (a.x + b.x) * 0.5, y: (a.y + b.y) * 0.5};
    ctx.fillRect(smoothed[s].x, smoothed[s].y, 1, 1);
    smoothCount = smoothCount + 1;
  }
}

addEventListener('mousedown', function (e) {
  drawing = true;
  ctx.strokeStyle = 'rgba(40,40,60,0.4)';
  ctx.fillStyle = 'rgba(40,40,60,0.25)';
  brushStroke(e.x, e.y);
});
addEventListener('mousemove', function (e) {
  if (drawing) { brushStroke(e.x, e.y); }
});
addEventListener('mouseup', function (e) { drawing = false; });
)JS";
  return w;
}

}  // namespace jsceres::workloads
