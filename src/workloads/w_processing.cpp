#include "workloads/workload.h"

namespace jsceres::workloads {

/// processing.js — interactive spiral visual effect (Table 1:
/// "Visualization").
///
/// Table 3 shape: four tiny per-particle trail loops with very large
/// instance counts (the paper reports 54.6k instances of ~4 trips each).
/// Three are branch-free ("no" divergence) with disjoint writes ("easy"
/// deps, "medium" overall because ~4 trips is too little work per
/// instance); the render loop executes ~2 trips ("yes" divergence), carries
/// a pen-state flow dependence ("medium") and strokes the canvas every
/// iteration ("very hard" overall).
Workload make_processing() {
  Workload w;
  w.name = "processing.js";
  w.url = "processingjs.org";
  w.category = "Visualization";
  w.description = "interactive spiral visual effect";
  w.paper = {21, 12, 2};
  w.session_ms = 4000;
  w.canvas = true;
  w.canvas_w = 80;
  w.canvas_h = 80;
  w.dependence_scale = 0.4;
  w.nest_markers = {"for (t = TRAIL - 1; t > 0; t--) { // advance trail",
                    "for (t = 0; t < TRAIL; t++) { // fade trail",
                    "for (t = 0; t < 2; t++) { // render segments",
                    "for (t = 0; t < TRAIL; t++) { // centroid"};
  w.events = {{300, "mousemove", 40, 40, ""}, {1800, "mousemove", 55, 30, ""}};
  w.source = R"JS(
var COUNT = Math.max(20, Math.floor(70 * SCALE));
var TRAIL = 4;
var ctx = document.getElementById('stage').getContext('2d');
var particles = [];
var spin = 0;
var cxAcc = 0;
var cyAcc = 0;
var attractX = 40;
var attractY = 40;
var frames = 0;
var pen = {x: 40, y: 40};

function setup() {
  var i;
  for (i = 0; i < COUNT; i++) {
    var trail = [];
    var t;
    for (t = 0; t < TRAIL; t++) {
      trail.push({x: 40, y: 40, a: 1});
    }
    particles.push({
      angle: i * 0.31, radius: 2 + (i % 17), speed: 0.03 + (i % 5) * 0.01,
      trail: trail
    });
  }
}

// Recursive octave noise driving the attractor path — the processing.js
// framework's per-frame sketch interpretation: substantial CPU work with no
// syntactic loop open, which is why the paper measures processing.js at 12 s
// Active but only 2 s In-Loops.
function octaveNoise(x, depth) {
  if (depth === 0) {
    return Math.sin(x * 12.9898) * 0.5;
  }
  var coarse = octaveNoise(x * 0.5, depth - 1);
  var fine = octaveNoise(x * 0.5 + 17.17, depth - 1);
  return coarse * 0.65 + fine * 0.35 + Math.sin(x) * 0.01;
}

function frameStep() {
  frames = frames + 1;
  spin = spin + octaveNoise(frames * 0.05, 7) * 0.01;
  var pi;
  for (pi = 0; pi < particles.length; pi++) {
    var part = particles[pi];
    part.angle = part.angle + part.speed;
    var hx = attractX + Math.cos(part.angle + spin) * part.radius;
    var hy = attractY + Math.sin(part.angle + spin) * part.radius;
    var t;

    // Nest 1: shift the trail (branch-free, descending copy).
    for (t = TRAIL - 1; t > 0; t--) { // advance trail positions
      part.trail[t].x = part.trail[t - 1].x;
      part.trail[t].y = part.trail[t - 1].y;
      spin = spin + 0.000001;
    }
    part.trail[0].x = hx;
    part.trail[0].y = hy;

    // Nest 2: fade the trail alphas (branch-free, in-place same-iteration).
    for (t = 0; t < TRAIL; t++) { // fade trail alpha
      part.trail[t].a = part.trail[t].a * 0.92 + 0.08;
      spin = spin + 0.000001;
    }

    // Nest 3: render two segments of the trail (canvas per iteration; the
    // pen position carries across iterations).
    ctx.strokeStyle = 'rgba(70,40,110,0.5)';
    for (t = 0; t < 2; t++) { // render segments
      ctx.beginPath();
      ctx.moveTo(pen.x, pen.y);
      ctx.lineTo(part.trail[t].x, part.trail[t].y);
      ctx.stroke();
      pen.x = part.trail[t].x;
      pen.y = part.trail[t].y;
    }

    // Nest 4: centroid accumulation (branch-free shared sums).
    for (t = 0; t < TRAIL; t++) { // centroid sums
      cxAcc = cxAcc + part.trail[t].x;
      cyAcc = cyAcc + part.trail[t].y;
    }
  }
  requestAnimationFrame(frameStep);
}

addEventListener('mousemove', function (e) {
  attractX = e.x;
  attractY = e.y;
});

setup();
requestAnimationFrame(frameStep);
)JS";
  return w;
}

}  // namespace jsceres::workloads
