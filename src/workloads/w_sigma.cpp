#include "workloads/workload.h"

namespace jsceres::workloads {

/// sigma.js — GEXF graph rendering (Table 1: "Visualization").
///
/// Table 3 shape: two nests. The force-layout node loop (~68%) accumulates
/// forces into shared node fields and global bounds — many flow
/// dependencies -> "very hard"; local branching -> "little" divergence; it
/// also samples node DOM attributes, so col 6 is "yes". The edge-render
/// loop (~22%) strokes the canvas every iteration and recursively
/// subdivides curved edges -> "yes" divergence, "very hard" overall.
Workload make_sigma() {
  Workload w;
  w.name = "sigma.js";
  w.url = "sigmajs.org";
  w.category = "Visualization";
  w.description = "GEXF rendering";
  w.paper = {32, 9, 8};
  w.session_ms = 20000;
  w.canvas = true;
  w.canvas_w = 96;
  w.canvas_h = 96;
  w.dependence_scale = 0.4;
  w.nest_markers = {"for (n = 0; n < nodes.length; n++) { // force layout",
                    "for (e = 0; e < edges.length; e++) { // render edges"};
  // Three layout bursts across the session (the app idles in between).
  w.events = {{400, "mousedown", 10, 10, ""},
              {8000, "mousedown", 20, 20, ""},
              {15000, "mousedown", 30, 30, ""}};
  w.source = R"JS(
var NODE_COUNT = Math.max(12, Math.floor(42 * SCALE));
var ctx = document.getElementById('stage').getContext('2d');
var nodes = [];
var edges = [];
var bounds = {minX: 0, maxX: 96, minY: 0, maxY: 96};
var stats = {energy: 0, iterations: 0};
var running = false;

// Parse a GEXF-ish document (string processing, as sigma's gexf plugin
// does). The document itself is synthesized below.
function parseGexf(text) {
  var records = text.split(';');
  var i;
  for (i = 0; i < records.length; i++) {
    var fields = records[i].split(',');
    if (fields[0] === 'n') {
      var el = document.createElement('span');
      el.setAttribute('id', 'node-' + nodes.length);
      el.setAttribute('data-size', fields[3]);
      document.body.appendChild(el);
      nodes.push({
        x: parseFloat(fields[1]), y: parseFloat(fields[2]),
        dx: 0, dy: 0, size: parseFloat(fields[3])
      });
    }
    if (fields[0] === 'e') {
      edges.push({a: parseInt(fields[1], 10), b: parseInt(fields[2], 10)});
    }
  }
}

function makeGexf() {
  var text = '';
  var i;
  for (i = 0; i < NODE_COUNT; i++) {
    var x = 8 + (i * 37) % 80;
    var y = 8 + (i * 53) % 80;
    text = text + 'n,' + x + ',' + y + ',' + (1 + i % 4) + ';';
  }
  for (i = 0; i < NODE_COUNT * 2; i++) {
    text = text + 'e,' + (i % NODE_COUNT) + ',' + ((i * 7 + 3) % NODE_COUNT) + ';';
  }
  return text;
}

// Nest 1: one ForceAtlas-style layout sweep. Forces written into partner
// nodes are read back by later iterations (flow), and the global bounds and
// energy are folded in as the sweep goes.
function layoutPass() {
  var sample = 7;
  var n;
  for (n = 0; n < nodes.length; n++) { // force layout sweep
    var node = nodes[n];
    var el = document.getElementById('node-' + n);
    var weight = parseFloat(el.getAttribute('data-size'));
    var k;
    for (k = 1; k <= sample; k++) {
      var other = nodes[(n + k * 5) % nodes.length];
      var dx = node.x - other.x;
      var dy = node.y - other.y;
      var d2 = dx * dx + dy * dy + 0.01;
      var rep = (weight * 3) / d2;
      node.dx = node.dx + dx * rep;
      node.dy = node.dy + dy * rep;
      other.dx = other.dx - dx * rep;
      other.dy = other.dy - dy * rep;
    }
    if (node.x < bounds.minX + 2) { node.dx = node.dx + 0.05; }
    node.x = node.x + Math.max(-2, Math.min(2, node.dx));
    node.y = node.y + Math.max(-2, Math.min(2, node.dy));
    node.dx = node.dx * 0.5;
    node.dy = node.dy * 0.5;
    bounds.minX = Math.min(bounds.minX, node.x);
    bounds.maxX = Math.max(bounds.maxX, node.x);
    bounds.minY = Math.min(bounds.minY, node.y);
    bounds.maxY = Math.max(bounds.maxY, node.y);
    stats.energy = stats.energy * 0.98 + Math.abs(node.dx) + Math.abs(node.dy);
  }
  stats.iterations = stats.iterations + 1;
}

// Recursive quadratic-curve subdivision for curved edges.
function drawCurve(x0, y0, x1, y1, depth) {
  if (depth === 0) {
    ctx.beginPath();
    ctx.moveTo(x0, y0);
    ctx.lineTo(x1, y1);
    ctx.stroke();
    return;
  }
  var mx = (x0 + x1) / 2 + (y1 - y0) * 0.08;
  var my = (y0 + y1) / 2 + (x0 - x1) * 0.08;
  drawCurve(x0, y0, mx, my, depth - 1);
  drawCurve(mx, my, x1, y1, depth - 1);
}

// Nest 2: render every edge (canvas stroke per iteration, recursion for
// curvature).
var pen = {lastX: 0, lastY: 0, strokes: 0, curveBudget: 0,
           inkX: 0, inkY: 0, longest: 0, sumLen: 0};
function renderPass() {
  ctx.fillStyle = '#ffffff';
  ctx.fillRect(0, 0, 96, 96);
  ctx.strokeStyle = '#557799';
  var e;
  for (e = 0; e < edges.length; e++) { // render edges
    var a = nodes[edges[e].a];
    var b = nodes[edges[e].b];
    drawCurve(a.x, a.y, b.x, b.y, 2);
    var len = Math.abs(b.x - a.x) + Math.abs(b.y - a.y);
    pen.lastX = (pen.lastX + b.x) * 0.5;
    pen.lastY = (pen.lastY + b.y) * 0.5;
    pen.strokes = pen.strokes + 1;
    pen.curveBudget = pen.curveBudget + (len > pen.longest ? 2 : 1);
    pen.inkX = pen.inkX * 0.9 + a.x * 0.1;
    pen.inkY = pen.inkY * 0.9 + a.y * 0.1;
    pen.longest = Math.max(pen.longest, len);
    pen.sumLen = pen.sumLen + len;
  }
}

var burstEnd = 0;
function animate() {
  layoutPass();
  layoutPass();
  renderPass();
  if (stats.iterations < burstEnd) {
    requestAnimationFrame(animate);
  } else {
    running = false;
  }
}

addEventListener('mousedown', function (e) {
  if (!running) {
    running = true;
    burstEnd = stats.iterations + 6;
    requestAnimationFrame(animate);
  }
});

parseGexf(makeGexf());
)JS";
  return w;
}

}  // namespace jsceres::workloads
