#include "workloads/workload.h"

namespace jsceres::workloads {

namespace {

std::vector<dom::UserEvent> ace_events() {
  std::vector<dom::UserEvent> events;
  const std::string text =
      "function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } "
      "var xs = [1,2,3].map(function (v) { return v * v; }); ";
  int t = 500;
  for (std::size_t i = 0; i < 90; ++i) {
    const char c = text[i % text.size()];
    dom::UserEvent e;
    e.t_ms = t;
    e.type = "keydown";
    e.key = (i > 0 && i % 10 == 0) ? "Enter" : std::string(1, c);
    events.push_back(e);
    t += 300;
  }
  return events;
}

}  // namespace

/// Ace — the code editor used by Cloud9 (Table 1: "Productivity").
///
/// Table 3 shape: the renderer's cascading-update while-loop and the
/// visible-row refresh loop both execute ~1 iteration per keystroke ("the
/// loops in Ace only execute roughly one iteration on average") -> "yes"
/// divergence; every iteration updates the DOM; and the document/render
/// state is a thicket of fields read and written across iterations ->
/// "very hard" on both dependence columns.
Workload make_ace() {
  Workload w;
  w.name = "Ace";
  w.url = "ace.c9.io";
  w.category = "Productivity";
  w.description = "code editor used by the Cloud9 IDE";
  w.paper = {30, 0.4, 0.4};
  w.session_ms = 28000;
  w.dependence_scale = 1.0;
  w.nest_markers = {"while (editor.dirtyRows.length > 0) { // cascade",
                    "for (r = firstVisible; r <= lastVisible; r++) {"};
  w.events = ace_events();
  w.source = R"JS(
var editor = {
  lines: [''],
  cursorRow: 0,
  cursorCol: 0,
  dirtyRows: [],
  maxWidth: 0,
  longestRow: 0,
  scrollHeight: 1,
  renderedRows: 0,
  tokenState: 0,
  gutterWidth: 2,
  revision: 0
};
var lineElements = [];
var CHAR_W = 7;

function lineElement(row) {
  if (lineElements[row] === undefined) {
    var el = document.createElement('div');
    el.setAttribute('id', 'line-' + row);
    document.body.appendChild(el);
    lineElements[row] = el;
  }
  return lineElements[row];
}

function tokenizeLine(row) {
  var line = editor.lines[row];
  var tokens = 0;
  var inWord = false;
  var i;
  for (i = 0; i < line.length; i++) {
    var c = line.charAt(i);
    var isSpace = c === ' ' || c === '\t';
    if (!isSpace && !inWord) { tokens = tokens + 1; }
    inWord = !isSpace;
  }
  return tokens;
}

// Nest 1: the cascading render loop — processes dirty rows until layout
// stabilizes. Each iteration reads and writes a pile of shared renderer
// state (the flow dependences that make Ace "very hard").
function renderCascade() {
  while (editor.dirtyRows.length > 0) { // cascade until stable
    var row = editor.dirtyRows.pop();
    var line = editor.lines[row];
    var width = line.length * CHAR_W;
    var tokens = tokenizeLine(row);

    editor.maxWidth = Math.max(editor.maxWidth, width);
    editor.longestRow = width >= editor.maxWidth ? row : editor.longestRow;
    editor.scrollHeight = Math.max(editor.scrollHeight, editor.lines.length);
    editor.renderedRows = editor.renderedRows + 1;
    editor.tokenState = editor.tokenState * 31 + tokens;
    editor.gutterWidth = Math.max(editor.gutterWidth, ('' + editor.scrollHeight).length);
    editor.revision = editor.revision + 1;

    var el = lineElement(row);
    el.setAttribute('data-tokens', '' + tokens);
    el.textContent = line;

    // A row growing past the viewport invalidates its successor (the
    // cascade; usually does not fire -> ~1 trip).
    if (width > 600 && row + 1 < editor.lines.length) {
      editor.dirtyRows.push(row + 1);
    }
  }
}

// Nest 2: refresh the visible rows around the cursor. Usually one row; an
// occasional context repaint pulls in the previous row too (trips ~1).
var paint = {
  screenWidth: 0, lastRenderedRow: 0, paintCount: 0, blitCount: 0,
  styleEpoch: 0, visibleFirst: 0, visibleLast: 0
};
function renderVisible() {
  var context = editor.revision % 8 === 0 ? 1 : 0;
  var firstVisible = Math.max(0, editor.cursorRow - context);
  var lastVisible = Math.min(editor.lines.length - 1, editor.cursorRow);
  var r;
  for (r = firstVisible; r <= lastVisible; r++) { // visible rows
    var el = lineElement(r);
    el.setAttribute('data-rev', '' + editor.revision);
    paint.screenWidth = Math.max(paint.screenWidth, editor.lines[r].length * CHAR_W);
    paint.lastRenderedRow = Math.max(paint.lastRenderedRow, r);
    paint.paintCount = paint.paintCount + 1;
    paint.blitCount = paint.blitCount + (r === editor.cursorRow ? 2 : 1);
    paint.styleEpoch = paint.styleEpoch * 7 + r;
    paint.visibleFirst = Math.min(paint.visibleFirst, firstVisible);
    paint.visibleLast = Math.max(paint.visibleLast, r);
    editor.renderedRows = editor.renderedRows + 1;
  }
}

function insertChar(key) {
  if (key === 'Enter') {
    var rest = editor.lines[editor.cursorRow].slice(editor.cursorCol);
    editor.lines[editor.cursorRow] =
        editor.lines[editor.cursorRow].slice(0, editor.cursorCol);
    editor.cursorRow = editor.cursorRow + 1;
    editor.lines.splice(editor.cursorRow, 0, rest);
    editor.cursorCol = 0;
    editor.dirtyRows.push(editor.cursorRow - 1);
    editor.dirtyRows.push(editor.cursorRow);
  } else {
    var line = editor.lines[editor.cursorRow];
    editor.lines[editor.cursorRow] =
        line.slice(0, editor.cursorCol) + key + line.slice(editor.cursorCol);
    editor.cursorCol = editor.cursorCol + 1;
    editor.dirtyRows.push(editor.cursorRow);
  }
  renderCascade();
  renderVisible();
}

addEventListener('keydown', function (e) { insertChar(e.key); });
)JS";
  return w;
}

}  // namespace jsceres::workloads
