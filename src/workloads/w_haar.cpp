#include "workloads/workload.h"

namespace jsceres::workloads {

/// HAAR.js — Viola-Jones face detection (Table 1: "User recognition").
///
/// Structure mirrors the paper's findings for this app (Table 3):
///  - nest 1: per-scale variance-map rows — arithmetic on the integral
///    image, local branching only -> "little" divergence, "easy" deps;
///  - nest 2: per-window cascade stage loop whose tree features are
///    evaluated by a *recursive* descent ("a recursive search through a
///    tree which makes the iterations uneven") -> "yes" divergence;
///  - the synthetic subject image is synthesized by recursive quadrant
///    subdivision (standing in for native image decode: CPU-active time
///    outside any loop, the reason HAAR's Active >> In-Loops in Table 2).
Workload make_haar() {
  Workload w;
  w.name = "HAAR.js";
  w.url = "github.com/foo123/HAAR.js";
  w.category = "User recognition";
  w.description = "face recognition (Viola-Jones)";
  w.paper = {8, 2, 0.44};
  w.session_ms = 8000;
  w.dependence_scale = 0.6;
  w.nest_markers = {"for (wy = 0; wy + WIN", "for (s = 0; s < cascade.length"};
  w.events = {{2600, "mousedown", 10, 10, ""}};
  w.source = R"JS(
var W = Math.max(18, Math.floor(22 * SCALE));
var H = Math.max(18, Math.floor(22 * SCALE));
var WIN = 12;
var gray = [];
var ii = [];
var varianceMap = [];
var detections = [];
var windowsTested = 0;
var stageWins = 0;
var imageReady = false;

// Recursive quadrant synthesis of the subject image (stands in for native
// JPEG decode: lots of CPU-active time with no syntactic loop open).
function paintQuad(x0, y0, x1, y1, tone) {
  if (x1 - x0 < 1 || y1 - y0 < 1) {
    gray[y0 * W + x0] = Math.floor(tone);
    return;
  }
  var mx = Math.floor((x0 + x1) / 2);
  var my = Math.floor((y0 + y1) / 2);
  var wobble = 24 * Math.sin(x0 * 0.7 + y0 * 0.3);
  paintQuad(x0, y0, mx, my, tone + wobble);
  paintQuad(mx + 1, y0, x1, my, tone - wobble * 0.5);
  paintQuad(x0, my + 1, mx, y1, tone + wobble * 0.25);
  paintQuad(mx + 1, my + 1, x1, y1, tone - wobble * 0.75);
}

function buildIntegral() {
  var y;
  var x;
  for (y = 0; y < H; y++) {
    var rowSum = 0;
    for (x = 0; x < W; x++) {
      var v = gray[y * W + x];
      rowSum = rowSum + (v === undefined ? 128 : v);
      var above = y > 0 ? ii[(y - 1) * W + x] : 0;
      ii[y * W + x] = rowSum + above;
    }
  }
}

function rectSum(x0, y0, x1, y1) {
  var a = (y0 > 0 && x0 > 0) ? ii[(y0 - 1) * W + (x0 - 1)] : 0;
  var b = y0 > 0 ? ii[(y0 - 1) * W + x1] : 0;
  var c = x0 > 0 ? ii[y1 * W + (x0 - 1)] : 0;
  return ii[y1 * W + x1] - b - c + a;
}

// The classifier cascade: stages of depth-2 feature trees.
var cascade = [];
function makeNode(depth, salt) {
  var node = {
    fx: salt % 5, fy: (salt * 3) % 5,
    fw: 3 + salt % 3, fh: 3 + (salt * 7) % 3,
    t: 70 + (salt * 13) % 80,
    l: null, r: null,
    lv: (salt % 2) * 2 - 1, rv: ((salt + 1) % 2) * 2 - 1
  };
  if (depth > 0) {
    node.l = makeNode(depth - 1, (salt * 31 + 7) % 97);
    node.r = makeNode(depth - 1, (salt * 17 + 3) % 89);
  }
  return node;
}
function buildStage(s) {
  if (s >= 16) { return; }
  var trees = [];
  trees.push(makeNode(1, s * 7 + 1));
  trees.push(makeNode(1, s * 11 + 2));
  // Early stages accept almost everything (classic attentional cascade):
  // most windows survive ~10 stages, so the stage loop's trip count is
  // sizeable but uneven.
  cascade.push({trees: trees, threshold: -2.6 + s * 0.2});
  buildStage(s + 1);
}

// Recursive tree descent per feature.
function evalNode(node, wx, wy, norm) {
  var sum = rectSum(wx + node.fx, wy + node.fy,
                    wx + node.fx + node.fw, wy + node.fy + node.fh);
  var area = node.fw * node.fh;
  if (sum / area < node.t * norm) {
    if (node.l !== null) { return evalNode(node.l, wx, wy, norm); }
    return node.lv;
  }
  if (node.r !== null) { return evalNode(node.r, wx, wy, norm); }
  return node.rv;
}

// Nest 2: the per-window cascade stage loop (early exit makes trips uneven).
function testWindow(wx, wy) {
  // Variance normalization couples the cascade to nest 1's output, so trip
  // counts vary per window (the paper's 15±15 unevenness).
  var norm = varianceMap[wy * W + wx];
  norm = norm === undefined ? 1 : 1 + (norm % 3) * 0.6;
  var s;
  for (s = 0; s < cascade.length; s++) {
    var stage = cascade[s];
    var vote = 0;
    var t;
    for (t = 0; t < stage.trees.length; t++) {
      vote = vote + evalNode(stage.trees[t], wx, wy, norm);
    }
    if (vote < stage.threshold * norm) { return false; }
    stageWins = stageWins + 1;
  }
  return true;
}

// Nest 1: per-scale variance normalization map — a true per-window second
// moment over sampled pixels.
function varianceRows(step) {
  var wy;
  for (wy = 0; wy + WIN <= H; wy = wy + 1) {
    var wx;
    for (wx = 0; wx + WIN <= W; wx = wx + 1) {
      var sum = 0;
      var sq = 0;
      var py;
      for (py = 0; py < WIN; py = py + 3) {
        var px;
        for (px = 0; px < WIN; px = px + 3) {
          var v = gray[(wy + py) * W + wx + px];
          v = v === undefined ? 128 : v;
          sum = sum + v;
          sq = sq + v * v;
        }
      }
      var n = (WIN / 3) * (WIN / 3);
      varianceMap[wy * W + wx] = Math.sqrt(sq / n - (sum / n) * (sum / n) + step);
    }
  }
}

function detect() {
  var scale;
  for (scale = 0; scale < 3; scale++) {
    var step = 2 + scale;
    varianceRows(step);
    var wy;
    for (wy = 0; wy + WIN <= H; wy = wy + step) {
      var wx;
      for (wx = 0; wx + WIN <= W; wx = wx + step) {
        windowsTested = windowsTested + 1;
        if (testWindow(wx, wy)) {
          detections.push({x: wx, y: wy, s: scale});
        }
      }
    }
  }
}

// Recursive separable blur (part of the simulated decode pipeline: heavy
// CPU work with no syntactic loop open, so it shows up in Active but not in
// In-Loops — Table 2's HAAR shape).
function smoothQuad(x0, y0, x1, y1, depth) {
  if (x1 - x0 < 1 || y1 - y0 < 1 || depth === 0) {
    var p = y0 * W + x0;
    var left = x0 > 0 ? gray[p - 1] : gray[p];
    var up = y0 > 0 ? gray[p - W] : gray[p];
    gray[p] = Math.floor((gray[p] * 2 + left + up) / 4);
    return;
  }
  var mx = Math.floor((x0 + x1) / 2);
  var my = Math.floor((y0 + y1) / 2);
  smoothQuad(x0, y0, mx, my, depth - 1);
  smoothQuad(mx + 1, y0, x1, my, depth - 1);
  smoothQuad(x0, my + 1, mx, y1, depth - 1);
  smoothQuad(mx + 1, my + 1, x1, y1, depth - 1);
}

loadResource('subject.jpg', 1400, function () {
  paintQuad(0, 0, W - 1, H - 1, 128);
  smoothQuad(0, 0, W - 1, H - 1, 16);
  smoothQuad(0, 0, W - 1, H - 1, 16);
  smoothQuad(0, 0, W - 1, H - 1, 16);
  buildIntegral();
  buildStage(0);
  imageReady = true;
});
addEventListener('mousedown', function (e) {
  if (imageReady) { detect(); }
});
)JS";
  return w;
}

}  // namespace jsceres::workloads
