#include "workloads/workload.h"

namespace jsceres::workloads {

/// Realtime Raytracing demo (Table 1: "Games").
///
/// Table 3 shape: one nest is ~98% of loop time — the per-band row/column
/// render loops. trace() recurses for reflections ("variable depth
/// recursion" -> "yes" divergence); every pixel writes a distinct index of
/// the shared frame buffer and nothing else -> "very easy" dependences; the
/// canvas upload (putImageData) sits in the *band* loop outside the
/// reported nest, so the nest has no DOM access, while the blocking upload
/// is why In-Loops exceeds Active in Table 2.
Workload make_raytrace() {
  Workload w;
  w.name = "Realtime Raytracing";
  w.url = "gist.github.com/jwagner/422755";
  w.category = "Games";
  w.description = "real-time raytracing demo";
  w.paper = {62, 19, 26};
  w.session_ms = 8000;
  w.canvas = true;
  w.canvas_w = 48;
  w.canvas_h = 48;
  w.dependence_scale = 0.5;
  // A raytracer pegs the core; the loaded OS preempts it regularly, and the
  // suspensions land inside open loops (Table 2: In-Loops 26 s > Active 19 s).
  w.preempt_interval_ticks = 40'000;
  w.preempt_block_ns = 140'000'000;
  // Divergent kernel (variable-depth reflection recursion): grain 1 lets
  // the adaptive splitter hand out single rows once thieves go hungry, so
  // the reflective band does not pin one worker.
  w.kernel_schedule = rivertrail::Schedule::Static;
  w.kernel_grain = 1;
  // rAF-driven render loop over a canvas: pipeline each tick so frame t's
  // canvas upload overlaps frame t+1's kernel (the In-Loops > Active gap).
  w.pipeline_schedule = rivertrail::PipelineSchedule::FrameGraph;
  w.nest_markers = {"for (y = y0; y < y1; y++) { // render rows"};
  w.events = {};
  w.source = R"JS(
var W = Math.max(14, Math.floor(24 * SCALE));
var H = Math.max(14, Math.floor(24 * SCALE));
var BANDS = 2;
var MAX_DEPTH = 2;
var ctx = document.getElementById('stage').getContext('2d');
var frame = ctx.getImageData(0, 0, W, H);
var spheres = [
  {cx: 0, cy: -100.5, cz: -1, r: 100, cr: 0.6, cg: 0.7, cb: 0.3, refl: 0.1},
  {cx: 0, cy: 0, cz: -1, r: 0.5, cr: 0.9, cg: 0.2, cb: 0.2, refl: 0.5},
  {cx: -1, cy: 0.1, cz: -1.2, r: 0.4, cr: 0.2, cg: 0.4, cb: 0.9, refl: 0.7}
];
var lightAngle = 0;
var frames = 0;

function trace(ox, oy, oz, dx, dy, dz, depth) {
  var bestT = 1e30;
  var best = null;
  var k;
  for (k = 0; k < spheres.length; k++) {
    var s = spheres[k];
    var ocx = ox - s.cx;
    var ocy = oy - s.cy;
    var ocz = oz - s.cz;
    var b = ocx * dx + ocy * dy + ocz * dz;
    var c = ocx * ocx + ocy * ocy + ocz * ocz - s.r * s.r;
    var disc = b * b - c;
    if (disc > 0) {
      var t = 0 - b - Math.sqrt(disc);
      if (t > 0.0001 && t < bestT) { bestT = t; best = s; }
    }
  }
  if (best === null) {
    var f = 0.5 * (dy + 1);
    return {r: 1 - f * 0.5, g: 1 - f * 0.3, b: 1};
  }
  var hx = ox + dx * bestT;
  var hy = oy + dy * bestT;
  var hz = oz + dz * bestT;
  var nx = (hx - best.cx) / best.r;
  var ny = (hy - best.cy) / best.r;
  var nz = (hz - best.cz) / best.r;
  var lx = Math.cos(lightAngle);
  var ly = 0.9;
  var lz = Math.sin(lightAngle);
  var lLen = Math.sqrt(lx * lx + ly * ly + lz * lz);
  var diffuse = Math.max(0, (nx * lx + ny * ly + nz * lz) / lLen);
  var cr = best.cr * (0.2 + 0.8 * diffuse);
  var cg = best.cg * (0.2 + 0.8 * diffuse);
  var cb = best.cb * (0.2 + 0.8 * diffuse);
  if (depth > 0 && best.refl > 0) {
    var dn = 2 * (dx * nx + dy * ny + dz * nz);
    // Variable-depth recursion for the reflected ray.
    var refl = trace(hx, hy, hz, dx - dn * nx, dy - dn * ny, dz - dn * nz,
                     depth - 1);
    cr = cr * (1 - best.refl) + refl.r * best.refl;
    cg = cg * (1 - best.refl) + refl.g * best.refl;
    cb = cb * (1 - best.refl) + refl.b * best.refl;
  }
  return {r: cr, g: cg, b: cb};
}

function renderBand(band) {
  var y0 = Math.floor(H * band / BANDS);
  var y1 = Math.floor(H * (band + 1) / BANDS);
  var y;
  for (y = y0; y < y1; y++) { // render rows
    var x;
    for (x = 0; x < W; x++) {
      var u = (2 * (x + 0.5) / W - 1) * (W / H);
      var v = 1 - 2 * (y + 0.5) / H;
      var dLen = Math.sqrt(u * u + v * v + 2.25);
      var color = trace(0, 0, 1, u / dLen, v / dLen, -1.5 / dLen, MAX_DEPTH);
      var i = (y * W + x) * 4;
      frame.data[i] = Math.floor(color.r * 255);
      frame.data[i + 1] = Math.floor(color.g * 255);
      frame.data[i + 2] = Math.floor(color.b * 255);
      frame.data[i + 3] = 255;
    }
  }
}

function renderFrame() {
  frames = frames + 1;
  lightAngle = lightAngle + 0.05;
  var band;
  for (band = 0; band < BANDS; band++) {
    renderBand(band);
    // Progressive upload: blocks on the compositor while the loop is open.
    ctx.putImageData(frame, 0, 0);
  }
  requestAnimationFrame(renderFrame);
}

requestAnimationFrame(renderFrame);
)JS";
  return w;
}

}  // namespace jsceres::workloads
