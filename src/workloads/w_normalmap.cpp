#include "workloads/workload.h"

namespace jsceres::workloads {

/// Normal Mapping demo (Table 1: "Games", 29a.ch experiments).
///
/// Table 3 shape: a single flat per-pixel loop is 99% of loop time (the
/// paper reports 64 instances x 65k trips): central-difference normals from
/// a height field, dot product against a moving light. One clamp branch ->
/// "little" divergence; writes are disjoint frame-buffer indices -> "very
/// easy" dependences; no DOM access inside the nest.
Workload make_normalmap() {
  Workload w;
  w.name = "Normal Mapping";
  w.url = "29a.ch/experiments";
  w.category = "Games";
  w.description = "normal mapping";
  w.paper = {25, 6, 4};
  w.session_ms = 5000;
  w.canvas = true;
  w.canvas_w = 48;
  w.canvas_h = 48;
  w.dependence_scale = 0.5;
  // Per-pixel shading + full-surface putImageData every rAF tick — the
  // canonical upload-bound frame: frame-graph the session.
  w.pipeline_schedule = rivertrail::PipelineSchedule::FrameGraph;
  w.nest_markers = {"for (p = 0; p < total; p++) { // shade pixels"};
  w.events = {};
  w.source = R"JS(
var W = Math.max(16, Math.floor(44 * SCALE));
var H = Math.max(16, Math.floor(44 * SCALE));
var ctx = document.getElementById('stage').getContext('2d');
var frame = ctx.getImageData(0, 0, W, H);
var height = [];
var lightT = 0;
var frames = 0;

function buildHeightField() {
  var i;
  for (i = 0; i < W * H; i++) {
    var x = i % W;
    var y = Math.floor(i / W);
    height.push(Math.sin(x * 0.31) * Math.cos(y * 0.23) +
                0.4 * Math.sin((x + y) * 0.17));
  }
}

// The reported nest: one flat pass over every pixel.
function shade() {
  var lx = Math.cos(lightT);
  var ly = Math.sin(lightT * 0.7);
  var lz = 0.8;
  var lLen = Math.sqrt(lx * lx + ly * ly + lz * lz);
  lx = lx / lLen;
  ly = ly / lLen;
  lz = lz / lLen;
  var total = W * H;
  var p;
  for (p = 0; p < total; p++) { // shade pixels
    var x = p % W;
    var y = (p - x) / W;
    var xm = x > 0 ? p - 1 : p;
    var xp = x < W - 1 ? p + 1 : p;
    var ym = y > 0 ? p - W : p;
    var yp = y < H - 1 ? p + W : p;
    var nx = height[xm] - height[xp];
    var ny = height[ym] - height[yp];
    var nz = 0.25;
    var nLen = Math.sqrt(nx * nx + ny * ny + nz * nz);
    var lum = (nx * lx + ny * ly + nz * lz) / nLen;
    lum = lum < 0 ? 0 : lum;
    var i = p * 4;
    frame.data[i] = Math.floor(40 + 215 * lum);
    frame.data[i + 1] = Math.floor(40 + 180 * lum);
    frame.data[i + 2] = Math.floor(60 + 140 * lum);
    frame.data[i + 3] = 255;
  }
}

function tick() {
  frames = frames + 1;
  lightT = lightT + 0.08;
  shade();
  ctx.putImageData(frame, 0, 0);
  requestAnimationFrame(tick);
}

buildHeightField();
requestAnimationFrame(tick);
)JS";
  return w;
}

}  // namespace jsceres::workloads
