#include "workloads/workload.h"

#include <cmath>

namespace jsceres::workloads {

namespace {

std::vector<dom::UserEvent> myscript_events() {
  std::vector<dom::UserEvent> events;
  // Hand-write three letter-like strokes.
  int t = 600;
  for (int stroke = 0; stroke < 3; ++stroke) {
    const double base_x = 15 + stroke * 25;
    events.push_back({t, "mousedown", base_x, 40, ""});
    t += 60;
    for (int k = 0; k < 22; ++k) {
      const double x = base_x + 8.0 * std::sin(k * 0.6);
      const double y = 40 - k * 1.5 + 4.0 * std::cos(k * 0.9);
      events.push_back({t, "mousemove", x, y, ""});
      t += 55;
    }
    events.push_back({t, "mouseup", base_x + 5, 10, ""});
    t += 700;
  }
  return events;
}

}  // namespace

/// MyScript — handwriting recognition front end (Table 1: "User
/// recognition").
///
/// Table 3 shape: "the only client-side expensive loop executes only a few
/// iterations, computing the length of line segments" — a data-dependent
/// while over the stroke's corner points ("yes" divergence), touching the
/// ink canvas every iteration, and accumulating into a shared recognition
/// state object (the flow dependences that make it "very hard"). The heavy
/// recognition itself happens server-side: after each stroke the app waits
/// on a simulated network round trip, so Total >> Active in Table 2.
Workload make_myscript() {
  Workload w;
  w.name = "MyScript";
  w.url = "webdemo.visionobjects.com";
  w.category = "User recognition";
  w.description = "handwriting recognition application";
  w.paper = {12, 0.33, 0.15};
  w.session_ms = 11000;
  w.canvas = true;
  w.canvas_w = 96;
  w.canvas_h = 64;
  w.dependence_scale = 1.0;
  w.nest_markers = {"while (seg < corners.length - 1) { // segment walk"};
  w.events = myscript_events();
  w.source = R"JS(
var ctx = document.getElementById('stage').getContext('2d');
var stroke = [];
var inking = false;
var reco = {
  totalLength: 0, cornerCount: 0, curvature: 0, inkDensity: 0,
  bboxW: 0, bboxH: 0, speedSum: 0, candidateScore: 0, pending: 0
};

function cornerPoints() {
  // Douglas-Peucker-ish corner picking: keep every k-th point plus ends.
  var corners = [];
  var step = Math.max(4, Math.floor(stroke.length / 4));
  var i;
  for (i = 0; i < stroke.length; i = i + step) {
    corners.push(stroke[i]);
  }
  corners.push(stroke[stroke.length - 1]);
  return corners;
}

// The reported nest: walk the corner segments (data-dependent trip count,
// typically ~4). Every iteration probes the ink raster and folds its
// measurements into the shared recognition-state object.
function analyzeStroke() {
  var corners = cornerPoints();
  var seg = 0;
  while (seg < corners.length - 1) { // segment walk
    var a = corners[seg];
    var b = corners[seg + 1];
    var dx = b.x - a.x;
    var dy = b.y - a.y;
    var len = Math.sqrt(dx * dx + dy * dy);

    // Probe the rendered ink under this segment (canvas access in-loop).
    var probe = ctx.getImageData(Math.floor(Math.min(a.x, b.x)),
                                 Math.floor(Math.min(a.y, b.y)), 2, 2);
    var inked = probe.data[3] + probe.data[7];

    reco.totalLength = reco.totalLength + len;
    reco.cornerCount = reco.cornerCount + 1;
    reco.curvature = reco.curvature + Math.abs(Math.atan2(dy, dx));
    reco.inkDensity = (reco.inkDensity + inked) * 0.5;
    reco.bboxW = Math.max(reco.bboxW, Math.abs(dx));
    reco.bboxH = Math.max(reco.bboxH, Math.abs(dy));
    reco.speedSum = reco.speedSum + len / (seg + 1);
    reco.candidateScore = reco.candidateScore * 0.8 + len * 0.2;
    seg = seg + 1;
  }
}

function sendToRecognizer() {
  reco.pending = reco.pending + 1;
  // Server-side recognition round trip (most of the session's wall time).
  loadResource('recognize', 2500, function () {
    reco.pending = reco.pending - 1;
  });
}

addEventListener('mousedown', function (e) {
  inking = true;
  stroke = [];
  stroke.push({x: e.x, y: e.y});
});
addEventListener('mousemove', function (e) {
  if (!inking) { return; }
  var prev = stroke[stroke.length - 1];
  ctx.strokeStyle = '#223366';
  ctx.beginPath();
  ctx.moveTo(prev.x, prev.y);
  ctx.lineTo(e.x, e.y);
  ctx.stroke();
  stroke.push({x: e.x, y: e.y});
});
addEventListener('mouseup', function (e) {
  inking = false;
  if (stroke.length > 2) {
    analyzeStroke();
    sendToRecognizer();
  }
});
)JS";
  return w;
}

}  // namespace jsceres::workloads
