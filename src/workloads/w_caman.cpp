#include "workloads/workload.h"

namespace jsceres::workloads {

/// CamanJS — image manipulation library (Table 1: "Audio and Video").
///
/// Table 3 shape: three pixel-kernel nests (brightness, contrast,
/// saturation) with disjoint index writes into the shared pixel array plus
/// one shared progress scalar -> "easy" dependence difficulty; local clamp
/// branches only -> "little" divergence; the image data is fetched from the
/// canvas *before* the kernels run, so the nests themselves have no
/// DOM/Canvas access (col 6 "no").
Workload make_caman() {
  Workload w;
  w.name = "CamanJS";
  w.url = "camanjs.com";
  w.category = "Audio and Video";
  w.description = "image manipulation library";
  w.paper = {40, 23, 17};
  w.session_ms = 12000;
  w.canvas = true;
  w.canvas_w = 96;
  w.canvas_h = 96;
  w.dependence_scale = 0.4;
  w.nest_markers = {"for (p = 0; p < n; p = p + 4) { // brightness",
                    "for (p = 0; p < n; p = p + 4) { // contrast",
                    "for (p = 0; p < n; p = p + 4) { // saturation"};
  // One click (after the photo finishes loading) starts the filter chain.
  w.events = {{1900, "mousedown", 5, 5, ""}};
  w.source = R"JS(
var SIZE = Math.max(16, Math.floor(32 * SCALE));
var ctx = document.getElementById('stage').getContext('2d');
var state = {lastTouched: 0, renders: 0};
var img = null;

function prepare() {
  // Paint a gradient test card, then pull the pixels once (canvas access
  // happens here, outside the filter nests).
  var y;
  for (y = 0; y < SIZE; y = y + 8) {
    ctx.fillStyle = 'rgb(' + (y * 2 % 256) + ',' + (y * 3 % 256) + ',' + (255 - y % 256) + ')';
    ctx.fillRect(0, y, SIZE, 8);
  }
  img = ctx.getImageData(0, 0, SIZE, SIZE);
}

// Channel clamps are inlined in each kernel (local, predictable branches —
// Table 3's "little" divergence).
function brightness(amount) {
  var d = img.data;
  var n = d.length;
  var p;
  for (p = 0; p < n; p = p + 4) { // brightness kernel
    var r = d[p] + amount;
    var g = d[p + 1] + amount;
    var b = d[p + 2] + amount;
    d[p] = r < 0 ? 0 : (r > 255 ? 255 : r);
    d[p + 1] = g < 0 ? 0 : (g > 255 ? 255 : g);
    d[p + 2] = b < 0 ? 0 : (b > 255 ? 255 : b);
    state.lastTouched = p;
  }
}

function contrast(amount) {
  var factor = (259 * (amount + 255)) / (255 * (259 - amount));
  var d = img.data;
  var n = d.length;
  var p;
  for (p = 0; p < n; p = p + 4) { // contrast kernel
    var r = factor * (d[p] - 128) + 128;
    var g = factor * (d[p + 1] - 128) + 128;
    var b = factor * (d[p + 2] - 128) + 128;
    d[p] = r < 0 ? 0 : (r > 255 ? 255 : r);
    d[p + 1] = g < 0 ? 0 : (g > 255 ? 255 : g);
    d[p + 2] = b < 0 ? 0 : (b > 255 ? 255 : b);
    state.lastTouched = p;
  }
}

function saturation(amount) {
  var d = img.data;
  var n = d.length;
  var p;
  for (p = 0; p < n; p = p + 4) { // saturation kernel
    var avg = (d[p] + d[p + 1] + d[p + 2]) / 3;
    var r = avg + (d[p] - avg) * amount;
    var g = avg + (d[p + 1] - avg) * amount;
    var b = avg + (d[p + 2] - avg) * amount;
    d[p] = r < 0 ? 0 : (r > 255 ? 255 : r);
    d[p + 1] = g < 0 ? 0 : (g > 255 ? 255 : g);
    d[p + 2] = b < 0 ? 0 : (b > 255 ? 255 : b);
    state.lastTouched = p;
  }
}

// Animated enhancement: a chain of render passes (brightness every pass,
// contrast every fourth, saturation every eighth -- matching the paper's
// 72/15/7 runtime split across the three nests).
var pass = 0;
function renderPass() {
  brightness(4);
  if (pass % 4 === 0) { contrast(6); }
  if (pass % 8 === 0) { saturation(1.08); }
  state.renders = state.renders + 1;
  ctx.putImageData(img, 0, 0);
  pass = pass + 1;
  if (pass < 12) { setTimeout(renderPass, 250); }
}

loadResource('photo.jpg', 2200, function () {
  prepare();
});
addEventListener('mousedown', function (e) {
  if (img !== null && pass === 0) { renderPass(); }
});
)JS";
  return w;
}

}  // namespace jsceres::workloads
