#include "workloads/runner.h"

#include <chrono>
#include <stdexcept>

#include "rivertrail/kernels.h"

namespace jsceres::workloads {

int line_of_marker(const std::string& source, const std::string& marker) {
  const std::size_t pos = source.find(marker);
  if (pos == std::string::npos) return 0;
  int line = 1;
  for (std::size_t i = 0; i < pos; ++i) {
    if (source[i] == '\n') ++line;
  }
  return line;
}

LightweightResult InstrumentedRun::table2_row() const {
  LightweightResult row;
  row.total_s = clock.wall_seconds();
  if (sampler != nullptr) {
    row.active_s = sampler->active_seconds();
  } else {
    row.active_s = clock.cpu_seconds();
  }
  if (lightweight != nullptr) {
    row.in_loops_s = lightweight->in_loops_seconds();
  } else if (loops != nullptr) {
    row.in_loops_s = double(loops->total_in_loops_ns()) / 1e9;
  }
  return row;
}

InstrumentedRun run_workload(const Workload& workload, Mode mode,
                             double scale_override, const SessionKnobs* knobs) {
  InstrumentedRun run;
  run.program = js::parse(workload.source, workload.name,
                          knobs != nullptr ? knobs->limits : EngineLimits{});

  run.hooks = std::make_unique<interp::HookList>();
  if (mode == Mode::Lightweight || mode == Mode::Combined) {
    run.lightweight = std::make_unique<ceres::LightweightProfiler>(run.clock);
    run.sampler = std::make_unique<ceres::SamplingProfiler>(run.clock);
    run.hooks->add(run.lightweight.get());
    run.hooks->add(run.sampler.get());
  }
  if (mode == Mode::LoopProfile || mode == Mode::Combined) {
    run.loops = std::make_unique<ceres::LoopProfiler>(run.clock);
    run.hooks->add(run.loops.get());
  }
  if (mode == Mode::Dependence || mode == Mode::Combined) {
    run.dependence = std::make_unique<ceres::DependenceAnalyzer>(run.program);
    run.hooks->add(run.dependence.get());
  }

  double scale = 1.0;
  if (mode == Mode::Dependence) scale = workload.dependence_scale;
  if (scale_override > 0) scale = scale_override;

  interp::InterpreterConfig config;
  config.preempt_interval_ticks = workload.preempt_interval_ticks;
  config.preempt_block_ns = workload.preempt_block_ns;
  if (knobs != nullptr) {
    config.limits = knobs->limits;
    // Knob convention: <=0 means "no tick budget" (the interpreter's own
    // sentinel is negative-only; 0 would arm a zero-tick budget).
    config.max_ticks = knobs->max_ticks > 0 ? knobs->max_ticks : -1;
    config.cancel = knobs->cancel;
  }
  // Mode 0: hand the interpreter a null hook pointer so even the per-event
  // virtual dispatch disappears — the engine-only baseline.
  interp::ExecutionHooks* hooks =
      mode == Mode::Uninstrumented ? nullptr : run.hooks.get();
  run.interp = std::make_unique<interp::Interpreter>(run.program, run.clock,
                                                     hooks, config);
  run.interp->define_global("SCALE", interp::Value::number(scale));

  run.page = std::make_unique<dom::Page>(*run.interp);
  if (workload.canvas) {
    run.page->add_canvas(workload.canvas_id, workload.canvas_w, workload.canvas_h);
  }

  run.interp->run();
  run.page->event_loop().push_user_events(workload.events);
  if (workload.pipeline_schedule == rivertrail::PipelineSchedule::FrameGraph) {
    // Frame-graph mode: rAF ticks pipeline kernel -> canvas-upload ->
    // commit over a small worker pool so adjacent frames overlap. Two
    // workers suffice for the 3-stage graph at depth 2; on the single-core
    // study container they timeshare, and the overlap shows up in the
    // per-stage span accounting rather than wall clock. Virtual-time
    // results are unchanged by construction (the kernel stage is
    // serial-in), so every instrumentation mode can keep the knob on.
    run.pool = std::make_unique<rivertrail::ThreadPool>(2);
    run.page->event_loop().enable_frame_graph(
        *run.pool, run.page->canvas_context(workload.canvas_id).get(),
        workload.pipeline_depth);
  }
  run.page->event_loop().run(workload.session_ms,
                             knobs != nullptr ? knobs->cancel : CancelToken{});
  if (run.sampler != nullptr) run.sampler->finish();

  for (const std::string& marker : workload.nest_markers) {
    const int line = line_of_marker(workload.source, marker);
    const int loop_id = run.program.loop_id_at_line(line);
    if (line == 0 || loop_id == 0) {
      throw std::runtime_error(workload.name + ": nest marker not found: " + marker);
    }
    run.nest_roots.push_back(loop_id);
  }
  return run;
}

// Deliberately separate from rivertrail/validator.cpp: the validator is the
// study-scale timing table over every kernel (rivertrail must not depend on
// workloads/), while this is the small, fast knob-plumbing check — each
// workload's schedule/grain choice actually reaching its kernel port.
KernelRun run_certified_kernel(const Workload& workload, rivertrail::ThreadPool& pool) {
  namespace kernels = rivertrail::kernels;
  using Clock = std::chrono::steady_clock;
  KernelRun result;
  const auto timed = [&](auto&& parallel_variant) {
    const auto t0 = Clock::now();
    parallel_variant();
    result.par_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    result.ran = true;
  };

  if (workload.name == "CamanJS") {
    auto seq = kernels::make_test_image(128, 96, 11);
    auto par = seq;
    kernels::pixel_filter_seq(seq, 12, 1.2);
    timed([&] {
      kernels::pixel_filter_par(pool, par, 12, 1.2, workload.kernel_schedule);
    });
    result.outputs_match = seq == par;
  } else if (workload.name == "fluidSim") {
    const int n = 96;
    std::vector<double> src(std::size_t(n + 2) * std::size_t(n + 2));
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = double(i % 97) / 97.0;
    std::vector<double> seq;
    std::vector<double> par;
    kernels::fluid_diffuse_seq(src, seq, n, 0.12);
    timed([&] {
      kernels::fluid_diffuse_par(pool, src, par, n, 0.12, workload.kernel_schedule,
                                 workload.kernel_grain);
    });
    result.outputs_match = seq == par;
  } else if (workload.name == "Realtime Raytracing") {
    kernels::RayScene scene;
    scene.width = 96;
    scene.height = 96;
    std::vector<std::uint8_t> seq;
    std::vector<std::uint8_t> par;
    kernels::raytrace_seq(scene, seq);
    timed([&] {
      kernels::raytrace_par(pool, scene, par, workload.kernel_schedule,
                            workload.kernel_grain);
    });
    result.outputs_match = seq == par;
  } else if (workload.name == "Tear-able Cloth") {
    auto seq = kernels::make_cloth(60, 45);
    auto par = seq;
    kernels::cloth_integrate_seq(seq, 9.8, 0.016);
    timed([&] {
      kernels::cloth_integrate_par(pool, par, 9.8, 0.016, workload.kernel_schedule);
    });
    bool match = true;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      match = match && seq[i].x == par[i].x && seq[i].y == par[i].y;
    }
    result.outputs_match = match;
  } else if (workload.name == "Normal Mapping") {
    const auto height = kernels::make_height_field(96, 72, 5);
    std::vector<std::uint8_t> seq;
    std::vector<std::uint8_t> par;
    kernels::normal_map_seq(height, 96, 72, 0.4, 0.5, 0.8, seq);
    timed([&] {
      kernels::normal_map_par(pool, height, 96, 72, 0.4, 0.5, 0.8, par,
                              workload.kernel_schedule);
    });
    result.outputs_match = seq == par;
  }
  return result;
}

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> workloads = {
      make_haar(),    make_cloth(),     make_caman(),      make_fluid(),
      make_harmony(), make_ace(),       make_myscript(),   make_raytrace(),
      make_normalmap(), make_sigma(),   make_processing(), make_d3(),
  };
  return workloads;
}

std::vector<SessionOutcome> run_workloads_supervised(
    const std::vector<std::string>& names, rivertrail::ThreadPool& pool,
    SupervisorOptions options, std::int64_t deadline_ms,
    const EngineLimits& limits, std::int64_t max_ticks) {
  std::vector<SessionRequest> requests;
  requests.reserve(names.size());
  for (const std::string& name : names) {
    const Workload& workload = workload_by_name(name);  // static storage
    SessionRequest request;
    request.name = name;
    request.mode = 3;
    request.limits = limits;
    request.max_ticks = max_ticks;
    request.deadline_ms = deadline_ms;
    // The attempt body is the real workload runner — page, canvas, user
    // events, SCALE — with the supervisor's per-attempt budgets and token
    // threaded through SessionKnobs. Exceptions propagate for the
    // supervisor to classify.
    request.attempt = [&workload](const SessionRequest&, int mode,
                                  const EngineLimits& attempt_limits,
                                  std::int64_t attempt_ticks,
                                  CancelToken token) {
      const SessionKnobs knobs{attempt_limits, attempt_ticks, token};
      const Mode run_mode = mode >= 3   ? Mode::Dependence
                            : mode >= 1 ? Mode::Lightweight
                                        : Mode::Uninstrumented;
      const InstrumentedRun run = run_workload(workload, run_mode, 0, &knobs);
      AttemptSuccess success;
      success.console = run.interp->console_output();
      success.cpu_ns = run.clock.cpu_ns();
      success.wall_ns = run.clock.wall_ns();
      return success;
    };
    requests.push_back(std::move(request));
  }
  SessionSupervisor supervisor(pool, options);
  return supervisor.run(requests);
}

const Workload& workload_by_name(const std::string& name) {
  for (const Workload& w : all_workloads()) {
    if (w.name == name) return w;
  }
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace jsceres::workloads
