#include "workloads/runner.h"

#include <stdexcept>

namespace jsceres::workloads {

int line_of_marker(const std::string& source, const std::string& marker) {
  const std::size_t pos = source.find(marker);
  if (pos == std::string::npos) return 0;
  int line = 1;
  for (std::size_t i = 0; i < pos; ++i) {
    if (source[i] == '\n') ++line;
  }
  return line;
}

LightweightResult InstrumentedRun::table2_row() const {
  LightweightResult row;
  row.total_s = clock.wall_seconds();
  if (sampler != nullptr) {
    row.active_s = sampler->active_seconds();
  } else {
    row.active_s = clock.cpu_seconds();
  }
  if (lightweight != nullptr) {
    row.in_loops_s = lightweight->in_loops_seconds();
  } else if (loops != nullptr) {
    row.in_loops_s = double(loops->total_in_loops_ns()) / 1e9;
  }
  return row;
}

InstrumentedRun run_workload(const Workload& workload, Mode mode,
                             double scale_override) {
  InstrumentedRun run;
  run.program = js::parse(workload.source, workload.name);

  run.hooks = std::make_unique<interp::HookList>();
  if (mode == Mode::Lightweight || mode == Mode::Combined) {
    run.lightweight = std::make_unique<ceres::LightweightProfiler>(run.clock);
    run.sampler = std::make_unique<ceres::SamplingProfiler>(run.clock);
    run.hooks->add(run.lightweight.get());
    run.hooks->add(run.sampler.get());
  }
  if (mode == Mode::LoopProfile || mode == Mode::Combined) {
    run.loops = std::make_unique<ceres::LoopProfiler>(run.clock);
    run.hooks->add(run.loops.get());
  }
  if (mode == Mode::Dependence || mode == Mode::Combined) {
    run.dependence = std::make_unique<ceres::DependenceAnalyzer>(run.program);
    run.hooks->add(run.dependence.get());
  }

  double scale = 1.0;
  if (mode == Mode::Dependence) scale = workload.dependence_scale;
  if (scale_override > 0) scale = scale_override;

  interp::InterpreterConfig config;
  config.preempt_interval_ticks = workload.preempt_interval_ticks;
  config.preempt_block_ns = workload.preempt_block_ns;
  run.interp = std::make_unique<interp::Interpreter>(run.program, run.clock,
                                                     run.hooks.get(), config);
  run.interp->define_global("SCALE", interp::Value::number(scale));

  run.page = std::make_unique<dom::Page>(*run.interp);
  if (workload.canvas) {
    run.page->add_canvas(workload.canvas_id, workload.canvas_w, workload.canvas_h);
  }

  run.interp->run();
  run.page->event_loop().push_user_events(workload.events);
  run.page->event_loop().run(workload.session_ms);
  if (run.sampler != nullptr) run.sampler->finish();

  for (const std::string& marker : workload.nest_markers) {
    const int line = line_of_marker(workload.source, marker);
    const int loop_id = run.program.loop_id_at_line(line);
    if (line == 0 || loop_id == 0) {
      throw std::runtime_error(workload.name + ": nest marker not found: " + marker);
    }
    run.nest_roots.push_back(loop_id);
  }
  return run;
}

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> workloads = {
      make_haar(),    make_cloth(),     make_caman(),      make_fluid(),
      make_harmony(), make_ace(),       make_myscript(),   make_raytrace(),
      make_normalmap(), make_sigma(),   make_processing(), make_d3(),
  };
  return workloads;
}

const Workload& workload_by_name(const std::string& name) {
  for (const Workload& w : all_workloads()) {
    if (w.name == name) return w;
  }
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace jsceres::workloads
