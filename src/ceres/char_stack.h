#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "js/ast.h"

namespace jsceres::ceres {

/// One open loop on the characterization stack (paper §3.3): the syntactic
/// loop, which dynamic instance of it this is (a global per-loop counter,
/// incremented every time the loop is entered), and the current iteration
/// within that instance.
struct LoopFrame {
  int loop_id = 0;
  std::int64_t instance = 0;
  std::int64_t iteration = 0;
};

/// A snapshot of the characterization stack, stamped onto environments and
/// objects at creation time and onto (object, property) pairs at write time.
using Stamp = std::vector<LoopFrame>;

/// Per-loop-level dependence flags. The paper renders a triple per loop:
/// "<loop> <instance-flag> <iteration-flag>", where "ok" means each
/// instance/iteration has a private version of the datum and "dependence"
/// means they share it. "dependence ok" is not a valid combination: sharing
/// across instances implies sharing across iterations.
struct LevelFlags {
  int loop_id = 0;
  bool instance_dep = false;
  bool iteration_dep = false;

  bool operator==(const LevelFlags&) const = default;
};

/// The characterization of one access: flags for every loop open at the
/// access, outermost first.
struct Characterization {
  std::vector<LevelFlags> levels;

  [[nodiscard]] bool problematic() const {
    for (const auto& level : levels) {
      if (level.instance_dep || level.iteration_dep) return true;
    }
    return false;
  }

  /// Flags at the level of a particular loop, or nullptr when the loop is
  /// not part of this characterization.
  [[nodiscard]] const LevelFlags* at_loop(int loop_id) const {
    for (const auto& level : levels) {
      if (level.loop_id == loop_id) return &level;
    }
    return nullptr;
  }

  bool operator==(const Characterization&) const = default;
};

/// Characterize a *creation-stamped* datum accessed under `current`:
/// environments (type (a) variable writes) and objects (type (b) property
/// writes). A level present in both stamp and current with equal
/// instance+iteration is private ("ok ok"); equal instance but different
/// iteration means the datum pre-dates this iteration ("ok dependence");
/// levels beyond the stamp mean the datum pre-dates the loop entirely within
/// the current containing iteration ("ok dependence"); once a level is
/// shared, all deeper levels are fully shared ("dependence dependence").
Characterization characterize_creation(const Stamp& stamp, const Stamp& current);

/// Characterize a write→read pair for flow (read-after-write) detection
/// (type (c)). A level is an iteration dependence only when *both* stacks
/// contain that loop instance and the iterations differ — a value written
/// before the loop is loop-invariant input, not a flow dependence.
Characterization characterize_flow(const Stamp& write, const Stamp& read);

/// Render "while(line 24) ok ok -> for(line 6) ok dependence", resolving
/// loop kinds and lines through the program's loop table.
std::string render_characterization(const Characterization& chr,
                                    const js::Program& program);

/// Maintains the runtime characterization stack. Driven by loop
/// enter/iteration/exit events; detects loop re-entry through recursion
/// (paper §3.3: the stack would otherwise grow without bound; JS-CERES
/// raises a warning and discards results for the affected nest).
class CharStack {
 public:
  void on_enter(int loop_id) {
    for (const auto& frame : stack_) {
      if (frame.loop_id == loop_id) {
        recursive_loops_.insert({loop_id, true});
        break;
      }
    }
    stack_.push_back(LoopFrame{loop_id, instance_counters_[loop_id]++, 0});
  }

  void on_iteration(int loop_id) {
    if (!stack_.empty() && stack_.back().loop_id == loop_id) {
      ++stack_.back().iteration;
    }
  }

  void on_exit(int loop_id) {
    if (!stack_.empty() && stack_.back().loop_id == loop_id) {
      stack_.pop_back();
    }
  }

  [[nodiscard]] const Stamp& current() const { return stack_; }
  [[nodiscard]] bool any_open() const { return !stack_.empty(); }
  [[nodiscard]] bool is_open(int loop_id) const {
    for (const auto& frame : stack_) {
      if (frame.loop_id == loop_id) return true;
    }
    return false;
  }
  [[nodiscard]] const std::unordered_map<int, bool>& recursive_loops() const {
    return recursive_loops_;
  }

 private:
  Stamp stack_;
  std::unordered_map<int, std::int64_t> instance_counters_;
  std::unordered_map<int, bool> recursive_loops_;
};

}  // namespace jsceres::ceres
