#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "js/ast.h"
#include "support/limits.h"

namespace jsceres::ceres {

/// One open loop on the characterization stack (paper §3.3): the syntactic
/// loop, which dynamic instance of it this is (a global per-loop counter,
/// incremented every time the loop is entered), and the current iteration
/// within that instance.
struct LoopFrame {
  int loop_id = 0;
  std::int64_t instance = 0;
  std::int64_t iteration = 0;
};

/// A snapshot of the characterization stack, stamped onto environments and
/// objects at creation time and onto (object, property) pairs at write time.
/// This is the *materialized* form used by the reference algebra and tests;
/// the mode-3 hot path stores interned StampIds instead (see below).
using Stamp = std::vector<LoopFrame>;

/// Interned handle to one characterization-stack state. Stamping a datum is
/// a single 32-bit store; id 0 is the root ("no loops open"), so a table
/// miss and an out-of-loop creation mean the same thing.
using StampId = std::uint32_t;
inline constexpr StampId kEmptyStampId = 0;
/// Sentinel distinct from every interned id ("current state not interned
/// yet" — see CharStack::current_id_if_interned).
inline constexpr StampId kNoStampId = 0xffffffffu;

/// One node of the hash-consed stamp tree: a stack state is its parent state
/// plus one (loop, instance, iteration) frame. States are immutable and
/// never repeat — the per-loop instance counter makes every (loop_id,
/// instance) pair globally unique — so the tree is append-only and sharing
/// is maximal by construction: every stamp taken under a common prefix of
/// loop frames references the same prefix nodes.
struct StampNode {
  StampId parent = kEmptyStampId;
  std::uint32_t depth = 0;  // frames on the path; the root has depth 0
  int loop_id = 0;
  std::int64_t instance = 0;
  std::int64_t iteration = 0;
};

/// Segmented backing store for one stamp tree. Within a session the tree is
/// append-only (states never repeat), but a resident service runs thousands
/// of sessions, so the storage must actually come back: segments are
/// checked out of a process-wide pool and returned on `reset()`/destruction
/// instead of churning the allocator, and process-wide counters
/// (`stamp_segments_live`, `stamp_bytes_live`) feed the memory governor and
/// let the soak harness assert zero leaked segments.
class StampArena {
 public:
  static constexpr std::size_t kSegmentShift = 10;
  static constexpr std::size_t kSegmentNodes = 1 << kSegmentShift;  // 1024
  static constexpr std::size_t kSegmentMask = kSegmentNodes - 1;

  struct Segment {
    StampNode nodes[kSegmentNodes];
  };

  StampArena() = default;
  ~StampArena() { reset(); }
  StampArena(const StampArena&) = delete;
  StampArena& operator=(const StampArena&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] StampNode& operator[](StampId id) {
    return segments_[id >> kSegmentShift]->nodes[id & kSegmentMask];
  }
  [[nodiscard]] const StampNode& operator[](StampId id) const {
    return segments_[id >> kSegmentShift]->nodes[id & kSegmentMask];
  }

  void push_back(const StampNode& node) {
    if ((size_ & kSegmentMask) == 0) grow();
    segments_[size_ >> kSegmentShift]->nodes[size_ & kSegmentMask] = node;
    ++size_;
  }

  /// Return every segment to the process-wide pool (retire hook: called by
  /// the destructor and by CharStack::reset_for_reuse()).
  void reset();

 private:
  void grow();

  std::vector<Segment*> segments_;
  std::size_t size_ = 0;
};

/// Segments currently checked out by live arenas, process-wide.
std::size_t stamp_segments_live();
/// Segments parked in the reuse pool (allocated but idle).
std::size_t stamp_segments_pooled();
/// Bytes of checked-out stamp segments (the governor's Ceres input).
std::size_t stamp_bytes_live();
/// Free every pooled segment (service shutdown / leak accounting in tests).
/// Returns the bytes released.
std::size_t drain_stamp_segment_pool();

/// Per-loop-level dependence flags. The paper renders a triple per loop:
/// "<loop> <instance-flag> <iteration-flag>", where "ok" means each
/// instance/iteration has a private version of the datum and "dependence"
/// means they share it. "dependence ok" is not a valid combination: sharing
/// across instances implies sharing across iterations.
struct LevelFlags {
  int loop_id = 0;
  bool instance_dep = false;
  bool iteration_dep = false;

  bool operator==(const LevelFlags&) const = default;
};

/// The characterization of one access: flags for every loop open at the
/// access, outermost first.
struct Characterization {
  std::vector<LevelFlags> levels;

  [[nodiscard]] bool problematic() const {
    for (const auto& level : levels) {
      if (level.instance_dep || level.iteration_dep) return true;
    }
    return false;
  }

  /// Flags at the level of a particular loop, or nullptr when the loop is
  /// not part of this characterization.
  [[nodiscard]] const LevelFlags* at_loop(int loop_id) const {
    for (const auto& level : levels) {
      if (level.loop_id == loop_id) return &level;
    }
    return nullptr;
  }

  bool operator==(const Characterization&) const = default;
};

/// Compact characterization produced by the stamp-id hot path. Both §3.3
/// algorithms share one shape: every level above the outermost divergent
/// level is "ok ok", the divergent level itself is "ok dependence" (or
/// "dependence dependence" when the loop instance differs), and every level
/// below it is fully shared. So the whole per-level flag vector is
/// determined by (div_level, instance_at_div) — no allocation needed until
/// a warning is actually recorded.
struct CharDelta {
  static constexpr std::uint32_t kPrivate = 0xffffffffu;
  std::uint32_t div_level = kPrivate;  // index into the current stack
  bool instance_at_div = false;

  [[nodiscard]] bool problematic() const { return div_level != kPrivate; }
};

/// Characterize a *creation-stamped* datum accessed under `current`:
/// environments (type (a) variable writes) and objects (type (b) property
/// writes). A level present in both stamp and current with equal
/// instance+iteration is private ("ok ok"); equal instance but different
/// iteration means the datum pre-dates this iteration ("ok dependence");
/// levels beyond the stamp mean the datum pre-dates the loop entirely within
/// the current containing iteration ("ok dependence"); once a level is
/// shared, all deeper levels are fully shared ("dependence dependence").
Characterization characterize_creation(const Stamp& stamp, const Stamp& current);

/// Characterize a write→read pair for flow (read-after-write) detection
/// (type (c)). A level is an iteration dependence only when *both* stacks
/// contain that loop instance and the iterations differ — a value written
/// before the loop is loop-invariant input, not a flow dependence.
Characterization characterize_flow(const Stamp& write, const Stamp& read);

/// Render "while(line 24) ok ok -> for(line 6) ok dependence", resolving
/// loop kinds and lines through the program's loop table.
std::string render_characterization(const Characterization& chr,
                                    const js::Program& program);

/// Maintains the runtime characterization stack. Driven by loop
/// enter/iteration/exit events; detects loop re-entry through recursion
/// (paper §3.3: the stack would otherwise grow without bound; JS-CERES
/// raises a warning and discards results for the affected nest).
///
/// The stack doubles as the intern point of the stamp tree: the current
/// state's id is materialized lazily (a state that no stamp ever references
/// costs nothing), and the characterization algorithms run directly on
/// (StampId, live stack) pairs with O(1) fast paths for the two dominant
/// cases — the stamp IS the current state ("ok ok" private access) and the
/// stamp is a prefix of the current state (datum pre-dates the inner loop).
class CharStack {
 public:
  CharStack() { nodes_.push_back(StampNode{}); }  // nodes_[0] = root (depth 0)

  void on_enter(int loop_id) {
    const std::size_t index = counter_index(loop_id);
    if (open_counts_[index] > 0) recursive_loops_.insert({loop_id, true});
    ++open_counts_[index];
    stack_.push_back(LoopFrame{loop_id, instance_counters_[index]++, 0});
    frame_ids_.push_back(kNoStampId);
    path_ids_.push_back(intern_path(current_path_id_, loop_id));
    current_path_id_ = path_ids_.back();
  }

  void on_iteration(int loop_id) {
    if (!stack_.empty() && stack_.back().loop_id == loop_id) {
      ++stack_.back().iteration;
      // The top frame's state changed: its interned id (if any) is stale.
      if (interned_depth_ == stack_.size()) --interned_depth_;
    }
  }

  void on_exit(int loop_id) {
    if (!stack_.empty() && stack_.back().loop_id == loop_id) {
      --open_counts_[counter_index(loop_id)];
      stack_.pop_back();
      frame_ids_.pop_back();
      path_ids_.pop_back();
      current_path_id_ = path_ids_.empty() ? 0 : path_ids_.back();
      if (interned_depth_ > stack_.size()) interned_depth_ = stack_.size();
    }
  }

  [[nodiscard]] const Stamp& current() const { return stack_; }
  [[nodiscard]] bool any_open() const { return !stack_.empty(); }
  [[nodiscard]] bool is_open(int loop_id) const {
    return std::size_t(loop_id) < open_counts_.size() &&
           open_counts_[std::size_t(loop_id)] > 0;
  }
  [[nodiscard]] const std::unordered_map<int, bool>& recursive_loops() const {
    return recursive_loops_;
  }

  // -- stamp-tree interface --------------------------------------------------

  /// Intern (if needed) and return the current state's id. Amortized O(1):
  /// each enter/iteration creates at most one node, and only when a stamp is
  /// actually taken under that state.
  StampId current_id() {
    while (interned_depth_ < stack_.size()) {
      const std::size_t k = interned_depth_;
      StampNode node;
      node.parent = k == 0 ? kEmptyStampId : frame_ids_[k - 1];
      node.depth = std::uint32_t(k + 1);
      node.loop_id = stack_[k].loop_id;
      node.instance = stack_[k].instance;
      node.iteration = stack_[k].iteration;
      // Sandbox accounting: the stamp arena is append-only and grows one
      // node per referenced state; charge before the append so a ledger
      // trip leaves the tree and frame_ids_ untouched.
      AllocationLedger::charge_current(sizeof(StampNode));
      nodes_.push_back(node);
      frame_ids_[k] = StampId(nodes_.size() - 1);
      ++interned_depth_;
    }
    return stack_.empty() ? kEmptyStampId : frame_ids_.back();
  }

  /// The current state's id if it has been interned, else kNoStampId.
  /// States never repeat, so `stamp == current_id_if_interned()` is an exact
  /// "stamped under this very state" test without forcing interning.
  [[nodiscard]] StampId current_id_if_interned() const {
    if (stack_.empty()) return kEmptyStampId;
    return interned_depth_ == stack_.size() ? frame_ids_.back() : kNoStampId;
  }

  [[nodiscard]] const StampNode& node(StampId id) const { return nodes_[id]; }
  /// Stamp-tree size (diagnostics / growth tests). Grows with the number of
  /// *referenced* states, never with raw iteration count.
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Retire hook for analyzer reuse across sessions: return every arena
  /// segment to the process-wide pool and reset to the freshly-constructed
  /// state. Every outstanding StampId is invalidated — callers must drop
  /// their stamps (the dependence analyzer resets its tables alongside).
  void reset_for_reuse() {
    stack_.clear();
    frame_ids_.clear();
    path_ids_.clear();
    interned_depth_ = 0;
    current_path_id_ = 0;
    nodes_.reset();
    nodes_.push_back(StampNode{});  // nodes_[0] = root (depth 0)
    scratch_.clear();
    path_intern_.clear();
    instance_counters_.clear();
    open_counts_.clear();
    recursive_loops_.clear();
  }

  /// Dense id of the current loop-id path (instances/iterations ignored).
  /// Two accesses have equal characterization-level loop ids iff their path
  /// ids are equal — the warning-dedup key the analyzer needs.
  [[nodiscard]] std::uint32_t current_path_id() const { return current_path_id_; }

  /// Id-based §3.3 creation characterization of `stamp` against the current
  /// stack (see characterize_creation for the semantics).
  [[nodiscard]] CharDelta characterize_creation_id(StampId stamp) const {
    CharDelta delta;
    const std::size_t depth = stack_.size();
    if (stamp == current_id_if_interned()) return delta;  // "ok ok" everywhere
    const std::uint32_t stamp_depth = nodes_[stamp].depth;
    // Stamp is a strict interned prefix of the current state: the datum
    // pre-dates the loop at level stamp_depth within the current containing
    // iteration — "ok dependence" there, fully shared deeper.
    if (stamp_depth < depth && stamp_depth <= interned_depth_ &&
        (stamp_depth == 0 ? stamp == kEmptyStampId
                          : frame_ids_[stamp_depth - 1] == stamp)) {
      delta.div_level = stamp_depth;
      return delta;
    }
    fill_scratch(stamp);
    for (std::size_t k = 0; k < depth; ++k) {
      if (k >= scratch_.size()) {
        delta.div_level = std::uint32_t(k);
        return delta;
      }
      const StampNode& frame = nodes_[scratch_[k]];
      if (frame.loop_id != stack_[k].loop_id ||
          frame.instance != stack_[k].instance) {
        delta.div_level = std::uint32_t(k);
        delta.instance_at_div = true;
        return delta;
      }
      if (frame.iteration != stack_[k].iteration) {
        delta.div_level = std::uint32_t(k);
        return delta;
      }
    }
    return delta;
  }

  /// Id-based §3.3 flow characterization of a write stamp against the
  /// current stack (see characterize_flow for the semantics).
  [[nodiscard]] CharDelta characterize_flow_id(StampId write) const {
    CharDelta delta;
    const std::size_t depth = stack_.size();
    if (write == current_id_if_interned()) return delta;  // same iteration
    const std::uint32_t write_depth = nodes_[write].depth;
    // Write under a (strict or equal-depth) interned prefix: the value was
    // written before every open loop began — loop-invariant input.
    if (write_depth <= depth && write_depth <= interned_depth_ &&
        (write_depth == 0 ? write == kEmptyStampId
                          : frame_ids_[write_depth - 1] == write)) {
      return delta;
    }
    fill_scratch(write);
    for (std::size_t k = 0; k < depth; ++k) {
      if (k >= scratch_.size()) return delta;  // written before this loop
      const StampNode& frame = nodes_[scratch_[k]];
      if (frame.loop_id != stack_[k].loop_id ||
          frame.instance != stack_[k].instance) {
        return delta;  // already-closed instance: plain input
      }
      if (frame.iteration != stack_[k].iteration) {
        delta.div_level = std::uint32_t(k);
        return delta;
      }
    }
    return delta;
  }

  /// Expand a CharDelta into the reference Characterization (for recording
  /// a warning; allocation happens only here).
  [[nodiscard]] Characterization materialize(const CharDelta& delta) const {
    Characterization out;
    out.levels.reserve(stack_.size());
    for (std::size_t k = 0; k < stack_.size(); ++k) {
      LevelFlags flags;
      flags.loop_id = stack_[k].loop_id;
      if (delta.problematic() && k >= delta.div_level) {
        flags.iteration_dep = true;
        flags.instance_dep =
            k > delta.div_level || (k == delta.div_level && delta.instance_at_div);
      }
      out.levels.push_back(flags);
    }
    return out;
  }

 private:
  [[nodiscard]] std::size_t counter_index(int loop_id) {
    const auto index = std::size_t(loop_id);
    if (index >= instance_counters_.size()) {
      instance_counters_.resize(index + 1, 0);
      open_counts_.resize(index + 1, 0);
    }
    return index;
  }

  std::uint32_t intern_path(std::uint32_t parent, int loop_id) {
    const std::uint64_t key =
        (std::uint64_t(parent) << 32) | std::uint64_t(std::uint32_t(loop_id));
    const auto it = path_intern_.find(key);
    if (it != path_intern_.end()) return it->second;
    const auto id = std::uint32_t(path_intern_.size() + 1);  // 0 = empty path
    path_intern_.emplace(key, id);
    return id;
  }

  /// Materialize `stamp`'s frame ids outermost-first into scratch_.
  void fill_scratch(StampId stamp) const {
    scratch_.resize(nodes_[stamp].depth);
    for (StampId id = stamp; id != kEmptyStampId; id = nodes_[id].parent) {
      scratch_[nodes_[id].depth - 1] = id;
    }
  }

  Stamp stack_;
  std::vector<StampId> frame_ids_;     // frame_ids_[k] valid for k < interned_depth_
  std::vector<std::uint32_t> path_ids_;  // loop-path id per open frame
  std::size_t interned_depth_ = 0;
  std::uint32_t current_path_id_ = 0;
  StampArena nodes_;
  mutable std::vector<StampId> scratch_;
  std::unordered_map<std::uint64_t, std::uint32_t> path_intern_;
  std::vector<std::int64_t> instance_counters_;  // indexed by loop_id
  std::vector<std::int32_t> open_counts_;        // indexed by loop_id
  std::unordered_map<int, bool> recursive_loops_;
};

}  // namespace jsceres::ceres
