#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ceres/char_stack.h"
#include "interp/hooks.h"
#include "js/ast.h"

namespace jsceres::ceres {

/// Dependence class of a reported access (paper §3.3 a/b/c).
enum class DepClass {
  Output,  // (a) shared-variable write or (b) shared-object field write
  Flow,    // (c) read of a field written in a different iteration
};

/// What kind of program point produced the warning.
enum class AccessKind { VarWrite, PropWrite, PropRead };

/// One deduplicated warning: an access site plus its characterization, with
/// an occurrence count.
struct DependenceWarning {
  AccessKind kind = AccessKind::VarWrite;
  DepClass dep = DepClass::Output;
  std::string name;  // variable name or property key
  int line = 0;      // access site (0 for native-initiated writes)
  Characterization characterization;
  std::int64_t count = 0;
  /// For VarWrite: the binding lives in the global environment (application
  /// state) rather than a function activation (a privatizable temporary —
  /// the distinction §3.3's forEach discussion draws).
  bool global_binding = false;

  /// "write to variable p (line 7): while(line 24) ok ok -> for(line 6) ok
  /// dependence" — the paper's report format.
  [[nodiscard]] std::string render(const js::Program& program) const;
};

/// Per-loop aggregate counters feeding the Table 3 classifiers.
struct LoopDependenceSummary {
  int loop_id = 0;
  std::int64_t shared_var_writes = 0;   // type (a) at this loop's level
  std::int64_t shared_prop_writes = 0;  // type (b) at this loop's level
  std::int64_t flow_deps = 0;           // type (c) at this loop's level
  std::int64_t shared_reads = 0;        // reads of data from outside the loop
  std::int64_t private_writes = 0;      // writes characterized "ok ok"
  /// Distinct (name, line) sites with cross-iteration write conflicts.
  std::int64_t conflicting_write_sites = 0;
  bool recursion_detected = false;      // results for this nest are suspect
};

/// Instrumentation mode 3 (paper §3.3): runtime dependence analysis.
///
/// Maintains the characterization stack; stamps every environment and object
/// at creation (the engine-level equivalent of wrapping creation sites in an
/// ES Proxy); remembers a stack snapshot per written (object, property); and
/// classifies each access by diffing stamps against the current stack:
///
///   (a) writes to variables whose environment pre-dates the current loop
///       iteration  -> output dependence,
///   (b) writes to fields reached through a shared base (binding stamp for
///       `x.f`, `this.f`; object creation stamp otherwise) -> output/anti
///       dependence,
///   (c) reads of fields last written in a different iteration -> flow
///       dependence.
///
/// Like JS-CERES, the analysis can focus on one loop to bound the (very
/// high) overhead; only accesses while the focused loop is open are
/// reported.
class DependenceAnalyzer final : public interp::ExecutionHooks {
 public:
  struct Options {
    /// Report only accesses occurring while this loop is open (0 = report
    /// accesses inside any loop).
    int focus_loop_id = 0;
    /// Also detect flow dependencies through *variables* (an extension; the
    /// paper tracks flow through object fields only).
    bool variable_flow = false;
    /// Cap on distinct warning sites kept (memory guard; the paper notes the
    /// tool "failed to scale to some of the case studies").
    std::size_t max_warnings = 100000;
  };

  DependenceAnalyzer(const js::Program& program, Options options);
  explicit DependenceAnalyzer(const js::Program& program)
      : DependenceAnalyzer(program, Options()) {}

  // -- hook interface --
  [[nodiscard]] bool wants_memory_events() const override { return true; }
  void on_loop_enter(const interp::LoopEvent& e) override;
  void on_loop_iteration(const interp::LoopEvent& e) override;
  void on_loop_exit(const interp::LoopEvent& e) override;
  void on_function_enter(int fn_id, const std::string& name) override;
  void on_function_exit(int fn_id) override;
  void on_env_created(std::uint64_t env_id) override;
  void on_object_created(std::uint64_t obj_id, int line) override;
  // Variable accesses arrive with the interned atom: the last-write tables
  // key on atom identity (pointer compare + precomputed hash) and warning
  // text reads the atom's string lazily.
  void on_var_write(std::uint64_t env_id, js::Atom name, int line) override;
  void on_var_read(std::uint64_t env_id, js::Atom name, int line) override;
  void on_prop_write(std::uint64_t obj_id, const std::string& key, int line,
                     const interp::BaseProvenance& base) override;
  void on_prop_read(std::uint64_t obj_id, const std::string& key, int line,
                    const interp::BaseProvenance& base) override;

  // -- results --
  [[nodiscard]] const std::vector<DependenceWarning>& warnings() const {
    return warnings_;
  }
  [[nodiscard]] std::map<int, LoopDependenceSummary> summaries() const;
  [[nodiscard]] const CharStack& char_stack() const { return chars_; }
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// Full human-readable report (all warnings, paper format).
  [[nodiscard]] std::string report() const;

 private:
  /// Stamp of the base through which a property was reached.
  [[nodiscard]] const Stamp& base_stamp(std::uint64_t obj_id,
                                        const interp::BaseProvenance& base) const;
  [[nodiscard]] bool in_focus() const;
  void record(AccessKind kind, DepClass dep, const std::string& name, int line,
              Characterization chr);
  void bump_summary_counters(const Characterization& chr, AccessKind kind);

  const js::Program& program_;
  Options options_;
  CharStack chars_;

  // Creation stamps. Empty stamps (creation outside any loop) are implicit —
  // a map miss means "empty" — keeping memory proportional to in-loop
  // allocations only.
  std::unordered_map<std::uint64_t, Stamp> env_stamps_;
  std::unordered_map<std::uint64_t, Stamp> obj_stamps_;
  /// Last-write snapshot per (object, property).
  std::unordered_map<std::uint64_t, std::unordered_map<std::string, Stamp>> writes_;
  /// Last-write snapshot per (environment, variable) for the variable_flow
  /// extension — atom-keyed (variable names are always interned).
  std::unordered_map<std::uint64_t, std::unordered_map<js::Atom, Stamp>> var_writes_;

  // Active JS call stack (fn ids); recursion inside an open loop makes the
  // loop's iteration work unbounded (paper §3.3's recursion guard, extended
  // to function recursion: HAAR's tree search, the raytracer's trace()).
  std::vector<int> fn_stack_;

  // Warning dedup: site key -> index into warnings_.
  std::map<std::tuple<int, int, std::string, std::string>, std::size_t> warning_index_;
  std::vector<DependenceWarning> warnings_;
  bool truncated_ = false;
  std::uint64_t global_env_id_ = 0;

  // Per-loop counters (keyed by loop id).
  std::map<int, LoopDependenceSummary> summaries_;

  static const Stamp kEmptyStamp;
};

}  // namespace jsceres::ceres
