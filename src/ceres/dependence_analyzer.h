#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ceres/char_stack.h"
#include "interp/hooks.h"
#include "js/ast.h"
#include "support/limits.h"

namespace jsceres::ceres {

/// Dependence class of a reported access (paper §3.3 a/b/c).
enum class DepClass {
  Output,  // (a) shared-variable write or (b) shared-object field write
  Flow,    // (c) read of a field written in a different iteration
};

/// What kind of program point produced the warning.
enum class AccessKind { VarWrite, PropWrite, PropRead };

/// One deduplicated warning: an access site plus its characterization, with
/// an occurrence count.
struct DependenceWarning {
  AccessKind kind = AccessKind::VarWrite;
  DepClass dep = DepClass::Output;
  std::string name;  // variable name or property key
  int line = 0;      // access site (0 for native-initiated writes)
  Characterization characterization;
  std::int64_t count = 0;
  /// For VarWrite: the binding lives in the global environment (application
  /// state) rather than a function activation (a privatizable temporary —
  /// the distinction §3.3's forEach discussion draws).
  bool global_binding = false;

  /// "write to variable p (line 7): while(line 24) ok ok -> for(line 6) ok
  /// dependence" — the paper's report format.
  [[nodiscard]] std::string render(const js::Program& program) const;
};

/// Per-loop aggregate counters feeding the Table 3 classifiers.
struct LoopDependenceSummary {
  int loop_id = 0;
  std::int64_t shared_var_writes = 0;   // type (a) at this loop's level
  std::int64_t shared_prop_writes = 0;  // type (b) at this loop's level
  std::int64_t flow_deps = 0;           // type (c) at this loop's level
  std::int64_t shared_reads = 0;        // reads of data from outside the loop
  std::int64_t private_writes = 0;      // writes characterized "ok ok"
  /// Distinct (name, line) sites with cross-iteration write conflicts.
  std::int64_t conflicting_write_sites = 0;
  bool recursion_detected = false;      // results for this nest are suspect
};

namespace detail {

/// Flat open-addressing stamp table: (owner id, interned key id) -> StampId.
/// This replaces the seed's nested string-keyed unordered_maps on the mode-3
/// hot path — one linear-probe lookup over 16-byte entries, the hash mixed
/// from the owner id and the key's dense atom id (interning already paid any
/// string hashing, exactly once per distinct key), no per-entry heap nodes
/// and no string copies. Owner ids start at 1, so owner == 0 marks empty
/// slots; entries are never removed.
class StampMap {
 public:
  StampMap() : entries_(kInitialCapacity), mask_(kInitialCapacity - 1) {}

  /// Insert or overwrite.
  void put(std::uint64_t owner, std::uint32_t key, StampId stamp) {
    Entry& entry = slot(owner, key);
    if (entry.owner == 0) {
      entry.owner = owner;
      entry.key = key;
      entry.stamp = stamp;
      ++size_;
      if (size_ * 10 >= entries_.size() * 7) grow();
      return;
    }
    entry.stamp = stamp;
  }

  /// Stored stamp, or kEmptyStampId when absent (a datum created outside
  /// every loop carries the empty stamp — a miss means the same thing).
  [[nodiscard]] StampId get(std::uint64_t owner, std::uint32_t key) const {
    const Entry& entry = slot(owner, key);
    return entry.owner == 0 ? kEmptyStampId : entry.stamp;
  }

  /// Stored stamp, or nullptr when never stored ("was written at all" —
  /// the flow analysis distinguishes never-written from written-outside).
  /// One probe sequence; prefer this over get() on the hot path.
  [[nodiscard]] const StampId* find(std::uint64_t owner, std::uint32_t key) const {
    const Entry& entry = slot(owner, key);
    return entry.owner == 0 ? nullptr : &entry.stamp;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  struct Entry {
    std::uint64_t owner = 0;
    std::uint32_t key = 0;
    StampId stamp = kEmptyStampId;
  };

  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  static std::size_t mix(std::uint64_t owner, std::uint32_t key) {
    std::uint64_t h = owner * 0x9e3779b97f4a7c15ull ^
                      (std::uint64_t(key) * 0xff51afd7ed558ccdull);
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 29;
    return std::size_t(h);
  }

  [[nodiscard]] const Entry& slot(std::uint64_t owner, std::uint32_t key) const {
    std::size_t index = mix(owner, key) & mask_;
    while (true) {
      const Entry& entry = entries_[index];
      if (entry.owner == 0 || (entry.owner == owner && entry.key == key)) {
        return entry;
      }
      index = (index + 1) & mask_;
    }
  }
  [[nodiscard]] Entry& slot(std::uint64_t owner, std::uint32_t key) {
    return const_cast<Entry&>(std::as_const(*this).slot(owner, key));
  }

  void grow() {
    // Sandbox accounting: the doubled table charges the active run's
    // ledger before allocating; on a trip the table is untouched and the
    // map stays fully usable (just overfull until the next put retries).
    AllocationLedger::charge_current(entries_.size() * sizeof(Entry));
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(old.size() * 2, Entry{});
    mask_ = entries_.size() - 1;
    for (const Entry& entry : old) {
      if (entry.owner == 0) continue;
      std::size_t index = mix(entry.owner, entry.key) & mask_;
      while (entries_[index].owner != 0) index = (index + 1) & mask_;
      entries_[index] = entry;
    }
  }

  std::vector<Entry> entries_;
  std::size_t mask_;
  std::size_t size_ = 0;
};

}  // namespace detail

/// Instrumentation mode 3 (paper §3.3): runtime dependence analysis.
///
/// Maintains the characterization stack; stamps every environment and object
/// at creation (the engine-level equivalent of wrapping creation sites in an
/// ES Proxy); remembers a stack snapshot per written (object, property); and
/// classifies each access by diffing stamps against the current stack:
///
///   (a) writes to variables whose environment pre-dates the current loop
///       iteration  -> output dependence,
///   (b) writes to fields reached through a shared base (binding stamp for
///       `x.f`, `this.f`; object creation stamp otherwise) -> output/anti
///       dependence,
///   (c) reads of fields last written in a different iteration -> flow
///       dependence.
///
/// All snapshots are interned StampIds into the CharStack's hash-consed
/// stamp tree: stamping is a 32-bit store, characterization is an id walk
/// with an O(1) fast path for the dominant "ok ok" private access, and a
/// Characterization vector is only materialized when a warning is recorded.
///
/// Like JS-CERES, the analysis can focus on one loop to bound the (very
/// high) overhead; only accesses while the focused loop is open are
/// reported.
class DependenceAnalyzer final : public interp::ExecutionHooks {
 public:
  struct Options {
    /// Report only accesses occurring while this loop is open (0 = report
    /// accesses inside any loop).
    int focus_loop_id = 0;
    /// Also detect flow dependencies through *variables* (an extension; the
    /// paper tracks flow through object fields only).
    bool variable_flow = false;
    /// Cap on distinct warning sites kept (memory guard; the paper notes the
    /// tool "failed to scale to some of the case studies").
    std::size_t max_warnings = 100000;
  };

  DependenceAnalyzer(const js::Program& program, Options options);
  explicit DependenceAnalyzer(const js::Program& program)
      : DependenceAnalyzer(program, Options()) {}

  // -- hook interface --
  [[nodiscard]] bool wants_memory_events() const override { return true; }
  void on_loop_enter(const interp::LoopEvent& e) override;
  void on_loop_iteration(const interp::LoopEvent& e) override;
  void on_loop_exit(const interp::LoopEvent& e) override;
  void on_function_enter(int fn_id, const std::string& name) override;
  void on_function_exit(int fn_id) override;
  void on_env_created(std::uint64_t env_id) override;
  void on_object_created(std::uint64_t obj_id, int line) override;
  // Memory accesses arrive with interned keys: variable names are always
  // atoms (identifiers), and property events now carry the key atom
  // end-to-end (the interpreter interns statically-known keys at parse
  // time and computed keys on first use), so every table below keys on
  // (id, atom) with precomputed hashes — no string copies on this path.
  void on_var_write(std::uint64_t env_id, js::Atom name, int line) override;
  void on_var_read(std::uint64_t env_id, js::Atom name, int line) override;
  void on_prop_write(std::uint64_t obj_id, js::Atom key, int line,
                     const interp::BaseProvenance& base) override;
  void on_prop_read(std::uint64_t obj_id, js::Atom key, int line,
                    const interp::BaseProvenance& base) override;
  /// Native batch path: the interpreter delivers each statement's memory
  /// events in one call (the mode-3 emission cost BM_DependenceEndToEnd is
  /// bounded by); the loop below dispatches them with direct calls instead
  /// of one virtual hop per event. Event order is program order.
  void on_memory_batch(const interp::MemoryEvent* events, std::size_t count) override;

  // -- results --
  [[nodiscard]] const std::vector<DependenceWarning>& warnings() const {
    return warnings_;
  }
  [[nodiscard]] std::map<int, LoopDependenceSummary> summaries() const;
  [[nodiscard]] const CharStack& char_stack() const { return chars_; }
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// Sizes of the stamp tables (diagnostics / growth tests).
  [[nodiscard]] std::size_t stamped_envs() const { return env_stamps_.size(); }
  [[nodiscard]] std::size_t stamped_objects() const { return obj_stamps_.size(); }
  [[nodiscard]] std::size_t tracked_writes() const { return writes_.size(); }

  /// Full human-readable report (all warnings, paper format).
  [[nodiscard]] std::string report() const;

 private:
  /// Warning-site identity: the seed keyed dedup on (kind, line, name,
  /// rendered per-level flags). With compact deltas that is exactly (kind,
  /// line, atom, loop-path id, divergence level, instance flag) — a POD key,
  /// no string building per problematic access.
  struct WarnKey {
    std::uint32_t kind_and_flags = 0;  // kind | (instance_at_div << 8)
    int line = 0;
    std::uint32_t atom_id = 0;
    std::uint32_t path_id = 0;
    std::uint32_t div_level = 0;

    bool operator==(const WarnKey&) const = default;
  };
  struct WarnKeyHash {
    std::size_t operator()(const WarnKey& k) const {
      std::uint64_t h = k.kind_and_flags;
      h = h * 0x9e3779b97f4a7c15ull ^ std::uint64_t(std::uint32_t(k.line));
      h = h * 0x9e3779b97f4a7c15ull ^ k.atom_id;
      h = h * 0x9e3779b97f4a7c15ull ^ k.path_id;
      h = h * 0x9e3779b97f4a7c15ull ^ k.div_level;
      h ^= h >> 29;
      return std::size_t(h);
    }
  };

  /// Stamp of the base through which a property was reached.
  [[nodiscard]] StampId base_stamp(std::uint64_t obj_id,
                                   const interp::BaseProvenance& base) const;
  [[nodiscard]] bool in_focus() const;
  void record(AccessKind kind, DepClass dep, js::Atom name, int line,
              const CharDelta& delta, bool global_binding);
  void bump_shared_counters(const CharDelta& delta, AccessKind kind);
  void bump_private_writes();
  [[nodiscard]] LoopDependenceSummary& summary_slot(int loop_id);

  const js::Program& program_;
  Options options_;
  CharStack chars_;

  // Creation stamps (interned ids). Empty stamps (creation outside any
  // loop) are implicit — a map miss means "empty" — keeping memory
  // proportional to in-loop allocations only.
  detail::StampMap env_stamps_;
  detail::StampMap obj_stamps_;
  /// Last-write snapshot per (object, property).
  detail::StampMap writes_;
  /// Last-write snapshot per (environment, variable) for the variable_flow
  /// extension.
  detail::StampMap var_writes_;

  // Active JS call stack (fn ids); recursion inside an open loop makes the
  // loop's iteration work unbounded (paper §3.3's recursion guard, extended
  // to function recursion: HAAR's tree search, the raytracer's trace()).
  std::vector<int> fn_stack_;

  // Warning dedup: site key -> index into warnings_.
  std::unordered_map<WarnKey, std::size_t, WarnKeyHash> warning_index_;
  std::vector<DependenceWarning> warnings_;
  bool truncated_ = false;
  std::uint64_t global_env_id_ = 0;

  // Per-loop counters, indexed by loop id (dense; loop ids are small).
  std::vector<LoopDependenceSummary> summaries_;
};

}  // namespace jsceres::ceres
