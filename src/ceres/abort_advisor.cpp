#include "ceres/abort_advisor.h"

#include <set>
#include <sstream>

namespace jsceres::ceres {

namespace {

/// Is `loop_id` the outermost dependence-carrying level of `chr`?
bool carried_at(const Characterization& chr, int loop_id) {
  for (const LevelFlags& level : chr.levels) {
    const bool flagged = level.instance_dep || level.iteration_dep;
    if (level.loop_id == loop_id) return flagged;
    if (flagged) return false;  // an outer loop carries it
  }
  return false;
}

std::string site(const DependenceWarning& warning) {
  std::string out = "'" + warning.name + "'";
  if (warning.line > 0) out += " (line " + std::to_string(warning.line) + ")";
  return out;
}

}  // namespace

SpeculationReport advise(const js::Program& program, const DependenceAnalyzer& analyzer,
                         int loop_id, const LoopProfiler* profiler) {
  SpeculationReport report;
  report.loop_id = loop_id;
  const std::string induction = js::induction_variable_of(program.loop(loop_id));

  std::set<std::string> seen;
  for (const auto& warning : analyzer.warnings()) {
    if (!carried_at(warning.characterization, loop_id)) continue;
    // The induction variable's update is the loop's own bookkeeping, not an
    // abort reason (a speculative runtime strip-mines it away).
    if (warning.kind == AccessKind::VarWrite && warning.name == induction) continue;
    const std::string key = std::to_string(int(warning.kind)) + site(warning);
    if (!seen.insert(key).second) continue;

    AbortReason reason;
    switch (warning.kind) {
      case AccessKind::PropRead:
        reason.what = "loop-carried read-after-write on " + site(warning) +
                      ": an iteration reads a value produced by an earlier one";
        reason.remedy =
            "re-express the accumulation as a reduction/scan, or double-buffer "
            "the data so iterations read the previous generation";
        report.would_abort = true;
        break;
      case AccessKind::VarWrite:
        if (warning.global_binding) {
          reason.what = "every iteration writes the shared variable " + site(warning);
          reason.remedy =
              "privatize the variable per worker and merge after the loop";
        } else {
          reason.what = "the function-scoped temporary " + site(warning) +
                        " is shared by all iterations (JavaScript var scoping)";
          reason.remedy =
              "extract the loop body into a function or use a callback-based "
              "operator so each iteration gets a private binding";
        }
        report.would_abort = true;
        break;
      case AccessKind::PropWrite:
        reason.what = "iterations write fields of shared object(s): " + site(warning);
        reason.remedy =
            "if the written indices are disjoint this is safe under an "
            "ownership check; otherwise privatize the object and merge";
        // Disjoint-index writes do not force an abort by themselves.
        break;
    }
    report.reasons.push_back(std::move(reason));
  }

  const auto summaries = analyzer.summaries();
  const auto it = summaries.find(loop_id);
  if (it != summaries.end()) {
    if (it->second.recursion_detected) {
      report.advisories.push_back(
          "recursive calls inside the loop make per-iteration work uneven: "
          "prefer dynamic scheduling / work stealing");
    }
    if (it->second.conflicting_write_sites > 0) {
      report.would_abort = true;
      report.advisories.push_back(
          "same-field writes from different iterations detected: a "
          "speculative runtime would roll back on the first conflict");
    }
  }
  if (profiler != nullptr) {
    const LoopStats* stats = profiler->stats_for(loop_id);
    if (stats != nullptr && stats->touches_dom()) {
      report.advisories.push_back(
          "the loop touches the DOM/Canvas; browsers have no concurrent DOM, "
          "so hoist or batch the rendering outside the parallel section");
    }
  }
  return report;
}

std::string SpeculationReport::render(const js::Program& program) const {
  std::ostringstream out;
  const js::LoopSite& loop = program.loop(loop_id);
  out << "speculation report for " << js::loop_kind_name(loop.kind) << " at line "
      << loop.line << ": "
      << (would_abort ? "WOULD ABORT" : "parallelizable (with ownership checks)")
      << "\n";
  for (const auto& reason : reasons) {
    out << "  abort reason: " << reason.what << "\n";
    out << "     -> remedy: " << reason.remedy << "\n";
  }
  for (const auto& advisory : advisories) {
    out << "  advisory: " << advisory << "\n";
  }
  return out.str();
}

}  // namespace jsceres::ceres
