#pragma once

#include <cstdint>
#include <unordered_map>

#include "interp/hooks.h"
#include "support/clock.h"

namespace jsceres::ceres {

/// Emulation of the Gecko sampling profiler the paper pairs with mode 1
/// (§3.1) to measure CPU-active time.
///
/// Samples are taken every `period_ns` of virtual wall time. A sample counts
/// as active when the CPU clock advanced across it (the engine was
/// executing, not blocked/idle). With `function_granularity_artifact`
/// enabled, a sample additionally requires the sampled JS function to have
/// changed within the last `max_same_fn_samples` samples — reproducing the
/// paper's observed Gecko anomaly where "a long running computation within a
/// single function may be seen as inactive time".
class SamplingProfiler final : public interp::ExecutionHooks {
 public:
  struct Options {
    std::int64_t period_ns = 1'000'000;  // 1 ms virtual, Gecko-like
    bool function_granularity_artifact = false;
    int max_same_fn_samples = 64;
  };

  SamplingProfiler(const VirtualClock& clock, Options options)
      : clock_(&clock), options_(options) {}
  explicit SamplingProfiler(const VirtualClock& clock)
      : SamplingProfiler(clock, Options()) {}

  void on_clock_advance(int current_fn_id) override { observe(current_fn_id); }

  /// Flush any pending interval (call once at end of run).
  void finish() { observe(last_fn_id_); }

  [[nodiscard]] std::int64_t active_samples() const { return active_samples_; }
  [[nodiscard]] std::int64_t total_samples() const { return total_samples_; }
  [[nodiscard]] std::int64_t active_ns() const {
    return active_samples_ * options_.period_ns;
  }
  [[nodiscard]] double active_seconds() const { return double(active_ns()) / 1e9; }

  /// Per-function active sample counts (fn_id -> samples), the flat profile
  /// a Gecko-style profiler reports.
  [[nodiscard]] const std::unordered_map<int, std::int64_t>& samples_by_function()
      const {
    return samples_by_fn_;
  }

 private:
  void observe(int current_fn_id) {
    const std::int64_t wall = clock_->wall_ns();
    const std::int64_t cpu = clock_->cpu_ns();
    const std::int64_t cpu_delta = cpu - last_cpu_;
    // Execution is assumed to occupy the leading `cpu_delta` of the
    // interval; the remainder (if any) was blocking/idle.
    const std::int64_t active_until = last_wall_ + cpu_delta;
    while (next_sample_ns_ <= wall) {
      ++total_samples_;
      bool active = next_sample_ns_ <= active_until;
      if (active && options_.function_granularity_artifact) {
        if (current_fn_id == last_sampled_fn_ &&
            ++same_fn_run_ > options_.max_same_fn_samples) {
          active = false;  // the profiler "loses" long single-function runs
        } else if (current_fn_id != last_sampled_fn_) {
          same_fn_run_ = 0;
        }
        last_sampled_fn_ = current_fn_id;
      }
      if (active) {
        ++active_samples_;
        ++samples_by_fn_[current_fn_id];
      }
      next_sample_ns_ += options_.period_ns;
    }
    last_wall_ = wall;
    last_cpu_ = cpu;
    last_fn_id_ = current_fn_id;
  }

  const VirtualClock* clock_;
  Options options_;
  std::int64_t next_sample_ns_ = 0;
  std::int64_t last_wall_ = 0;
  std::int64_t last_cpu_ = 0;
  std::int64_t active_samples_ = 0;
  std::int64_t total_samples_ = 0;
  int last_fn_id_ = 0;
  int last_sampled_fn_ = -1;
  int same_fn_run_ = 0;
  std::unordered_map<int, std::int64_t> samples_by_fn_;
};

}  // namespace jsceres::ceres
