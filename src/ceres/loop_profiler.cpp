#include "ceres/loop_profiler.h"

#include "support/obs.h"

namespace jsceres::ceres {

void LoopProfiler::on_loop_enter(const interp::LoopEvent& e) {
  JSCERES_OBS_COUNT("ceres.mode2_events", 1);
  auto& stats = stats_[e.loop_id];
  stats.loop_id = e.loop_id;
  ++stats.instances;
  if (!open_.empty()) {
    ++edges_[{e.loop_id, open_.back().loop_id}];
  } else {
    outermost_enter_ns_ = clock_->wall_ns();
  }
  open_.push_back(OpenLoop{e.loop_id, clock_->wall_ns(), 0});
}

void LoopProfiler::on_loop_iteration(const interp::LoopEvent& e) {
  if (!open_.empty() && open_.back().loop_id == e.loop_id) {
    ++open_.back().trip_count;
  }
}

void LoopProfiler::on_loop_exit(const interp::LoopEvent& e) {
  if (open_.empty() || open_.back().loop_id != e.loop_id) return;
  const OpenLoop frame = open_.back();
  open_.pop_back();
  auto& stats = stats_[e.loop_id];
  stats.trips.add(double(frame.trip_count));
  stats.runtime_ns.add(double(clock_->wall_ns() - frame.enter_wall_ns));
  if (open_.empty()) {
    in_loops_ns_ += clock_->wall_ns() - outermost_enter_ns_;
  }
}

void LoopProfiler::on_host_access(interp::HostAccess access, const char*) {
  const bool is_dom = access == interp::HostAccess::Dom;
  const bool is_canvas =
      access == interp::HostAccess::Canvas || access == interp::HostAccess::WebGl;
  if (!is_dom && !is_canvas) return;
  for (const OpenLoop& frame : open_) {
    auto& stats = stats_[frame.loop_id];
    if (is_dom) ++stats.dom_touches;
    if (is_canvas) ++stats.canvas_touches;
  }
}

}  // namespace jsceres::ceres
