#pragma once

#include <string>
#include <vector>

#include "ceres/dependence_analyzer.h"
#include "ceres/loop_profiler.h"

namespace jsceres::ceres {

/// The developer-facing abort reporter the paper asks for in §5.3: "As
/// speculative parallelization gains ground for JavaScript ... it does not
/// only need to abort when it fails to run a loop in parallel, but also have
/// ways to report to the developer the reason for aborting. Furthermore,
/// once the detailed reason for aborting is identified, the developer would
/// need to transform the code significantly to solve the issue."
///
/// Turns raw dependence warnings into (a) the concrete reasons a speculative
/// runtime would abort this loop and (b) the code transformation that would
/// remove each reason.
struct AbortReason {
  std::string what;     // e.g. "loop-carried read-after-write on 'm' (line 16)"
  std::string remedy;   // e.g. "re-express the accumulation as a reduction"
};

struct SpeculationReport {
  int loop_id = 0;
  bool would_abort = false;
  std::vector<AbortReason> reasons;
  /// Obstacles that do not force an abort but cost performance (divergence,
  /// host access).
  std::vector<std::string> advisories;

  [[nodiscard]] std::string render(const js::Program& program) const;
};

/// Build the report for one loop from a completed dependence run. `profiler`
/// (optional) contributes DOM/Canvas advisories.
SpeculationReport advise(const js::Program& program, const DependenceAnalyzer& analyzer,
                         int loop_id, const LoopProfiler* profiler = nullptr);

}  // namespace jsceres::ceres
