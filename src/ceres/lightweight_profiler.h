#pragma once

#include <cstdint>

#include "interp/hooks.h"
#include "support/clock.h"
#include "support/obs.h"

namespace jsceres::ceres {

/// Instrumentation mode 1 (paper §3.1): measures exactly two scalars — the
/// total wall time of the run and the wall time during which at least one
/// loop is open. An open-loop counter is incremented/decremented around each
/// loop; a timestamp is taken on the 0→1 transition and the difference
/// accumulated on the 1→0 transition, using the high-resolution (virtual)
/// timer.
///
/// Because the measurement is *wall* time, blocking work inside a loop (a
/// putImageData upload, a suspended thread) counts as loop time even though
/// the CPU is idle — which is why the paper sees loop time exceed the Gecko
/// profiler's active time for some workloads.
class LightweightProfiler final : public interp::ExecutionHooks {
 public:
  explicit LightweightProfiler(const VirtualClock& clock) : clock_(&clock) {}

  void on_loop_enter(const interp::LoopEvent&) override {
    JSCERES_OBS_COUNT("ceres.mode1_events", 1);
    if (open_loops_++ == 0) loop_entry_wall_ns_ = clock_->wall_ns();
  }

  void on_loop_exit(const interp::LoopEvent&) override {
    if (--open_loops_ == 0) {
      in_loops_ns_ += clock_->wall_ns() - loop_entry_wall_ns_;
    }
  }

  [[nodiscard]] std::int64_t in_loops_ns() const {
    // If called mid-run with loops still open, include the open stretch.
    if (open_loops_ > 0) {
      return in_loops_ns_ + (clock_->wall_ns() - loop_entry_wall_ns_);
    }
    return in_loops_ns_;
  }
  [[nodiscard]] double in_loops_seconds() const { return double(in_loops_ns()) / 1e9; }
  [[nodiscard]] int open_loops() const { return open_loops_; }

 private:
  const VirtualClock* clock_;
  int open_loops_ = 0;
  std::int64_t loop_entry_wall_ns_ = 0;
  std::int64_t in_loops_ns_ = 0;
};

}  // namespace jsceres::ceres
