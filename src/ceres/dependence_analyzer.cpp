#include "ceres/dependence_analyzer.h"

#include <sstream>

namespace jsceres::ceres {

const Stamp DependenceAnalyzer::kEmptyStamp;

DependenceAnalyzer::DependenceAnalyzer(const js::Program& program, Options options)
    : program_(program), options_(options) {}

std::string DependenceWarning::render(const js::Program& program) const {
  std::string out;
  switch (kind) {
    case AccessKind::VarWrite: out = "write to variable " + name; break;
    case AccessKind::PropWrite: out = "write to property " + name; break;
    case AccessKind::PropRead: out = "read of property " + name; break;
  }
  if (line > 0) out += " (line " + std::to_string(line) + ")";
  out += ": ";
  out += render_characterization(characterization, program);
  out += dep == DepClass::Flow ? "  [flow]" : "  [output]";
  if (count > 1) out += " x" + std::to_string(count);
  return out;
}

void DependenceAnalyzer::on_loop_enter(const interp::LoopEvent& e) {
  chars_.on_enter(e.loop_id);
  auto& summary = summaries_[e.loop_id];
  summary.loop_id = e.loop_id;
  if (chars_.recursive_loops().count(e.loop_id) > 0) {
    summary.recursion_detected = true;
  }
}

void DependenceAnalyzer::on_loop_iteration(const interp::LoopEvent& e) {
  chars_.on_iteration(e.loop_id);
}

void DependenceAnalyzer::on_loop_exit(const interp::LoopEvent& e) {
  chars_.on_exit(e.loop_id);
}

void DependenceAnalyzer::on_function_enter(int fn_id, const std::string&) {
  if (chars_.any_open()) {
    for (const int open_fn : fn_stack_) {
      if (open_fn == fn_id) {
        // Recursive call under an open loop: iteration work is unbounded.
        for (const LoopFrame& frame : chars_.current()) {
          auto& summary = summaries_[frame.loop_id];
          summary.loop_id = frame.loop_id;
          summary.recursion_detected = true;
        }
        break;
      }
    }
  }
  fn_stack_.push_back(fn_id);
}

void DependenceAnalyzer::on_function_exit(int) {
  if (!fn_stack_.empty()) fn_stack_.pop_back();
}

void DependenceAnalyzer::on_env_created(std::uint64_t env_id) {
  if (global_env_id_ == 0) global_env_id_ = env_id;  // first env == global
  if (chars_.any_open()) env_stamps_[env_id] = chars_.current();
}

void DependenceAnalyzer::on_object_created(std::uint64_t obj_id, int) {
  if (chars_.any_open()) obj_stamps_[obj_id] = chars_.current();
}

bool DependenceAnalyzer::in_focus() const {
  if (!chars_.any_open()) return false;
  if (options_.focus_loop_id == 0) return true;
  return chars_.is_open(options_.focus_loop_id);
}

const Stamp& DependenceAnalyzer::base_stamp(
    std::uint64_t obj_id, const interp::BaseProvenance& base) const {
  using Kind = interp::BaseProvenance::Kind;
  if (base.kind == Kind::Binding || base.kind == Kind::This) {
    const auto it = env_stamps_.find(base.env_id);
    return it == env_stamps_.end() ? kEmptyStamp : it->second;
  }
  const auto it = obj_stamps_.find(obj_id);
  return it == obj_stamps_.end() ? kEmptyStamp : it->second;
}

void DependenceAnalyzer::bump_summary_counters(const Characterization& chr,
                                               AccessKind kind) {
  for (const LevelFlags& level : chr.levels) {
    if (!level.instance_dep && !level.iteration_dep) continue;
    auto& summary = summaries_[level.loop_id];
    summary.loop_id = level.loop_id;
    switch (kind) {
      case AccessKind::VarWrite: ++summary.shared_var_writes; break;
      case AccessKind::PropWrite: ++summary.shared_prop_writes; break;
      case AccessKind::PropRead: ++summary.flow_deps; break;
    }
  }
}

void DependenceAnalyzer::record(AccessKind kind, DepClass dep,
                                const std::string& name, int line,
                                Characterization chr) {
  bump_summary_counters(chr, kind);

  // Dedup by (kind, line, name, rendered flags).
  std::string flags_key;
  for (const auto& level : chr.levels) {
    flags_key += std::to_string(level.loop_id);
    flags_key += level.instance_dep ? 'D' : 'o';
    flags_key += level.iteration_dep ? 'D' : 'o';
  }
  const auto key = std::make_tuple(int(kind), line, name, flags_key);
  const auto it = warning_index_.find(key);
  if (it != warning_index_.end()) {
    ++warnings_[it->second].count;
    return;
  }
  if (warnings_.size() >= options_.max_warnings) {
    truncated_ = true;
    return;
  }
  DependenceWarning warning;
  warning.kind = kind;
  warning.dep = dep;
  warning.name = name;
  warning.line = line;
  warning.characterization = std::move(chr);
  warning.count = 1;
  warning_index_.emplace(key, warnings_.size());
  warnings_.push_back(std::move(warning));
}

void DependenceAnalyzer::on_var_write(std::uint64_t env_id, js::Atom name,
                                      int line) {
  if (!in_focus()) return;
  const auto it = env_stamps_.find(env_id);
  const Stamp& stamp = it == env_stamps_.end() ? kEmptyStamp : it->second;
  Characterization chr = characterize_creation(stamp, chars_.current());
  if (chr.problematic()) {
    const std::size_t index = warnings_.size();
    record(AccessKind::VarWrite, DepClass::Output, name, line, std::move(chr));
    if (warnings_.size() > index) {
      warnings_.back().global_binding = env_id == global_env_id_;
    }
  } else {
    for (const auto& level : chars_.current()) {
      ++summaries_[level.loop_id].private_writes;
      (void)level;
    }
  }
  if (options_.variable_flow) {
    var_writes_[env_id][name] = chars_.current();
  }
}

void DependenceAnalyzer::on_var_read(std::uint64_t env_id, js::Atom name,
                                     int line) {
  if (!in_focus()) return;
  const auto it = env_stamps_.find(env_id);
  const Stamp& stamp = it == env_stamps_.end() ? kEmptyStamp : it->second;
  const Characterization chr = characterize_creation(stamp, chars_.current());
  // Reads of data from outside the loop are not warnings, but Table 3's
  // "accesses to shared memory" assessment counts them.
  for (const LevelFlags& level : chr.levels) {
    if (level.instance_dep || level.iteration_dep) {
      ++summaries_[level.loop_id].shared_reads;
    }
  }
  if (options_.variable_flow) {
    const auto env_it = var_writes_.find(env_id);
    if (env_it != var_writes_.end()) {
      const auto write_it = env_it->second.find(name);
      if (write_it != env_it->second.end()) {
        Characterization flow = characterize_flow(write_it->second, chars_.current());
        if (flow.problematic()) {
          record(AccessKind::PropRead, DepClass::Flow, name, line, std::move(flow));
        }
      }
    }
  }
}

void DependenceAnalyzer::on_prop_write(std::uint64_t obj_id, const std::string& key,
                                       int line, const interp::BaseProvenance& base) {
  if (!in_focus()) {
    // Still remember the snapshot: a read inside the focused loop must see
    // writes that happened before/outside it to judge flow correctly.
    writes_[obj_id][key] = chars_.current();
    return;
  }
  // Cross-iteration write/write conflicts on the same field (true output
  // dependence, independent of how the base was reached).
  auto& object_writes = writes_[obj_id];
  const auto prev = object_writes.find(key);
  bool same_field_conflict = false;
  if (prev != object_writes.end()) {
    const Characterization conflict = characterize_flow(prev->second, chars_.current());
    same_field_conflict = conflict.problematic();
  }

  // Attribute same-field conflicts only to the loop levels actually carrying
  // the write-write dependence (a pixel rewritten every *frame* conflicts at
  // the frame loop, not at the row loop inside one frame).
  if (same_field_conflict) {
    const Characterization conflict =
        characterize_flow(prev->second, chars_.current());
    for (const LevelFlags& level : conflict.levels) {
      if (!level.instance_dep && !level.iteration_dep) continue;
      auto& summary = summaries_[level.loop_id];
      summary.loop_id = level.loop_id;
      ++summary.conflicting_write_sites;
    }
  }

  Characterization chr = characterize_creation(base_stamp(obj_id, base), chars_.current());
  if (chr.problematic()) {
    record(AccessKind::PropWrite, DepClass::Output, key, line, std::move(chr));
  } else {
    for (const auto& level : chars_.current()) {
      ++summaries_[level.loop_id].private_writes;
    }
  }
  object_writes[key] = chars_.current();
}

void DependenceAnalyzer::on_prop_read(std::uint64_t obj_id, const std::string& key,
                                      int line, const interp::BaseProvenance& base) {
  if (!in_focus()) return;
  const auto obj_it = writes_.find(obj_id);
  if (obj_it != writes_.end()) {
    const auto write_it = obj_it->second.find(key);
    if (write_it != obj_it->second.end()) {
      Characterization flow = characterize_flow(write_it->second, chars_.current());
      if (flow.problematic()) {
        record(AccessKind::PropRead, DepClass::Flow, key, line, std::move(flow));
        return;
      }
    }
  }
  // Not a flow dependence; count shared-memory reads for the summary.
  const Characterization chr =
      characterize_creation(base_stamp(obj_id, base), chars_.current());
  for (const LevelFlags& level : chr.levels) {
    if (level.instance_dep || level.iteration_dep) {
      ++summaries_[level.loop_id].shared_reads;
    }
  }
}

std::map<int, LoopDependenceSummary> DependenceAnalyzer::summaries() const {
  auto out = summaries_;
  for (const auto& [loop_id, flag] : chars_.recursive_loops()) {
    (void)flag;
    out[loop_id].loop_id = loop_id;
    out[loop_id].recursion_detected = true;
  }
  return out;
}

std::string DependenceAnalyzer::report() const {
  std::ostringstream out;
  out << "dependence analysis: " << warnings_.size() << " distinct warning site(s)";
  if (options_.focus_loop_id != 0) {
    const js::LoopSite& site = program_.loop(options_.focus_loop_id);
    out << " (focused on " << js::loop_kind_name(site.kind) << " at line "
        << site.line << ")";
  }
  out << "\n";
  for (const auto& warning : warnings_) {
    out << "  " << warning.render(program_) << "\n";
  }
  if (!chars_.recursive_loops().empty()) {
    out << "  note: recursion detected through "
        << chars_.recursive_loops().size()
        << " loop(s); results for those nests were discarded\n";
  }
  if (truncated_) out << "  note: warning list truncated\n";
  return out.str();
}

}  // namespace jsceres::ceres
