#include "ceres/dependence_analyzer.h"

#include <sstream>

#include "support/obs.h"

namespace jsceres::ceres {

DependenceAnalyzer::DependenceAnalyzer(const js::Program& program, Options options)
    : program_(program), options_(options) {
  summaries_.resize(std::size_t(program.loop_count()) + 1);
}

std::string DependenceWarning::render(const js::Program& program) const {
  std::string out;
  switch (kind) {
    case AccessKind::VarWrite: out = "write to variable " + name; break;
    case AccessKind::PropWrite: out = "write to property " + name; break;
    case AccessKind::PropRead: out = "read of property " + name; break;
  }
  if (line > 0) out += " (line " + std::to_string(line) + ")";
  out += ": ";
  out += render_characterization(characterization, program);
  out += dep == DepClass::Flow ? "  [flow]" : "  [output]";
  if (count > 1) out += " x" + std::to_string(count);
  return out;
}

LoopDependenceSummary& DependenceAnalyzer::summary_slot(int loop_id) {
  if (std::size_t(loop_id) >= summaries_.size()) {
    summaries_.resize(std::size_t(loop_id) + 1);
  }
  LoopDependenceSummary& summary = summaries_[std::size_t(loop_id)];
  summary.loop_id = loop_id;
  return summary;
}

void DependenceAnalyzer::on_loop_enter(const interp::LoopEvent& e) {
  chars_.on_enter(e.loop_id);
  LoopDependenceSummary& summary = summary_slot(e.loop_id);
  if (chars_.recursive_loops().count(e.loop_id) > 0) {
    summary.recursion_detected = true;
  }
}

void DependenceAnalyzer::on_loop_iteration(const interp::LoopEvent& e) {
  chars_.on_iteration(e.loop_id);
}

void DependenceAnalyzer::on_loop_exit(const interp::LoopEvent& e) {
  chars_.on_exit(e.loop_id);
}

void DependenceAnalyzer::on_function_enter(int fn_id, const std::string&) {
  if (chars_.any_open()) {
    for (const int open_fn : fn_stack_) {
      if (open_fn == fn_id) {
        // Recursive call under an open loop: iteration work is unbounded.
        for (const LoopFrame& frame : chars_.current()) {
          summary_slot(frame.loop_id).recursion_detected = true;
        }
        break;
      }
    }
  }
  fn_stack_.push_back(fn_id);
}

void DependenceAnalyzer::on_function_exit(int) {
  if (!fn_stack_.empty()) fn_stack_.pop_back();
}

void DependenceAnalyzer::on_env_created(std::uint64_t env_id) {
  if (global_env_id_ == 0) global_env_id_ = env_id;  // first env == global
  if (chars_.any_open()) env_stamps_.put(env_id, 0, chars_.current_id());
}

void DependenceAnalyzer::on_object_created(std::uint64_t obj_id, int) {
  if (chars_.any_open()) obj_stamps_.put(obj_id, 0, chars_.current_id());
}

bool DependenceAnalyzer::in_focus() const {
  if (!chars_.any_open()) return false;
  if (options_.focus_loop_id == 0) return true;
  return chars_.is_open(options_.focus_loop_id);
}

StampId DependenceAnalyzer::base_stamp(std::uint64_t obj_id,
                                       const interp::BaseProvenance& base) const {
  using Kind = interp::BaseProvenance::Kind;
  if (base.kind == Kind::Binding || base.kind == Kind::This) {
    return env_stamps_.get(base.env_id, 0);
  }
  return obj_stamps_.get(obj_id, 0);
}

void DependenceAnalyzer::bump_shared_counters(const CharDelta& delta,
                                              AccessKind kind) {
  // Every level at or below the divergence carries a dependence.
  const Stamp& stack = chars_.current();
  for (std::size_t k = delta.div_level; k < stack.size(); ++k) {
    LoopDependenceSummary& summary = summary_slot(stack[k].loop_id);
    switch (kind) {
      case AccessKind::VarWrite: ++summary.shared_var_writes; break;
      case AccessKind::PropWrite: ++summary.shared_prop_writes; break;
      case AccessKind::PropRead: ++summary.flow_deps; break;
    }
  }
}

void DependenceAnalyzer::bump_private_writes() {
  for (const LoopFrame& frame : chars_.current()) {
    ++summaries_[std::size_t(frame.loop_id)].private_writes;
  }
}

void DependenceAnalyzer::record(AccessKind kind, DepClass dep, js::Atom name,
                                int line, const CharDelta& delta,
                                bool global_binding) {
  bump_shared_counters(delta, kind);

  WarnKey key;
  key.kind_and_flags =
      std::uint32_t(kind) | (delta.instance_at_div ? 0x100u : 0u);
  key.line = line;
  key.atom_id = name.id();
  key.path_id = chars_.current_path_id();
  key.div_level = delta.div_level;
  const auto it = warning_index_.find(key);
  if (it != warning_index_.end()) {
    ++warnings_[it->second].count;
    return;
  }
  if (warnings_.size() >= options_.max_warnings) {
    truncated_ = true;
    return;
  }
  DependenceWarning warning;
  warning.kind = kind;
  warning.dep = dep;
  warning.name = name.str();
  warning.line = line;
  warning.characterization = chars_.materialize(delta);
  warning.count = 1;
  warning.global_binding = global_binding;
  warning_index_.emplace(key, warnings_.size());
  warnings_.push_back(std::move(warning));
}

void DependenceAnalyzer::on_var_write(std::uint64_t env_id, js::Atom name,
                                      int line) {
  if (!in_focus()) return;
  const StampId stamp = env_stamps_.get(env_id, 0);
  const CharDelta delta = chars_.characterize_creation_id(stamp);
  if (delta.problematic()) {
    record(AccessKind::VarWrite, DepClass::Output, name, line, delta,
           env_id == global_env_id_);
  } else {
    bump_private_writes();
  }
  if (options_.variable_flow) {
    var_writes_.put(env_id, name.id(), chars_.current_id());
  }
}

void DependenceAnalyzer::on_var_read(std::uint64_t env_id, js::Atom name,
                                     int line) {
  if (!in_focus()) return;
  const StampId stamp = env_stamps_.get(env_id, 0);
  const CharDelta delta = chars_.characterize_creation_id(stamp);
  // Reads of data from outside the loop are not warnings, but Table 3's
  // "accesses to shared memory" assessment counts them.
  if (delta.problematic()) {
    const Stamp& stack = chars_.current();
    for (std::size_t k = delta.div_level; k < stack.size(); ++k) {
      ++summary_slot(stack[k].loop_id).shared_reads;
    }
  }
  if (options_.variable_flow) {
    if (const StampId* write = var_writes_.find(env_id, name.id())) {
      const CharDelta flow = chars_.characterize_flow_id(*write);
      if (flow.problematic()) {
        record(AccessKind::PropRead, DepClass::Flow, name, line, flow, false);
      }
    }
  }
}

void DependenceAnalyzer::on_prop_write(std::uint64_t obj_id, js::Atom key,
                                       int line, const interp::BaseProvenance& base) {
  if (!in_focus()) {
    // Still remember the snapshot: a read inside the focused loop must see
    // writes that happened before/outside it to judge flow correctly.
    writes_.put(obj_id, key.id(), chars_.current_id());
    return;
  }
  // Cross-iteration write/write conflicts on the same field (true output
  // dependence, independent of how the base was reached). Attributed only
  // to the loop levels actually carrying the write-write dependence (a
  // pixel rewritten every *frame* conflicts at the frame loop, not at the
  // row loop inside one frame).
  if (const StampId* prev = writes_.find(obj_id, key.id())) {
    const CharDelta conflict = chars_.characterize_flow_id(*prev);
    if (conflict.problematic()) {
      const Stamp& stack = chars_.current();
      for (std::size_t k = conflict.div_level; k < stack.size(); ++k) {
        ++summary_slot(stack[k].loop_id).conflicting_write_sites;
      }
    }
  }

  const CharDelta delta =
      chars_.characterize_creation_id(base_stamp(obj_id, base));
  if (delta.problematic()) {
    record(AccessKind::PropWrite, DepClass::Output, key, line, delta, false);
  } else {
    bump_private_writes();
  }
  writes_.put(obj_id, key.id(), chars_.current_id());
}

void DependenceAnalyzer::on_prop_read(std::uint64_t obj_id, js::Atom key,
                                      int line, const interp::BaseProvenance& base) {
  if (!in_focus()) return;
  if (const StampId* write = writes_.find(obj_id, key.id())) {
    const CharDelta flow = chars_.characterize_flow_id(*write);
    if (flow.problematic()) {
      record(AccessKind::PropRead, DepClass::Flow, key, line, flow, false);
      return;
    }
  }
  // Not a flow dependence; count shared-memory reads for the summary.
  const CharDelta delta =
      chars_.characterize_creation_id(base_stamp(obj_id, base));
  if (delta.problematic()) {
    const Stamp& stack = chars_.current();
    for (std::size_t k = delta.div_level; k < stack.size(); ++k) {
      ++summary_slot(stack[k].loop_id).shared_reads;
    }
  }
}

void DependenceAnalyzer::on_memory_batch(const interp::MemoryEvent* events,
                                         std::size_t count) {
  JSCERES_OBS_COUNT("ceres.mode3_events", count);
  // Qualified calls: devirtualized dispatch per event — the whole point of
  // the batch path (the interpreter already paid the one virtual hop for
  // the batch itself).
  for (std::size_t i = 0; i < count; ++i) {
    const interp::MemoryEvent& e = events[i];
    switch (e.kind) {
      case interp::MemoryEvent::Kind::VarWrite:
        DependenceAnalyzer::on_var_write(e.id, e.name, e.line);
        break;
      case interp::MemoryEvent::Kind::VarRead:
        DependenceAnalyzer::on_var_read(e.id, e.name, e.line);
        break;
      case interp::MemoryEvent::Kind::PropWrite:
        DependenceAnalyzer::on_prop_write(e.id, e.name, e.line, e.base);
        break;
      case interp::MemoryEvent::Kind::PropRead:
        DependenceAnalyzer::on_prop_read(e.id, e.name, e.line, e.base);
        break;
    }
  }
}

std::map<int, LoopDependenceSummary> DependenceAnalyzer::summaries() const {
  std::map<int, LoopDependenceSummary> out;
  for (const LoopDependenceSummary& summary : summaries_) {
    if (summary.loop_id != 0) out[summary.loop_id] = summary;
  }
  for (const auto& [loop_id, flag] : chars_.recursive_loops()) {
    (void)flag;
    out[loop_id].loop_id = loop_id;
    out[loop_id].recursion_detected = true;
  }
  return out;
}

std::string DependenceAnalyzer::report() const {
  std::ostringstream out;
  out << "dependence analysis: " << warnings_.size() << " distinct warning site(s)";
  if (options_.focus_loop_id != 0) {
    const js::LoopSite& site = program_.loop(options_.focus_loop_id);
    out << " (focused on " << js::loop_kind_name(site.kind) << " at line "
        << site.line << ")";
  }
  out << "\n";
  for (const auto& warning : warnings_) {
    out << "  " << warning.render(program_) << "\n";
  }
  if (!chars_.recursive_loops().empty()) {
    out << "  note: recursion detected through "
        << chars_.recursive_loops().size()
        << " loop(s); results for those nests were discarded\n";
  }
  if (truncated_) out << "  note: warning list truncated\n";
  return out.str();
}

}  // namespace jsceres::ceres
