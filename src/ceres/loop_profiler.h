#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "interp/hooks.h"
#include "support/clock.h"
#include "support/welford.h"

namespace jsceres::ceres {

/// Per-syntactic-loop dynamic statistics (paper §3.2): how many times the
/// loop was encountered (instances), and total/average/variance of both its
/// running time and its trip count, maintained with Welford's online
/// algorithm. Additionally attributes host-API (DOM/Canvas) touches to the
/// loops open at the time — the raw data behind Table 3's "DOM access"
/// column.
struct LoopStats {
  int loop_id = 0;
  std::int64_t instances = 0;
  Welford trips;        // iterations per instance
  Welford runtime_ns;   // wall time per instance
  std::int64_t dom_touches = 0;
  std::int64_t canvas_touches = 0;

  [[nodiscard]] bool touches_dom() const {
    return dom_touches > 0 || canvas_touches > 0;
  }
  [[nodiscard]] double total_runtime_ns() const { return runtime_ns.total(); }
};

/// Instrumentation mode 2 (paper §3.2): loop profiling.
class LoopProfiler final : public interp::ExecutionHooks {
 public:
  explicit LoopProfiler(const VirtualClock& clock) : clock_(&clock) {}

  void on_loop_enter(const interp::LoopEvent& e) override;
  void on_loop_iteration(const interp::LoopEvent& e) override;
  void on_loop_exit(const interp::LoopEvent& e) override;
  void on_host_access(interp::HostAccess access, const char* api_name) override;

  [[nodiscard]] const std::map<int, LoopStats>& stats() const { return stats_; }
  [[nodiscard]] const LoopStats* stats_for(int loop_id) const {
    const auto it = stats_.find(loop_id);
    return it == stats_.end() ? nullptr : &it->second;
  }

  /// Dynamic nesting edges: (child loop, parent loop) -> occurrence count.
  /// Loops reached through function calls made inside another loop count as
  /// nested — matching the paper's loop-*nest* granularity, which follows
  /// runtime nesting, not syntax.
  [[nodiscard]] const std::map<std::pair<int, int>, std::int64_t>& nesting_edges()
      const {
    return edges_;
  }

  /// Wall time with at least one loop open (same metric as mode 1).
  [[nodiscard]] std::int64_t total_in_loops_ns() const { return in_loops_ns_; }

 private:
  struct OpenLoop {
    int loop_id = 0;
    std::int64_t enter_wall_ns = 0;
    std::int64_t trip_count = 0;
  };

  const VirtualClock* clock_;
  std::map<int, LoopStats> stats_;
  std::map<std::pair<int, int>, std::int64_t> edges_;
  std::vector<OpenLoop> open_;
  std::int64_t in_loops_ns_ = 0;
  std::int64_t outermost_enter_ns_ = 0;
};

}  // namespace jsceres::ceres
