#include "ceres/char_stack.h"

#include <atomic>
#include <mutex>

#include "support/obs.h"

namespace jsceres::ceres {

namespace {

/// Process-wide segment pool: arenas check segments out and return them on
/// reset/destruction, so a resident service running thousands of mode-3
/// sessions reuses a bounded working set instead of churning the
/// allocator. `g_segments_live` counts checked-out segments — the soak
/// harness asserts it returns to zero once every analyzer is gone.
constexpr std::size_t kMaxPooledSegments = 64;

struct SegmentPool {
  std::mutex mutex;
  std::vector<StampArena::Segment*> free;
};

SegmentPool& pool() {
  static SegmentPool* p = new SegmentPool();  // leaked: process lifetime
  return *p;
}

std::atomic<std::size_t> g_segments_live{0};
std::atomic<std::size_t> g_segments_pooled{0};

}  // namespace

void StampArena::grow() {
  StampArena::Segment* segment = nullptr;
  {
    SegmentPool& p = pool();
    const std::lock_guard lock(p.mutex);
    if (!p.free.empty()) {
      segment = p.free.back();
      p.free.pop_back();
      g_segments_pooled.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (segment == nullptr) segment = new Segment();
  segments_.push_back(segment);
  g_segments_live.fetch_add(1, std::memory_order_relaxed);
  JSCERES_OBS_COUNT("ceres.stamp_checkouts", 1);
}

void StampArena::reset() {
  if (!segments_.empty()) {
    SegmentPool& p = pool();
    const std::lock_guard lock(p.mutex);
    for (Segment* segment : segments_) {
      if (p.free.size() < kMaxPooledSegments) {
        p.free.push_back(segment);
        g_segments_pooled.fetch_add(1, std::memory_order_relaxed);
      } else {
        delete segment;
      }
    }
    g_segments_live.fetch_sub(segments_.size(), std::memory_order_relaxed);
  }
  segments_.clear();
  size_ = 0;
}

std::size_t stamp_segments_live() {
  return g_segments_live.load(std::memory_order_relaxed);
}

std::size_t stamp_segments_pooled() {
  return g_segments_pooled.load(std::memory_order_relaxed);
}

std::size_t stamp_bytes_live() {
  return g_segments_live.load(std::memory_order_relaxed) *
         sizeof(StampArena::Segment);
}

std::size_t drain_stamp_segment_pool() {
  SegmentPool& p = pool();
  const std::lock_guard lock(p.mutex);
  const std::size_t freed = p.free.size() * sizeof(StampArena::Segment);
  for (StampArena::Segment* segment : p.free) delete segment;
  g_segments_pooled.fetch_sub(p.free.size(), std::memory_order_relaxed);
  p.free.clear();
  return freed;
}

Characterization characterize_creation(const Stamp& stamp, const Stamp& current) {
  Characterization out;
  out.levels.reserve(current.size());
  bool shared = false;
  for (std::size_t k = 0; k < current.size(); ++k) {
    LevelFlags flags;
    flags.loop_id = current[k].loop_id;
    if (shared) {
      flags.instance_dep = true;
      flags.iteration_dep = true;
    } else if (k < stamp.size()) {
      const bool same_instance = stamp[k].loop_id == current[k].loop_id &&
                                 stamp[k].instance == current[k].instance;
      if (!same_instance) {
        // Created under a different instance of this loop (or a different
        // loop entirely): shared across instances and iterations.
        flags.instance_dep = true;
        flags.iteration_dep = true;
        shared = true;
      } else if (stamp[k].iteration != current[k].iteration) {
        // Created in an earlier iteration of this very loop instance.
        flags.iteration_dep = true;
        shared = true;
      }
      // else: created within this iteration — private so far.
    } else {
      // The loop was not yet open at creation: the datum pre-dates the loop,
      // so all iterations of this instance share it. Each *instance* still
      // gets the version current in its containing iteration (which matched
      // exactly above), hence instance stays "ok".
      flags.iteration_dep = true;
      shared = true;
    }
    out.levels.push_back(flags);
  }
  return out;
}

Characterization characterize_flow(const Stamp& write, const Stamp& read) {
  Characterization out;
  out.levels.reserve(read.size());
  bool shared = false;
  bool past = false;
  for (std::size_t k = 0; k < read.size(); ++k) {
    LevelFlags flags;
    flags.loop_id = read[k].loop_id;
    if (shared) {
      flags.instance_dep = true;
      flags.iteration_dep = true;
    } else if (!past && k < write.size()) {
      const bool same_instance = write[k].loop_id == read[k].loop_id &&
                                 write[k].instance == read[k].instance;
      if (!same_instance) {
        // The write happened under a different (hence already-closed) loop
        // instance at this depth: it strictly precedes the current loop, so
        // it is plain input, not a loop-carried dependence.
        past = true;
      } else if (write[k].iteration != read[k].iteration) {
        flags.iteration_dep = true;
        shared = true;
      }
    }
    // Levels beyond the write stack (or past writes): the value was written
    // before this loop began — loop-invariant input, not a flow dependence.
    out.levels.push_back(flags);
  }
  return out;
}

std::string render_characterization(const Characterization& chr,
                                    const js::Program& program) {
  std::string out;
  for (std::size_t k = 0; k < chr.levels.size(); ++k) {
    const LevelFlags& level = chr.levels[k];
    if (k > 0) out += " -> ";
    const js::LoopSite& site = program.loop(level.loop_id);
    out += std::string(js::loop_kind_name(site.kind)) + "(line " +
           std::to_string(site.line) + ") ";
    out += level.instance_dep ? "dependence" : "ok";
    out += " ";
    out += level.iteration_dep ? "dependence" : "ok";
  }
  return out;
}

}  // namespace jsceres::ceres
