#include "ceres/char_stack.h"

namespace jsceres::ceres {

Characterization characterize_creation(const Stamp& stamp, const Stamp& current) {
  Characterization out;
  out.levels.reserve(current.size());
  bool shared = false;
  for (std::size_t k = 0; k < current.size(); ++k) {
    LevelFlags flags;
    flags.loop_id = current[k].loop_id;
    if (shared) {
      flags.instance_dep = true;
      flags.iteration_dep = true;
    } else if (k < stamp.size()) {
      const bool same_instance = stamp[k].loop_id == current[k].loop_id &&
                                 stamp[k].instance == current[k].instance;
      if (!same_instance) {
        // Created under a different instance of this loop (or a different
        // loop entirely): shared across instances and iterations.
        flags.instance_dep = true;
        flags.iteration_dep = true;
        shared = true;
      } else if (stamp[k].iteration != current[k].iteration) {
        // Created in an earlier iteration of this very loop instance.
        flags.iteration_dep = true;
        shared = true;
      }
      // else: created within this iteration — private so far.
    } else {
      // The loop was not yet open at creation: the datum pre-dates the loop,
      // so all iterations of this instance share it. Each *instance* still
      // gets the version current in its containing iteration (which matched
      // exactly above), hence instance stays "ok".
      flags.iteration_dep = true;
      shared = true;
    }
    out.levels.push_back(flags);
  }
  return out;
}

Characterization characterize_flow(const Stamp& write, const Stamp& read) {
  Characterization out;
  out.levels.reserve(read.size());
  bool shared = false;
  bool past = false;
  for (std::size_t k = 0; k < read.size(); ++k) {
    LevelFlags flags;
    flags.loop_id = read[k].loop_id;
    if (shared) {
      flags.instance_dep = true;
      flags.iteration_dep = true;
    } else if (!past && k < write.size()) {
      const bool same_instance = write[k].loop_id == read[k].loop_id &&
                                 write[k].instance == read[k].instance;
      if (!same_instance) {
        // The write happened under a different (hence already-closed) loop
        // instance at this depth: it strictly precedes the current loop, so
        // it is plain input, not a loop-carried dependence.
        past = true;
      } else if (write[k].iteration != read[k].iteration) {
        flags.iteration_dep = true;
        shared = true;
      }
    }
    // Levels beyond the write stack (or past writes): the value was written
    // before this loop began — loop-invariant input, not a flow dependence.
    out.levels.push_back(flags);
  }
  return out;
}

std::string render_characterization(const Characterization& chr,
                                    const js::Program& program) {
  std::string out;
  for (std::size_t k = 0; k < chr.levels.size(); ++k) {
    const LevelFlags& level = chr.levels[k];
    if (k > 0) out += " -> ";
    const js::LoopSite& site = program.loop(level.loop_id);
    out += std::string(js::loop_kind_name(site.kind)) + "(line " +
           std::to_string(site.line) + ") ";
    out += level.instance_dep ? "dependence" : "ok";
    out += " ";
    out += level.iteration_dep ? "dependence" : "ok";
  }
  return out;
}

}  // namespace jsceres::ceres
