#include "js/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace jsceres::js {

namespace {

const std::unordered_map<std::string_view, Tok>& keyword_table() {
  static const std::unordered_map<std::string_view, Tok> table = {
      {"var", Tok::KwVar},
      {"function", Tok::KwFunction},
      {"return", Tok::KwReturn},
      {"if", Tok::KwIf},
      {"else", Tok::KwElse},
      {"for", Tok::KwFor},
      {"while", Tok::KwWhile},
      {"do", Tok::KwDo},
      {"break", Tok::KwBreak},
      {"continue", Tok::KwContinue},
      {"new", Tok::KwNew},
      {"delete", Tok::KwDelete},
      {"typeof", Tok::KwTypeof},
      {"this", Tok::KwThis},
      {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},
      {"null", Tok::KwNull},
      {"in", Tok::KwIn},
      {"instanceof", Tok::KwInstanceof},
      {"throw", Tok::KwThrow},
      {"try", Tok::KwTry},
      {"catch", Tok::KwCatch},
      {"finally", Tok::KwFinally},
  };
  return table;
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  bool match(char expected) {
    if (at_end() || src_[pos_] != expected) return false;
    advance();
    return true;
  }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_ident_part(char c) {
  return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

void skip_trivia(Cursor& cur) {
  while (!cur.at_end()) {
    const char c = cur.peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
    } else if (c == '/' && cur.peek(1) == '/') {
      while (!cur.at_end() && cur.peek() != '\n') cur.advance();
    } else if (c == '/' && cur.peek(1) == '*') {
      const int start_line = cur.line();
      cur.advance();
      cur.advance();
      while (!(cur.peek() == '*' && cur.peek(1) == '/')) {
        if (cur.at_end()) throw LexError("unterminated block comment", start_line);
        cur.advance();
      }
      cur.advance();
      cur.advance();
    } else {
      return;
    }
  }
}

Token lex_number(Cursor& cur) {
  const int line = cur.line();
  const std::size_t start = cur.pos();
  if (cur.peek() == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
    cur.advance();
    cur.advance();
    while (std::isxdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
    const std::string text(cur.slice(start));
    return Token{Tok::Number, text, Atom(),
                 double(std::strtoll(text.c_str(), nullptr, 16)), line};
  }
  while (std::isdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
  if (cur.peek() == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
    cur.advance();
    while (std::isdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
  }
  if (cur.peek() == 'e' || cur.peek() == 'E') {
    std::size_t ahead = 1;
    if (cur.peek(1) == '+' || cur.peek(1) == '-') ahead = 2;
    if (std::isdigit(static_cast<unsigned char>(cur.peek(ahead)))) {
      for (std::size_t i = 0; i < ahead; ++i) cur.advance();
      while (std::isdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
    }
  }
  const std::string text(cur.slice(start));
  return Token{Tok::Number, text, Atom(), std::strtod(text.c_str(), nullptr), line};
}

Token lex_string(Cursor& cur) {
  const int line = cur.line();
  const char quote = cur.advance();
  std::string value;
  while (true) {
    if (cur.at_end()) throw LexError("unterminated string literal", line);
    const char c = cur.advance();
    if (c == quote) break;
    if (c == '\n') throw LexError("newline in string literal", line);
    if (c == '\\') {
      if (cur.at_end()) throw LexError("unterminated escape", line);
      const char esc = cur.advance();
      switch (esc) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        case 'r': value += '\r'; break;
        case '0': value += '\0'; break;
        case '\\': value += '\\'; break;
        case '\'': value += '\''; break;
        case '"': value += '"'; break;
        default: value += esc; break;
      }
    } else {
      value += c;
    }
  }
  Token token{Tok::String, std::string(), Atom::intern(value), 0, line};
  token.text = std::move(value);
  return token;
}

}  // namespace

const char* tok_name(Tok kind) {
  switch (kind) {
    case Tok::Number: return "number";
    case Tok::String: return "string";
    case Tok::Ident: return "identifier";
    case Tok::KwVar: return "'var'";
    case Tok::KwFunction: return "'function'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwFor: return "'for'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwDo: return "'do'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwNew: return "'new'";
    case Tok::KwDelete: return "'delete'";
    case Tok::KwTypeof: return "'typeof'";
    case Tok::KwThis: return "'this'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwNull: return "'null'";
    case Tok::KwIn: return "'in'";
    case Tok::KwInstanceof: return "'instanceof'";
    case Tok::KwThrow: return "'throw'";
    case Tok::KwTry: return "'try'";
    case Tok::KwCatch: return "'catch'";
    case Tok::KwFinally: return "'finally'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semicolon: return "';'";
    case Tok::Comma: return "','";
    case Tok::Dot: return "'.'";
    case Tok::Colon: return "':'";
    case Tok::Question: return "'?'";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::PercentAssign: return "'%='";
    case Tok::AmpAssign: return "'&='";
    case Tok::PipeAssign: return "'|='";
    case Tok::CaretAssign: return "'^='";
    case Tok::ShlAssign: return "'<<='";
    case Tok::ShrAssign: return "'>>='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::EqEqEq: return "'==='";
    case Tok::NotEqEq: return "'!=='";
    case Tok::Lt: return "'<'";
    case Tok::Gt: return "'>'";
    case Tok::Le: return "'<='";
    case Tok::Ge: return "'>='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
    case Tok::BitAnd: return "'&'";
    case Tok::BitOr: return "'|'";
    case Tok::BitXor: return "'^'";
    case Tok::BitNot: return "'~'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::UShr: return "'>>>'";
    case Tok::Eof: return "end of input";
  }
  return "?";
}

std::vector<Token> lex(std::string_view source) {
  return lex(source, EngineLimits{});
}

std::vector<Token> lex(std::string_view source, const EngineLimits& limits) {
  if (limits.max_source_bytes > 0 && source.size() > limits.max_source_bytes) {
    throw LexError("source too large: " + std::to_string(source.size()) +
                       " > " + std::to_string(limits.max_source_bytes) +
                       " bytes",
                   1);
  }
  std::vector<Token> tokens;
  Cursor cur(source);
  while (true) {
    skip_trivia(cur);
    if (cur.at_end()) break;
    if (limits.max_tokens > 0 && tokens.size() >= limits.max_tokens) {
      throw LexError("token limit exceeded (" +
                         std::to_string(limits.max_tokens) + " tokens)",
                     cur.line());
    }
    const char c = cur.peek();
    const int line = cur.line();

    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lex_number(cur));
      continue;
    }
    if (c == '"' || c == '\'') {
      tokens.push_back(lex_string(cur));
      continue;
    }
    if (is_ident_start(c)) {
      const std::size_t start = cur.pos();
      while (is_ident_part(cur.peek())) cur.advance();
      const std::string_view text = cur.slice(start);
      const auto it = keyword_table().find(text);
      const Tok kind = it != keyword_table().end() ? it->second : Tok::Ident;
      tokens.push_back(Token{kind, std::string(text), Atom::intern(text), 0, line});
      continue;
    }

    cur.advance();
    const auto push = [&](Tok kind) {
      tokens.push_back(Token{kind, "", Atom(), 0, line});
    };
    switch (c) {
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case ';': push(Tok::Semicolon); break;
      case ',': push(Tok::Comma); break;
      case '.': push(Tok::Dot); break;
      case ':': push(Tok::Colon); break;
      case '?': push(Tok::Question); break;
      case '~': push(Tok::BitNot); break;
      case '+':
        push(cur.match('+') ? Tok::PlusPlus
                            : (cur.match('=') ? Tok::PlusAssign : Tok::Plus));
        break;
      case '-':
        push(cur.match('-') ? Tok::MinusMinus
                            : (cur.match('=') ? Tok::MinusAssign : Tok::Minus));
        break;
      case '*': push(cur.match('=') ? Tok::StarAssign : Tok::Star); break;
      case '/': push(cur.match('=') ? Tok::SlashAssign : Tok::Slash); break;
      case '%': push(cur.match('=') ? Tok::PercentAssign : Tok::Percent); break;
      case '=':
        if (cur.match('=')) {
          push(cur.match('=') ? Tok::EqEqEq : Tok::EqEq);
        } else {
          push(Tok::Assign);
        }
        break;
      case '!':
        if (cur.match('=')) {
          push(cur.match('=') ? Tok::NotEqEq : Tok::NotEq);
        } else {
          push(Tok::Not);
        }
        break;
      case '<':
        if (cur.match('<')) {
          push(cur.match('=') ? Tok::ShlAssign : Tok::Shl);
        } else {
          push(cur.match('=') ? Tok::Le : Tok::Lt);
        }
        break;
      case '>':
        if (cur.match('>')) {
          if (cur.match('>')) {
            push(Tok::UShr);
          } else {
            push(cur.match('=') ? Tok::ShrAssign : Tok::Shr);
          }
        } else {
          push(cur.match('=') ? Tok::Ge : Tok::Gt);
        }
        break;
      case '&':
        push(cur.match('&') ? Tok::AndAnd
                            : (cur.match('=') ? Tok::AmpAssign : Tok::BitAnd));
        break;
      case '|':
        push(cur.match('|') ? Tok::OrOr
                            : (cur.match('=') ? Tok::PipeAssign : Tok::BitOr));
        break;
      case '^': push(cur.match('=') ? Tok::CaretAssign : Tok::BitXor); break;
      default:
        throw LexError(std::string("unexpected character '") + c + "'", line);
    }
  }
  tokens.push_back(Token{Tok::Eof, "", Atom(), 0, cur.line()});
  return tokens;
}

}  // namespace jsceres::js
