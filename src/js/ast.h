#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "js/atom.h"

namespace jsceres::js {

/// AST node discriminator. The interpreter dispatches on this enum; keeping
/// the AST as plain data (instead of virtual eval methods) lets multiple
/// consumers — interpreter, static loop scanner, printer — share one tree.
enum class NodeKind {
  // Expressions
  NumberLit,
  StringLit,
  BoolLit,
  NullLit,
  Ident,
  ThisExpr,
  ArrayLit,
  ObjectLit,
  FunctionExpr,
  Call,
  New,
  Member,
  Assign,
  Conditional,
  Binary,
  Logical,
  Unary,
  Update,
  Sequence,
  // Statements
  VarDecl,
  FunctionDecl,
  ExprStmt,
  If,
  For,
  ForIn,
  While,
  DoWhile,
  Block,
  Return,
  Break,
  Continue,
  Empty,
  Throw,
  TryCatch,
};

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  BitAnd, BitOr, BitXor, Shl, Shr, UShr,
  Lt, Gt, Le, Ge,
  Eq, Ne, StrictEq, StrictNe,
  In, InstanceOf,
};

enum class LogicalOp { And, Or };

enum class UnaryOp { Neg, Plus, Not, BitNot, TypeOf, Delete };

/// Compound-assignment operator; `None` means plain `=`.
enum class AssignOp { None, Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr };

struct Node {
  NodeKind kind;
  int line = 0;

  // Nodes are owned as ExprPtr/StmtPtr (pointers to the base class), so
  // deletion must be virtual — without this, derived destructors never run
  // and every child vector leaks (new-delete-type-mismatch under ASan).
  // Dispatch stays kind-tagged; the vtable exists only for destruction.
  virtual ~Node() = default;

 protected:
  explicit Node(NodeKind k) : kind(k) {}
};

struct Expr : Node {
 protected:
  using Node::Node;
};

struct Stmt : Node {
 protected:
  using Node::Node;
};

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct NumberLit : Expr {
  NumberLit() : Expr(NodeKind::NumberLit) {}
  double value = 0;
};

struct StringLit : Expr {
  StringLit() : Expr(NodeKind::StringLit) {}
  Atom value;  // interned once at lex time; eval shares the text, no copy
};

struct BoolLit : Expr {
  BoolLit() : Expr(NodeKind::BoolLit) {}
  bool value = false;
};

struct NullLit : Expr {
  NullLit() : Expr(NodeKind::NullLit) {}
};

/// Static resolution of one identifier reference, filled in by
/// `resolve_scopes` after parsing. `hops >= 0` means the binding lives in a
/// statically known activation: walk `hops` environments up the chain and
/// index `slot` directly — no name hashing at all. `hops < 0` means the name
/// resolves to the global object (or is late-bound); `ref_id` then indexes a
/// per-interpreter cache of resolved global slot indices, so even globals pay
/// the hash lookup only once per program point.
/// Sentinel for SlotRef::ref_id / Member::ic_id on nodes that never went
/// through resolve_scopes (e.g. freshly synthesized by an AST rewriter): the
/// interpreter then falls back to fully dynamic resolution with no caching.
inline constexpr std::uint32_t kNoCacheId = 0xffffffffu;

struct SlotRef {
  std::int32_t hops = -1;
  std::uint32_t slot = 0;
  std::uint32_t ref_id = kNoCacheId;
};

struct Ident : Expr {
  Ident() : Expr(NodeKind::Ident) {}
  Atom name;
  SlotRef ref;
};

struct ThisExpr : Expr {
  ThisExpr() : Expr(NodeKind::ThisExpr) {}
};

struct ArrayLit : Expr {
  ArrayLit() : Expr(NodeKind::ArrayLit) {}
  std::vector<ExprPtr> elements;
};

struct ObjectLit : Expr {
  ObjectLit() : Expr(NodeKind::ObjectLit) {}
  std::vector<std::pair<Atom, ExprPtr>> properties;
};

struct FunctionExpr;  // below, shares FunctionNode

/// Pre-computed activation layout of a function scope, filled in by
/// `resolve_scopes` from the same declaration simulation that assigns
/// (hops, slot) coordinates. The interpreter stamps a fresh activation from
/// this template — one vector copy — instead of re-running the
/// per-name declare scan (params, hoisted vars, hoisted functions) on every
/// call. `names` is the final slot order; `param_slots[i]` / `fn_slots[j]`
/// say where parameter i / hoisted function j land (duplicates share their
/// first slot, mirroring Environment::declare).
struct ActivationLayout {
  /// Provenance of each slot's entry value, proved by the resolver's
  /// declaration simulation. Param and Fn slots are written at function
  /// entry strictly before any body statement can read them — so stamping
  /// an activation can materialize their entry value directly and skip the
  /// undefined zero-fill (the ROADMAP "written before read" lever). Zero
  /// slots (plain hoisted vars) genuinely need the undefined fill: `var x`
  /// is readable before its first assignment.
  enum class SlotInit : std::uint8_t { Zero, Param, Fn };
  struct SlotSource {
    SlotInit kind = SlotInit::Zero;
    std::uint32_t index = 0;  // param index / hoisted-function index
  };

  std::vector<Atom> names;
  std::vector<std::uint32_t> param_slots;
  std::vector<std::uint32_t> fn_slots;
  /// Parallel to `names`: how the interpreter initializes each slot.
  std::vector<SlotSource> inits;
  /// False when hoisted-function slots are not strictly increasing (a
  /// function re-binds a parameter or an earlier function's name): the
  /// interpreter then stores functions with the legacy ordered loop so
  /// object-creation order (ids, hook events, cost ticks) is bit-identical
  /// to the declare-scan path.
  bool fns_in_slot_order = true;
};

/// A function body shared by declarations and expressions. The parser
/// pre-computes the `var`-hoisted local names (JavaScript has function
/// scoping, which is load-bearing for the paper's dependence analysis: a
/// `var` declared textually inside a loop still names one binding shared by
/// every iteration) and assigns a process-unique `fn_id` used by the
/// sampling profiler and the call-stack instrumentation.
struct FunctionNode {
  Atom name;  // empty for anonymous function expressions
  std::vector<Atom> params;
  std::vector<Atom> hoisted_vars;     // all `var` names in this function
  std::vector<const struct FunctionDecl*> hoisted_functions;
  StmtPtr body;  // always a Block
  int fn_id = 0;
  int line = 0;
  /// Activation template (null on ASTs synthesized without resolve_scopes;
  /// the interpreter then falls back to the per-call declare scan).
  std::unique_ptr<ActivationLayout> layout;
};

struct FunctionExpr : Expr {
  FunctionExpr() : Expr(NodeKind::FunctionExpr) {}
  std::unique_ptr<FunctionNode> fn;
};

struct Call : Expr {
  Call() : Expr(NodeKind::Call) {}
  ExprPtr callee;
  std::vector<ExprPtr> args;
};

struct New : Expr {
  New() : Expr(NodeKind::New) {}
  ExprPtr callee;
  std::vector<ExprPtr> args;
};

struct Member : Expr {
  Member() : Expr(NodeKind::Member) {}
  ExprPtr object;
  Atom property;  // used when !computed
  ExprPtr index;  // used when computed
  bool computed = false;
  /// Index of this access site's inline cache in the interpreter's IC table
  /// (assigned by resolve_scopes to every non-computed member).
  std::uint32_t ic_id = kNoCacheId;
};

struct Assign : Expr {
  Assign() : Expr(NodeKind::Assign) {}
  AssignOp op = AssignOp::None;
  ExprPtr target;  // Ident or Member
  ExprPtr value;
};

struct Conditional : Expr {
  Conditional() : Expr(NodeKind::Conditional) {}
  ExprPtr condition;
  ExprPtr consequent;
  ExprPtr alternate;
};

struct Binary : Expr {
  Binary() : Expr(NodeKind::Binary) {}
  BinaryOp op = BinaryOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Logical : Expr {
  Logical() : Expr(NodeKind::Logical) {}
  LogicalOp op = LogicalOp::And;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Unary : Expr {
  Unary() : Expr(NodeKind::Unary) {}
  UnaryOp op = UnaryOp::Neg;
  ExprPtr operand;
};

struct Update : Expr {
  Update() : Expr(NodeKind::Update) {}
  bool increment = true;
  bool prefix = false;
  ExprPtr target;  // Ident or Member
};

struct Sequence : Expr {
  Sequence() : Expr(NodeKind::Sequence) {}
  std::vector<ExprPtr> exprs;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct VarDecl : Stmt {
  VarDecl() : Stmt(NodeKind::VarDecl) {}
  struct Declarator {
    Atom name;
    SlotRef ref;
    ExprPtr init;  // may be null
  };
  std::vector<Declarator> declarators;
};

struct FunctionDecl : Stmt {
  FunctionDecl() : Stmt(NodeKind::FunctionDecl) {}
  std::unique_ptr<FunctionNode> fn;
};

struct ExprStmt : Stmt {
  ExprStmt() : Stmt(NodeKind::ExprStmt) {}
  ExprPtr expr;
};

struct If : Stmt {
  If() : Stmt(NodeKind::If) {}
  ExprPtr condition;
  StmtPtr consequent;
  StmtPtr alternate;  // may be null
};

/// Loop kind recorded in the loop table; used by the dependence reports to
/// render the paper's "while(line 24) ok ok -> for(line 6) ok dependence"
/// characterization lists.
enum class LoopKind { For, ForIn, While, DoWhile };

struct For : Stmt {
  For() : Stmt(NodeKind::For) {}
  StmtPtr init;       // VarDecl or ExprStmt or null
  ExprPtr condition;  // may be null (infinite)
  ExprPtr update;     // may be null
  StmtPtr body;
  int loop_id = 0;
};

struct ForIn : Stmt {
  ForIn() : Stmt(NodeKind::ForIn) {}
  Atom var_name;
  SlotRef var_ref;
  bool declares_var = false;
  ExprPtr object;
  StmtPtr body;
  int loop_id = 0;
};

struct While : Stmt {
  While() : Stmt(NodeKind::While) {}
  ExprPtr condition;
  StmtPtr body;
  int loop_id = 0;
};

struct DoWhile : Stmt {
  DoWhile() : Stmt(NodeKind::DoWhile) {}
  ExprPtr condition;
  StmtPtr body;
  int loop_id = 0;
};

struct Block : Stmt {
  Block() : Stmt(NodeKind::Block) {}
  std::vector<StmtPtr> statements;
};

struct Return : Stmt {
  Return() : Stmt(NodeKind::Return) {}
  ExprPtr value;  // may be null
};

struct Break : Stmt {
  Break() : Stmt(NodeKind::Break) {}
};

struct Continue : Stmt {
  Continue() : Stmt(NodeKind::Continue) {}
};

struct Empty : Stmt {
  Empty() : Stmt(NodeKind::Empty) {}
};

struct Throw : Stmt {
  Throw() : Stmt(NodeKind::Throw) {}
  ExprPtr value;
};

struct TryCatch : Stmt {
  TryCatch() : Stmt(NodeKind::TryCatch) {}
  StmtPtr try_block;
  Atom catch_param;
  StmtPtr catch_block;  // may be null when only finally is present
  StmtPtr finally_block;  // may be null
};

// ---------------------------------------------------------------------------
// Program and loop table
// ---------------------------------------------------------------------------

/// Static description of one syntactic loop, recorded at parse time.
struct LoopSite {
  int loop_id = 0;
  LoopKind kind = LoopKind::For;
  int line = 0;
  int enclosing_fn_id = 0;  // 0 == top level
  /// The loop's AST node (owned by the Program; valid for its lifetime).
  const Stmt* stmt = nullptr;
};

/// The induction variable of a canonical `for` (the identifier incremented
/// or reassigned in the update clause), or "" when the loop has none.
std::string induction_variable_of(const LoopSite& site);

const char* loop_kind_name(LoopKind kind);

/// One-pass static scope resolution: annotates every identifier reference
/// (Ident, VarDecl declarator, ForIn loop variable) with a (hops, slot)
/// coordinate when the binding's activation layout is statically known, and
/// assigns global-cache / inline-cache ids. `parse` calls this automatically;
/// AST-rewriting tools (js/refactor) must call it again after mutating a
/// program. Idempotent.
void resolve_scopes(struct Program& program);

/// A parsed compilation unit. Owns the AST, the loop table, and the
/// top-level hoisting information (top-level `var`s become globals).
struct Program {
  std::vector<StmtPtr> statements;
  std::vector<Atom> hoisted_vars;
  std::vector<const FunctionDecl*> hoisted_functions;
  std::vector<LoopSite> loops;        // indexed by loop_id - 1
  std::vector<std::string> fn_names;  // indexed by fn_id - 1
  std::string source_name;
  /// Sizes of the per-interpreter caches (filled by resolve_scopes).
  std::uint32_t global_ref_count = 0;  // SlotRef::ref_id domain
  std::uint32_t ic_count = 0;          // Member::ic_id domain

  [[nodiscard]] const LoopSite& loop(int loop_id) const {
    return loops.at(std::size_t(loop_id) - 1);
  }
  [[nodiscard]] int loop_count() const { return int(loops.size()); }

  /// First loop whose source line equals `line`, or 0 when none matches.
  [[nodiscard]] int loop_id_at_line(int line) const {
    for (const auto& site : loops) {
      if (site.line == line) return site.loop_id;
    }
    return 0;
  }
};

}  // namespace jsceres::js
