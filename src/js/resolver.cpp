// Static scope pre-resolution (see resolve_scopes in ast.h).
//
// The resolver simulates, at parse time, exactly the declaration sequence the
// interpreter performs when it materializes an activation environment
// (interp::Interpreter::call_js_function + hoist_into): parameters in order,
// then hoisted `var`s, then hoisted function declarations — duplicates reuse
// their first slot, mirroring Environment::declare. Because the engine's
// subset has no `with`/`eval`, the runtime environment chain is a pure
// function of lexical structure (one environment per function call, one per
// entered catch clause), so a (hops, slot) pair computed here is valid for
// every execution of the annotated program point.
//
// Names that fall through every function/catch scope resolve to the global
// environment. The global environment's layout is NOT statically known (the
// stdlib and host bindings are installed at interpreter construction), so
// global references instead get a dense `ref_id` that indexes a
// per-interpreter cache of resolved global slot indices — the hash lookup
// happens once per program point per interpreter, not once per execution.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "js/ast.h"

namespace jsceres::js {

namespace {

class Resolver {
 public:
  explicit Resolver(Program& program) : program_(program) {}

  void run() {
    program_.global_ref_count = 0;
    program_.ic_count = 0;
    scopes_.push_back(Scope{Scope::Global, {}});
    for (auto& stmt : program_.statements) walk_stmt(*stmt);
    scopes_.pop_back();
  }

 private:
  struct Scope {
    enum Kind { Global, Function, Catch };
    Kind kind;
    std::unordered_map<Atom, std::uint32_t> slots;

    std::uint32_t declare(Atom name) {
      const auto it = slots.find(name);
      if (it != slots.end()) return it->second;
      const auto slot = std::uint32_t(slots.size());
      slots.emplace(name, slot);
      return slot;
    }
  };

  void resolve_ref(Atom name, SlotRef& ref) {
    for (std::size_t i = scopes_.size(); i-- > 0;) {
      Scope& scope = scopes_[i];
      if (scope.kind == Scope::Global) break;
      const auto it = scope.slots.find(name);
      if (it != scope.slots.end()) {
        ref.hops = std::int32_t(scopes_.size() - 1 - i);
        ref.slot = it->second;
        return;
      }
    }
    ref.hops = -1;
    ref.slot = 0;
    ref.ref_id = program_.global_ref_count++;
  }

  void walk_function(FunctionNode& fn) {
    Scope scope{Scope::Function, {}};
    auto layout = std::make_unique<ActivationLayout>();
    layout->param_slots.reserve(fn.params.size());
    for (const Atom& param : fn.params) {
      layout->param_slots.push_back(scope.declare(param));
    }
    for (const Atom& var : fn.hoisted_vars) scope.declare(var);
    layout->fn_slots.reserve(fn.hoisted_functions.size());
    for (const FunctionDecl* decl : fn.hoisted_functions) {
      layout->fn_slots.push_back(scope.declare(decl->fn->name));
    }
    // Invert the scope map into slot order: the activation template the
    // interpreter stamps per call (resolve_scopes is idempotent, so a
    // re-resolution after an AST rewrite just rebuilds it).
    layout->names.resize(scope.slots.size());
    for (const auto& [name, slot] : scope.slots) {
      layout->names[slot] = name;
    }
    // Entry-value provenance per slot. Later writers win, mirroring the
    // declare sequence (params in order, then hoisted functions): a
    // duplicate parameter name keeps the LAST argument, a function
    // re-binding a parameter shadows it at entry.
    layout->inits.assign(layout->names.size(), ActivationLayout::SlotSource{});
    for (std::uint32_t i = 0; i < layout->param_slots.size(); ++i) {
      layout->inits[layout->param_slots[i]] = {ActivationLayout::SlotInit::Param, i};
    }
    for (std::uint32_t j = 0; j < layout->fn_slots.size(); ++j) {
      layout->inits[layout->fn_slots[j]] = {ActivationLayout::SlotInit::Fn, j};
      // Inline function materialization only when slot order == declaration
      // order, so closure-object creation order is unchanged.
      if (j > 0 && layout->fn_slots[j] <= layout->fn_slots[j - 1]) {
        layout->fns_in_slot_order = false;
      }
    }
    if (!layout->fns_in_slot_order) {
      // Fall back: functions stored by the interpreter's ordered loop; their
      // slots revert to the undefined fill so the loop's operator= sees a
      // constructed value.
      for (const std::uint32_t slot : layout->fn_slots) {
        layout->inits[slot] = ActivationLayout::SlotSource{};
      }
    }
    fn.layout = std::move(layout);
    scopes_.push_back(std::move(scope));
    walk_stmt(*fn.body);
    scopes_.pop_back();
  }

  void walk_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case NodeKind::Block:
        for (auto& s : static_cast<Block&>(stmt).statements) walk_stmt(*s);
        return;
      case NodeKind::ExprStmt:
        walk_expr(*static_cast<ExprStmt&>(stmt).expr);
        return;
      case NodeKind::VarDecl:
        for (auto& d : static_cast<VarDecl&>(stmt).declarators) {
          resolve_ref(d.name, d.ref);
          if (d.init) walk_expr(*d.init);
        }
        return;
      case NodeKind::FunctionDecl: {
        // Hoisted functions are materialized at function entry and close
        // over the function-entry environment — a catch clause textually
        // enclosing the declaration contributes no scope level.
        std::vector<Scope> suspended;
        while (scopes_.back().kind == Scope::Catch) {
          suspended.push_back(std::move(scopes_.back()));
          scopes_.pop_back();
        }
        walk_function(*static_cast<FunctionDecl&>(stmt).fn);
        while (!suspended.empty()) {
          scopes_.push_back(std::move(suspended.back()));
          suspended.pop_back();
        }
        return;
      }
      case NodeKind::If: {
        auto& node = static_cast<If&>(stmt);
        walk_expr(*node.condition);
        walk_stmt(*node.consequent);
        if (node.alternate) walk_stmt(*node.alternate);
        return;
      }
      case NodeKind::For: {
        auto& node = static_cast<For&>(stmt);
        if (node.init) walk_stmt(*node.init);
        if (node.condition) walk_expr(*node.condition);
        if (node.update) walk_expr(*node.update);
        walk_stmt(*node.body);
        return;
      }
      case NodeKind::ForIn: {
        auto& node = static_cast<ForIn&>(stmt);
        resolve_ref(node.var_name, node.var_ref);
        walk_expr(*node.object);
        walk_stmt(*node.body);
        return;
      }
      case NodeKind::While: {
        auto& node = static_cast<While&>(stmt);
        walk_expr(*node.condition);
        walk_stmt(*node.body);
        return;
      }
      case NodeKind::DoWhile: {
        auto& node = static_cast<DoWhile&>(stmt);
        walk_stmt(*node.body);
        walk_expr(*node.condition);
        return;
      }
      case NodeKind::Return: {
        auto& node = static_cast<Return&>(stmt);
        if (node.value) walk_expr(*node.value);
        return;
      }
      case NodeKind::Throw:
        walk_expr(*static_cast<Throw&>(stmt).value);
        return;
      case NodeKind::TryCatch: {
        auto& node = static_cast<TryCatch&>(stmt);
        walk_stmt(*node.try_block);
        if (node.catch_block) {
          Scope scope{Scope::Catch, {}};
          scope.declare(node.catch_param);
          scopes_.push_back(std::move(scope));
          walk_stmt(*node.catch_block);
          scopes_.pop_back();
        }
        if (node.finally_block) walk_stmt(*node.finally_block);
        return;
      }
      case NodeKind::Break:
      case NodeKind::Continue:
      case NodeKind::Empty:
        return;
      default:
        return;
    }
  }

  void walk_expr(Expr& expr) {
    switch (expr.kind) {
      case NodeKind::Ident: {
        auto& ident = static_cast<Ident&>(expr);
        resolve_ref(ident.name, ident.ref);
        return;
      }
      case NodeKind::ArrayLit:
        for (auto& e : static_cast<ArrayLit&>(expr).elements) walk_expr(*e);
        return;
      case NodeKind::ObjectLit:
        for (auto& [key, value] : static_cast<ObjectLit&>(expr).properties) {
          walk_expr(*value);
        }
        return;
      case NodeKind::FunctionExpr:
        // Function expressions close over the environment current at their
        // evaluation site, so catch scopes on the stack stay in force.
        walk_function(*static_cast<FunctionExpr&>(expr).fn);
        return;
      case NodeKind::Call: {
        auto& node = static_cast<Call&>(expr);
        walk_expr(*node.callee);
        for (auto& arg : node.args) walk_expr(*arg);
        return;
      }
      case NodeKind::New: {
        auto& node = static_cast<New&>(expr);
        walk_expr(*node.callee);
        for (auto& arg : node.args) walk_expr(*arg);
        return;
      }
      case NodeKind::Member: {
        auto& node = static_cast<Member&>(expr);
        if (!node.computed) node.ic_id = program_.ic_count++;
        walk_expr(*node.object);
        if (node.index) walk_expr(*node.index);
        return;
      }
      case NodeKind::Assign: {
        auto& node = static_cast<Assign&>(expr);
        walk_expr(*node.target);
        walk_expr(*node.value);
        return;
      }
      case NodeKind::Conditional: {
        auto& node = static_cast<Conditional&>(expr);
        walk_expr(*node.condition);
        walk_expr(*node.consequent);
        walk_expr(*node.alternate);
        return;
      }
      case NodeKind::Binary: {
        auto& node = static_cast<Binary&>(expr);
        walk_expr(*node.lhs);
        walk_expr(*node.rhs);
        return;
      }
      case NodeKind::Logical: {
        auto& node = static_cast<Logical&>(expr);
        walk_expr(*node.lhs);
        walk_expr(*node.rhs);
        return;
      }
      case NodeKind::Unary:
        walk_expr(*static_cast<Unary&>(expr).operand);
        return;
      case NodeKind::Update:
        walk_expr(*static_cast<Update&>(expr).target);
        return;
      case NodeKind::Sequence:
        for (auto& e : static_cast<Sequence&>(expr).exprs) walk_expr(*e);
        return;
      case NodeKind::NumberLit:
      case NodeKind::StringLit:
      case NodeKind::BoolLit:
      case NodeKind::NullLit:
      case NodeKind::ThisExpr:
        return;
      default:
        return;
    }
  }

  Program& program_;
  std::vector<Scope> scopes_;
};

}  // namespace

void resolve_scopes(Program& program) { Resolver(program).run(); }

}  // namespace jsceres::js
