#include "js/refactor.h"

#include <map>
#include <memory>
#include <set>

#include "js/ast_printer.h"

namespace jsceres::js {

namespace {

/// Does `stmt` (recursively, not crossing function boundaries) contain a
/// break/continue/return that would escape the loop body?
bool has_escaping_control_flow(const Stmt& stmt) {
  switch (stmt.kind) {
    case NodeKind::Break:
    case NodeKind::Continue:
    case NodeKind::Return:
      return true;
    case NodeKind::Block: {
      for (const auto& s : static_cast<const Block&>(stmt).statements) {
        if (has_escaping_control_flow(*s)) return true;
      }
      return false;
    }
    case NodeKind::If: {
      const auto& node = static_cast<const If&>(stmt);
      if (has_escaping_control_flow(*node.consequent)) return true;
      return node.alternate && has_escaping_control_flow(*node.alternate);
    }
    // break/continue inside a *nested* loop bind to that loop: safe.
    case NodeKind::For:
    case NodeKind::ForIn:
    case NodeKind::While:
    case NodeKind::DoWhile:
      return false;
    case NodeKind::TryCatch: {
      const auto& node = static_cast<const TryCatch&>(stmt);
      if (has_escaping_control_flow(*node.try_block)) return true;
      if (node.catch_block && has_escaping_control_flow(*node.catch_block)) return true;
      return node.finally_block && has_escaping_control_flow(*node.finally_block);
    }
    default:
      return false;
  }
}

using IdentCounts = std::map<std::string, int>;

void collect_idents_expr(const Expr& expr, IdentCounts& out);

void collect_idents_stmt(const Stmt& stmt, IdentCounts& out) {
  switch (stmt.kind) {
    case NodeKind::Block:
      for (const auto& s : static_cast<const Block&>(stmt).statements) {
        collect_idents_stmt(*s, out);
      }
      break;
    case NodeKind::VarDecl:
      for (const auto& d : static_cast<const VarDecl&>(stmt).declarators) {
        ++out[d.name];
        if (d.init) collect_idents_expr(*d.init, out);
      }
      break;
    case NodeKind::FunctionDecl: {
      const auto& fn = *static_cast<const FunctionDecl&>(stmt).fn;
      ++out[fn.name];
      collect_idents_stmt(*fn.body, out);
      break;
    }
    case NodeKind::ExprStmt:
      collect_idents_expr(*static_cast<const ExprStmt&>(stmt).expr, out);
      break;
    case NodeKind::If: {
      const auto& node = static_cast<const If&>(stmt);
      collect_idents_expr(*node.condition, out);
      collect_idents_stmt(*node.consequent, out);
      if (node.alternate) collect_idents_stmt(*node.alternate, out);
      break;
    }
    case NodeKind::For: {
      const auto& node = static_cast<const For&>(stmt);
      if (node.init) collect_idents_stmt(*node.init, out);
      if (node.condition) collect_idents_expr(*node.condition, out);
      if (node.update) collect_idents_expr(*node.update, out);
      collect_idents_stmt(*node.body, out);
      break;
    }
    case NodeKind::ForIn: {
      const auto& node = static_cast<const ForIn&>(stmt);
      ++out[node.var_name];
      collect_idents_expr(*node.object, out);
      collect_idents_stmt(*node.body, out);
      break;
    }
    case NodeKind::While: {
      const auto& node = static_cast<const While&>(stmt);
      collect_idents_expr(*node.condition, out);
      collect_idents_stmt(*node.body, out);
      break;
    }
    case NodeKind::DoWhile: {
      const auto& node = static_cast<const DoWhile&>(stmt);
      collect_idents_expr(*node.condition, out);
      collect_idents_stmt(*node.body, out);
      break;
    }
    case NodeKind::Return: {
      const auto& node = static_cast<const Return&>(stmt);
      if (node.value) collect_idents_expr(*node.value, out);
      break;
    }
    case NodeKind::Throw:
      collect_idents_expr(*static_cast<const Throw&>(stmt).value, out);
      break;
    case NodeKind::TryCatch: {
      const auto& node = static_cast<const TryCatch&>(stmt);
      collect_idents_stmt(*node.try_block, out);
      if (node.catch_block) collect_idents_stmt(*node.catch_block, out);
      if (node.finally_block) collect_idents_stmt(*node.finally_block, out);
      break;
    }
    default:
      break;
  }
}

void collect_idents_expr(const Expr& expr, IdentCounts& out) {
  switch (expr.kind) {
    case NodeKind::Ident:
      ++out[static_cast<const Ident&>(expr).name];
      break;
    case NodeKind::ArrayLit:
      for (const auto& e : static_cast<const ArrayLit&>(expr).elements) {
        collect_idents_expr(*e, out);
      }
      break;
    case NodeKind::ObjectLit:
      for (const auto& [key, value] : static_cast<const ObjectLit&>(expr).properties) {
        (void)key;
        collect_idents_expr(*value, out);
      }
      break;
    case NodeKind::FunctionExpr:
      collect_idents_stmt(*static_cast<const FunctionExpr&>(expr).fn->body, out);
      break;
    case NodeKind::Call: {
      const auto& node = static_cast<const Call&>(expr);
      collect_idents_expr(*node.callee, out);
      for (const auto& a : node.args) collect_idents_expr(*a, out);
      break;
    }
    case NodeKind::New: {
      const auto& node = static_cast<const New&>(expr);
      collect_idents_expr(*node.callee, out);
      for (const auto& a : node.args) collect_idents_expr(*a, out);
      break;
    }
    case NodeKind::Member: {
      const auto& node = static_cast<const Member&>(expr);
      collect_idents_expr(*node.object, out);
      if (node.computed) collect_idents_expr(*node.index, out);
      break;
    }
    case NodeKind::Assign: {
      const auto& node = static_cast<const Assign&>(expr);
      collect_idents_expr(*node.target, out);
      collect_idents_expr(*node.value, out);
      break;
    }
    case NodeKind::Conditional: {
      const auto& node = static_cast<const Conditional&>(expr);
      collect_idents_expr(*node.condition, out);
      collect_idents_expr(*node.consequent, out);
      collect_idents_expr(*node.alternate, out);
      break;
    }
    case NodeKind::Binary: {
      const auto& node = static_cast<const Binary&>(expr);
      collect_idents_expr(*node.lhs, out);
      collect_idents_expr(*node.rhs, out);
      break;
    }
    case NodeKind::Logical: {
      const auto& node = static_cast<const Logical&>(expr);
      collect_idents_expr(*node.lhs, out);
      collect_idents_expr(*node.rhs, out);
      break;
    }
    case NodeKind::Unary:
      collect_idents_expr(*static_cast<const Unary&>(expr).operand, out);
      break;
    case NodeKind::Update:
      collect_idents_expr(*static_cast<const Update&>(expr).target, out);
      break;
    case NodeKind::Sequence:
      for (const auto& e : static_cast<const Sequence&>(expr).exprs) {
        collect_idents_expr(*e, out);
      }
      break;
    default:
      break;
  }
}

/// Does the body write `name` (assignment or update; declarations excluded)?
bool writes_variable(const Stmt& stmt, const std::string& name);

bool expr_writes_variable(const Expr& expr, const std::string& name) {
  switch (expr.kind) {
    case NodeKind::Assign: {
      const auto& node = static_cast<const Assign&>(expr);
      if (node.target->kind == NodeKind::Ident &&
          static_cast<const Ident&>(*node.target).name == name) {
        return true;
      }
      return expr_writes_variable(*node.value, name) ||
             expr_writes_variable(*node.target, name);
    }
    case NodeKind::Update: {
      const auto& node = static_cast<const Update&>(expr);
      return node.target->kind == NodeKind::Ident &&
             static_cast<const Ident&>(*node.target).name == name;
    }
    case NodeKind::Call: {
      const auto& node = static_cast<const Call&>(expr);
      if (expr_writes_variable(*node.callee, name)) return true;
      for (const auto& a : node.args) {
        if (expr_writes_variable(*a, name)) return true;
      }
      return false;
    }
    case NodeKind::Binary: {
      const auto& node = static_cast<const Binary&>(expr);
      return expr_writes_variable(*node.lhs, name) ||
             expr_writes_variable(*node.rhs, name);
    }
    case NodeKind::Logical: {
      const auto& node = static_cast<const Logical&>(expr);
      return expr_writes_variable(*node.lhs, name) ||
             expr_writes_variable(*node.rhs, name);
    }
    case NodeKind::Conditional: {
      const auto& node = static_cast<const Conditional&>(expr);
      return expr_writes_variable(*node.condition, name) ||
             expr_writes_variable(*node.consequent, name) ||
             expr_writes_variable(*node.alternate, name);
    }
    case NodeKind::Member: {
      const auto& node = static_cast<const Member&>(expr);
      if (expr_writes_variable(*node.object, name)) return true;
      return node.computed && expr_writes_variable(*node.index, name);
    }
    case NodeKind::Sequence: {
      for (const auto& e : static_cast<const Sequence&>(expr).exprs) {
        if (expr_writes_variable(*e, name)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

bool writes_variable(const Stmt& stmt, const std::string& name) {
  switch (stmt.kind) {
    case NodeKind::Block:
      for (const auto& s : static_cast<const Block&>(stmt).statements) {
        if (writes_variable(*s, name)) return true;
      }
      return false;
    case NodeKind::ExprStmt:
      return expr_writes_variable(*static_cast<const ExprStmt&>(stmt).expr, name);
    case NodeKind::If: {
      const auto& node = static_cast<const If&>(stmt);
      if (expr_writes_variable(*node.condition, name)) return true;
      if (writes_variable(*node.consequent, name)) return true;
      return node.alternate && writes_variable(*node.alternate, name);
    }
    case NodeKind::VarDecl:
      for (const auto& d : static_cast<const VarDecl&>(stmt).declarators) {
        if (d.init && expr_writes_variable(*d.init, name)) return true;
      }
      return false;
    case NodeKind::For: {
      const auto& node = static_cast<const For&>(stmt);
      if (node.init && writes_variable(*node.init, name)) return true;
      if (node.condition && expr_writes_variable(*node.condition, name)) return true;
      if (node.update && expr_writes_variable(*node.update, name)) return true;
      return writes_variable(*node.body, name);
    }
    case NodeKind::While:
      return writes_variable(*static_cast<const While&>(stmt).body, name);
    default:
      return false;
  }
}

/// Collect `var` names declared directly in the body (not inside nested
/// functions) — the variables the rewrite will privatize.
void collect_body_vars(const Stmt& stmt, std::vector<Atom>& out) {
  switch (stmt.kind) {
    case NodeKind::Block:
      for (const auto& s : static_cast<const Block&>(stmt).statements) {
        collect_body_vars(*s, out);
      }
      break;
    case NodeKind::VarDecl:
      for (const auto& d : static_cast<const VarDecl&>(stmt).declarators) {
        out.push_back(d.name);
      }
      break;
    case NodeKind::If: {
      const auto& node = static_cast<const If&>(stmt);
      collect_body_vars(*node.consequent, out);
      if (node.alternate) collect_body_vars(*node.alternate, out);
      break;
    }
    case NodeKind::For: {
      const auto& node = static_cast<const For&>(stmt);
      if (node.init) collect_body_vars(*node.init, out);
      collect_body_vars(*node.body, out);
      break;
    }
    case NodeKind::ForIn: {
      const auto& node = static_cast<const ForIn&>(stmt);
      if (node.declares_var) out.push_back(node.var_name);
      collect_body_vars(*node.body, out);
      break;
    }
    case NodeKind::While:
      collect_body_vars(*static_cast<const While&>(stmt).body, out);
      break;
    case NodeKind::DoWhile:
      collect_body_vars(*static_cast<const DoWhile&>(stmt).body, out);
      break;
    default:
      break;
  }
}

/// The canonical-loop pattern match.
struct Candidate {
  std::string index_name;
  std::string array_name;
};

bool match_canonical(const For& loop, Candidate* out) {
  // init: `var i = 0` or `i = 0`
  std::string index;
  if (loop.init == nullptr) return false;
  if (loop.init->kind == NodeKind::VarDecl) {
    const auto& decl = static_cast<const VarDecl&>(*loop.init);
    if (decl.declarators.size() != 1 || !decl.declarators[0].init) return false;
    if (decl.declarators[0].init->kind != NodeKind::NumberLit) return false;
    if (static_cast<const NumberLit&>(*decl.declarators[0].init).value != 0) return false;
    index = decl.declarators[0].name;
  } else if (loop.init->kind == NodeKind::ExprStmt) {
    const auto& expr = *static_cast<const ExprStmt&>(*loop.init).expr;
    if (expr.kind != NodeKind::Assign) return false;
    const auto& assign = static_cast<const Assign&>(expr);
    if (assign.op != AssignOp::None || assign.target->kind != NodeKind::Ident) return false;
    if (assign.value->kind != NodeKind::NumberLit ||
        static_cast<const NumberLit&>(*assign.value).value != 0) {
      return false;
    }
    index = static_cast<const Ident&>(*assign.target).name;
  } else {
    return false;
  }

  // condition: `i < arr.length`
  if (!loop.condition || loop.condition->kind != NodeKind::Binary) return false;
  const auto& cond = static_cast<const Binary&>(*loop.condition);
  if (cond.op != BinaryOp::Lt) return false;
  if (cond.lhs->kind != NodeKind::Ident ||
      static_cast<const Ident&>(*cond.lhs).name != index) {
    return false;
  }
  if (cond.rhs->kind != NodeKind::Member) return false;
  const auto& len = static_cast<const Member&>(*cond.rhs);
  if (len.computed || len.property != "length") return false;
  if (len.object->kind != NodeKind::Ident) return false;
  const std::string array = static_cast<const Ident&>(*len.object).name;

  // update: `i++`, `++i`, `i += 1` or `i = i + 1`
  if (!loop.update) return false;
  bool inc_ok = false;
  if (loop.update->kind == NodeKind::Update) {
    const auto& update = static_cast<const Update&>(*loop.update);
    inc_ok = update.increment && update.target->kind == NodeKind::Ident &&
             static_cast<const Ident&>(*update.target).name == index;
  } else if (loop.update->kind == NodeKind::Assign) {
    const auto& assign = static_cast<const Assign&>(*loop.update);
    if (assign.target->kind == NodeKind::Ident &&
        static_cast<const Ident&>(*assign.target).name == index) {
      if (assign.op == AssignOp::Add && assign.value->kind == NodeKind::NumberLit &&
          static_cast<const NumberLit&>(*assign.value).value == 1) {
        inc_ok = true;
      }
      if (assign.op == AssignOp::None && assign.value->kind == NodeKind::Binary) {
        const auto& sum = static_cast<const Binary&>(*assign.value);
        inc_ok = sum.op == BinaryOp::Add && sum.lhs->kind == NodeKind::Ident &&
                 static_cast<const Ident&>(*sum.lhs).name == index &&
                 sum.rhs->kind == NodeKind::NumberLit &&
                 static_cast<const NumberLit&>(*sum.rhs).value == 1;
      }
    }
  }
  if (!inc_ok) return false;

  out->index_name = index;
  out->array_name = array;
  return true;
}

/// Replace reads of `arr[i]` by `elem` inside an expression tree.
void substitute_element_expr(ExprPtr& expr, const Candidate& c,
                             const std::string& elem_name);

bool is_element_access(const Expr& expr, const Candidate& c) {
  if (expr.kind != NodeKind::Member) return false;
  const auto& member = static_cast<const Member&>(expr);
  if (!member.computed) return false;
  if (member.object->kind != NodeKind::Ident ||
      static_cast<const Ident&>(*member.object).name != c.array_name) {
    return false;
  }
  return member.index->kind == NodeKind::Ident &&
         static_cast<const Ident&>(*member.index).name == c.index_name;
}

void substitute_element_stmt(Stmt& stmt, const Candidate& c,
                             const std::string& elem_name) {
  switch (stmt.kind) {
    case NodeKind::Block:
      for (auto& s : static_cast<Block&>(stmt).statements) {
        substitute_element_stmt(*s, c, elem_name);
      }
      break;
    case NodeKind::ExprStmt:
      substitute_element_expr(static_cast<ExprStmt&>(stmt).expr, c, elem_name);
      break;
    case NodeKind::VarDecl:
      for (auto& d : static_cast<VarDecl&>(stmt).declarators) {
        if (d.init) substitute_element_expr(d.init, c, elem_name);
      }
      break;
    case NodeKind::If: {
      auto& node = static_cast<If&>(stmt);
      substitute_element_expr(node.condition, c, elem_name);
      substitute_element_stmt(*node.consequent, c, elem_name);
      if (node.alternate) substitute_element_stmt(*node.alternate, c, elem_name);
      break;
    }
    case NodeKind::Return: {
      auto& node = static_cast<Return&>(stmt);
      if (node.value) substitute_element_expr(node.value, c, elem_name);
      break;
    }
    case NodeKind::While: {
      auto& node = static_cast<While&>(stmt);
      substitute_element_expr(node.condition, c, elem_name);
      substitute_element_stmt(*node.body, c, elem_name);
      break;
    }
    case NodeKind::For: {
      auto& node = static_cast<For&>(stmt);
      if (node.init) substitute_element_stmt(*node.init, c, elem_name);
      if (node.condition) substitute_element_expr(node.condition, c, elem_name);
      if (node.update) substitute_element_expr(node.update, c, elem_name);
      substitute_element_stmt(*node.body, c, elem_name);
      break;
    }
    default:
      break;
  }
}

void substitute_element_expr(ExprPtr& expr, const Candidate& c,
                             const std::string& elem_name) {
  if (is_element_access(*expr, c)) {
    auto ident = std::make_unique<Ident>();
    ident->line = expr->line;
    ident->name = Atom::intern(elem_name);
    expr = std::move(ident);
    return;
  }
  switch (expr->kind) {
    case NodeKind::Assign: {
      auto& node = static_cast<Assign&>(*expr);
      // Writes through arr[i] stay as-is (forEach callbacks may still write
      // the array via the closure); only the value side is substituted.
      substitute_element_expr(node.value, c, elem_name);
      if (node.target->kind == NodeKind::Member) {
        auto& member = static_cast<Member&>(*node.target);
        substitute_element_expr(member.object, c, elem_name);
        if (member.computed && !is_element_access(*node.target, c)) {
          substitute_element_expr(member.index, c, elem_name);
        }
      }
      break;
    }
    case NodeKind::Binary: {
      auto& node = static_cast<Binary&>(*expr);
      substitute_element_expr(node.lhs, c, elem_name);
      substitute_element_expr(node.rhs, c, elem_name);
      break;
    }
    case NodeKind::Logical: {
      auto& node = static_cast<Logical&>(*expr);
      substitute_element_expr(node.lhs, c, elem_name);
      substitute_element_expr(node.rhs, c, elem_name);
      break;
    }
    case NodeKind::Conditional: {
      auto& node = static_cast<Conditional&>(*expr);
      substitute_element_expr(node.condition, c, elem_name);
      substitute_element_expr(node.consequent, c, elem_name);
      substitute_element_expr(node.alternate, c, elem_name);
      break;
    }
    case NodeKind::Call: {
      auto& node = static_cast<Call&>(*expr);
      substitute_element_expr(node.callee, c, elem_name);
      for (auto& a : node.args) substitute_element_expr(a, c, elem_name);
      break;
    }
    case NodeKind::New: {
      auto& node = static_cast<New&>(*expr);
      substitute_element_expr(node.callee, c, elem_name);
      for (auto& a : node.args) substitute_element_expr(a, c, elem_name);
      break;
    }
    case NodeKind::Member: {
      auto& node = static_cast<Member&>(*expr);
      substitute_element_expr(node.object, c, elem_name);
      if (node.computed) substitute_element_expr(node.index, c, elem_name);
      break;
    }
    case NodeKind::Unary:
      substitute_element_expr(static_cast<Unary&>(*expr).operand, c, elem_name);
      break;
    case NodeKind::ArrayLit:
      for (auto& e : static_cast<ArrayLit&>(*expr).elements) {
        substitute_element_expr(e, c, elem_name);
      }
      break;
    case NodeKind::ObjectLit:
      for (auto& [key, value] : static_cast<ObjectLit&>(*expr).properties) {
        (void)key;
        substitute_element_expr(value, c, elem_name);
      }
      break;
    case NodeKind::Sequence:
      for (auto& e : static_cast<Sequence&>(*expr).exprs) {
        substitute_element_expr(e, c, elem_name);
      }
      break;
    default:
      break;
  }
}

class Rewriter {
 public:
  Rewriter(Program& program, RefactorReport& report)
      : program_(program), report_(report) {
    // Names used anywhere (to keep privatization safe and elem fresh).
    for (const auto& stmt : program.statements) {
      collect_idents_stmt(*stmt, all_names_);
    }
  }

  void run() {
    rewrite_list(program_.statements);
  }

 private:
  void rewrite_list(std::vector<StmtPtr>& statements) {
    for (auto& stmt : statements) {
      rewrite_children(*stmt);
      if (stmt->kind == NodeKind::For) {
        StmtPtr replacement = try_rewrite(static_cast<For&>(*stmt));
        if (replacement) stmt = std::move(replacement);
      }
    }
  }

  void rewrite_children(Stmt& stmt) {
    switch (stmt.kind) {
      case NodeKind::Block:
        rewrite_list(static_cast<Block&>(stmt).statements);
        break;
      case NodeKind::FunctionDecl:
        rewrite_children(*static_cast<FunctionDecl&>(stmt).fn->body);
        break;
      case NodeKind::If: {
        auto& node = static_cast<If&>(stmt);
        rewrite_children(*node.consequent);
        if (node.alternate) rewrite_children(*node.alternate);
        break;
      }
      case NodeKind::For:
        rewrite_children(*static_cast<For&>(stmt).body);
        break;
      case NodeKind::ForIn:
        rewrite_children(*static_cast<ForIn&>(stmt).body);
        break;
      case NodeKind::While:
        rewrite_children(*static_cast<While&>(stmt).body);
        break;
      case NodeKind::DoWhile:
        rewrite_children(*static_cast<DoWhile&>(stmt).body);
        break;
      default:
        break;
    }
  }

  StmtPtr try_rewrite(For& loop) {
    Candidate candidate;
    if (!match_canonical(loop, &candidate)) return nullptr;
    ++report_.candidates;

    const std::string at = "loop at line " + std::to_string(loop.line);
    if (has_escaping_control_flow(*loop.body)) {
      report_.notes.push_back(at + ": skipped (break/continue/return in body)");
      return nullptr;
    }
    if (writes_variable(*loop.body, candidate.index_name) ||
        writes_variable(*loop.body, candidate.array_name)) {
      report_.notes.push_back(at + ": skipped (body writes index or array binding)");
      return nullptr;
    }
    std::vector<Atom> body_vars;
    collect_body_vars(*loop.body, body_vars);
    // Privatization must not change behaviour: a body-declared var may not
    // be referenced anywhere outside this loop. Compare whole-program
    // occurrence counts against in-loop counts.
    IdentCounts loop_counts;
    collect_idents_stmt(loop, loop_counts);
    for (const auto& name : body_vars) {
      const auto whole = all_names_.find(name);
      const auto inside = loop_counts.find(name);
      const int outside_uses = (whole == all_names_.end() ? 0 : whole->second) -
                               (inside == loop_counts.end() ? 0 : inside->second);
      if (outside_uses > 0) {
        report_.notes.push_back(at + ": skipped (var " + name +
                                " is referenced outside the loop)");
        return nullptr;
      }
    }

    // Fresh element name.
    std::string elem = "elem";
    int suffix = 0;
    while (all_names_.count(elem) > 0) elem = "elem" + std::to_string(++suffix);
    ++all_names_[elem];

    substitute_element_stmt(*loop.body, candidate, elem);

    // Build: arr.forEach(function (elem, i) { body });
    auto fn = std::make_unique<FunctionNode>();
    fn->line = loop.line;
    fn->fn_id = int(program_.fn_names.size()) + 1;
    program_.fn_names.push_back("<forEach callback>");
    fn->params = {Atom::intern(elem), Atom::intern(candidate.index_name)};
    fn->hoisted_vars = std::move(body_vars);
    fn->body = std::move(loop.body);
    if (fn->body->kind != NodeKind::Block) {
      auto block = std::make_unique<Block>();
      block->line = loop.line;
      block->statements.push_back(std::move(fn->body));
      fn->body = std::move(block);
    }

    auto fn_expr = std::make_unique<FunctionExpr>();
    fn_expr->line = loop.line;
    fn_expr->fn = std::move(fn);

    auto callee = std::make_unique<Member>();
    callee->line = loop.line;
    auto array_ident = std::make_unique<Ident>();
    array_ident->line = loop.line;
    array_ident->name = Atom::intern(candidate.array_name);
    callee->object = std::move(array_ident);
    callee->property = Atom::intern("forEach");

    auto call = std::make_unique<Call>();
    call->line = loop.line;
    call->callee = std::move(callee);
    call->args.push_back(std::move(fn_expr));

    auto stmt = std::make_unique<ExprStmt>();
    stmt->line = loop.line;
    stmt->expr = std::move(call);

    ++report_.rewritten;
    report_.notes.push_back(at + ": rewritten to " + candidate.array_name +
                            ".forEach(...)");
    return stmt;
  }

  Program& program_;
  RefactorReport& report_;
  IdentCounts all_names_;
};

}  // namespace

RefactorReport to_functional(Program& program) {
  RefactorReport report;
  Rewriter rewriter(program, report);
  rewriter.run();
  // The rewrite moved loop bodies into fresh callback functions, which
  // changes every (hops, slot) coordinate inside them — re-annotate.
  resolve_scopes(program);
  report.source = print(program);
  return report;
}

}  // namespace jsceres::js
