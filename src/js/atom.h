#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>

namespace jsceres::js {

namespace detail {
/// Backing record of one interned string in the process-wide atom table.
/// Atom handles are raw pointers into it, so equality is pointer identity
/// and the hash is computed exactly once.
///
/// Lifetime comes in two flavors. Atoms interned outside any AtomScope are
/// *immortal* (`refs >= kImmortalRefs`) — the one-shot behavior the whole
/// engine was built on. Atoms first interned under an AtomScope are
/// *transient*: `refs` counts the scopes (≈ sessions) that touched them,
/// and when the last one ends the entry is unlinked from the table and its
/// text freed once the epoch domain says no in-flight reader can remain.
/// The record itself is recycled through a free list (ids are reused), so
/// a resident service's atom table stays bounded by its *live* name set.
struct AtomData {
  /// Any value at or above this marks the atom immortal. Concurrent
  /// promotion can race a scope's reference bump by a few counts, so the
  /// check is a threshold, not an equality.
  static constexpr std::uint32_t kImmortalRefs = 0x40000000u;

  std::shared_ptr<const std::string> text;
  std::size_t hash = 0;
  std::uint32_t id = 0;
  std::atomic<std::uint32_t> refs{kImmortalRefs};
};
}  // namespace detail

/// An interned string handle. The lexer interns every identifier and string
/// literal; the AST, environments and object shapes store Atoms instead of
/// std::string, so steady-state name comparisons are pointer compares and
/// map lookups reuse the precomputed hash.
///
/// Atoms convert implicitly to `const std::string&` (the table keeps the
/// text alive for as long as any scope references the atom — forever, for
/// atoms interned outside an AtomScope), which keeps printers, reports and
/// hook consumers source-compatible.
class Atom {
 public:
  /// The empty atom ("").
  Atom() : data_(empty_data()) {}

  /// Intern `text`, creating the table entry on first use. Thread-safe.
  static Atom intern(std::string_view text);

  /// Look up an existing atom without creating one. Returns false when
  /// `text` was never interned (useful for property probes: a key that was
  /// never interned cannot name a stored property).
  static bool try_find(std::string_view text, Atom* out);

  [[nodiscard]] const std::string& str() const { return *data_->text; }
  [[nodiscard]] const std::shared_ptr<const std::string>& str_ptr() const {
    return data_->text;
  }
  [[nodiscard]] std::size_t hash() const { return data_->hash; }
  /// Dense id (intern order); stable while the atom is live. A reclaimed
  /// slot's id is reused, but never while any scope still references it —
  /// so within one session, ids are unambiguous dedup keys.
  [[nodiscard]] std::uint32_t id() const { return data_->id; }
  [[nodiscard]] bool empty() const { return data_->text->empty(); }
  [[nodiscard]] std::size_t size() const { return data_->text->size(); }

  operator const std::string&() const { return str(); }  // NOLINT(google-explicit-constructor)

  /// Identity compare: two atoms are equal iff they intern the same text.
  bool operator==(const Atom& other) const { return data_ == other.data_; }
  bool operator!=(const Atom& other) const { return data_ != other.data_; }

  friend bool operator==(const Atom& a, std::string_view s) { return a.str() == s; }
  friend bool operator==(const Atom& a, const std::string& s) { return a.str() == s; }
  friend bool operator==(const Atom& a, const char* s) { return a.str() == s; }

  // Concatenation (std::string's templated operator+ can't see the implicit
  // conversion, so spell these out for printers and report formatting).
  friend std::string operator+(const std::string& lhs, const Atom& rhs) {
    return lhs + rhs.str();
  }
  friend std::string operator+(const Atom& lhs, const std::string& rhs) {
    return lhs.str() + rhs;
  }
  friend std::string operator+(const char* lhs, const Atom& rhs) {
    return lhs + rhs.str();
  }
  friend std::string operator+(const Atom& lhs, const char* rhs) {
    return lhs.str() + rhs;
  }

 private:
  explicit Atom(const detail::AtomData* data) : data_(data) {}
  static const detail::AtomData* empty_data();

  const detail::AtomData* data_;
};

/// Per-session atom lifetime scope (thread-local, like
/// AllocationLedger::Scope). While a scope is installed on a thread, every
/// atom interned or looked up on that thread is recorded as *referenced by
/// this scope*: first-time interns become transient (refcounted) instead of
/// immortal, and re-finding an existing transient atom adds this scope to
/// its reference count exactly once. When the scope ends, its references
/// are dropped; atoms that reach zero are unlinked from the table and their
/// storage handed to the epoch domain for deferred reclamation.
///
/// Threads with no scope installed keep the historical behavior: their
/// interns are immortal, and a scopeless lookup that hits another session's
/// transient atom *promotes* it to immortal (the conservative direction —
/// never reclaim what an untracked holder might keep).
///
/// Scopes nest (the previous scope is restored) and must be destroyed on
/// the thread that created them.
class AtomScope {
 public:
  AtomScope();
  ~AtomScope();
  AtomScope(const AtomScope&) = delete;
  AtomScope& operator=(const AtomScope&) = delete;

  /// The scope installed on the current thread, or nullptr.
  static AtomScope* current() noexcept;

  /// Distinct transient atoms this scope references (diagnostics/tests).
  [[nodiscard]] std::size_t touched() const { return touched_.size(); }

  /// Record `data` as referenced by this scope (bumps refs on first note).
  /// Internal: called by the atom table under its lock, not by users.
  void note(detail::AtomData* data);

 private:
  std::unordered_set<detail::AtomData*> touched_;
  AtomScope* previous_ = nullptr;
};

/// Number of *live* atoms in the table (interned minus reclaimed).
std::size_t atom_table_size();
/// Approximate bytes held by live atoms (record + text + map overhead).
/// Unlinked entries stop counting here and show up in the epoch domain's
/// deferred_bytes() until reclaimed.
std::size_t atom_table_bytes();
/// Entries unlinked from the table but still awaiting epoch reclamation.
std::size_t atom_table_retired_pending();

}  // namespace jsceres::js

template <>
struct std::hash<jsceres::js::Atom> {
  std::size_t operator()(const jsceres::js::Atom& atom) const noexcept {
    return atom.hash();
  }
};
