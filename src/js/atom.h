#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace jsceres::js {

namespace detail {
/// Immutable backing record of one interned string. Lives forever in the
/// process-wide atom table; Atom handles are raw pointers into it, so
/// equality is pointer identity and the hash is computed exactly once.
struct AtomData {
  std::shared_ptr<const std::string> text;
  std::size_t hash = 0;
  std::uint32_t id = 0;
};
}  // namespace detail

/// An interned string handle. The lexer interns every identifier and string
/// literal; the AST, environments and object shapes store Atoms instead of
/// std::string, so steady-state name comparisons are pointer compares and
/// map lookups reuse the precomputed hash.
///
/// Atoms convert implicitly to `const std::string&` (the table keeps the
/// text alive for the process lifetime), which keeps printers, reports and
/// hook consumers source-compatible.
class Atom {
 public:
  /// The empty atom ("").
  Atom() : data_(empty_data()) {}

  /// Intern `text`, creating the table entry on first use. Thread-safe.
  static Atom intern(std::string_view text);

  /// Look up an existing atom without creating one. Returns false when
  /// `text` was never interned (useful for property probes: a key that was
  /// never interned cannot name a stored property).
  static bool try_find(std::string_view text, Atom* out);

  [[nodiscard]] const std::string& str() const { return *data_->text; }
  [[nodiscard]] const std::shared_ptr<const std::string>& str_ptr() const {
    return data_->text;
  }
  [[nodiscard]] std::size_t hash() const { return data_->hash; }
  /// Dense id (intern order); stable for the process lifetime.
  [[nodiscard]] std::uint32_t id() const { return data_->id; }
  [[nodiscard]] bool empty() const { return data_->text->empty(); }
  [[nodiscard]] std::size_t size() const { return data_->text->size(); }

  operator const std::string&() const { return str(); }  // NOLINT(google-explicit-constructor)

  /// Identity compare: two atoms are equal iff they intern the same text.
  bool operator==(const Atom& other) const { return data_ == other.data_; }
  bool operator!=(const Atom& other) const { return data_ != other.data_; }

  friend bool operator==(const Atom& a, std::string_view s) { return a.str() == s; }
  friend bool operator==(const Atom& a, const std::string& s) { return a.str() == s; }
  friend bool operator==(const Atom& a, const char* s) { return a.str() == s; }

  // Concatenation (std::string's templated operator+ can't see the implicit
  // conversion, so spell these out for printers and report formatting).
  friend std::string operator+(const std::string& lhs, const Atom& rhs) {
    return lhs + rhs.str();
  }
  friend std::string operator+(const Atom& lhs, const std::string& rhs) {
    return lhs.str() + rhs;
  }
  friend std::string operator+(const char* lhs, const Atom& rhs) {
    return lhs + rhs.str();
  }
  friend std::string operator+(const Atom& lhs, const char* rhs) {
    return lhs.str() + rhs;
  }

 private:
  explicit Atom(const detail::AtomData* data) : data_(data) {}
  static const detail::AtomData* empty_data();

  const detail::AtomData* data_;
};

/// Number of atoms interned so far (diagnostics / tests).
std::size_t atom_table_size();

}  // namespace jsceres::js

template <>
struct std::hash<jsceres::js::Atom> {
  std::size_t operator()(const jsceres::js::Atom& atom) const noexcept {
    return atom.hash();
  }
};
