#include "js/parser.h"

#include <cassert>
#include <utility>

#include "js/lexer.h"

namespace jsceres::js {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string source_name, int max_depth)
      : tokens_(std::move(tokens)), max_depth_(max_depth) {
    program_.source_name = std::move(source_name);
  }

  Program run() {
    // The top level behaves like a function body for hoisting purposes.
    HoistScope top(this, /*fn_id=*/0);
    while (!check(Tok::Eof)) {
      program_.statements.push_back(parse_statement());
    }
    program_.hoisted_vars = std::move(top.vars);
    program_.hoisted_functions = std::move(top.functions);
    return std::move(program_);
  }

 private:
  // -- hoisting ------------------------------------------------------------

  /// Collects `var` names and function declarations for the function being
  /// parsed. JavaScript's function scoping means every `var` in the body —
  /// including ones textually inside loops — belongs to the enclosing
  /// function's environment; the interpreter materializes them at call time.
  struct HoistScope {
    explicit HoistScope(Parser* parser, int fn_id)
        : parser(parser), previous(parser->hoist_), fn_id(fn_id) {
      parser->hoist_ = this;
    }
    ~HoistScope() { parser->hoist_ = previous; }

    void add_var(Atom name) {
      for (const auto& existing : vars) {
        if (existing == name) return;
      }
      vars.push_back(name);
    }

    Parser* parser;
    HoistScope* previous;
    int fn_id;
    std::vector<Atom> vars;
    std::vector<const FunctionDecl*> functions;
  };

  // -- token plumbing --------------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  [[nodiscard]] bool check(Tok kind) const { return peek().kind == kind; }
  const Token& advance() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }
  bool match(Tok kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  const Token& expect(Tok kind, const char* context) {
    if (!check(kind)) {
      throw ParseError(std::string("expected ") + tok_name(kind) + " in " +
                           context + ", found " + tok_name(peek().kind),
                       peek().line);
    }
    return advance();
  }
  [[nodiscard]] int line() const { return peek().line; }

  // -- recursion cap ---------------------------------------------------------

  /// Counts live recursive-descent frames. Guards sit at the three points
  /// every recursion cycle passes through — parse_statement (blocks,
  /// if/loop bodies), parse_unary (prefix-operator chains) and
  /// parse_primary (parens, literals, `new` chains, function expressions) —
  /// so crafted nesting trips a recoverable ParseError long before the
  /// native stack runs out.
  struct DepthGuard {
    explicit DepthGuard(Parser* parser) : parser(parser) {
      if (++parser->depth_ > parser->max_depth_) {
        throw ParseError("nesting too deep (limit " +
                             std::to_string(parser->max_depth_) + " levels)",
                         parser->line());
      }
    }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  // -- statements ------------------------------------------------------------

  StmtPtr parse_statement() {
    const DepthGuard guard(this);
    switch (peek().kind) {
      case Tok::LBrace: return parse_block();
      case Tok::KwVar: {
        auto decl = parse_var_decl();
        expect(Tok::Semicolon, "variable declaration");
        return decl;
      }
      case Tok::KwFunction: return parse_function_decl();
      case Tok::KwIf: return parse_if();
      case Tok::KwFor: return parse_for();
      case Tok::KwWhile: return parse_while();
      case Tok::KwDo: return parse_do_while();
      case Tok::KwReturn: return parse_return();
      case Tok::KwBreak: {
        auto node = std::make_unique<Break>();
        node->line = line();
        advance();
        expect(Tok::Semicolon, "break statement");
        return node;
      }
      case Tok::KwContinue: {
        auto node = std::make_unique<Continue>();
        node->line = line();
        advance();
        expect(Tok::Semicolon, "continue statement");
        return node;
      }
      case Tok::Semicolon: {
        auto node = std::make_unique<Empty>();
        node->line = line();
        advance();
        return node;
      }
      case Tok::KwThrow: {
        auto node = std::make_unique<Throw>();
        node->line = line();
        advance();
        node->value = parse_expression();
        expect(Tok::Semicolon, "throw statement");
        return node;
      }
      case Tok::KwTry: return parse_try();
      default: {
        auto node = std::make_unique<ExprStmt>();
        node->line = line();
        node->expr = parse_expression();
        expect(Tok::Semicolon, "expression statement");
        return node;
      }
    }
  }

  StmtPtr parse_block() {
    auto block = std::make_unique<Block>();
    block->line = line();
    expect(Tok::LBrace, "block");
    while (!check(Tok::RBrace)) {
      if (check(Tok::Eof)) throw ParseError("unterminated block", block->line);
      block->statements.push_back(parse_statement());
    }
    expect(Tok::RBrace, "block");
    return block;
  }

  std::unique_ptr<VarDecl> parse_var_decl() {
    auto decl = std::make_unique<VarDecl>();
    decl->line = line();
    expect(Tok::KwVar, "variable declaration");
    while (true) {
      VarDecl::Declarator d;
      d.name = expect(Tok::Ident, "variable declaration").atom;
      hoist_->add_var(d.name);
      if (match(Tok::Assign)) d.init = parse_assignment();
      decl->declarators.push_back(std::move(d));
      if (!match(Tok::Comma)) break;
    }
    return decl;
  }

  std::unique_ptr<FunctionNode> parse_function_tail(bool require_name) {
    auto fn = std::make_unique<FunctionNode>();
    fn->line = line();
    fn->fn_id = next_fn_id_++;
    if (check(Tok::Ident)) {
      fn->name = advance().atom;
    } else if (require_name) {
      throw ParseError("function declaration requires a name", line());
    }
    program_.fn_names.push_back(fn->name.empty() ? std::string("<anonymous>")
                                                 : fn->name.str());
    expect(Tok::LParen, "function parameter list");
    if (!check(Tok::RParen)) {
      while (true) {
        fn->params.push_back(expect(Tok::Ident, "parameter list").atom);
        if (!match(Tok::Comma)) break;
      }
    }
    expect(Tok::RParen, "function parameter list");
    {
      HoistScope scope(this, fn->fn_id);
      fn->body = parse_block();
      fn->hoisted_vars = std::move(scope.vars);
      fn->hoisted_functions = std::move(scope.functions);
    }
    return fn;
  }

  StmtPtr parse_function_decl() {
    auto decl = std::make_unique<FunctionDecl>();
    decl->line = line();
    expect(Tok::KwFunction, "function declaration");
    decl->fn = parse_function_tail(/*require_name=*/true);
    hoist_->functions.push_back(decl.get());
    return decl;
  }

  StmtPtr parse_if() {
    auto node = std::make_unique<If>();
    node->line = line();
    expect(Tok::KwIf, "if statement");
    expect(Tok::LParen, "if condition");
    node->condition = parse_expression();
    expect(Tok::RParen, "if condition");
    node->consequent = parse_statement();
    if (match(Tok::KwElse)) node->alternate = parse_statement();
    return node;
  }

  int register_loop(LoopKind kind, int loop_line, const Stmt* node = nullptr) {
    LoopSite site;
    site.loop_id = int(program_.loops.size()) + 1;
    site.kind = kind;
    site.line = loop_line;
    site.enclosing_fn_id = hoist_->fn_id;
    site.stmt = node;
    program_.loops.push_back(site);
    return site.loop_id;
  }

  StmtPtr parse_for() {
    const int for_line = line();
    expect(Tok::KwFor, "for statement");
    expect(Tok::LParen, "for header");

    // Disambiguate for-in from the classic three-clause form.
    if (check(Tok::KwVar) && peek(1).kind == Tok::Ident && peek(2).kind == Tok::KwIn) {
      auto node = std::make_unique<ForIn>();
      node->line = for_line;
      advance();  // var
      node->var_name = advance().atom;
      node->declares_var = true;
      hoist_->add_var(node->var_name);
      advance();  // in
      node->object = parse_expression();
      expect(Tok::RParen, "for-in header");
      node->loop_id = register_loop(LoopKind::ForIn, for_line, node.get());
      node->body = parse_statement();
      return node;
    }
    if (check(Tok::Ident) && peek(1).kind == Tok::KwIn) {
      auto node = std::make_unique<ForIn>();
      node->line = for_line;
      node->var_name = advance().atom;
      advance();  // in
      node->object = parse_expression();
      expect(Tok::RParen, "for-in header");
      node->loop_id = register_loop(LoopKind::ForIn, for_line, node.get());
      node->body = parse_statement();
      return node;
    }

    auto node = std::make_unique<For>();
    node->line = for_line;
    if (match(Tok::Semicolon)) {
      // no init
    } else if (check(Tok::KwVar)) {
      node->init = parse_var_decl();
      expect(Tok::Semicolon, "for header");
    } else {
      auto init = std::make_unique<ExprStmt>();
      init->line = line();
      init->expr = parse_expression();
      node->init = std::move(init);
      expect(Tok::Semicolon, "for header");
    }
    if (!check(Tok::Semicolon)) node->condition = parse_expression();
    expect(Tok::Semicolon, "for header");
    if (!check(Tok::RParen)) node->update = parse_expression();
    expect(Tok::RParen, "for header");
    node->loop_id = register_loop(LoopKind::For, for_line, node.get());
    node->body = parse_statement();
    return node;
  }

  StmtPtr parse_while() {
    auto node = std::make_unique<While>();
    node->line = line();
    expect(Tok::KwWhile, "while statement");
    expect(Tok::LParen, "while condition");
    node->condition = parse_expression();
    expect(Tok::RParen, "while condition");
    node->loop_id = register_loop(LoopKind::While, node->line, node.get());
    node->body = parse_statement();
    return node;
  }

  StmtPtr parse_do_while() {
    auto node = std::make_unique<DoWhile>();
    node->line = line();
    expect(Tok::KwDo, "do-while statement");
    node->loop_id = register_loop(LoopKind::DoWhile, node->line, node.get());
    node->body = parse_statement();
    expect(Tok::KwWhile, "do-while statement");
    expect(Tok::LParen, "do-while condition");
    node->condition = parse_expression();
    expect(Tok::RParen, "do-while condition");
    expect(Tok::Semicolon, "do-while statement");
    return node;
  }

  StmtPtr parse_return() {
    auto node = std::make_unique<Return>();
    node->line = line();
    expect(Tok::KwReturn, "return statement");
    if (!check(Tok::Semicolon)) node->value = parse_expression();
    expect(Tok::Semicolon, "return statement");
    return node;
  }

  StmtPtr parse_try() {
    auto node = std::make_unique<TryCatch>();
    node->line = line();
    expect(Tok::KwTry, "try statement");
    node->try_block = parse_block();
    if (match(Tok::KwCatch)) {
      expect(Tok::LParen, "catch clause");
      node->catch_param = expect(Tok::Ident, "catch clause").atom;
      expect(Tok::RParen, "catch clause");
      node->catch_block = parse_block();
    }
    if (match(Tok::KwFinally)) node->finally_block = parse_block();
    if (!node->catch_block && !node->finally_block) {
      throw ParseError("try requires catch or finally", node->line);
    }
    return node;
  }

  // -- expressions -----------------------------------------------------------

  ExprPtr parse_expression() {
    ExprPtr first = parse_assignment();
    if (!check(Tok::Comma)) return first;
    auto seq = std::make_unique<Sequence>();
    seq->line = first->line;
    seq->exprs.push_back(std::move(first));
    while (match(Tok::Comma)) seq->exprs.push_back(parse_assignment());
    return seq;
  }

  static AssignOp assign_op_for(Tok kind) {
    switch (kind) {
      case Tok::Assign: return AssignOp::None;
      case Tok::PlusAssign: return AssignOp::Add;
      case Tok::MinusAssign: return AssignOp::Sub;
      case Tok::StarAssign: return AssignOp::Mul;
      case Tok::SlashAssign: return AssignOp::Div;
      case Tok::PercentAssign: return AssignOp::Mod;
      case Tok::AmpAssign: return AssignOp::BitAnd;
      case Tok::PipeAssign: return AssignOp::BitOr;
      case Tok::CaretAssign: return AssignOp::BitXor;
      case Tok::ShlAssign: return AssignOp::Shl;
      case Tok::ShrAssign: return AssignOp::Shr;
      default: return AssignOp::None;
    }
  }

  static bool is_assign_tok(Tok kind) {
    switch (kind) {
      case Tok::Assign:
      case Tok::PlusAssign:
      case Tok::MinusAssign:
      case Tok::StarAssign:
      case Tok::SlashAssign:
      case Tok::PercentAssign:
      case Tok::AmpAssign:
      case Tok::PipeAssign:
      case Tok::CaretAssign:
      case Tok::ShlAssign:
      case Tok::ShrAssign:
        return true;
      default:
        return false;
    }
  }

  ExprPtr parse_assignment() {
    ExprPtr target = parse_conditional();
    if (!is_assign_tok(peek().kind)) return target;
    if (target->kind != NodeKind::Ident && target->kind != NodeKind::Member) {
      throw ParseError("invalid assignment target", peek().line);
    }
    auto node = std::make_unique<Assign>();
    node->line = peek().line;
    node->op = assign_op_for(advance().kind);
    node->target = std::move(target);
    node->value = parse_assignment();
    return node;
  }

  ExprPtr parse_conditional() {
    ExprPtr cond = parse_logical_or();
    if (!match(Tok::Question)) return cond;
    auto node = std::make_unique<Conditional>();
    node->line = cond->line;
    node->condition = std::move(cond);
    node->consequent = parse_assignment();
    expect(Tok::Colon, "conditional expression");
    node->alternate = parse_assignment();
    return node;
  }

  ExprPtr parse_logical_or() {
    ExprPtr lhs = parse_logical_and();
    while (check(Tok::OrOr)) {
      const int op_line = advance().line;
      auto node = std::make_unique<Logical>();
      node->line = op_line;
      node->op = LogicalOp::Or;
      node->lhs = std::move(lhs);
      node->rhs = parse_logical_and();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_logical_and() {
    ExprPtr lhs = parse_bit_or();
    while (check(Tok::AndAnd)) {
      const int op_line = advance().line;
      auto node = std::make_unique<Logical>();
      node->line = op_line;
      node->op = LogicalOp::And;
      node->lhs = std::move(lhs);
      node->rhs = parse_bit_or();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, int op_line) {
    auto node = std::make_unique<Binary>();
    node->line = op_line;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  ExprPtr parse_bit_or() {
    ExprPtr lhs = parse_bit_xor();
    while (check(Tok::BitOr)) {
      const int op_line = advance().line;
      lhs = make_binary(BinaryOp::BitOr, std::move(lhs), parse_bit_xor(), op_line);
    }
    return lhs;
  }

  ExprPtr parse_bit_xor() {
    ExprPtr lhs = parse_bit_and();
    while (check(Tok::BitXor)) {
      const int op_line = advance().line;
      lhs = make_binary(BinaryOp::BitXor, std::move(lhs), parse_bit_and(), op_line);
    }
    return lhs;
  }

  ExprPtr parse_bit_and() {
    ExprPtr lhs = parse_equality();
    while (check(Tok::BitAnd)) {
      const int op_line = advance().line;
      lhs = make_binary(BinaryOp::BitAnd, std::move(lhs), parse_equality(), op_line);
    }
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case Tok::EqEq: op = BinaryOp::Eq; break;
        case Tok::NotEq: op = BinaryOp::Ne; break;
        case Tok::EqEqEq: op = BinaryOp::StrictEq; break;
        case Tok::NotEqEq: op = BinaryOp::StrictNe; break;
        default: return lhs;
      }
      const int op_line = advance().line;
      lhs = make_binary(op, std::move(lhs), parse_relational(), op_line);
    }
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_shift();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case Tok::Lt: op = BinaryOp::Lt; break;
        case Tok::Gt: op = BinaryOp::Gt; break;
        case Tok::Le: op = BinaryOp::Le; break;
        case Tok::Ge: op = BinaryOp::Ge; break;
        case Tok::KwIn: op = BinaryOp::In; break;
        case Tok::KwInstanceof: op = BinaryOp::InstanceOf; break;
        default: return lhs;
      }
      const int op_line = advance().line;
      lhs = make_binary(op, std::move(lhs), parse_shift(), op_line);
    }
  }

  ExprPtr parse_shift() {
    ExprPtr lhs = parse_additive();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case Tok::Shl: op = BinaryOp::Shl; break;
        case Tok::Shr: op = BinaryOp::Shr; break;
        case Tok::UShr: op = BinaryOp::UShr; break;
        default: return lhs;
      }
      const int op_line = advance().line;
      lhs = make_binary(op, std::move(lhs), parse_additive(), op_line);
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (check(Tok::Plus) || check(Tok::Minus)) {
      const BinaryOp op = check(Tok::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      const int op_line = advance().line;
      lhs = make_binary(op, std::move(lhs), parse_multiplicative(), op_line);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case Tok::Star: op = BinaryOp::Mul; break;
        case Tok::Slash: op = BinaryOp::Div; break;
        case Tok::Percent: op = BinaryOp::Mod; break;
        default: return lhs;
      }
      const int op_line = advance().line;
      lhs = make_binary(op, std::move(lhs), parse_unary(), op_line);
    }
  }

  ExprPtr parse_unary() {
    const DepthGuard guard(this);
    UnaryOp op;
    switch (peek().kind) {
      case Tok::Minus: op = UnaryOp::Neg; break;
      case Tok::Plus: op = UnaryOp::Plus; break;
      case Tok::Not: op = UnaryOp::Not; break;
      case Tok::BitNot: op = UnaryOp::BitNot; break;
      case Tok::KwTypeof: op = UnaryOp::TypeOf; break;
      case Tok::KwDelete: op = UnaryOp::Delete; break;
      case Tok::PlusPlus:
      case Tok::MinusMinus: {
        auto node = std::make_unique<Update>();
        node->line = line();
        node->increment = peek().kind == Tok::PlusPlus;
        node->prefix = true;
        advance();
        node->target = parse_unary();
        if (node->target->kind != NodeKind::Ident &&
            node->target->kind != NodeKind::Member) {
          throw ParseError("invalid increment/decrement target", node->line);
        }
        return node;
      }
      default:
        return parse_postfix();
    }
    auto node = std::make_unique<Unary>();
    node->line = line();
    node->op = op;
    advance();
    node->operand = parse_unary();
    if (op == UnaryOp::Delete && node->operand->kind != NodeKind::Member) {
      throw ParseError("delete requires a property access", node->line);
    }
    return node;
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_call_member(parse_primary());
    if (check(Tok::PlusPlus) || check(Tok::MinusMinus)) {
      if (expr->kind != NodeKind::Ident && expr->kind != NodeKind::Member) {
        throw ParseError("invalid increment/decrement target", peek().line);
      }
      auto node = std::make_unique<Update>();
      node->line = peek().line;
      node->increment = peek().kind == Tok::PlusPlus;
      node->prefix = false;
      advance();
      node->target = std::move(expr);
      return node;
    }
    return expr;
  }

  ExprPtr parse_call_member(ExprPtr base) {
    while (true) {
      if (match(Tok::Dot)) {
        auto node = std::make_unique<Member>();
        node->line = peek().line;
        // Allow keyword-looking property names (obj.in is legal ES5).
        if (check(Tok::Ident)) {
          node->property = advance().atom;
        } else if (!peek().text.empty()) {
          const Token& tok = advance();
          node->property = tok.atom.empty() ? Atom::intern(tok.text) : tok.atom;
        } else {
          throw ParseError("expected property name after '.'", peek().line);
        }
        node->object = std::move(base);
        base = std::move(node);
      } else if (check(Tok::LBracket)) {
        auto node = std::make_unique<Member>();
        node->line = advance().line;
        node->computed = true;
        node->object = std::move(base);
        node->index = parse_expression();
        expect(Tok::RBracket, "computed member access");
        base = std::move(node);
      } else if (check(Tok::LParen)) {
        auto node = std::make_unique<Call>();
        node->line = advance().line;
        node->callee = std::move(base);
        if (!check(Tok::RParen)) {
          while (true) {
            node->args.push_back(parse_assignment());
            if (!match(Tok::Comma)) break;
          }
        }
        expect(Tok::RParen, "call arguments");
        base = std::move(node);
      } else {
        return base;
      }
    }
  }

  ExprPtr parse_new() {
    const int new_line = line();
    expect(Tok::KwNew, "new expression");
    // `new a.b.C(args)` — member accesses bind tighter than the call.
    ExprPtr callee = parse_primary();
    while (true) {
      if (match(Tok::Dot)) {
        auto node = std::make_unique<Member>();
        node->line = peek().line;
        node->property = expect(Tok::Ident, "member access").atom;
        node->object = std::move(callee);
        callee = std::move(node);
      } else if (check(Tok::LBracket)) {
        auto node = std::make_unique<Member>();
        node->line = advance().line;
        node->computed = true;
        node->object = std::move(callee);
        node->index = parse_expression();
        expect(Tok::RBracket, "computed member access");
        callee = std::move(node);
      } else {
        break;
      }
    }
    auto node = std::make_unique<New>();
    node->line = new_line;
    node->callee = std::move(callee);
    if (match(Tok::LParen)) {
      if (!check(Tok::RParen)) {
        while (true) {
          node->args.push_back(parse_assignment());
          if (!match(Tok::Comma)) break;
        }
      }
      expect(Tok::RParen, "new arguments");
    }
    return node;
  }

  ExprPtr parse_primary() {
    const DepthGuard guard(this);
    const Token& tok = peek();
    switch (tok.kind) {
      case Tok::Number: {
        auto node = std::make_unique<NumberLit>();
        node->line = tok.line;
        node->value = tok.number;
        advance();
        return node;
      }
      case Tok::String: {
        auto node = std::make_unique<StringLit>();
        node->line = tok.line;
        node->value = tok.atom;
        advance();
        return node;
      }
      case Tok::KwTrue:
      case Tok::KwFalse: {
        auto node = std::make_unique<BoolLit>();
        node->line = tok.line;
        node->value = tok.kind == Tok::KwTrue;
        advance();
        return node;
      }
      case Tok::KwNull: {
        auto node = std::make_unique<NullLit>();
        node->line = tok.line;
        advance();
        return node;
      }
      case Tok::Ident: {
        auto node = std::make_unique<Ident>();
        node->line = tok.line;
        node->name = tok.atom;
        advance();
        return node;
      }
      case Tok::KwThis: {
        auto node = std::make_unique<ThisExpr>();
        node->line = tok.line;
        advance();
        return node;
      }
      case Tok::LParen: {
        advance();
        ExprPtr inner = parse_expression();
        expect(Tok::RParen, "parenthesized expression");
        return inner;
      }
      case Tok::LBracket: {
        auto node = std::make_unique<ArrayLit>();
        node->line = advance().line;
        if (!check(Tok::RBracket)) {
          while (true) {
            node->elements.push_back(parse_assignment());
            if (!match(Tok::Comma)) break;
          }
        }
        expect(Tok::RBracket, "array literal");
        return node;
      }
      case Tok::LBrace: {
        auto node = std::make_unique<ObjectLit>();
        node->line = advance().line;
        if (!check(Tok::RBrace)) {
          while (true) {
            Atom key;
            if (check(Tok::Number)) {
              // Number tokens carry no atom; key by the literal's spelling.
              key = Atom::intern(advance().text);
            } else if (check(Tok::Ident) || check(Tok::String) ||
                       !peek().text.empty()) {
              key = advance().atom;
            } else {
              throw ParseError("expected property key", peek().line);
            }
            expect(Tok::Colon, "object literal");
            node->properties.emplace_back(key, parse_assignment());
            if (!match(Tok::Comma)) break;
          }
        }
        expect(Tok::RBrace, "object literal");
        return node;
      }
      case Tok::KwFunction: {
        auto node = std::make_unique<FunctionExpr>();
        node->line = advance().line;
        node->fn = parse_function_tail(/*require_name=*/false);
        return node;
      }
      case Tok::KwNew:
        return parse_new();
      default:
        throw ParseError(std::string("unexpected token ") + tok_name(tok.kind),
                         tok.line);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Program program_;
  HoistScope* hoist_ = nullptr;
  int next_fn_id_ = 1;
  int depth_ = 0;
  int max_depth_;
};

}  // namespace

std::string induction_variable_of(const LoopSite& site) {
  if (site.kind != LoopKind::For || site.stmt == nullptr) return "";
  const auto& loop = static_cast<const For&>(*site.stmt);
  if (!loop.update) return "";
  if (loop.update->kind == NodeKind::Update) {
    const auto& update = static_cast<const Update&>(*loop.update);
    if (update.target->kind == NodeKind::Ident) {
      return static_cast<const Ident&>(*update.target).name;
    }
  }
  if (loop.update->kind == NodeKind::Assign) {
    const auto& assign = static_cast<const Assign&>(*loop.update);
    if (assign.target->kind == NodeKind::Ident) {
      return static_cast<const Ident&>(*assign.target).name;
    }
  }
  return "";
}

const char* loop_kind_name(LoopKind kind) {
  switch (kind) {
    case LoopKind::For: return "for";
    case LoopKind::ForIn: return "for-in";
    case LoopKind::While: return "while";
    case LoopKind::DoWhile: return "do-while";
  }
  return "?";
}

Program parse(std::string_view source, std::string source_name) {
  return parse(source, std::move(source_name), EngineLimits{});
}

Program parse(std::string_view source, std::string source_name,
              const EngineLimits& limits) {
  const int max_depth = limits.max_parse_depth > 0 ? limits.max_parse_depth
                                                   : EngineLimits{}.max_parse_depth;
  Parser parser(lex(source, limits), std::move(source_name), max_depth);
  Program program = parser.run();
  resolve_scopes(program);
  return program;
}

}  // namespace jsceres::js
