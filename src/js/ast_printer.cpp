#include "js/ast_printer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace jsceres::js {

namespace {

std::string pad(int indent) { return std::string(std::size_t(indent) * 2, ' '); }

std::string number_text(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    return buf;
  }
  // Shortest representation that round-trips exactly.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

const char* binary_op_text(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::UShr: return ">>>";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::StrictEq: return "===";
    case BinaryOp::StrictNe: return "!==";
    case BinaryOp::In: return "in";
    case BinaryOp::InstanceOf: return "instanceof";
  }
  return "?";
}

const char* assign_op_text(AssignOp op) {
  switch (op) {
    case AssignOp::None: return "=";
    case AssignOp::Add: return "+=";
    case AssignOp::Sub: return "-=";
    case AssignOp::Mul: return "*=";
    case AssignOp::Div: return "/=";
    case AssignOp::Mod: return "%=";
    case AssignOp::BitAnd: return "&=";
    case AssignOp::BitOr: return "|=";
    case AssignOp::BitXor: return "^=";
    case AssignOp::Shl: return "<<=";
    case AssignOp::Shr: return ">>=";
  }
  return "=";
}

std::string quote(const std::string& text) {
  std::string out = "'";
  for (const char c : text) {
    switch (c) {
      case '\'': out += "\\'"; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  return out + "'";
}

std::string print_function(const FunctionNode& fn) {
  std::string out = "function ";
  out += fn.name;
  out += "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += fn.params[i];
  }
  out += ") ";
  out += print_stmt(*fn.body, 0);
  return out;
}

}  // namespace

std::string print_expr(const Expr& expr) {
  switch (expr.kind) {
    case NodeKind::NumberLit:
      return number_text(static_cast<const NumberLit&>(expr).value);
    case NodeKind::StringLit:
      return quote(static_cast<const StringLit&>(expr).value);
    case NodeKind::BoolLit:
      return static_cast<const BoolLit&>(expr).value ? "true" : "false";
    case NodeKind::NullLit:
      return "null";
    case NodeKind::Ident:
      return static_cast<const Ident&>(expr).name;
    case NodeKind::ThisExpr:
      return "this";
    case NodeKind::ArrayLit: {
      const auto& lit = static_cast<const ArrayLit&>(expr);
      std::string out = "[";
      for (std::size_t i = 0; i < lit.elements.size(); ++i) {
        if (i > 0) out += ", ";
        out += print_expr(*lit.elements[i]);
      }
      return out + "]";
    }
    case NodeKind::ObjectLit: {
      const auto& lit = static_cast<const ObjectLit&>(expr);
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : lit.properties) {
        if (!first) out += ", ";
        first = false;
        out += key + ": " + print_expr(*value);
      }
      return out + "}";
    }
    case NodeKind::FunctionExpr:
      return print_function(*static_cast<const FunctionExpr&>(expr).fn);
    case NodeKind::Call: {
      const auto& call = static_cast<const Call&>(expr);
      std::string out = print_expr(*call.callee) + "(";
      for (std::size_t i = 0; i < call.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += print_expr(*call.args[i]);
      }
      return out + ")";
    }
    case NodeKind::New: {
      const auto& node = static_cast<const New&>(expr);
      std::string out = "new " + print_expr(*node.callee) + "(";
      for (std::size_t i = 0; i < node.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += print_expr(*node.args[i]);
      }
      return out + ")";
    }
    case NodeKind::Member: {
      const auto& member = static_cast<const Member&>(expr);
      if (member.computed) {
        return print_expr(*member.object) + "[" + print_expr(*member.index) + "]";
      }
      return print_expr(*member.object) + "." + member.property;
    }
    case NodeKind::Assign: {
      const auto& assign = static_cast<const Assign&>(expr);
      return print_expr(*assign.target) + " " + assign_op_text(assign.op) + " " +
             print_expr(*assign.value);
    }
    case NodeKind::Conditional: {
      const auto& node = static_cast<const Conditional&>(expr);
      return "(" + print_expr(*node.condition) + " ? " +
             print_expr(*node.consequent) + " : " + print_expr(*node.alternate) +
             ")";
    }
    case NodeKind::Binary: {
      const auto& node = static_cast<const Binary&>(expr);
      return "(" + print_expr(*node.lhs) + " " + binary_op_text(node.op) + " " +
             print_expr(*node.rhs) + ")";
    }
    case NodeKind::Logical: {
      const auto& node = static_cast<const Logical&>(expr);
      return "(" + print_expr(*node.lhs) +
             (node.op == LogicalOp::And ? " && " : " || ") + print_expr(*node.rhs) +
             ")";
    }
    case NodeKind::Unary: {
      const auto& node = static_cast<const Unary&>(expr);
      switch (node.op) {
        case UnaryOp::Neg: return "(-" + print_expr(*node.operand) + ")";
        case UnaryOp::Plus: return "(+" + print_expr(*node.operand) + ")";
        case UnaryOp::Not: return "(!" + print_expr(*node.operand) + ")";
        case UnaryOp::BitNot: return "(~" + print_expr(*node.operand) + ")";
        case UnaryOp::TypeOf: return "(typeof " + print_expr(*node.operand) + ")";
        case UnaryOp::Delete: return "(delete " + print_expr(*node.operand) + ")";
      }
      return "?";
    }
    case NodeKind::Update: {
      const auto& node = static_cast<const Update&>(expr);
      const char* op = node.increment ? "++" : "--";
      return node.prefix ? op + print_expr(*node.target)
                         : print_expr(*node.target) + op;
    }
    case NodeKind::Sequence: {
      const auto& node = static_cast<const Sequence&>(expr);
      std::string out;
      for (std::size_t i = 0; i < node.exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += print_expr(*node.exprs[i]);
      }
      return out;
    }
    default:
      return "/*?*/";
  }
}

std::string print_stmt(const Stmt& stmt, int indent) {
  switch (stmt.kind) {
    case NodeKind::Block: {
      const auto& block = static_cast<const Block&>(stmt);
      std::string out = "{\n";
      for (const auto& s : block.statements) {
        out += pad(indent + 1) + print_stmt(*s, indent + 1) + "\n";
      }
      return out + pad(indent) + "}";
    }
    case NodeKind::VarDecl: {
      const auto& decl = static_cast<const VarDecl&>(stmt);
      std::string out = "var ";
      for (std::size_t i = 0; i < decl.declarators.size(); ++i) {
        if (i > 0) out += ", ";
        out += decl.declarators[i].name;
        if (decl.declarators[i].init) {
          out += " = " + print_expr(*decl.declarators[i].init);
        }
      }
      return out + ";";
    }
    case NodeKind::FunctionDecl:
      return print_function(*static_cast<const FunctionDecl&>(stmt).fn);
    case NodeKind::ExprStmt:
      return print_expr(*static_cast<const ExprStmt&>(stmt).expr) + ";";
    case NodeKind::If: {
      const auto& node = static_cast<const If&>(stmt);
      std::string out =
          "if (" + print_expr(*node.condition) + ") " + print_stmt(*node.consequent, indent);
      if (node.alternate) out += " else " + print_stmt(*node.alternate, indent);
      return out;
    }
    case NodeKind::For: {
      const auto& node = static_cast<const For&>(stmt);
      std::string out = "for (";
      if (node.init) {
        // Either a VarDecl (already ends with ';') or an expression.
        const std::string init = print_stmt(*node.init, 0);
        out += init;
        if (init.empty() || init.back() != ';') out += ";";
      } else {
        out += ";";
      }
      out += " ";
      if (node.condition) out += print_expr(*node.condition);
      out += "; ";
      if (node.update) out += print_expr(*node.update);
      out += ") " + print_stmt(*node.body, indent);
      return out;
    }
    case NodeKind::ForIn: {
      const auto& node = static_cast<const ForIn&>(stmt);
      std::string out = "for (";
      if (node.declares_var) out += "var ";
      out += node.var_name + " in " + print_expr(*node.object) + ") ";
      return out + print_stmt(*node.body, indent);
    }
    case NodeKind::While: {
      const auto& node = static_cast<const While&>(stmt);
      return "while (" + print_expr(*node.condition) + ") " +
             print_stmt(*node.body, indent);
    }
    case NodeKind::DoWhile: {
      const auto& node = static_cast<const DoWhile&>(stmt);
      return "do " + print_stmt(*node.body, indent) + " while (" +
             print_expr(*node.condition) + ");";
    }
    case NodeKind::Return: {
      const auto& node = static_cast<const Return&>(stmt);
      if (node.value) return "return " + print_expr(*node.value) + ";";
      return "return;";
    }
    case NodeKind::Break:
      return "break;";
    case NodeKind::Continue:
      return "continue;";
    case NodeKind::Empty:
      return ";";
    case NodeKind::Throw:
      return "throw " + print_expr(*static_cast<const Throw&>(stmt).value) + ";";
    case NodeKind::TryCatch: {
      const auto& node = static_cast<const TryCatch&>(stmt);
      std::string out = "try " + print_stmt(*node.try_block, indent);
      if (node.catch_block) {
        out += " catch (" + node.catch_param + ") " +
               print_stmt(*node.catch_block, indent);
      }
      if (node.finally_block) {
        out += " finally " + print_stmt(*node.finally_block, indent);
      }
      return out;
    }
    default:
      return ";";
  }
}

std::string print(const Program& program) {
  std::string out;
  for (const auto& stmt : program.statements) {
    out += print_stmt(*stmt, 0) + "\n";
  }
  return out;
}

}  // namespace jsceres::js
