#pragma once

#include <string>

#include "js/ast.h"

namespace jsceres::js {

/// Pretty-print an AST back to JavaScript source. The output re-parses to a
/// structurally identical tree (the round-trip property tested in
/// tests/test_properties.cpp), which is what makes source-level rewriting
/// tools (js/refactor.h) safe.
std::string print(const Program& program);
std::string print_stmt(const Stmt& stmt, int indent = 0);
std::string print_expr(const Expr& expr);

}  // namespace jsceres::js
