#pragma once

#include <string>

#include "js/atom.h"

namespace jsceres::js {

/// Token kinds for the JavaScript subset accepted by the engine (ES5-style:
/// the language level of the paper's 2014 study corpus, before ES6 shipped).
enum class Tok {
  // Literals / names
  Number,
  String,
  Ident,
  // Keywords
  KwVar,
  KwFunction,
  KwReturn,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwDo,
  KwBreak,
  KwContinue,
  KwNew,
  KwDelete,
  KwTypeof,
  KwThis,
  KwTrue,
  KwFalse,
  KwNull,
  KwIn,
  KwInstanceof,
  KwThrow,
  KwTry,
  KwCatch,
  KwFinally,
  // Punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Colon,
  Question,
  // Operators
  Assign,         // =
  PlusAssign,     // +=
  MinusAssign,    // -=
  StarAssign,     // *=
  SlashAssign,    // /=
  PercentAssign,  // %=
  AmpAssign,      // &=
  PipeAssign,     // |=
  CaretAssign,    // ^=
  ShlAssign,      // <<=
  ShrAssign,      // >>=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,
  EqEq,
  NotEq,
  EqEqEq,
  NotEqEq,
  Lt,
  Gt,
  Le,
  Ge,
  AndAnd,
  OrOr,
  Not,
  BitAnd,
  BitOr,
  BitXor,
  BitNot,
  Shl,
  Shr,
  UShr,
  // End of input
  Eof,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;   // identifier name or string literal value
  Atom atom;          // interned `text` for Ident / String / keyword tokens
  double number = 0;  // numeric literal value
  int line = 0;       // 1-based source line
};

/// Human-readable token-kind name, for diagnostics.
const char* tok_name(Tok kind);

}  // namespace jsceres::js
