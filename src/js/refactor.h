#pragma once

#include <string>
#include <vector>

#include "js/ast.h"

namespace jsceres::js {

/// The imperative-to-functional refactoring tool the paper calls for in
/// §5.3: "Refactoring tools that can transform imperative iteration into
/// functional style could make these loops amenable to parallelism via
/// libraries with parallel operators such as RiverTrail."
///
/// Rewrites canonical array-iteration loops
///
///     for (var i = 0; i < arr.length; i++) { body }
///
/// into
///
///     arr.forEach(function (elem, i) { body' });
///
/// where reads of `arr[i]` become `elem`. The rewrite also *privatizes*
/// every `var` declared in the body (function scoping — the exact mechanism
/// by which the paper's Fig. 6 `var p` warning disappears).
///
/// Safety (conservative; unsafe candidates are skipped with a note):
///  - the induction variable starts at 0, is compared `< arr.length` with a
///    simple identifier base, and is incremented by exactly 1;
///  - the body contains no break / continue / return;
///  - the body does not write the induction variable or rebind the array;
///  - `var`s declared in the body are not referenced elsewhere in the
///    program (privatizing them must not change visible behaviour).
struct RefactorReport {
  int candidates = 0;  // canonical loops found
  int rewritten = 0;   // actually converted
  std::vector<std::string> notes;
  std::string source;  // the full rewritten program text
};

/// Rewrites `program` in place and returns the report (including the
/// printed source, which re-parses cleanly).
RefactorReport to_functional(Program& program);

}  // namespace jsceres::js
