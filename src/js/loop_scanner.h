#pragma once

#include <map>
#include <string>
#include <vector>

#include "js/ast.h"

namespace jsceres::js {

/// Static, per-syntactic-loop structure facts gathered by walking the AST.
/// The divergence classifier (Table 3, column 5) combines these with dynamic
/// trip statistics.
struct LoopStaticInfo {
  int loop_id = 0;
  int branch_sites = 0;        // if / ?: / && / || in the loop body
  int call_sites = 0;          // function calls in the loop body
  int nested_loops = 0;        // loops syntactically inside this one
  int body_statements = 0;     // rough body size
  bool condition_data_dependent = false;  // non-`for(i=0;i<n;i++)` shape
};

/// Counts for the §2.3 / §5.5 style census: do developers write hot code
/// with imperative loops or with the functional Array operators they claim
/// to prefer?
struct StyleCensus {
  int for_loops = 0;
  int for_in_loops = 0;
  int while_loops = 0;
  int do_while_loops = 0;
  int functional_op_calls = 0;  // map/forEach/filter/reduce/every/some call sites
  int function_decls = 0;

  [[nodiscard]] int imperative_loops() const {
    return for_loops + for_in_loops + while_loops + do_while_loops;
  }
};

/// Names treated as functional iteration operators in the census.
bool is_functional_operator(const std::string& name);

StyleCensus census(const Program& program);

/// Static info for every loop in the program, keyed by loop id.
std::map<int, LoopStaticInfo> scan_loops(const Program& program);

}  // namespace jsceres::js
