#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "js/token.h"

namespace jsceres::js {

/// Error raised for malformed source; carries the 1-based line number.
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Tokenize an entire source buffer. The token stream always ends with an
/// explicit Eof token.
std::vector<Token> lex(std::string_view source);

}  // namespace jsceres::js
