#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "js/token.h"
#include "support/limits.h"

namespace jsceres::js {

/// Error raised for malformed source; carries the 1-based line number.
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Tokenize an entire source buffer. The token stream always ends with an
/// explicit Eof token.
std::vector<Token> lex(std::string_view source);

/// lex() under explicit front-end limits: `max_source_bytes` rejects
/// oversized buffers up front and `max_tokens` caps the token stream while
/// it is produced. Either trip raises LexError with the offending line
/// (line 1 for the source-size check).
std::vector<Token> lex(std::string_view source, const EngineLimits& limits);

}  // namespace jsceres::js
