#include "js/atom.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/epoch.h"

namespace jsceres::js {

namespace {

/// Process-wide intern table. Keys are string_views into the stored text
/// (stable: AtomData lives in a deque; reclamation frees the *text* and
/// recycles the record through `free_slots`, it never erases deque slots).
/// Interning is rare after warm-up — the lexer front-loads the program's
/// names — so a shared_mutex keeps concurrent interpreters cheap: readers
/// take the shared lock; first-time interns, scope retirement, and slot
/// recycling take the exclusive one. Reference counts are atomics so the
/// found-under-shared-lock path can add a scope reference without
/// upgrading the lock.
struct AtomTable {
  std::shared_mutex mutex;
  std::unordered_map<std::string_view, detail::AtomData*> map;
  std::deque<detail::AtomData> storage;
  std::vector<detail::AtomData*> free_slots;  // recycled after reclaim
  std::size_t live_count = 0;
  std::size_t live_bytes = 0;
  std::size_t retired_pending = 0;

  detail::AtomData* find_locked(std::string_view text) const {
    const auto it = map.find(text);
    return it == map.end() ? nullptr : it->second;
  }
};

AtomTable& table() {
  static AtomTable* t = new AtomTable();  // leaked: atoms outlive everything
  return *t;
}

/// Accounting estimate for one live entry: the record, the text's heap
/// block (shared_ptr control + characters), and the map node.
std::size_t entry_cost(const detail::AtomData& data) {
  return sizeof(detail::AtomData) + 64 +
         (data.text ? data.text->size() : 0);
}

thread_local AtomScope* g_current_scope = nullptr;

detail::AtomData* intern_data(std::string_view text, bool force_immortal) {
  AtomTable& t = table();
  AtomScope* scope = force_immortal ? nullptr : AtomScope::current();
  {
    const std::shared_lock lock(t.mutex);
    if (detail::AtomData* found = t.find_locked(text)) {
      if (found->refs.load(std::memory_order_relaxed) <
          detail::AtomData::kImmortalRefs) {
        if (scope != nullptr) {
          scope->note(found);
        } else {
          // Untracked holder of a transient atom: promote to immortal.
          found->refs.store(detail::AtomData::kImmortalRefs,
                            std::memory_order_relaxed);
        }
      }
      return found;
    }
  }
  const std::unique_lock lock(t.mutex);
  if (detail::AtomData* found = t.find_locked(text)) {
    if (found->refs.load(std::memory_order_relaxed) <
        detail::AtomData::kImmortalRefs) {
      if (scope != nullptr) {
        scope->note(found);
      } else {
        found->refs.store(detail::AtomData::kImmortalRefs,
                          std::memory_order_relaxed);
      }
    }
    return found;
  }
  detail::AtomData* data;
  if (!t.free_slots.empty()) {
    data = t.free_slots.back();  // recycled record keeps its slot id
    t.free_slots.pop_back();
  } else {
    data = &t.storage.emplace_back();
    data->id = std::uint32_t(t.storage.size() - 1);
  }
  data->text = std::make_shared<const std::string>(text);
  data->hash = std::hash<std::string_view>{}(text);
  data->refs.store(scope != nullptr ? 0 : detail::AtomData::kImmortalRefs,
                   std::memory_order_relaxed);
  t.map.emplace(std::string_view(*data->text), data);
  ++t.live_count;
  t.live_bytes += entry_cost(*data);
  if (scope != nullptr) scope->note(data);
  return data;
}

}  // namespace

Atom Atom::intern(std::string_view text) {
  return Atom(intern_data(text, /*force_immortal=*/false));
}

bool Atom::try_find(std::string_view text, Atom* out) {
  AtomTable& t = table();
  AtomScope* scope = AtomScope::current();
  const std::shared_lock lock(t.mutex);
  detail::AtomData* found = t.find_locked(text);
  if (found == nullptr) return false;
  if (found->refs.load(std::memory_order_relaxed) <
      detail::AtomData::kImmortalRefs) {
    if (scope != nullptr) {
      scope->note(found);
    } else {
      found->refs.store(detail::AtomData::kImmortalRefs,
                        std::memory_order_relaxed);
    }
  }
  *out = Atom(found);
  return true;
}

const detail::AtomData* Atom::empty_data() {
  // The empty atom backs every default-constructed Atom across the whole
  // process — always immortal, even if first touched inside a session.
  static const detail::AtomData* data = intern_data("", /*force_immortal=*/true);
  return data;
}

AtomScope::AtomScope() {
  previous_ = g_current_scope;
  g_current_scope = this;
}

AtomScope* AtomScope::current() noexcept { return g_current_scope; }

void AtomScope::note(detail::AtomData* data) {
  // One reference per (scope, atom) pair: the local set dedups re-lookups,
  // so the count on `data` is exactly the number of live scopes holding it.
  if (touched_.insert(data).second) {
    data->refs.fetch_add(1, std::memory_order_relaxed);
  }
}

AtomScope::~AtomScope() {
  g_current_scope = previous_;
  if (touched_.empty()) return;

  AtomTable& t = table();
  std::vector<detail::AtomData*> dead;
  std::size_t dead_bytes = 0;
  {
    const std::unique_lock lock(t.mutex);
    for (detail::AtomData* data : touched_) {
      if (data->refs.load(std::memory_order_relaxed) >=
          detail::AtomData::kImmortalRefs) {
        continue;  // promoted to immortal after we referenced it
      }
      if (data->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last referencing scope: unlink now (no new lookup can find it),
        // free later (an in-flight reader from a still-pinned session may
        // hold the raw pointer until its epoch pin drops).
        t.map.erase(std::string_view(*data->text));
        --t.live_count;
        t.live_bytes -= entry_cost(*data);
        dead.push_back(data);
        dead_bytes += entry_cost(*data);
      }
    }
    t.retired_pending += dead.size();
  }
  if (dead.empty()) return;
  EpochDomain::global().retire(dead_bytes, [dead = std::move(dead)] {
    AtomTable& t2 = table();
    const std::unique_lock lock(t2.mutex);
    for (detail::AtomData* data : dead) {
      data->text.reset();  // the actual free
      t2.free_slots.push_back(data);
      --t2.retired_pending;
    }
  });
}

std::size_t atom_table_size() {
  AtomTable& t = table();
  const std::shared_lock lock(t.mutex);
  return t.live_count;
}

std::size_t atom_table_bytes() {
  AtomTable& t = table();
  const std::shared_lock lock(t.mutex);
  return t.live_bytes;
}

std::size_t atom_table_retired_pending() {
  AtomTable& t = table();
  const std::shared_lock lock(t.mutex);
  return t.retired_pending;
}

}  // namespace jsceres::js
