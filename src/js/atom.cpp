#include "js/atom.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace jsceres::js {

namespace {

/// Process-wide intern table. Keys are string_views into the stored text
/// (stable: AtomData lives in a deque and its text is heap-allocated and
/// never freed). Interning is rare after warm-up — the lexer front-loads the
/// program's names — so a shared_mutex keeps concurrent interpreters cheap:
/// readers take the shared lock, only first-time interns take the exclusive
/// one.
struct AtomTable {
  std::shared_mutex mutex;
  std::unordered_map<std::string_view, const detail::AtomData*> map;
  std::deque<detail::AtomData> storage;

  const detail::AtomData* find_locked(std::string_view text) const {
    const auto it = map.find(text);
    return it == map.end() ? nullptr : it->second;
  }
};

AtomTable& table() {
  static AtomTable* t = new AtomTable();  // leaked: atoms outlive everything
  return *t;
}

const detail::AtomData* intern_data(std::string_view text) {
  AtomTable& t = table();
  {
    const std::shared_lock lock(t.mutex);
    if (const detail::AtomData* found = t.find_locked(text)) return found;
  }
  const std::unique_lock lock(t.mutex);
  if (const detail::AtomData* found = t.find_locked(text)) return found;
  detail::AtomData& data = t.storage.emplace_back();
  data.text = std::make_shared<const std::string>(text);
  data.hash = std::hash<std::string_view>{}(text);
  data.id = std::uint32_t(t.storage.size() - 1);
  t.map.emplace(std::string_view(*data.text), &data);
  return &data;
}

}  // namespace

Atom Atom::intern(std::string_view text) { return Atom(intern_data(text)); }

bool Atom::try_find(std::string_view text, Atom* out) {
  AtomTable& t = table();
  const std::shared_lock lock(t.mutex);
  const detail::AtomData* found = t.find_locked(text);
  if (found == nullptr) return false;
  *out = Atom(found);
  return true;
}

const detail::AtomData* Atom::empty_data() {
  static const detail::AtomData* data = intern_data("");
  return data;
}

std::size_t atom_table_size() {
  AtomTable& t = table();
  const std::shared_lock lock(t.mutex);
  return t.storage.size();
}

}  // namespace jsceres::js
