#include "js/loop_scanner.h"

namespace jsceres::js {

namespace {

/// Depth-first AST walker feeding both the census and the per-loop scanner.
class Scanner {
 public:
  explicit Scanner(const Program& program) : program_(program) {}

  void run() {
    for (const auto& stmt : program_.statements) walk_stmt(*stmt);
  }

  StyleCensus census;
  std::map<int, LoopStaticInfo> loops;

 private:
  void enter_loop(int loop_id) {
    LoopStaticInfo& info = loops[loop_id];
    info.loop_id = loop_id;
    for (const int open : loop_stack_) ++loops[open].nested_loops;
    loop_stack_.push_back(loop_id);
  }
  void exit_loop() { loop_stack_.pop_back(); }

  void note_branch() {
    for (const int open : loop_stack_) ++loops[open].branch_sites;
  }
  void note_call() {
    for (const int open : loop_stack_) ++loops[open].call_sites;
  }
  void note_statement() {
    for (const int open : loop_stack_) ++loops[open].body_statements;
  }

  void walk_stmt(const Stmt& stmt) {
    note_statement();
    switch (stmt.kind) {
      case NodeKind::Block:
        for (const auto& s : static_cast<const Block&>(stmt).statements) walk_stmt(*s);
        break;
      case NodeKind::VarDecl:
        for (const auto& d : static_cast<const VarDecl&>(stmt).declarators) {
          if (d.init) walk_expr(*d.init);
        }
        break;
      case NodeKind::FunctionDecl:
        ++census.function_decls;
        walk_stmt(*static_cast<const FunctionDecl&>(stmt).fn->body);
        break;
      case NodeKind::ExprStmt:
        walk_expr(*static_cast<const ExprStmt&>(stmt).expr);
        break;
      case NodeKind::If: {
        const auto& node = static_cast<const If&>(stmt);
        note_branch();
        walk_expr(*node.condition);
        walk_stmt(*node.consequent);
        if (node.alternate) walk_stmt(*node.alternate);
        break;
      }
      case NodeKind::For: {
        const auto& node = static_cast<const For&>(stmt);
        ++census.for_loops;
        if (node.init) walk_stmt(*node.init);
        enter_loop(node.loop_id);
        // A classic counted loop has the shape `i <comparison> <bound>`;
        // anything else counts as a data-dependent trip count.
        if (node.condition) {
          loops[node.loop_id].condition_data_dependent =
              node.condition->kind != NodeKind::Binary;
          walk_expr(*node.condition);
        } else {
          loops[node.loop_id].condition_data_dependent = true;
        }
        if (node.update) walk_expr(*node.update);
        walk_stmt(*node.body);
        exit_loop();
        break;
      }
      case NodeKind::ForIn: {
        const auto& node = static_cast<const ForIn&>(stmt);
        ++census.for_in_loops;
        walk_expr(*node.object);
        enter_loop(node.loop_id);
        walk_stmt(*node.body);
        exit_loop();
        break;
      }
      case NodeKind::While: {
        const auto& node = static_cast<const While&>(stmt);
        ++census.while_loops;
        enter_loop(node.loop_id);
        loops[node.loop_id].condition_data_dependent = true;
        walk_expr(*node.condition);
        walk_stmt(*node.body);
        exit_loop();
        break;
      }
      case NodeKind::DoWhile: {
        const auto& node = static_cast<const DoWhile&>(stmt);
        ++census.do_while_loops;
        enter_loop(node.loop_id);
        loops[node.loop_id].condition_data_dependent = true;
        walk_stmt(*node.body);
        walk_expr(*node.condition);
        exit_loop();
        break;
      }
      case NodeKind::Return: {
        const auto& node = static_cast<const Return&>(stmt);
        if (node.value) walk_expr(*node.value);
        break;
      }
      case NodeKind::Throw:
        walk_expr(*static_cast<const Throw&>(stmt).value);
        break;
      case NodeKind::TryCatch: {
        const auto& node = static_cast<const TryCatch&>(stmt);
        walk_stmt(*node.try_block);
        if (node.catch_block) walk_stmt(*node.catch_block);
        if (node.finally_block) walk_stmt(*node.finally_block);
        break;
      }
      default:
        break;
    }
  }

  void walk_expr(const Expr& expr) {
    switch (expr.kind) {
      case NodeKind::ArrayLit:
        for (const auto& e : static_cast<const ArrayLit&>(expr).elements) walk_expr(*e);
        break;
      case NodeKind::ObjectLit:
        for (const auto& [key, value] : static_cast<const ObjectLit&>(expr).properties) {
          (void)key;
          walk_expr(*value);
        }
        break;
      case NodeKind::FunctionExpr:
        walk_stmt(*static_cast<const FunctionExpr&>(expr).fn->body);
        break;
      case NodeKind::Call: {
        const auto& node = static_cast<const Call&>(expr);
        note_call();
        if (node.callee->kind == NodeKind::Member) {
          const auto& member = static_cast<const Member&>(*node.callee);
          if (!member.computed && is_functional_operator(member.property)) {
            ++census.functional_op_calls;
          }
        }
        walk_expr(*node.callee);
        for (const auto& a : node.args) walk_expr(*a);
        break;
      }
      case NodeKind::New: {
        const auto& node = static_cast<const New&>(expr);
        note_call();
        walk_expr(*node.callee);
        for (const auto& a : node.args) walk_expr(*a);
        break;
      }
      case NodeKind::Member: {
        const auto& node = static_cast<const Member&>(expr);
        walk_expr(*node.object);
        if (node.computed) walk_expr(*node.index);
        break;
      }
      case NodeKind::Assign: {
        const auto& node = static_cast<const Assign&>(expr);
        walk_expr(*node.target);
        walk_expr(*node.value);
        break;
      }
      case NodeKind::Conditional: {
        const auto& node = static_cast<const Conditional&>(expr);
        note_branch();
        walk_expr(*node.condition);
        walk_expr(*node.consequent);
        walk_expr(*node.alternate);
        break;
      }
      case NodeKind::Binary: {
        const auto& node = static_cast<const Binary&>(expr);
        walk_expr(*node.lhs);
        walk_expr(*node.rhs);
        break;
      }
      case NodeKind::Logical: {
        const auto& node = static_cast<const Logical&>(expr);
        note_branch();
        walk_expr(*node.lhs);
        walk_expr(*node.rhs);
        break;
      }
      case NodeKind::Unary:
        walk_expr(*static_cast<const Unary&>(expr).operand);
        break;
      case NodeKind::Update:
        walk_expr(*static_cast<const Update&>(expr).target);
        break;
      case NodeKind::Sequence:
        for (const auto& e : static_cast<const Sequence&>(expr).exprs) walk_expr(*e);
        break;
      default:
        break;
    }
  }

  const Program& program_;
  std::vector<int> loop_stack_;
};

}  // namespace

bool is_functional_operator(const std::string& name) {
  return name == "map" || name == "forEach" || name == "filter" ||
         name == "reduce" || name == "every" || name == "some";
}

StyleCensus census(const Program& program) {
  Scanner scanner(program);
  scanner.run();
  return scanner.census;
}

std::map<int, LoopStaticInfo> scan_loops(const Program& program) {
  Scanner scanner(program);
  scanner.run();
  // Make sure every registered loop has an entry even if its body is empty.
  for (const auto& site : program.loops) {
    auto& info = scanner.loops[site.loop_id];
    info.loop_id = site.loop_id;
  }
  return scanner.loops;
}

}  // namespace jsceres::js
