#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "js/ast.h"

namespace jsceres::js {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Parse a complete program. `source_name` is used in reports.
///
/// The grammar is the ES5-flavoured subset the study corpus uses:
/// var/function declarations, all loop forms, if/else, try/catch/finally,
/// throw, the full C-like expression grammar (assignment, conditional,
/// logical, bitwise, equality incl. ===, relational incl. in/instanceof,
/// shifts, arithmetic, unary incl. typeof/delete, update, call/new/member),
/// array/object literals and function expressions. Statements must be
/// semicolon-terminated (no automatic semicolon insertion).
Program parse(std::string_view source, std::string source_name = "<program>");

}  // namespace jsceres::js
