#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "js/ast.h"
#include "support/limits.h"

namespace jsceres::js {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Parse a complete program. `source_name` is used in reports.
///
/// The grammar is the ES5-flavoured subset the study corpus uses:
/// var/function declarations, all loop forms, if/else, try/catch/finally,
/// throw, the full C-like expression grammar (assignment, conditional,
/// logical, bitwise, equality incl. ===, relational incl. in/instanceof,
/// shifts, arithmetic, unary incl. typeof/delete, update, call/new/member),
/// array/object literals and function expressions. Statements must be
/// semicolon-terminated (no automatic semicolon insertion).
Program parse(std::string_view source, std::string source_name = "<program>");

/// parse() under explicit front-end limits: `max_parse_depth` bounds the
/// recursive-descent nesting (always enforced; the two-argument overload
/// uses EngineLimits' default), and `max_source_bytes` / `max_tokens` cap
/// the input size during lexing (LexError). A depth trip raises a
/// recoverable ParseError carrying the offending line.
Program parse(std::string_view source, std::string source_name,
              const EngineLimits& limits);

}  // namespace jsceres::js
