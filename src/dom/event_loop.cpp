#include "dom/event_loop.h"

#include <algorithm>
#include <limits>

namespace jsceres::dom {

using interp::Value;

std::uint64_t EventLoop::set_timeout(Value callback, std::int64_t delay_ms) {
  const std::int64_t due = interp_->clock().wall_ns() + delay_ms * 1'000'000;
  const std::uint64_t id = next_id_++;
  tasks_.emplace(std::make_pair(due, next_seq_++), Task{id, std::move(callback), false});
  interp_->note_host_access(interp::HostAccess::Timer, "setTimeout");
  return id;
}

void EventLoop::clear_timeout(std::uint64_t id) {
  for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
    if (it->second.id == id) {
      tasks_.erase(it);
      return;
    }
  }
}

std::uint64_t EventLoop::request_animation_frame(Value callback) {
  const std::int64_t now = interp_->clock().wall_ns();
  const std::int64_t due = (now / kFrameNs + 1) * kFrameNs;
  const std::uint64_t id = next_id_++;
  tasks_.emplace(std::make_pair(due, next_seq_++), Task{id, std::move(callback), true});
  interp_->note_host_access(interp::HostAccess::Timer, "requestAnimationFrame");
  return id;
}

void EventLoop::add_listener(const std::string& type, Value callback) {
  listeners_[type].push_back(std::move(callback));
}

void EventLoop::push_user_events(const std::vector<UserEvent>& events) {
  user_events_.insert(user_events_.end(), events.begin(), events.end());
  std::stable_sort(user_events_.begin() + std::ptrdiff_t(next_user_event_),
                   user_events_.end(),
                   [](const UserEvent& a, const UserEvent& b) { return a.t_ms < b.t_ms; });
}

void EventLoop::advance_wall_to(std::int64_t target_ns) {
  const std::int64_t now = interp_->clock().wall_ns();
  if (target_ns > now) interp_->block(target_ns - now);
}

void EventLoop::dispatch_user_event(const UserEvent& event) {
  const auto it = listeners_.find(event.type);
  if (it == listeners_.end()) return;
  interp::ObjPtr info = interp_->make_object();
  info->set_property("type", Value::str(event.type));
  info->set_property("x", Value::number(event.x));
  info->set_property("y", Value::number(event.y));
  info->set_property("key", Value::str(event.key));
  info->set_property("timeStamp",
                     Value::number(double(interp_->clock().wall_ns()) / 1e6));
  ++events_dispatched_;
  // Copy: a handler may add/remove listeners while we iterate.
  const std::vector<Value> handlers = it->second;
  for (const Value& handler : handlers) {
    interp_->call(handler, Value::undefined(), {Value::object(info)});
  }
}

void EventLoop::run(std::int64_t horizon_ms) {
  const std::int64_t horizon_ns = horizon_ms * 1'000'000;
  while (true) {
    const bool has_task = !tasks_.empty();
    const bool has_event = next_user_event_ < user_events_.size();
    if (!has_task && !has_event) break;

    const std::int64_t task_due =
        has_task ? tasks_.begin()->first.first : std::numeric_limits<std::int64_t>::max();
    const std::int64_t event_due = has_event
                                       ? user_events_[next_user_event_].t_ms * 1'000'000
                                       : std::numeric_limits<std::int64_t>::max();

    const std::int64_t due = std::min(task_due, event_due);
    if (due > horizon_ns) break;
    advance_wall_to(due);

    if (task_due <= event_due) {
      Task task = std::move(tasks_.begin()->second);
      tasks_.erase(tasks_.begin());
      ++tasks_dispatched_;
      const Value arg = Value::number(double(interp_->clock().wall_ns()) / 1e6);
      interp_->call(task.callback, Value::undefined(), task.is_raf ? std::vector<Value>{arg}
                                                                   : std::vector<Value>{});
    } else {
      const UserEvent event = user_events_[next_user_event_++];
      dispatch_user_event(event);
    }
  }
  // Idle out the rest of the session: the app sits on screen until the user
  // stops interacting (paper Table 2 measures from start to results upload).
  advance_wall_to(horizon_ns);
}

}  // namespace jsceres::dom
