#include "dom/event_loop.h"

#include <algorithm>
#include <bit>
#include <ctime>
#include <limits>

#include "dom/canvas.h"
#include "rivertrail/parallel_pipeline.h"
#include "support/obs.h"

namespace jsceres::dom {

using interp::Value;

namespace {

/// Real per-thread CPU time: the span metric frame-graph stats report.
/// Thread-CPU (not wall) so the numbers are meaningful on the single-core
/// study container, where overlapping stages timeshare one core.
std::int64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return std::int64_t(ts.tv_sec) * 1'000'000'000 + std::int64_t(ts.tv_nsec);
}

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

std::uint64_t EventLoop::set_timeout(Value callback, std::int64_t delay_ms) {
  const std::int64_t due = interp_->clock().wall_ns() + delay_ms * 1'000'000;
  const std::uint64_t id = next_id_++;
  tasks_.emplace(std::make_pair(due, next_seq_++), Task{id, std::move(callback), false});
  interp_->note_host_access(interp::HostAccess::Timer, "setTimeout");
  return id;
}

void EventLoop::clear_timeout(std::uint64_t id) {
  for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
    if (it->second.id == id) {
      tasks_.erase(it);
      return;
    }
  }
}

std::uint64_t EventLoop::request_animation_frame(Value callback) {
  const std::int64_t now = interp_->clock().wall_ns();
  const std::int64_t due = (now / kFrameNs + 1) * kFrameNs;
  const std::uint64_t id = next_id_++;
  tasks_.emplace(std::make_pair(due, next_seq_++), Task{id, std::move(callback), true});
  interp_->note_host_access(interp::HostAccess::Timer, "requestAnimationFrame");
  return id;
}

void EventLoop::add_listener(const std::string& type, Value callback) {
  listeners_[type].push_back(std::move(callback));
}

void EventLoop::push_user_events(const std::vector<UserEvent>& events) {
  user_events_.insert(user_events_.end(), events.begin(), events.end());
  std::stable_sort(user_events_.begin() + std::ptrdiff_t(next_user_event_),
                   user_events_.end(),
                   [](const UserEvent& a, const UserEvent& b) { return a.t_ms < b.t_ms; });
}

void EventLoop::advance_wall_to(std::int64_t target_ns) {
  const std::int64_t now = interp_->clock().wall_ns();
  if (target_ns > now) interp_->block(target_ns - now);
}

void EventLoop::dispatch_user_event(const UserEvent& event) {
  const auto it = listeners_.find(event.type);
  if (it == listeners_.end()) return;
  interp::ObjPtr info = interp_->make_object();
  info->set_property("type", Value::str(event.type));
  info->set_property("x", Value::number(event.x));
  info->set_property("y", Value::number(event.y));
  info->set_property("key", Value::str(event.key));
  info->set_property("timeStamp",
                     Value::number(double(interp_->clock().wall_ns()) / 1e6));
  ++events_dispatched_;
  // Copy: a handler may add/remove listeners while we iterate.
  const std::vector<Value> handlers = it->second;
  for (const Value& handler : handlers) {
    interp_->call(handler, Value::undefined(), {Value::object(info)});
  }
}

void EventLoop::enable_frame_graph(rivertrail::ThreadPool& pool,
                                   CanvasContext* canvas, std::size_t depth) {
  frame_pool_ = &pool;
  frame_canvas_ = canvas;
  frame_depth_ = std::max<std::size_t>(depth, 1);
}

FrameGraphStats EventLoop::frame_graph_stats() const {
  FrameGraphStats stats;
  stats.frames = frames_committed_;
  stats.kernel_ns = kernel_ns_;
  stats.upload_ns = upload_ns_.load(std::memory_order_relaxed);
  stats.commit_ns = commit_ns_;
  return stats;
}

bool EventLoop::next_dispatch_is_raf(std::int64_t horizon_ns) const {
  if (tasks_.empty() || !tasks_.begin()->second.is_raf) return false;
  const std::int64_t task_due = tasks_.begin()->first.first;
  if (task_due > horizon_ns) return false;
  // Ties go to the task, exactly as in the serial dispatch loop below.
  if (next_user_event_ < user_events_.size() &&
      user_events_[next_user_event_].t_ms * 1'000'000 < task_due) {
    return false;
  }
  return true;
}

void EventLoop::run_frame_graph_burst(std::int64_t horizon_ns) {
  // Bound the burst: the pipeline primitive flushes unproduced tickets as
  // cheap bubbles, so the cap trades a little bubble overhead for bounded
  // per-burst state. The outer run() loop re-enters immediately when more
  // frames are pending.
  constexpr std::size_t kMaxBurstFrames = 32;

  struct FrameSlot {
    std::int64_t seq = 0;
    std::vector<std::uint8_t> pixels;
    std::uint64_t checksum = 0;
  };
  // Ring of in-flight frame snapshots. The commit stage is the (serial)
  // last stage, so tokens retire in ticket order and ticket t only spawns
  // after t - depth retired: slot reuse is race-free by construction.
  std::vector<FrameSlot> slots(std::bit_ceil(frame_depth_));
  const std::size_t slot_mask = slots.size() - 1;

  // Serial-in "kernel": dispatch every rAF callback of the next frame
  // boundary — identical order, clock charges and hook traffic as the
  // serial loop — then snapshot the canvas for the downstream stages.
  auto kernel = rivertrail::serial_stage([&](std::size_t token) -> bool {
    if (!next_dispatch_is_raf(horizon_ns)) return false;
    JSCERES_OBS_SPAN_ARG("frame", "frame.kernel", "seq", next_frame_seq_);
    const std::int64_t due = tasks_.begin()->first.first;
    advance_wall_to(due);
    const std::int64_t t0 = thread_cpu_ns();
    while (!tasks_.empty() && tasks_.begin()->second.is_raf &&
           tasks_.begin()->first.first == due) {
      Task task = std::move(tasks_.begin()->second);
      tasks_.erase(tasks_.begin());
      ++tasks_dispatched_;
      const Value arg = Value::number(double(interp_->clock().wall_ns()) / 1e6);
      interp_->call(task.callback, Value::undefined(), {arg});
    }
    FrameSlot& slot = slots[token & slot_mask];
    slot.seq = next_frame_seq_++;
    slot.pixels = frame_canvas_ != nullptr ? frame_canvas_->snapshot_rgba()
                                           : std::vector<std::uint8_t>{};
    kernel_ns_ += thread_cpu_ns() - t0;
    return true;
  });

  // Parallel "canvas upload": the compositor-side walk of the presented
  // frame (checksum over the snapshot — real CPU work proportional to the
  // pixels, running on a worker while the kernel stage computes the NEXT
  // frame). Touches only this token's snapshot, never the live canvas.
  auto upload = rivertrail::parallel_stage([&](std::size_t token) {
    const std::int64_t t0 = thread_cpu_ns();
    FrameSlot& slot = slots[token & slot_mask];
    JSCERES_OBS_SPAN_ARG("frame", "frame.upload", "seq",
                         std::uint64_t(slot.seq));
    slot.checksum = fnv1a(slot.pixels);
    upload_ns_.fetch_add(thread_cpu_ns() - t0, std::memory_order_relaxed);
  });

  // Serial-out "commit": present frames strictly in frame order — the
  // byte-deterministic log the acceptance tests compare across runs.
  auto commit = rivertrail::serial_stage([&](std::size_t token) {
    const std::int64_t t0 = thread_cpu_ns();
    const FrameSlot& slot = slots[token & slot_mask];
    JSCERES_OBS_SPAN_ARG("frame", "frame.commit", "seq",
                         std::uint64_t(slot.seq));
    frame_log_.emplace_back(slot.seq, slot.checksum);
    ++frames_committed_;
    JSCERES_OBS_COUNT("frame.committed", 1);
    commit_ns_ += thread_cpu_ns() - t0;
  });

  std::vector<rivertrail::PipelineStage> stages;
  stages.push_back(std::move(kernel));
  stages.push_back(std::move(upload));
  stages.push_back(std::move(commit));
  rivertrail::run_pipeline(*frame_pool_, kMaxBurstFrames, frame_depth_,
                           std::move(stages), cancel_);
}

void EventLoop::run(std::int64_t horizon_ms, CancelToken cancel) {
  const std::int64_t horizon_ns = horizon_ms * 1'000'000;
  cancel_ = cancel;
  while (true) {
    // Cancellation is observed at the dispatch boundary (between tasks, not
    // inside one): the loop's queues stay coherent — a later run() resumes
    // with the undispatched remainder — and mid-callback cancellation is the
    // interpreter tick probe's job, not ours.
    cancel.raise_if_cancelled();
    if (frame_pool_ != nullptr && next_dispatch_is_raf(horizon_ns)) {
      run_frame_graph_burst(horizon_ns);
      continue;
    }

    const bool has_task = !tasks_.empty();
    const bool has_event = next_user_event_ < user_events_.size();
    if (!has_task && !has_event) break;

    const std::int64_t task_due =
        has_task ? tasks_.begin()->first.first : std::numeric_limits<std::int64_t>::max();
    const std::int64_t event_due = has_event
                                       ? user_events_[next_user_event_].t_ms * 1'000'000
                                       : std::numeric_limits<std::int64_t>::max();

    const std::int64_t due = std::min(task_due, event_due);
    if (due > horizon_ns) break;
    advance_wall_to(due);

    if (task_due <= event_due) {
      Task task = std::move(tasks_.begin()->second);
      tasks_.erase(tasks_.begin());
      ++tasks_dispatched_;
      const Value arg = Value::number(double(interp_->clock().wall_ns()) / 1e6);
      interp_->call(task.callback, Value::undefined(), task.is_raf ? std::vector<Value>{arg}
                                                                   : std::vector<Value>{});
    } else {
      const UserEvent event = user_events_[next_user_event_++];
      dispatch_user_event(event);
    }
  }
  // Idle out the rest of the session: the app sits on screen until the user
  // stops interacting (paper Table 2 measures from start to results upload).
  advance_wall_to(horizon_ns);
  cancel_ = CancelToken();  // the loop outlives the caller's CancelSource
}

}  // namespace jsceres::dom
