#include "dom/page.h"

#include <cmath>

namespace jsceres::dom {

using interp::Args;
using interp::HostAccess;
using interp::Interpreter;
using interp::ObjPtr;
using interp::Value;

namespace {

/// Marker host payload for singleton substrate objects (document, window,
/// localStorage) so that property touches classify correctly.
struct MarkerHost final : interp::HostData {
  explicit MarkerHost(HostAccess access) : access_(access) {}
  [[nodiscard]] HostAccess category() const override { return access_; }
  HostAccess access_;
};

/// Host payload linking a JS wrapper back to its DOM node.
struct NodeHost final : interp::HostData {
  explicit NodeHost(std::shared_ptr<DomNode> node) : node(std::move(node)) {}
  [[nodiscard]] HostAccess category() const override { return HostAccess::Dom; }
  std::shared_ptr<DomNode> node;
};

/// Host payload for 2D context wrappers.
struct ContextHost final : interp::HostData {
  explicit ContextHost(std::shared_ptr<CanvasContext> ctx) : ctx(std::move(ctx)) {}
  [[nodiscard]] HostAccess category() const override { return HostAccess::Canvas; }
  std::shared_ptr<CanvasContext> ctx;
};

std::shared_ptr<DomNode> node_of(Interpreter& interp, const Value& value) {
  if (value.is_object()) {
    if (auto* host = value.as_object()->host_as<NodeHost>()) return host->node;
  }
  interp.throw_error("TypeError", "expected a DOM element");
}

std::shared_ptr<CanvasContext> ctx_of(Interpreter& interp, const Value& value) {
  if (value.is_object()) {
    if (auto* host = value.as_object()->host_as<ContextHost>()) return host->ctx;
  }
  interp.throw_error("TypeError", "expected a canvas 2D context");
}

void define(Interpreter& interp, const ObjPtr& target, const std::string& name,
            interp::NativeFn fn) {
  target->set_property(name,
                       Value::object(interp.make_native_function(name, std::move(fn))));
}

double prop_number(Interpreter& interp, const ObjPtr& obj, const std::string& key,
                   double fallback) {
  const Value* v = obj->own_property(key);
  return v == nullptr ? fallback : interp.to_number(*v);
}

/// Pull the current fillStyle/strokeStyle off the wrapper into the context.
void sync_styles(Interpreter& interp, const Value& self,
                 const std::shared_ptr<CanvasContext>& ctx) {
  const ObjPtr& obj = self.as_object();
  if (const Value* fill = obj->own_property("fillStyle")) {
    ctx->set_fill_color(parse_color(interp.to_string_value(*fill)));
  }
  if (const Value* stroke = obj->own_property("strokeStyle")) {
    ctx->set_stroke_color(parse_color(interp.to_string_value(*stroke)));
  }
}

/// Forward accumulated raster cost to the interpreter clock.
void settle(Interpreter& interp, const std::shared_ptr<CanvasContext>& ctx) {
  const CanvasContext::Cost cost = ctx->drain_cost();
  if (cost.cpu_ticks > 0) interp.charge(cost.cpu_ticks);
  if (cost.block_ns > 0) interp.block(cost.block_ns);
}

}  // namespace

Page::Page(Interpreter& interp, Config config)
    : interp_(&interp), config_(config), event_loop_(interp) {
  install_document();
  install_window();
  install_storage();
}

Value Page::wrap(const std::shared_ptr<DomNode>& node) {
  const auto it = wrappers_.find(node.get());
  if (it != wrappers_.end()) return Value::object(it->second);

  ObjPtr obj = interp_->make_object();
  obj->set_host(std::make_shared<NodeHost>(node));
  obj->set_property("tagName", Value::str(node->tag()));
  obj->set_property("id", Value::str(node->id()));

  Page* page = this;
  define(*interp_, obj, "appendChild",
         [page](Interpreter& in, const Value& self, const Args& args) {
           const auto parent = node_of(in, self);
           const auto child = node_of(in, args.empty() ? Value::undefined() : args[0]);
           parent->append_child(child);
           page->document().register_id(child);
           in.charge(page->config_.dom_mutation_ticks);
           in.note_host_access(HostAccess::Dom, "appendChild");
           return args[0];
         });
  define(*interp_, obj, "removeChild",
         [page](Interpreter& in, const Value& self, const Args& args) {
           const auto parent = node_of(in, self);
           const auto child = node_of(in, args.empty() ? Value::undefined() : args[0]);
           parent->remove_child(child.get());
           in.charge(page->config_.dom_mutation_ticks);
           in.note_host_access(HostAccess::Dom, "removeChild");
           return args[0];
         });
  define(*interp_, obj, "setAttribute",
         [page](Interpreter& in, const Value& self, const Args& args) {
           const auto node = node_of(in, self);
           const std::string name =
               in.to_string_value(args.empty() ? Value::undefined() : args[0]);
           const std::string value =
               in.to_string_value(args.size() > 1 ? args[1] : Value::undefined());
           if (name == "id") {
             node->set_id(value);
             page->document().register_id(node);
           }
           node->set_attribute(name, value);
           in.charge(page->config_.dom_mutation_ticks / 4);
           in.note_host_access(HostAccess::Dom, "setAttribute");
           return Value::undefined();
         });
  define(*interp_, obj, "getAttribute",
         [](Interpreter& in, const Value& self, const Args& args) {
           const auto node = node_of(in, self);
           in.note_host_access(HostAccess::Dom, "getAttribute");
           return Value::str(node->attribute(
               in.to_string_value(args.empty() ? Value::undefined() : args[0])));
         });
  define(*interp_, obj, "getContext",
         [page](Interpreter& in, const Value& self, const Args&) {
           const auto node = node_of(in, self);
           auto& ctx = page->contexts_[node.get()];
           if (ctx == nullptr) {
             const ObjPtr& wrapper = self.as_object();
             const int w = int(prop_number(in, wrapper, "width", 300));
             const int h = int(prop_number(in, wrapper, "height", 150));
             ctx = std::make_shared<CanvasContext>(w, h);
           }
           // Context wrapper (one per getContext call is fine; state lives in
           // the shared CanvasContext).
           ObjPtr ctx_obj = in.make_object();
           ctx_obj->set_host(std::make_shared<ContextHost>(ctx));
           ctx_obj->set_property("canvas", self);

           define(in, ctx_obj, "fillRect",
                  [](Interpreter& i2, const Value& s2, const Args& a2) {
                    const auto c = ctx_of(i2, s2);
                    sync_styles(i2, s2, c);
                    c->fill_rect(int(i2.to_number(a2[0])), int(i2.to_number(a2[1])),
                                 int(i2.to_number(a2[2])), int(i2.to_number(a2[3])));
                    settle(i2, c);
                    i2.note_host_access(HostAccess::Canvas, "fillRect");
                    return Value::undefined();
                  });
           define(in, ctx_obj, "clearRect",
                  [](Interpreter& i2, const Value& s2, const Args& a2) {
                    const auto c = ctx_of(i2, s2);
                    c->clear_rect(int(i2.to_number(a2[0])), int(i2.to_number(a2[1])),
                                  int(i2.to_number(a2[2])), int(i2.to_number(a2[3])));
                    settle(i2, c);
                    i2.note_host_access(HostAccess::Canvas, "clearRect");
                    return Value::undefined();
                  });
           define(in, ctx_obj, "beginPath",
                  [](Interpreter& i2, const Value& s2, const Args&) {
                    ctx_of(i2, s2)->begin_path();
                    return Value::undefined();
                  });
           define(in, ctx_obj, "moveTo",
                  [](Interpreter& i2, const Value& s2, const Args& a2) {
                    ctx_of(i2, s2)->move_to(i2.to_number(a2[0]), i2.to_number(a2[1]));
                    return Value::undefined();
                  });
           define(in, ctx_obj, "lineTo",
                  [](Interpreter& i2, const Value& s2, const Args& a2) {
                    ctx_of(i2, s2)->line_to(i2.to_number(a2[0]), i2.to_number(a2[1]));
                    return Value::undefined();
                  });
           define(in, ctx_obj, "arc",
                  [](Interpreter& i2, const Value& s2, const Args& a2) {
                    ctx_of(i2, s2)->arc(i2.to_number(a2[0]), i2.to_number(a2[1]),
                                        i2.to_number(a2[2]));
                    return Value::undefined();
                  });
           define(in, ctx_obj, "stroke",
                  [](Interpreter& i2, const Value& s2, const Args&) {
                    const auto c = ctx_of(i2, s2);
                    sync_styles(i2, s2, c);
                    c->stroke_path();
                    settle(i2, c);
                    i2.note_host_access(HostAccess::Canvas, "stroke");
                    return Value::undefined();
                  });
           define(in, ctx_obj, "fill",
                  [](Interpreter& i2, const Value& s2, const Args&) {
                    const auto c = ctx_of(i2, s2);
                    sync_styles(i2, s2, c);
                    c->fill_path();
                    settle(i2, c);
                    i2.note_host_access(HostAccess::Canvas, "fill");
                    return Value::undefined();
                  });
           define(in, ctx_obj, "getImageData",
                  [](Interpreter& i2, const Value& s2, const Args& a2) {
                    const auto c = ctx_of(i2, s2);
                    const int x = int(i2.to_number(a2[0]));
                    const int y = int(i2.to_number(a2[1]));
                    const int w = int(i2.to_number(a2[2]));
                    const int h = int(i2.to_number(a2[3]));
                    const std::vector<std::uint8_t> bytes = c->get_image_data(x, y, w, h);
                    ObjPtr data = i2.make_array(bytes.size());
                    for (const std::uint8_t b : bytes) {
                      data->elements().push_back(Value::number(b));
                    }
                    ObjPtr img = i2.make_object();
                    img->set_property("width", Value::number(w));
                    img->set_property("height", Value::number(h));
                    img->set_property("data", Value::object(data));
                    settle(i2, c);
                    i2.note_host_access(HostAccess::Canvas, "getImageData");
                    return Value::object(img);
                  });
           define(in, ctx_obj, "putImageData",
                  [](Interpreter& i2, const Value& s2, const Args& a2) {
                    const auto c = ctx_of(i2, s2);
                    if (a2.empty() || !a2[0].is_object()) {
                      i2.throw_error("TypeError", "putImageData expects ImageData");
                    }
                    const ObjPtr& img = a2[0].as_object();
                    const int w = int(prop_number(i2, img, "width", 0));
                    const int h = int(prop_number(i2, img, "height", 0));
                    const Value* data = img->own_property("data");
                    if (data == nullptr || !data->is_object()) {
                      i2.throw_error("TypeError", "ImageData has no data");
                    }
                    const auto& elems = data->as_object()->elements();
                    std::vector<std::uint8_t> bytes(elems.size());
                    for (std::size_t i = 0; i < elems.size(); ++i) {
                      const double v = elems[i].is_number() ? elems[i].as_number() : 0;
                      bytes[i] = std::uint8_t(std::clamp(v, 0.0, 255.0));
                    }
                    c->put_image_data(bytes, int(i2.to_number(a2[1])),
                                      int(i2.to_number(a2[2])), w, h);
                    settle(i2, c);
                    i2.note_host_access(HostAccess::Canvas, "putImageData");
                    return Value::undefined();
                  });
           in.note_host_access(HostAccess::Canvas, "getContext");
           return Value::object(ctx_obj);
         });

  wrappers_[node.get()] = obj;
  return Value::object(obj);
}

Value Page::add_canvas(const std::string& id, int width, int height) {
  auto node = document_.create("canvas");
  node->set_id(id);
  document_.register_id(node);
  document_.body()->append_child(node);
  const Value wrapper = wrap(node);
  wrapper.as_object()->set_property("width", Value::number(width));
  wrapper.as_object()->set_property("height", Value::number(height));
  return wrapper;
}

void Page::install_document() {
  ObjPtr doc = interp_->make_object();
  doc->set_host(std::make_shared<MarkerHost>(HostAccess::Dom));
  Page* page = this;
  define(*interp_, doc, "getElementById",
         [page](Interpreter& in, const Value&, const Args& args) {
           const std::string id =
               in.to_string_value(args.empty() ? Value::undefined() : args[0]);
           in.note_host_access(HostAccess::Dom, "getElementById");
           const auto node = page->document_.by_id(id);
           if (node == nullptr) return Value::null();
           return page->wrap(node);
         });
  define(*interp_, doc, "createElement",
         [page](Interpreter& in, const Value&, const Args& args) {
           const std::string tag =
               in.to_string_value(args.empty() ? Value::undefined() : args[0]);
           in.note_host_access(HostAccess::Dom, "createElement");
           in.charge(page->config_.dom_mutation_ticks / 4);
           return page->wrap(page->document_.create(tag));
         });
  doc->set_property("body", wrap(document_.body()));
  interp_->define_global("document", Value::object(doc));
}

void Page::install_window() {
  ObjPtr window = interp_->make_object();
  window->set_property("innerWidth", Value::number(config_.viewport_width));
  window->set_property("innerHeight", Value::number(config_.viewport_height));
  window->set_property("devicePixelRatio", Value::number(1));

  Page* page = this;
  const auto set_timeout = [page](Interpreter& in, const Value&,
                                  const Args& args) {
    const Value cb = args.empty() ? Value::undefined() : args[0];
    const auto delay =
        std::int64_t(args.size() > 1 ? in.to_number(args[1]) : 0);
    return Value::number(double(page->event_loop_.set_timeout(cb, delay)));
  };
  const auto clear_timeout = [page](Interpreter& in, const Value&,
                                    const Args& args) {
    page->event_loop_.clear_timeout(
        std::uint64_t(args.empty() ? 0 : in.to_number(args[0])));
    return Value::undefined();
  };
  const auto raf = [page](Interpreter&, const Value&, const Args& args) {
    const Value cb = args.empty() ? Value::undefined() : args[0];
    return Value::number(double(page->event_loop_.request_animation_frame(cb)));
  };
  const auto add_listener = [page](Interpreter& in, const Value&,
                                   const Args& args) {
    const std::string type =
        in.to_string_value(args.empty() ? Value::undefined() : args[0]);
    page->event_loop_.add_listener(type, args.size() > 1 ? args[1] : Value::undefined());
    in.note_host_access(HostAccess::Dom, "addEventListener");
    return Value::undefined();
  };
  // Simulated resource fetch: loadResource(name, size_kb, callback). The
  // callback fires after latency + transfer delay; no CPU is consumed
  // (paper Fig. 2: "resource loading" is the top bottleneck, and it is
  // wall-clock, not compute).
  const auto load_resource = [page](Interpreter& in, const Value&,
                                    const Args& args) {
    const double kb = args.size() > 1 ? in.to_number(args[1]) : 0;
    const Value cb = args.size() > 2 ? args[2] : Value::undefined();
    const auto delay_ms = std::int64_t(double(page->config_.net_latency_ms) +
                                       kb * page->config_.net_ms_per_kb);
    in.note_host_access(HostAccess::Network, "loadResource");
    if (cb.is_object()) page->event_loop_.set_timeout(cb, delay_ms);
    return Value::undefined();
  };

  define(*interp_, window, "setTimeout", set_timeout);
  define(*interp_, window, "clearTimeout", clear_timeout);
  define(*interp_, window, "requestAnimationFrame", raf);
  define(*interp_, window, "addEventListener", add_listener);
  define(*interp_, window, "loadResource", load_resource);
  interp_->define_global("window", Value::object(window));

  // The same entry points exist as bare globals, as in a browser.
  interp_->define_global("setTimeout", *window->own_property("setTimeout"));
  interp_->define_global("clearTimeout", *window->own_property("clearTimeout"));
  interp_->define_global("requestAnimationFrame",
                         *window->own_property("requestAnimationFrame"));
  interp_->define_global("addEventListener", *window->own_property("addEventListener"));
  interp_->define_global("loadResource", *window->own_property("loadResource"));
}

void Page::install_storage() {
  ObjPtr storage = interp_->make_object();
  storage->set_host(std::make_shared<MarkerHost>(HostAccess::Storage));
  Page* page = this;
  define(*interp_, storage, "setItem",
         [page](Interpreter& in, const Value&, const Args& args) {
           const std::string key =
               in.to_string_value(args.empty() ? Value::undefined() : args[0]);
           page->storage_[key] =
               in.to_string_value(args.size() > 1 ? args[1] : Value::undefined());
           in.note_host_access(HostAccess::Storage, "setItem");
           in.charge(20);
           return Value::undefined();
         });
  define(*interp_, storage, "getItem",
         [page](Interpreter& in, const Value&, const Args& args) {
           const std::string key =
               in.to_string_value(args.empty() ? Value::undefined() : args[0]);
           in.note_host_access(HostAccess::Storage, "getItem");
           const auto it = page->storage_.find(key);
           if (it == page->storage_.end()) return Value::null();
           return Value::str(it->second);
         });
  interp_->define_global("localStorage", Value::object(storage));
}

}  // namespace jsceres::dom
