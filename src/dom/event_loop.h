#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "interp/interpreter.h"
#include "support/cancel.h"

namespace jsceres::rivertrail {
class ThreadPool;
}

namespace jsceres::dom {

class CanvasContext;

/// A synthetic user interaction, replayed by the event loop at a virtual
/// timestamp — the reproduction of the paper's step 4 ("the user interacts
/// with the web application to exercise any computationally-intensive
/// code"). Each workload ships an event script.
struct UserEvent {
  std::int64_t t_ms = 0;
  std::string type;  // "mousedown", "mousemove", "mouseup", "keydown", ...
  double x = 0;
  double y = 0;
  std::string key;
};

/// Observability of the frame-graph mode: committed frame count and the
/// accumulated real (thread-CPU) span of each pipeline stage. On a
/// single-core host the spans are makespan lower-bound inputs, not
/// wall-clock speedups (BENCH_rivertrail_baseline.json conventions).
struct FrameGraphStats {
  std::int64_t frames = 0;
  std::int64_t kernel_ns = 0;
  std::int64_t upload_ns = 0;
  std::int64_t commit_ns = 0;
};

/// Virtual-time browser event loop: setTimeout tasks, requestAnimationFrame
/// at 60 Hz frame boundaries, and user-event replay. Idle gaps between tasks
/// advance wall-clock only (the CPU-active clock stands still), which is what
/// separates "Total" from "Active" in Table 2.
///
/// Frame-graph mode (enable_frame_graph) is the reproduction's answer to the
/// In-Loops > Active gap of Table 2: a requestAnimationFrame tick is
/// decomposed into kernel -> canvas-upload -> commit pipeline stages over
/// the work-stealing pool (rivertrail/parallel_pipeline.h), so the next
/// frame's kernel overlaps the previous frame's upload instead of
/// serializing behind it. The kernel stage is serial-in (the interpreter is
/// single-threaded; the pipeline's ticket turnstile confines it to one
/// worker at a time, in frame order), uploads are parallel over frame
/// snapshots, and the commit stage is serial-out — the frame log is
/// byte-deterministic run to run. Virtual-clock accounting is unchanged:
/// callbacks run in exactly the order and with exactly the charges of the
/// serial loop, so Table 2 numbers and mode-3 golden reports are identical
/// with the mode on or off.
class EventLoop {
 public:
  explicit EventLoop(interp::Interpreter& interp) : interp_(&interp) {}

  static constexpr std::int64_t kFrameNs = 16'666'667;  // 60 Hz

  std::uint64_t set_timeout(interp::Value callback, std::int64_t delay_ms);
  void clear_timeout(std::uint64_t id);
  std::uint64_t request_animation_frame(interp::Value callback);

  void add_listener(const std::string& type, interp::Value callback);
  [[nodiscard]] bool has_listener(const std::string& type) const {
    const auto it = listeners_.find(type);
    return it != listeners_.end() && !it->second.empty();
  }

  void push_user_events(const std::vector<UserEvent>& events);

  /// Run until both the task queue and the user-event queue are exhausted,
  /// or until virtual wall-clock reaches `horizon_ms` (needed because
  /// requestAnimationFrame chains never drain on their own).
  ///
  /// `cancel` (default inert) is observed at every dispatch boundary and
  /// threaded into frame-graph bursts; a trip raises CancelledError with the
  /// queues intact (undispatched tasks stay queued, so a later run() can
  /// resume or the loop can be discarded). Mid-callback cancellation is
  /// handled by the interpreter's own tick-probe token, not the loop's.
  void run(std::int64_t horizon_ms, CancelToken cancel = {});

  /// Decompose requestAnimationFrame ticks into kernel -> canvas-upload ->
  /// commit pipeline stages on `pool` (see class comment). `canvas` is the
  /// surface whose pixels the upload stage snapshots (nullptr: upload
  /// degenerates to frame bookkeeping); `depth` bounds frames in flight
  /// (2 = classic double buffering: one frame uploading while the next
  /// computes).
  void enable_frame_graph(rivertrail::ThreadPool& pool,
                          CanvasContext* canvas = nullptr, std::size_t depth = 2);
  [[nodiscard]] bool frame_graph_enabled() const { return frame_pool_ != nullptr; }
  [[nodiscard]] FrameGraphStats frame_graph_stats() const;
  /// Commit-order (frame seq, canvas checksum) pairs — the serial-out
  /// stage's output, asserted byte-deterministic by tests and fig5.
  [[nodiscard]] const std::vector<std::pair<std::int64_t, std::uint64_t>>&
  frame_log() const {
    return frame_log_;
  }

  [[nodiscard]] std::int64_t tasks_dispatched() const { return tasks_dispatched_; }
  [[nodiscard]] std::int64_t events_dispatched() const { return events_dispatched_; }

 private:
  struct Task {
    std::uint64_t id = 0;
    interp::Value callback;
    bool is_raf = false;
  };

  void dispatch_user_event(const UserEvent& event);
  void advance_wall_to(std::int64_t target_ns);
  /// True when the next thing the serial loop would dispatch is a
  /// requestAnimationFrame task due within the horizon — the gate into a
  /// frame-graph burst.
  [[nodiscard]] bool next_dispatch_is_raf(std::int64_t horizon_ns) const;
  /// Pipeline consecutive rAF frame boundaries until the stream breaks (a
  /// timer or user event interleaves, the horizon hits, or the burst cap).
  void run_frame_graph_burst(std::int64_t horizon_ns);

  interp::Interpreter* interp_;
  // (due_ns, seq) -> task; the multimap keeps FIFO order within a timestamp.
  std::multimap<std::pair<std::int64_t, std::uint64_t>, Task> tasks_;
  std::vector<UserEvent> user_events_;  // sorted by t_ms, consumed front to back
  std::size_t next_user_event_ = 0;
  std::unordered_map<std::string, std::vector<interp::Value>> listeners_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::int64_t tasks_dispatched_ = 0;
  std::int64_t events_dispatched_ = 0;

  // Frame-graph mode state. The serial counters are only touched inside
  // serial pipeline stages (turnstile-ordered) or after the pipeline join;
  // upload_ns_ is the one counter parallel stages bump.
  rivertrail::ThreadPool* frame_pool_ = nullptr;
  CanvasContext* frame_canvas_ = nullptr;
  std::size_t frame_depth_ = 2;
  std::int64_t next_frame_seq_ = 0;
  std::int64_t frames_committed_ = 0;
  std::int64_t kernel_ns_ = 0;
  std::int64_t commit_ns_ = 0;
  std::atomic<std::int64_t> upload_ns_{0};
  std::vector<std::pair<std::int64_t, std::uint64_t>> frame_log_;
  CancelToken cancel_;  // live only inside run(); threaded into bursts
};

}  // namespace jsceres::dom
