#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/interpreter.h"

namespace jsceres::dom {

/// A synthetic user interaction, replayed by the event loop at a virtual
/// timestamp — the reproduction of the paper's step 4 ("the user interacts
/// with the web application to exercise any computationally-intensive
/// code"). Each workload ships an event script.
struct UserEvent {
  std::int64_t t_ms = 0;
  std::string type;  // "mousedown", "mousemove", "mouseup", "keydown", ...
  double x = 0;
  double y = 0;
  std::string key;
};

/// Virtual-time browser event loop: setTimeout tasks, requestAnimationFrame
/// at 60 Hz frame boundaries, and user-event replay. Idle gaps between tasks
/// advance wall-clock only (the CPU-active clock stands still), which is what
/// separates "Total" from "Active" in Table 2.
class EventLoop {
 public:
  explicit EventLoop(interp::Interpreter& interp) : interp_(&interp) {}

  static constexpr std::int64_t kFrameNs = 16'666'667;  // 60 Hz

  std::uint64_t set_timeout(interp::Value callback, std::int64_t delay_ms);
  void clear_timeout(std::uint64_t id);
  std::uint64_t request_animation_frame(interp::Value callback);

  void add_listener(const std::string& type, interp::Value callback);
  [[nodiscard]] bool has_listener(const std::string& type) const {
    const auto it = listeners_.find(type);
    return it != listeners_.end() && !it->second.empty();
  }

  void push_user_events(const std::vector<UserEvent>& events);

  /// Run until both the task queue and the user-event queue are exhausted,
  /// or until virtual wall-clock reaches `horizon_ms` (needed because
  /// requestAnimationFrame chains never drain on their own).
  void run(std::int64_t horizon_ms);

  [[nodiscard]] std::int64_t tasks_dispatched() const { return tasks_dispatched_; }
  [[nodiscard]] std::int64_t events_dispatched() const { return events_dispatched_; }

 private:
  struct Task {
    std::uint64_t id = 0;
    interp::Value callback;
    bool is_raf = false;
  };

  void dispatch_user_event(const UserEvent& event);
  void advance_wall_to(std::int64_t target_ns);

  interp::Interpreter* interp_;
  // (due_ns, seq) -> task; the multimap keeps FIFO order within a timestamp.
  std::multimap<std::pair<std::int64_t, std::uint64_t>, Task> tasks_;
  std::vector<UserEvent> user_events_;  // sorted by t_ms, consumed front to back
  std::size_t next_user_event_ = 0;
  std::unordered_map<std::string, std::vector<interp::Value>> listeners_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::int64_t tasks_dispatched_ = 0;
  std::int64_t events_dispatched_ = 0;
};

}  // namespace jsceres::dom
