#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/object.h"

namespace jsceres::dom {

/// Host-side DOM node. The browser substrate keeps the authoritative tree in
/// C++; JavaScript sees wrapper objects whose property touches are reported
/// as DOM accesses to the instrumentation.
class DomNode : public interp::HostData,
                public std::enable_shared_from_this<DomNode> {
 public:
  explicit DomNode(std::string tag) : tag_(std::move(tag)) {}

  [[nodiscard]] interp::HostAccess category() const override {
    return interp::HostAccess::Dom;
  }

  [[nodiscard]] const std::string& tag() const { return tag_; }

  [[nodiscard]] const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  [[nodiscard]] const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  void set_attribute(const std::string& name, std::string value) {
    attributes_[name] = std::move(value);
  }
  [[nodiscard]] std::string attribute(const std::string& name) const {
    const auto it = attributes_.find(name);
    return it == attributes_.end() ? "" : it->second;
  }

  void append_child(std::shared_ptr<DomNode> child) {
    child->parent_ = weak_from_this();
    children_.push_back(std::move(child));
  }
  bool remove_child(const DomNode* child) {
    for (auto it = children_.begin(); it != children_.end(); ++it) {
      if (it->get() == child) {
        children_.erase(it);
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] const std::vector<std::shared_ptr<DomNode>>& children() const {
    return children_;
  }
  [[nodiscard]] std::shared_ptr<DomNode> parent() const { return parent_.lock(); }

  /// Total number of nodes in this subtree (including this node).
  [[nodiscard]] std::size_t subtree_size() const {
    std::size_t n = 1;
    for (const auto& c : children_) n += c->subtree_size();
    return n;
  }

 private:
  std::string tag_;
  std::string id_;
  std::string text_;
  std::unordered_map<std::string, std::string> attributes_;
  std::vector<std::shared_ptr<DomNode>> children_;
  std::weak_ptr<DomNode> parent_;
};

/// The host document: a root node plus an id index.
class Document {
 public:
  Document() : root_(std::make_shared<DomNode>("html")) {
    auto body = std::make_shared<DomNode>("body");
    body->set_id("body");
    register_id(body);
    root_->append_child(body);
    body_ = std::move(body);
  }

  [[nodiscard]] const std::shared_ptr<DomNode>& root() const { return root_; }
  [[nodiscard]] const std::shared_ptr<DomNode>& body() const { return body_; }

  std::shared_ptr<DomNode> create(std::string tag) {
    return std::make_shared<DomNode>(std::move(tag));
  }

  void register_id(const std::shared_ptr<DomNode>& node) {
    if (!node->id().empty()) by_id_[node->id()] = node;
  }

  [[nodiscard]] std::shared_ptr<DomNode> by_id(const std::string& id) const {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second.lock();
  }

  [[nodiscard]] std::size_t node_count() const { return root_->subtree_size(); }

 private:
  std::shared_ptr<DomNode> root_;
  std::shared_ptr<DomNode> body_;
  std::unordered_map<std::string, std::weak_ptr<DomNode>> by_id_;
};

}  // namespace jsceres::dom
