#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/object.h"

namespace jsceres::dom {

/// RGBA color, 8 bits per channel.
struct Rgba {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  std::uint8_t a = 255;
};

/// Parse CSS-ish color strings: "#rgb", "#rrggbb", "rgb(r,g,b)",
/// "rgba(r,g,b,a)", plus a small named-color set. Unknown strings parse as
/// opaque black.
Rgba parse_color(const std::string& text);

/// Host-side 2D canvas: the substrate standing in for the browser's Canvas
/// implementation (paper §2.2: Canvas read/write is one of the surveyed
/// bottleneck categories).
///
/// Cost model: raster work charges CPU ticks proportional to the pixels
/// touched (native-code speed, far cheaper per pixel than JS), and
/// presentation-style operations (putImageData) additionally *block* —
/// advancing wall-clock only — modelling upload/compositor latency. This is
/// what makes loop wall-time exceed CPU-active time for the draw-heavy
/// workloads in Table 2, the anomaly the paper calls out in §3.1.
class CanvasContext final : public interp::HostData {
 public:
  CanvasContext(int width, int height)
      : width_(width), height_(height), pixels_(std::size_t(width * height)) {}

  [[nodiscard]] interp::HostAccess category() const override {
    return interp::HostAccess::Canvas;
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  // Path/raster state.
  void set_fill_color(Rgba c) { fill_ = c; }
  void set_stroke_color(Rgba c) { stroke_ = c; }
  [[nodiscard]] Rgba fill_color() const { return fill_; }
  [[nodiscard]] Rgba stroke_color() const { return stroke_; }

  void fill_rect(int x, int y, int w, int h);
  void clear_rect(int x, int y, int w, int h);
  void draw_line(double x0, double y0, double x1, double y1);
  void fill_circle(double cx, double cy, double radius);

  // Minimal path API (beginPath / moveTo / lineTo / arc / stroke / fill).
  void begin_path() {
    path_.clear();
    has_arc_ = false;
  }
  void move_to(double x, double y) { path_.push_back({x, y}); }
  void line_to(double x, double y) { path_.push_back({x, y}); }
  void arc(double cx, double cy, double radius) {
    has_arc_ = true;
    arc_cx_ = cx;
    arc_cy_ = cy;
    arc_r_ = radius;
  }
  /// Rasterize the accumulated polyline with the stroke color.
  void stroke_path();
  /// Fill the pending arc (circle) with the fill color.
  void fill_path();

  /// Copy out a region as packed RGBA bytes (row-major).
  [[nodiscard]] std::vector<std::uint8_t> get_image_data(int x, int y, int w,
                                                         int h) const;
  /// Cost-neutral full-surface copy for the event loop's frame-graph upload
  /// stage: the compositor reads the presented frame on its own thread, so
  /// unlike get_image_data it must NOT charge the app's cost ledger (the
  /// pending cpu/block costs drain into the interpreter clock at the next
  /// JS canvas call, which would skew virtual time).
  [[nodiscard]] std::vector<std::uint8_t> snapshot_rgba() const;
  /// Write a packed RGBA region back.
  void put_image_data(const std::vector<std::uint8_t>& rgba, int x, int y, int w,
                      int h);

  [[nodiscard]] Rgba pixel(int x, int y) const {
    return in_bounds(x, y) ? pixels_[std::size_t(y * width_ + x)] : Rgba{};
  }

  /// FNV-1a hash over the pixel buffer; lets tests assert deterministic
  /// rendering without golden images.
  [[nodiscard]] std::uint64_t checksum() const;

  /// CPU ticks and blocking nanoseconds accrued by raster calls since the
  /// last drain; the page bindings forward these to the interpreter clock.
  struct Cost {
    std::int64_t cpu_ticks = 0;
    std::int64_t block_ns = 0;
  };
  Cost drain_cost() {
    const Cost cost = pending_;
    pending_ = Cost{};
    return cost;
  }

 private:
  [[nodiscard]] bool in_bounds(int x, int y) const {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }
  void set_pixel(int x, int y, Rgba c) {
    if (in_bounds(x, y)) pixels_[std::size_t(y * width_ + x)] = c;
  }
  void charge(std::int64_t pixels, std::int64_t block_ns_per_kpixel = 0);

  int width_;
  int height_;
  std::vector<Rgba> pixels_;
  Rgba fill_{0, 0, 0, 255};
  Rgba stroke_{0, 0, 0, 255};
  Cost pending_;
  std::vector<std::pair<double, double>> path_;
  bool has_arc_ = false;
  double arc_cx_ = 0;
  double arc_cy_ = 0;
  double arc_r_ = 0;
};

}  // namespace jsceres::dom
