#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "dom/canvas.h"
#include "dom/document.h"
#include "dom/event_loop.h"
#include "interp/interpreter.h"

namespace jsceres::dom {

/// The browser-page substrate: wires `document`, `window`, canvas 2D
/// contexts, timers, localStorage and a simulated resource loader into an
/// interpreter instance.
///
/// Design notes / simplifications (vs. a real browser):
///  - Element wrappers expose explicit methods (appendChild, setAttribute,
///    getContext, ...). Scalar DOM state written through plain JS property
///    assignment (e.g. `el.textContent = ...`) stays on the wrapper; the
///    instrumentation still sees it as a DOM access via the host-object
///    category hook, which is all the study measures.
///  - Layout is modelled as a per-mutation CPU charge rather than an actual
///    layout pass.
///  - Resource loading advances wall-clock only: the network is not the CPU.
struct PageConfig {
  int viewport_width = 1024;
  int viewport_height = 768;
  /// Simulated network: latency + per-KB transfer time for loadResource.
  std::int64_t net_latency_ms = 40;
  double net_ms_per_kb = 0.6;
  /// CPU ticks charged per DOM mutation (appendChild etc.), modelling
  /// style/layout invalidation work.
  std::int64_t dom_mutation_ticks = 40;
};

class Page {
 public:
  using Config = PageConfig;

  Page(interp::Interpreter& interp, Config config = Config());

  [[nodiscard]] Document& document() { return document_; }
  [[nodiscard]] EventLoop& event_loop() { return event_loop_; }
  [[nodiscard]] interp::Interpreter& interp() { return *interp_; }

  /// The JS wrapper for a host node (cached so identity is stable).
  interp::Value wrap(const std::shared_ptr<DomNode>& node);

  /// Canvas context attached to a canvas element, if any.
  [[nodiscard]] std::shared_ptr<CanvasContext> context_of(const DomNode* node) const {
    const auto it = contexts_.find(node);
    return it == contexts_.end() ? nullptr : it->second;
  }

  /// Canvas context of the element with `id`, if the page has one and the
  /// app already called getContext on it. Used to wire the event loop's
  /// frame-graph upload stage to the workload's render surface.
  [[nodiscard]] std::shared_ptr<CanvasContext> canvas_context(const std::string& id) const {
    const auto node = document_.by_id(id);
    return node == nullptr ? nullptr : context_of(node.get());
  }

  /// Convenience used by workloads and tests: a canvas element with the
  /// given id appended to <body>.
  interp::Value add_canvas(const std::string& id, int width, int height);

 private:
  void install_document();
  void install_window();
  void install_storage();

  interp::Interpreter* interp_;
  Config config_;
  Document document_;
  EventLoop event_loop_;
  std::unordered_map<const DomNode*, interp::ObjPtr> wrappers_;
  std::unordered_map<const DomNode*, std::shared_ptr<CanvasContext>> contexts_;
  std::unordered_map<std::string, std::string> storage_;
};

}  // namespace jsceres::dom
