#include "dom/canvas.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace jsceres::dom {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return 0;
}

}  // namespace

Rgba parse_color(const std::string& text) {
  if (text.empty()) return Rgba{0, 0, 0, 255};
  if (text[0] == '#') {
    if (text.size() == 4) {
      return Rgba{std::uint8_t(hex_digit(text[1]) * 17),
                  std::uint8_t(hex_digit(text[2]) * 17),
                  std::uint8_t(hex_digit(text[3]) * 17), 255};
    }
    if (text.size() == 7) {
      return Rgba{std::uint8_t(hex_digit(text[1]) * 16 + hex_digit(text[2])),
                  std::uint8_t(hex_digit(text[3]) * 16 + hex_digit(text[4])),
                  std::uint8_t(hex_digit(text[5]) * 16 + hex_digit(text[6])), 255};
    }
    return Rgba{0, 0, 0, 255};
  }
  if (text.rfind("rgba(", 0) == 0 || text.rfind("rgb(", 0) == 0) {
    int r = 0;
    int g = 0;
    int b = 0;
    float a = 1.0f;
    if (std::sscanf(text.c_str(), "rgba(%d,%d,%d,%f)", &r, &g, &b, &a) >= 3 ||
        std::sscanf(text.c_str(), "rgb(%d,%d,%d)", &r, &g, &b) == 3) {
      const auto clamp8 = [](int v) {
        return std::uint8_t(std::clamp(v, 0, 255));
      };
      return Rgba{clamp8(r), clamp8(g), clamp8(b),
                  std::uint8_t(std::clamp(a, 0.0f, 1.0f) * 255.0f)};
    }
    return Rgba{0, 0, 0, 255};
  }
  if (text == "white") return Rgba{255, 255, 255, 255};
  if (text == "red") return Rgba{255, 0, 0, 255};
  if (text == "green") return Rgba{0, 128, 0, 255};
  if (text == "blue") return Rgba{0, 0, 255, 255};
  if (text == "gray" || text == "grey") return Rgba{128, 128, 128, 255};
  return Rgba{0, 0, 0, 255};
}

void CanvasContext::charge(std::int64_t pixels, std::int64_t block_ns_per_kpixel) {
  // Native rasterization: ~256 pixels per cost-model tick (native code is
  // orders of magnitude cheaper per pixel than interpreted JS).
  pending_.cpu_ticks += std::max<std::int64_t>(1, pixels / 256);
  pending_.block_ns += pixels * block_ns_per_kpixel / 1000;
}

void CanvasContext::fill_rect(int x, int y, int w, int h) {
  const int x0 = std::max(0, x);
  const int y0 = std::max(0, y);
  const int x1 = std::min(width_, x + w);
  const int y1 = std::min(height_, y + h);
  for (int py = y0; py < y1; ++py) {
    for (int px = x0; px < x1; ++px) {
      pixels_[std::size_t(py * width_ + px)] = fill_;
    }
  }
  charge(std::int64_t(std::max(0, x1 - x0)) * std::max(0, y1 - y0));
}

void CanvasContext::clear_rect(int x, int y, int w, int h) {
  const Rgba saved = fill_;
  fill_ = Rgba{0, 0, 0, 0};
  fill_rect(x, y, w, h);
  fill_ = saved;
}

void CanvasContext::draw_line(double x0, double y0, double x1, double y1) {
  // DDA rasterization with the stroke color.
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const int steps = std::max(1, int(std::max(std::fabs(dx), std::fabs(dy))));
  for (int i = 0; i <= steps; ++i) {
    const double t = double(i) / steps;
    set_pixel(int(std::lround(x0 + dx * t)), int(std::lround(y0 + dy * t)), stroke_);
  }
  charge(steps + 1);
}

void CanvasContext::fill_circle(double cx, double cy, double radius) {
  const int x0 = int(std::floor(cx - radius));
  const int x1 = int(std::ceil(cx + radius));
  const int y0 = int(std::floor(cy - radius));
  const int y1 = int(std::ceil(cy + radius));
  const double r2 = radius * radius;
  std::int64_t touched = 0;
  for (int py = y0; py <= y1; ++py) {
    for (int px = x0; px <= x1; ++px) {
      const double ddx = px + 0.5 - cx;
      const double ddy = py + 0.5 - cy;
      if (ddx * ddx + ddy * ddy <= r2) {
        set_pixel(px, py, fill_);
        ++touched;
      }
    }
  }
  charge(std::max<std::int64_t>(touched, 1));
}

void CanvasContext::stroke_path() {
  for (std::size_t i = 1; i < path_.size(); ++i) {
    draw_line(path_[i - 1].first, path_[i - 1].second, path_[i].first,
              path_[i].second);
  }
}

void CanvasContext::fill_path() {
  if (has_arc_) fill_circle(arc_cx_, arc_cy_, arc_r_);
}

std::vector<std::uint8_t> CanvasContext::get_image_data(int x, int y, int w,
                                                        int h) const {
  std::vector<std::uint8_t> out(std::size_t(w) * std::size_t(h) * 4);
  std::size_t i = 0;
  for (int py = y; py < y + h; ++py) {
    for (int px = x; px < x + w; ++px) {
      const Rgba c = pixel(px, py);
      out[i++] = c.r;
      out[i++] = c.g;
      out[i++] = c.b;
      out[i++] = c.a;
    }
  }
  const_cast<CanvasContext*>(this)->charge(std::int64_t(w) * h);
  return out;
}

std::vector<std::uint8_t> CanvasContext::snapshot_rgba() const {
  std::vector<std::uint8_t> out(std::size_t(width_) * std::size_t(height_) * 4);
  std::size_t i = 0;
  for (const Rgba c : pixels_) {
    out[i++] = c.r;
    out[i++] = c.g;
    out[i++] = c.b;
    out[i++] = c.a;
  }
  return out;
}

void CanvasContext::put_image_data(const std::vector<std::uint8_t>& rgba, int x,
                                   int y, int w, int h) {
  std::size_t i = 0;
  for (int py = y; py < y + h; ++py) {
    for (int px = x; px < x + w; ++px) {
      if (i + 3 >= rgba.size()) return;
      set_pixel(px, py, Rgba{rgba[i], rgba[i + 1], rgba[i + 2], rgba[i + 3]});
      i += 4;
    }
  }
  // Texture upload / compositor hand-off: wall-clock latency with the CPU
  // idle — a fixed sync stall plus a per-pixel transfer term. This is the
  // "blocking code within the loop" of paper §3.1 that makes loop wall-time
  // exceed CPU-active time for draw-heavy workloads.
  charge(std::int64_t(w) * h, /*block_ns_per_kpixel=*/400'000);
  pending_.block_ns += 25'000'000;  // compositor sync stall
}

std::uint64_t CanvasContext::checksum() const {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  };
  for (const Rgba& c : pixels_) {
    mix(c.r);
    mix(c.g);
    mix(c.b);
    mix(c.a);
  }
  return hash;
}

}  // namespace jsceres::dom
