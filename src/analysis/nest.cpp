#include "analysis/nest.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace jsceres::analysis {

namespace {

/// Dominant dynamic parent of each loop (most frequent nesting edge).
std::unordered_map<int, int> dominant_parents(const ceres::LoopProfiler& profiler) {
  std::unordered_map<int, int> parent;
  std::unordered_map<int, std::int64_t> best;
  for (const auto& [edge, count] : profiler.nesting_edges()) {
    const auto [child, candidate] = edge;
    if (count > best[child]) {
      best[child] = count;
      parent[child] = candidate;
    }
  }
  return parent;
}

}  // namespace

std::vector<LoopNest> build_nests(const ceres::LoopProfiler& profiler,
                                  const std::vector<int>& report_roots) {
  const auto parents = dominant_parents(profiler);

  // Roots: explicitly requested report roots, else loops with no parent.
  std::vector<int> roots;
  if (!report_roots.empty()) {
    roots = report_roots;
  } else {
    for (const auto& [loop_id, stats] : profiler.stats()) {
      (void)stats;
      if (parents.find(loop_id) == parents.end()) roots.push_back(loop_id);
    }
  }

  // children adjacency
  std::unordered_map<int, std::vector<int>> children;
  for (const auto& [child, parent] : parents) children[parent].push_back(child);

  const double total_ns = double(profiler.total_in_loops_ns());
  std::vector<LoopNest> nests;
  for (const int root : roots) {
    const ceres::LoopStats* root_stats = profiler.stats_for(root);
    if (root_stats == nullptr || root_stats->instances == 0) continue;

    LoopNest nest;
    nest.root_loop_id = root;
    // BFS over descendants.
    std::vector<int> queue = {root};
    std::unordered_set<int> seen;
    while (!queue.empty()) {
      const int loop = queue.back();
      queue.pop_back();
      if (!seen.insert(loop).second) continue;
      nest.members.push_back(loop);
      const auto it = children.find(loop);
      if (it != children.end()) {
        for (const int child : it->second) queue.push_back(child);
      }
    }
    std::sort(nest.members.begin(), nest.members.end());
    // Keep the root first for readability.
    std::erase(nest.members, root);
    nest.members.insert(nest.members.begin(), root);

    nest.instances = root_stats->instances;
    nest.trips_mean = root_stats->trips.mean();
    nest.trips_stddev = root_stats->trips.stddev();
    nest.runtime_ns = root_stats->total_runtime_ns();
    nest.share_of_loop_time = total_ns > 0 ? nest.runtime_ns / total_ns : 0;

    std::int64_t touches = 0;
    std::int64_t iterations = 0;
    for (const int member : nest.members) {
      const ceres::LoopStats* stats = profiler.stats_for(member);
      if (stats == nullptr) continue;
      nest.touches_dom |= stats->dom_touches > 0;
      nest.touches_canvas |= stats->canvas_touches > 0;
      if (member == nest.root_loop_id) {
        touches = stats->dom_touches + stats->canvas_touches;
        iterations = std::int64_t(stats->trips.total());
      }
    }
    nest.dom_touches_per_iteration =
        iterations > 0 ? double(touches) / double(iterations) : 0.0;
    nests.push_back(std::move(nest));
  }

  std::sort(nests.begin(), nests.end(), [](const LoopNest& a, const LoopNest& b) {
    return a.runtime_ns > b.runtime_ns;
  });
  return nests;
}

std::vector<LoopNest> top_nests(const std::vector<LoopNest>& nests, double coverage) {
  std::vector<LoopNest> out;
  double covered = 0;
  for (const auto& nest : nests) {
    if (covered >= coverage && !out.empty()) break;
    out.push_back(nest);
    covered += nest.share_of_loop_time;
  }
  return out;
}

}  // namespace jsceres::analysis
