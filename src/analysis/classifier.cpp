#include "analysis/classifier.h"

#include <algorithm>
#include <set>

namespace jsceres::analysis {

const char* divergence_label(Divergence d) {
  switch (d) {
    case Divergence::None: return "none";
    case Divergence::Little: return "little";
    case Divergence::Yes: return "yes";
  }
  return "?";
}

const char* difficulty_label(Difficulty d) {
  switch (d) {
    case Difficulty::VeryEasy: return "very easy";
    case Difficulty::Easy: return "easy";
    case Difficulty::Medium: return "medium";
    case Difficulty::Hard: return "hard";
    case Difficulty::VeryHard: return "very hard";
  }
  return "?";
}

Difficulty bump(Difficulty d, int levels) {
  return Difficulty(std::min(int(Difficulty::VeryHard), int(d) + levels));
}

NestEvidence gather_evidence(const LoopNest& nest, const js::Program& program,
                             const std::map<int, js::LoopStaticInfo>& static_info,
                             const ceres::DependenceAnalyzer& analyzer) {
  NestEvidence evidence;
  evidence.trips_mean = nest.trips_mean;
  evidence.trips_cv =
      nest.trips_mean > 0 ? nest.trips_stddev / nest.trips_mean : 0.0;
  evidence.touches_dom = nest.touches_dom;
  evidence.touches_canvas = nest.touches_canvas;
  evidence.dom_touches_per_iteration = nest.dom_touches_per_iteration;

  // Static structure, aggregated over the nest members (branching anywhere
  // in the nest diverges the SIMD lanes of the root).
  for (const int member : nest.members) {
    const auto it = static_info.find(member);
    if (it == static_info.end()) continue;
    evidence.branch_sites += it->second.branch_sites;
    if (member == nest.root_loop_id) {
      evidence.condition_data_dependent = it->second.condition_data_dependent;
    }
  }

  // Dependence evidence at the nest-root level.
  const auto summaries = analyzer.summaries();
  for (const int member : nest.members) {
    const auto it = summaries.find(member);
    if (it != summaries.end() && it->second.recursion_detected) {
      evidence.recursion_detected = true;
    }
  }
  const auto root_summary = summaries.find(nest.root_loop_id);
  if (root_summary != summaries.end()) {
    evidence.shared_reads = root_summary->second.shared_reads > 0;
    evidence.conflicting_write_sites =
        int(std::min<std::int64_t>(root_summary->second.conflicting_write_sites, 1 << 20));
  }

  const int header_line = program.loop(nest.root_loop_id).line;
  std::set<std::pair<int, std::string>> var_sites;
  std::set<std::pair<int, std::string>> prop_sites;
  std::set<std::pair<int, std::string>> flow_sites;
  for (const auto& warning : analyzer.warnings()) {
    const auto& levels = warning.characterization.levels;
    std::size_t root_index = levels.size();
    for (std::size_t i = 0; i < levels.size(); ++i) {
      if (levels[i].loop_id == nest.root_loop_id) {
        root_index = i;
        break;
      }
    }
    if (root_index == levels.size()) continue;
    const ceres::LevelFlags& at_root = levels[root_index];
    if (!at_root.instance_dep && !at_root.iteration_dep) continue;
    if (warning.line == header_line) continue;  // induction variable update
    const auto site = std::make_pair(warning.line, warning.name);
    switch (warning.kind) {
      case ceres::AccessKind::VarWrite:
        // Function-local temporaries are privatizable by extraction (the
        // paper's forEach rewrite); only global application state counts.
        if (warning.global_binding) var_sites.insert(site);
        break;
      case ceres::AccessKind::PropWrite:
        prop_sites.insert(site);
        break;
      case ceres::AccessKind::PropRead: {
        // A flow dependence impedes parallelizing *this* loop only when the
        // root is the outermost level carrying it; a value produced in an
        // earlier iteration of an enclosing loop is plain input here.
        bool outer_carries = false;
        for (std::size_t i = 0; i < root_index; ++i) {
          if (levels[i].instance_dep || levels[i].iteration_dep) {
            outer_carries = true;
            break;
          }
        }
        if (!outer_carries) flow_sites.insert(site);
        break;
      }
    }
  }
  evidence.var_write_sites = int(var_sites.size());
  evidence.prop_write_sites = int(prop_sites.size());
  evidence.flow_sites = int(flow_sites.size());
  return evidence;
}

Divergence classify_divergence(const NestEvidence& e, const ClassifierOptions& opts) {
  // Recursion inside the nest makes iteration work unbounded and uneven
  // (HAAR's tree search, the raytracer's variable-depth recursion).
  if (e.recursion_detected) return Divergence::Yes;
  // Loops that execute "roughly one iteration" (Ace) offer no lanes at all.
  if (e.trips_mean <= opts.trips_degenerate) return Divergence::Yes;
  // Tiny, data-dependent trip counts (MyScript's segment loop).
  if (e.trips_mean < opts.trips_small && e.condition_data_dependent) {
    return Divergence::Yes;
  }
  if (e.branch_sites == 0) return Divergence::None;
  // Branchy body with wildly varying trip counts.
  if (e.trips_cv > opts.cv_divergent) return Divergence::Yes;
  // Local, predicatable branching ("can be transformed to predicated
  // instructions without a major performance impact").
  return Divergence::Little;
}

Difficulty classify_dependences(const NestEvidence& e, const ClassifierOptions& opts) {
  if (e.flow_sites == 0) {
    // No read-after-write across iterations: privatization / disjoint-index
    // writes break everything that remains.
    if (e.var_write_sites == 0 && e.prop_write_sites == 0) {
      return Difficulty::VeryEasy;  // fully private or read-only
    }
    if (e.var_write_sites == 0 && e.conflicting_write_sites == 0) {
      return Difficulty::VeryEasy;  // pure disjoint-index output writes
    }
    return Difficulty::Easy;  // shared scalars to privatize / merge
  }
  if (e.flow_sites <= opts.flow_medium) return Difficulty::Medium;  // reduction-like
  if (e.flow_sites <= opts.flow_hard) return Difficulty::Hard;
  return Difficulty::VeryHard;
}

Difficulty classify_parallelization(const NestEvidence& e,
                                    const ClassifierOptions& opts) {
  const Difficulty deps = classify_dependences(e, opts);
  const bool touches_host = e.touches_dom || e.touches_canvas;
  if (touches_host && e.dom_touches_per_iteration >= opts.dom_heavy) {
    // DOM/Canvas access *is* the iteration's work: with non-concurrent
    // browser data structures there is nothing left to parallelize.
    return Difficulty::VeryHard;
  }
  // Secondary obstacles (incidental host access, divergence, granularity)
  // only matter when the dependences themselves are breakable; once the
  // loop is hard for dependence reasons, they are not the binding
  // constraint (e.g. the paper rates D3 "hard" despite DOM access and
  // divergence).
  if (deps >= Difficulty::Hard) return deps;
  Difficulty difficulty = deps;
  if (touches_host) difficulty = bump(difficulty);
  if (classify_divergence(e, opts) == Divergence::Yes) difficulty = bump(difficulty);
  if (e.trips_mean > 0 && e.trips_mean < opts.trips_granularity) {
    difficulty = bump(difficulty);
  }
  return difficulty;
}

double amdahl_bound(double parallel_fraction, int cores) {
  const double p = std::clamp(parallel_fraction, 0.0, 1.0);
  if (cores <= 0) {
    return p >= 1.0 ? std::numeric_limits<double>::infinity() : 1.0 / (1.0 - p);
  }
  return 1.0 / ((1.0 - p) + p / double(cores));
}

}  // namespace jsceres::analysis
