#pragma once

#include <map>
#include <vector>

#include "ceres/dependence_analyzer.h"
#include "ceres/loop_profiler.h"
#include "js/ast.h"
#include "js/loop_scanner.h"

namespace jsceres::analysis {

/// A loop nest: "a group of loops nested within a single top-level loop"
/// (paper §4.1), reconstructed from the loop profiler's dynamic nesting
/// edges. Nesting follows runtime containment (loops reached through calls
/// made inside a loop are nested), not syntax.
struct LoopNest {
  int root_loop_id = 0;
  std::vector<int> members;  // root first, then descendants

  // Aggregates for the Table 3 row.
  std::int64_t instances = 0;
  double trips_mean = 0;
  double trips_stddev = 0;
  double runtime_ns = 0;       // total wall time of the root loop
  double share_of_loop_time = 0;  // runtime / total time in loops
  bool touches_dom = false;
  bool touches_canvas = false;
  /// DOM/Canvas touches per root-loop iteration (density used by the
  /// parallelization classifier: incidental vs. fundamental).
  double dom_touches_per_iteration = 0;
};

/// Build nests from profiling data. `report_roots` optionally overrides the
/// top-level roots with inner loops (the paper: "in a few cases the
/// parallelizable loop is not the outer loop of a nest; we consider the
/// loop nest formed without some of the outer layers").
std::vector<LoopNest> build_nests(const ceres::LoopProfiler& profiler,
                                  const std::vector<int>& report_roots = {});

/// Nests covering at least `coverage` (e.g. 2.0/3.0, as in the paper) of the
/// total loop time, largest first.
std::vector<LoopNest> top_nests(const std::vector<LoopNest>& nests, double coverage);

}  // namespace jsceres::analysis
