#pragma once

#include <string>
#include <vector>

#include "analysis/nest.h"
#include "ceres/dependence_analyzer.h"
#include "js/loop_scanner.h"

namespace jsceres::analysis {

/// Table 3 column 5.
enum class Divergence { None, Little, Yes };

/// Table 3 columns 7 and 8.
enum class Difficulty { VeryEasy, Easy, Medium, Hard, VeryHard };

const char* divergence_label(Divergence d);
const char* difficulty_label(Difficulty d);

Difficulty bump(Difficulty d, int levels = 1);

/// Inputs distilled from the three instrumentation modes for one loop nest.
struct NestEvidence {
  // mode 2 (dynamic):
  double trips_mean = 0;
  double trips_cv = 0;  // stddev / mean
  bool touches_dom = false;
  bool touches_canvas = false;
  double dom_touches_per_iteration = 0;
  // static:
  int branch_sites = 0;
  bool condition_data_dependent = false;
  // mode 3 (dependence), at the nest root's level, induction-variable writes
  // excluded:
  bool recursion_detected = false;
  int var_write_sites = 0;      // type (a) sites
  int prop_write_sites = 0;     // type (b) sites
  int flow_sites = 0;           // type (c) sites
  int conflicting_write_sites = 0;  // same-field cross-iteration writes
  bool shared_reads = false;
};

/// Extract evidence for `nest` from the raw analysis outputs. Warnings whose
/// access line equals the loop-header line are induction-variable updates
/// (i++ and friends) and are excluded from the site counts, as a human
/// inspector would.
NestEvidence gather_evidence(const LoopNest& nest, const js::Program& program,
                             const std::map<int, js::LoopStaticInfo>& static_info,
                             const ceres::DependenceAnalyzer& analyzer);

/// Rule-based classifiers reproducing the paper's hand-inspection rubric
/// (§4.1/§4.2). Thresholds are deliberately explicit so the ablation bench
/// can sweep them.
struct ClassifierOptions {
  double trips_degenerate = 2.5;   // "roughly one iteration" loops
  double trips_small = 6.0;        // data-dependent tiny loops diverge
  double cv_divergent = 1.25;      // highly irregular trip counts
  int flow_medium = 4;             // reduction-like: few flow sites
  int flow_hard = 6;
  double trips_granularity = 8.0;  // too few trips to pay off
  double dom_heavy = 0.5;          // DOM touches per iteration: fundamental
};

Divergence classify_divergence(const NestEvidence& e,
                               const ClassifierOptions& opts = ClassifierOptions());

/// Column 7: how hard breaking the dependencies would be for a programmer.
Difficulty classify_dependences(const NestEvidence& e,
                                const ClassifierOptions& opts = ClassifierOptions());

/// Column 8: overall parallelization difficulty, combining dependence
/// difficulty with browser limitations (non-concurrent DOM/Canvas),
/// divergence, and granularity.
Difficulty classify_parallelization(const NestEvidence& e,
                                    const ClassifierOptions& opts = ClassifierOptions());

/// Amdahl bound: speedup limit with parallel fraction `p` on `cores` cores
/// (cores <= 0 means the asymptotic 1/(1-p) bound).
double amdahl_bound(double parallel_fraction, int cores = 0);

}  // namespace jsceres::analysis
