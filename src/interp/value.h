#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace jsceres::interp {

class JSObject;
using ObjPtr = std::shared_ptr<JSObject>;
using StrPtr = std::shared_ptr<const std::string>;

/// A JavaScript value: one of undefined, null, boolean, number, string, or
/// object reference. Strings are immutable and shared; objects are reference
/// counted (the engine has no cycle collector — programs in the study corpus
/// are run-to-completion, so cycles simply die with the heap).
class Value {
 public:
  enum class Kind : std::uint8_t { Undefined, Null, Boolean, Number, String, Object };

  Value() : kind_(Kind::Undefined) {}

  static Value undefined() { return Value(); }
  static Value null() {
    Value v;
    v.kind_ = Kind::Null;
    return v;
  }
  static Value boolean(bool b) {
    Value v;
    v.kind_ = Kind::Boolean;
    v.bool_ = b;
    return v;
  }
  static Value number(double d) {
    Value v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
  }
  static Value str(std::string s) {
    Value v;
    v.kind_ = Kind::String;
    v.str_ = std::make_shared<const std::string>(std::move(s));
    return v;
  }
  static Value str(StrPtr s) {
    Value v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
  }
  static Value object(ObjPtr obj) {
    Value v;
    v.kind_ = Kind::Object;
    v.obj_ = std::move(obj);
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_undefined() const { return kind_ == Kind::Undefined; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_nullish() const { return is_undefined() || is_null(); }
  [[nodiscard]] bool is_boolean() const { return kind_ == Kind::Boolean; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_boolean() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return *str_; }
  [[nodiscard]] const StrPtr& string_ptr() const { return str_; }
  [[nodiscard]] const ObjPtr& as_object() const { return obj_; }

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  StrPtr str_;
  ObjPtr obj_;
};

}  // namespace jsceres::interp
