#pragma once

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <utility>

#include "js/atom.h"

namespace jsceres::interp {

class JSObject;
using ObjPtr = std::shared_ptr<JSObject>;
using StrPtr = std::shared_ptr<const std::string>;

/// A JavaScript value: one of undefined, null, boolean, number, string, or
/// object reference. Strings are immutable and shared; objects are reference
/// counted (the engine has no cycle collector — programs in the study corpus
/// are run-to-completion, so cycles simply die with the heap).
///
/// The string and object references share one union slot (a value is never
/// both), keeping Value at 32 bytes and copy/destroy to a single kind test —
/// this matters: the tree-walking interpreter moves a Value per AST node.
/// The typed accessors (`as_string`, `as_object`, ...) are only valid after
/// the corresponding kind check, as everywhere in the engine.
class Value {
 public:
  enum class Kind : std::uint8_t { Undefined, Null, Boolean, Number, String, Object };

  Value() : kind_(Kind::Undefined) {}

  ~Value() { release(); }

  Value(const Value& other) : kind_(other.kind_), bool_(other.bool_), num_(other.num_) {
    if (kind_ == Kind::String) {
      new (&str_) StrPtr(other.str_);
    } else if (kind_ == Kind::Object) {
      new (&obj_) ObjPtr(other.obj_);
    }
  }
  Value(Value&& other) noexcept
      : kind_(other.kind_), bool_(other.bool_), num_(other.num_) {
    if (kind_ == Kind::String) {
      new (&str_) StrPtr(std::move(other.str_));
    } else if (kind_ == Kind::Object) {
      new (&obj_) ObjPtr(std::move(other.obj_));
    }
  }
  Value& operator=(const Value& other) {
    if (this != &other) {
      release();
      kind_ = other.kind_;
      bool_ = other.bool_;
      num_ = other.num_;
      if (kind_ == Kind::String) {
        new (&str_) StrPtr(other.str_);
      } else if (kind_ == Kind::Object) {
        new (&obj_) ObjPtr(other.obj_);
      }
    }
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this != &other) {
      release();
      kind_ = other.kind_;
      bool_ = other.bool_;
      num_ = other.num_;
      if (kind_ == Kind::String) {
        new (&str_) StrPtr(std::move(other.str_));
      } else if (kind_ == Kind::Object) {
        new (&obj_) ObjPtr(std::move(other.obj_));
      }
    }
    return *this;
  }

  static Value undefined() { return Value(); }
  static Value null() {
    Value v;
    v.kind_ = Kind::Null;
    return v;
  }
  static Value boolean(bool b) {
    Value v;
    v.kind_ = Kind::Boolean;
    v.bool_ = b;
    return v;
  }
  static Value number(double d) {
    Value v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
  }
  static Value str(std::string s) {
    return str(std::make_shared<const std::string>(std::move(s)));
  }
  static Value str(StrPtr s) {
    Value v;
    v.kind_ = Kind::String;
    new (&v.str_) StrPtr(std::move(s));
    return v;
  }
  /// Interned string: shares the atom table's text, no allocation.
  static Value str(const js::Atom& atom) { return str(atom.str_ptr()); }
  static Value object(ObjPtr obj) {
    Value v;
    v.kind_ = Kind::Object;
    new (&v.obj_) ObjPtr(std::move(obj));
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_undefined() const { return kind_ == Kind::Undefined; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_nullish() const { return is_undefined() || is_null(); }
  [[nodiscard]] bool is_boolean() const { return kind_ == Kind::Boolean; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_boolean() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  // Valid only when the matching kind check passed:
  [[nodiscard]] const std::string& as_string() const { return *str_; }
  [[nodiscard]] const StrPtr& string_ptr() const { return str_; }
  [[nodiscard]] const ObjPtr& as_object() const { return obj_; }

 private:
  void release() {
    if (kind_ == Kind::String) {
      str_.~StrPtr();
    } else if (kind_ == Kind::Object) {
      obj_.~ObjPtr();
    }
  }

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  union {
    StrPtr str_;
    ObjPtr obj_;
  };
};

}  // namespace jsceres::interp
