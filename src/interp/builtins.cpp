#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "interp/interpreter.h"

namespace jsceres::interp {

namespace {

/// Reference into `args` (or the shared undefined) — callers that only
/// inspect the argument avoid copying a Value (two shared_ptr refcount
/// bumps) per access.
const Value& arg_or_undefined(const Args& args, std::size_t i) {
  static const Value kUndefined;
  return i < args.size() ? args[i] : kUndefined;
}

double num_arg(Interpreter& interp, const Args& args, std::size_t i) {
  return interp.to_number(arg_or_undefined(args, i));
}

/// Report a native-initiated element write to the dependence analyzer (the
/// stand-in for the paper's Proxy trapping Array.prototype internals). The
/// key atom comes from the interpreter's index cache, and nothing — not
/// even the decimal spelling of the index — is materialized outside mode 3.
void note_index_write(Interpreter& interp, const ObjPtr& obj, std::size_t index) {
  if (interp.wants_memory_events()) {
    interp.note_prop_write(obj->id(), interp.index_atom(index), 0,
                           BaseProvenance{BaseProvenance::Kind::Object, 0});
  }
}

ObjPtr require_array(Interpreter& interp, const Value& this_val, const char* method) {
  if (!this_val.is_object() || !this_val.as_object()->is_array()) {
    interp.throw_error("TypeError",
                       std::string("Array.prototype.") + method +
                           " called on a non-array");
  }
  return this_val.as_object();
}

const std::string& require_string(Interpreter& interp, const Value& this_val,
                                  const char* method) {
  if (!this_val.is_string()) {
    interp.throw_error("TypeError",
                       std::string("String.prototype.") + method +
                           " called on a non-string");
  }
  return this_val.as_string();
}

void define_method(Interpreter& interp, const ObjPtr& target, const std::string& name,
                   NativeFn fn) {
  target->set_property(name, Value::object(interp.make_native_function(name, std::move(fn))));
}

// ---------------------------------------------------------------------------
// Math
// ---------------------------------------------------------------------------

void install_math(Interpreter& interp) {
  ObjPtr math = std::make_shared<JSObject>(0);
  math->set_property("PI", Value::number(M_PI));
  math->set_property("E", Value::number(M_E));
  math->set_property("LN2", Value::number(M_LN2));
  math->set_property("LN10", Value::number(M_LN10));
  math->set_property("SQRT2", Value::number(M_SQRT2));

  const auto unary = [&](const std::string& name, double (*fn)(double)) {
    define_method(interp, math, name,
                  [fn](Interpreter& in, const Value&, const Args& args) {
                    in.charge(1);
                    return Value::number(fn(num_arg(in, args, 0)));
                  });
  };
  unary("abs", std::fabs);
  unary("floor", std::floor);
  unary("ceil", std::ceil);
  unary("sqrt", std::sqrt);
  unary("sin", std::sin);
  unary("cos", std::cos);
  unary("tan", std::tan);
  unary("asin", std::asin);
  unary("acos", std::acos);
  unary("atan", std::atan);
  unary("exp", std::exp);
  unary("log", std::log);
  define_method(interp, math, "round",
                [](Interpreter& in, const Value&, const Args& args) {
                  // JS rounds half-up (towards +inf), unlike C's round.
                  return Value::number(std::floor(num_arg(in, args, 0) + 0.5));
                });
  define_method(interp, math, "atan2",
                [](Interpreter& in, const Value&, const Args& args) {
                  return Value::number(
                      std::atan2(num_arg(in, args, 0), num_arg(in, args, 1)));
                });
  define_method(interp, math, "pow",
                [](Interpreter& in, const Value&, const Args& args) {
                  return Value::number(
                      std::pow(num_arg(in, args, 0), num_arg(in, args, 1)));
                });
  define_method(interp, math, "min",
                [](Interpreter& in, const Value&, const Args& args) {
                  double best = std::numeric_limits<double>::infinity();
                  for (const auto& a : args) best = std::min(best, in.to_number(a));
                  return Value::number(best);
                });
  define_method(interp, math, "max",
                [](Interpreter& in, const Value&, const Args& args) {
                  double best = -std::numeric_limits<double>::infinity();
                  for (const auto& a : args) best = std::max(best, in.to_number(a));
                  return Value::number(best);
                });
  define_method(interp, math, "random",
                [](Interpreter& in, const Value&, const Args&) {
                  return Value::number(in.rng().next_double());
                });
  interp.define_global("Math", Value::object(math));
}

// ---------------------------------------------------------------------------
// Array
// ---------------------------------------------------------------------------

void install_array(Interpreter& interp) {
  const ObjPtr& proto = interp.array_prototype();

  define_method(interp, proto, "push",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "push");
                  in.charge_elements(*arr, arr->elements().size() + args.size());
                  for (const auto& a : args) {
                    note_index_write(in, arr, arr->elements().size());
                    arr->elements().push_back(a);
                  }
                  in.charge(std::int64_t(args.size()));
                  return Value::number(double(arr->elements().size()));
                });
  define_method(interp, proto, "pop",
                [](Interpreter& in, const Value& self, const Args&) {
                  const ObjPtr arr = require_array(in, self, "pop");
                  if (arr->elements().empty()) return Value::undefined();
                  Value last = arr->elements().back();
                  note_index_write(in, arr, arr->elements().size() - 1);
                  arr->elements().pop_back();
                  return last;
                });
  define_method(interp, proto, "shift",
                [](Interpreter& in, const Value& self, const Args&) {
                  const ObjPtr arr = require_array(in, self, "shift");
                  if (arr->elements().empty()) return Value::undefined();
                  Value first = arr->elements().front();
                  arr->elements().erase(arr->elements().begin());
                  in.charge(std::int64_t(arr->elements().size()));
                  note_index_write(in, arr, 0);
                  return first;
                });
  define_method(interp, proto, "indexOf",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "indexOf");
                  const Value& needle = arg_or_undefined(args, 0);
                  for (std::size_t i = 0; i < arr->elements().size(); ++i) {
                    in.charge(1);
                    const Value& e = arr->elements()[i];
                    if (e.kind() == needle.kind()) {
                      if ((e.is_number() && e.as_number() == needle.as_number()) ||
                          (e.is_string() && e.as_string() == needle.as_string()) ||
                          (e.is_object() && e.as_object() == needle.as_object()) ||
                          (e.is_boolean() && e.as_boolean() == needle.as_boolean()) ||
                          e.is_nullish()) {
                        return Value::number(double(i));
                      }
                    }
                  }
                  return Value::number(-1);
                });
  define_method(interp, proto, "join",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "join");
                  const std::string sep = args.empty() ? "," : in.to_string_value(args[0]);
                  std::string out;
                  for (std::size_t i = 0; i < arr->elements().size(); ++i) {
                    if (i > 0) out += sep;
                    const Value& e = arr->elements()[i];
                    if (!e.is_nullish()) out += in.to_string_value(e);
                    in.charge(1);
                  }
                  return Value::str(std::move(out));
                });
  define_method(interp, proto, "slice",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "slice");
                  const auto size = std::int64_t(arr->elements().size());
                  std::int64_t begin = args.empty() ? 0 : std::int64_t(num_arg(in, args, 0));
                  std::int64_t end = args.size() < 2 ? size : std::int64_t(num_arg(in, args, 1));
                  if (begin < 0) begin += size;
                  if (end < 0) end += size;
                  begin = std::clamp<std::int64_t>(begin, 0, size);
                  end = std::clamp<std::int64_t>(end, 0, size);
                  ObjPtr out = in.make_array(std::size_t(std::max<std::int64_t>(0, end - begin)));
                  for (std::int64_t i = begin; i < end; ++i) {
                    out->elements().push_back(arr->elements()[std::size_t(i)]);
                    in.charge(1);
                  }
                  return Value::object(out);
                });
  define_method(interp, proto, "concat",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "concat");
                  ObjPtr out = in.make_array(arr->elements().size());
                  out->elements() = arr->elements();
                  std::size_t total = out->elements().size();
                  for (const auto& a : args) {
                    total += a.is_object() && a.as_object()->is_array()
                                 ? a.as_object()->elements().size()
                                 : 1;
                  }
                  in.charge_elements(*out, total);
                  for (const auto& a : args) {
                    if (a.is_object() && a.as_object()->is_array()) {
                      for (const auto& e : a.as_object()->elements()) {
                        out->elements().push_back(e);
                      }
                    } else {
                      out->elements().push_back(a);
                    }
                  }
                  in.charge(std::int64_t(out->elements().size()));
                  return Value::object(out);
                });
  define_method(interp, proto, "reverse",
                [](Interpreter& in, const Value& self, const Args&) {
                  const ObjPtr arr = require_array(in, self, "reverse");
                  std::reverse(arr->elements().begin(), arr->elements().end());
                  in.charge(std::int64_t(arr->elements().size()));
                  return self;
                });
  define_method(interp, proto, "fill",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "fill");
                  const Value& fill = arg_or_undefined(args, 0);
                  for (std::size_t i = 0; i < arr->elements().size(); ++i) {
                    note_index_write(in, arr, i);
                    arr->elements()[i] = fill;
                  }
                  in.charge(std::int64_t(arr->elements().size()));
                  return self;
                });
  define_method(interp, proto, "splice",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "splice");
                  const auto size = std::int64_t(arr->elements().size());
                  std::int64_t begin = args.empty() ? 0 : std::int64_t(num_arg(in, args, 0));
                  if (begin < 0) begin += size;
                  begin = std::clamp<std::int64_t>(begin, 0, size);
                  std::int64_t remove = args.size() < 2
                                            ? size - begin
                                            : std::int64_t(num_arg(in, args, 1));
                  remove = std::clamp<std::int64_t>(remove, 0, size - begin);
                  ObjPtr removed = in.make_array(std::size_t(remove));
                  auto& elems = arr->elements();
                  for (std::int64_t i = 0; i < remove; ++i) {
                    removed->elements().push_back(elems[std::size_t(begin + i)]);
                  }
                  elems.erase(elems.begin() + begin, elems.begin() + begin + remove);
                  for (std::size_t i = 2; i < args.size(); ++i) {
                    elems.insert(elems.begin() + begin + std::int64_t(i) - 2, args[i]);
                  }
                  note_index_write(in, arr, std::size_t(begin));
                  in.charge(size);
                  return Value::object(removed);
                });
  define_method(interp, proto, "sort",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "sort");
                  auto& elems = arr->elements();
                  const Value& comparator = arg_or_undefined(args, 0);
                  if (comparator.is_object() && comparator.as_object()->is_function()) {
                    std::stable_sort(elems.begin(), elems.end(),
                                     [&](const Value& a, const Value& b) {
                                       const Value r = in.call(comparator, Value::undefined(), {a, b});
                                       return in.to_number(r) < 0;
                                     });
                  } else {
                    std::stable_sort(elems.begin(), elems.end(),
                                     [&](const Value& a, const Value& b) {
                                       return in.to_string_value(a) < in.to_string_value(b);
                                     });
                  }
                  note_index_write(in, arr, 0);
                  in.charge(std::int64_t(elems.size()));
                  return self;
                });

  // --- functional operators (the paper's §2.3 "high-level Array operators").
  // Each callback invocation creates a fresh activation environment, which is
  // exactly why the paper's forEach rewrite removes the `var p` dependence.
  define_method(interp, proto, "forEach",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "forEach");
                  const Value& callback = arg_or_undefined(args, 0);
                  for (std::size_t i = 0; i < arr->elements().size(); ++i) {
                    in.call(callback, Value::undefined(),
                            {arr->elements()[i], Value::number(double(i)), self});
                  }
                  return Value::undefined();
                });
  define_method(interp, proto, "map",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "map");
                  const Value& callback = arg_or_undefined(args, 0);
                  ObjPtr out = in.make_array(arr->elements().size());
                  for (std::size_t i = 0; i < arr->elements().size(); ++i) {
                    out->elements().push_back(
                        in.call(callback, Value::undefined(),
                                {arr->elements()[i], Value::number(double(i)), self}));
                  }
                  return Value::object(out);
                });
  define_method(interp, proto, "filter",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "filter");
                  const Value& callback = arg_or_undefined(args, 0);
                  ObjPtr out = in.make_array(0);
                  for (std::size_t i = 0; i < arr->elements().size(); ++i) {
                    const Value keep =
                        in.call(callback, Value::undefined(),
                                {arr->elements()[i], Value::number(double(i)), self});
                    if (Interpreter::to_boolean(keep)) {
                      out->elements().push_back(arr->elements()[i]);
                    }
                  }
                  return Value::object(out);
                });
  define_method(interp, proto, "reduce",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "reduce");
                  const Value& callback = arg_or_undefined(args, 0);
                  std::size_t i = 0;
                  Value acc;
                  if (args.size() >= 2) {
                    acc = args[1];
                  } else {
                    if (arr->elements().empty()) {
                      in.throw_error("TypeError", "reduce of empty array with no initial value");
                    }
                    acc = arr->elements()[0];
                    i = 1;
                  }
                  for (; i < arr->elements().size(); ++i) {
                    acc = in.call(callback, Value::undefined(),
                                  {acc, arr->elements()[i], Value::number(double(i)), self});
                  }
                  return acc;
                });
  define_method(interp, proto, "every",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "every");
                  const Value& callback = arg_or_undefined(args, 0);
                  for (std::size_t i = 0; i < arr->elements().size(); ++i) {
                    const Value ok =
                        in.call(callback, Value::undefined(),
                                {arr->elements()[i], Value::number(double(i)), self});
                    if (!Interpreter::to_boolean(ok)) return Value::boolean(false);
                  }
                  return Value::boolean(true);
                });
  define_method(interp, proto, "some",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const ObjPtr arr = require_array(in, self, "some");
                  const Value& callback = arg_or_undefined(args, 0);
                  for (std::size_t i = 0; i < arr->elements().size(); ++i) {
                    const Value ok =
                        in.call(callback, Value::undefined(),
                                {arr->elements()[i], Value::number(double(i)), self});
                    if (Interpreter::to_boolean(ok)) return Value::boolean(true);
                  }
                  return Value::boolean(false);
                });

  // Array constructor: Array(n) pre-sizes, Array(a, b, c) packs.
  ObjPtr array_ctor = interp.make_native_function(
      "Array", [](Interpreter& in, const Value&, const Args& args) {
        if (args.size() == 1 && args[0].is_number()) {
          ObjPtr out = in.make_array(0);
          in.grow_elements(*out, std::size_t(args[0].as_number()));
          return Value::object(out);
        }
        ObjPtr out = in.make_array(args.size());
        for (const auto& a : args) out->elements().push_back(a);
        return Value::object(out);
      });
  array_ctor->set_property("isArray",
                           Value::object(interp.make_native_function(
                               "isArray",
                               [](Interpreter&, const Value&, const Args& args) {
                                 const Value& v = arg_or_undefined(args, 0);
                                 return Value::boolean(v.is_object() &&
                                                       v.as_object()->is_array());
                               })));
  array_ctor->set_property("prototype", Value::object(proto));
  interp.define_global("Array", Value::object(array_ctor));
}

// ---------------------------------------------------------------------------
// String / Number methods
// ---------------------------------------------------------------------------

void install_string(Interpreter& interp) {
  const ObjPtr& proto = interp.string_prototype();

  define_method(interp, proto, "charAt",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const std::string& s = require_string(in, self, "charAt");
                  const auto i = std::int64_t(num_arg(in, args, 0));
                  if (i < 0 || i >= std::int64_t(s.size())) return Value::str("");
                  return Value::str(std::string(1, s[std::size_t(i)]));
                });
  define_method(interp, proto, "charCodeAt",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const std::string& s = require_string(in, self, "charCodeAt");
                  const auto i = args.empty() ? 0 : std::int64_t(num_arg(in, args, 0));
                  if (i < 0 || i >= std::int64_t(s.size())) {
                    return Value::number(std::numeric_limits<double>::quiet_NaN());
                  }
                  return Value::number(double(static_cast<unsigned char>(s[std::size_t(i)])));
                });
  define_method(interp, proto, "indexOf",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const std::string& s = require_string(in, self, "indexOf");
                  const std::string needle = in.to_string_value(arg_or_undefined(args, 0));
                  const std::size_t pos = s.find(needle);
                  return Value::number(pos == std::string::npos ? -1 : double(pos));
                });
  define_method(interp, proto, "lastIndexOf",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const std::string& s = require_string(in, self, "lastIndexOf");
                  const std::string needle = in.to_string_value(arg_or_undefined(args, 0));
                  const std::size_t pos = s.rfind(needle);
                  return Value::number(pos == std::string::npos ? -1 : double(pos));
                });
  define_method(interp, proto, "substring",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const std::string& s = require_string(in, self, "substring");
                  auto begin = std::int64_t(num_arg(in, args, 0));
                  auto end = args.size() < 2 ? std::int64_t(s.size())
                                             : std::int64_t(num_arg(in, args, 1));
                  begin = std::clamp<std::int64_t>(begin, 0, std::int64_t(s.size()));
                  end = std::clamp<std::int64_t>(end, 0, std::int64_t(s.size()));
                  if (begin > end) std::swap(begin, end);
                  return Value::str(s.substr(std::size_t(begin), std::size_t(end - begin)));
                });
  define_method(interp, proto, "slice",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const std::string& s = require_string(in, self, "slice");
                  const auto size = std::int64_t(s.size());
                  auto begin = args.empty() ? 0 : std::int64_t(num_arg(in, args, 0));
                  auto end = args.size() < 2 ? size : std::int64_t(num_arg(in, args, 1));
                  if (begin < 0) begin += size;
                  if (end < 0) end += size;
                  begin = std::clamp<std::int64_t>(begin, 0, size);
                  end = std::clamp<std::int64_t>(end, 0, size);
                  if (begin >= end) return Value::str("");
                  return Value::str(s.substr(std::size_t(begin), std::size_t(end - begin)));
                });
  define_method(interp, proto, "split",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const std::string& s = require_string(in, self, "split");
                  const std::string sep = in.to_string_value(arg_or_undefined(args, 0));
                  ObjPtr out = in.make_array(0);
                  if (sep.empty()) {
                    in.charge_elements(*out, s.size());
                    for (const char c : s) {
                      out->elements().push_back(Value::str(std::string(1, c)));
                    }
                    return Value::object(out);
                  }
                  std::size_t start = 0;
                  while (true) {
                    const std::size_t pos = s.find(sep, start);
                    if (pos == std::string::npos) {
                      out->elements().push_back(Value::str(s.substr(start)));
                      break;
                    }
                    out->elements().push_back(Value::str(s.substr(start, pos - start)));
                    start = pos + sep.size();
                  }
                  return Value::object(out);
                });
  define_method(interp, proto, "toLowerCase",
                [](Interpreter& in, const Value& self, const Args&) {
                  std::string s = require_string(in, self, "toLowerCase");
                  std::transform(s.begin(), s.end(), s.begin(),
                                 [](unsigned char c) { return char(std::tolower(c)); });
                  return Value::str(std::move(s));
                });
  define_method(interp, proto, "toUpperCase",
                [](Interpreter& in, const Value& self, const Args&) {
                  std::string s = require_string(in, self, "toUpperCase");
                  std::transform(s.begin(), s.end(), s.begin(),
                                 [](unsigned char c) { return char(std::toupper(c)); });
                  return Value::str(std::move(s));
                });
  define_method(interp, proto, "trim",
                [](Interpreter& in, const Value& self, const Args&) {
                  const std::string& s = require_string(in, self, "trim");
                  std::size_t begin = 0;
                  std::size_t end = s.size();
                  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
                  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
                  return Value::str(s.substr(begin, end - begin));
                });
  define_method(interp, proto, "replace",
                [](Interpreter& in, const Value& self, const Args& args) {
                  // First-occurrence, string-pattern replace (no regex in the
                  // engine subset).
                  const std::string& s = require_string(in, self, "replace");
                  const std::string pattern = in.to_string_value(arg_or_undefined(args, 0));
                  const std::string replacement = in.to_string_value(arg_or_undefined(args, 1));
                  const std::size_t pos = s.find(pattern);
                  if (pos == std::string::npos || pattern.empty()) return self;
                  std::string out = s;
                  out.replace(pos, pattern.size(), replacement);
                  return Value::str(std::move(out));
                });
  // Number.prototype.toFixed lives here too; property_get routes number
  // method lookups through the same prototype (documented simplification).
  define_method(interp, proto, "toFixed",
                [](Interpreter& in, const Value& self, const Args& args) {
                  if (!self.is_number()) {
                    in.throw_error("TypeError", "toFixed called on a non-number");
                  }
                  const int digits = int(num_arg(in, args, 0));
                  char buf[64];
                  std::snprintf(buf, sizeof buf, "%.*f", digits, self.as_number());
                  return Value::str(std::string(buf));
                });

  ObjPtr string_ctor = interp.make_native_function(
      "String", [](Interpreter& in, const Value&, const Args& args) {
        return Value::str(args.empty() ? "" : in.to_string_value(args[0]));
      });
  string_ctor->set_property(
      "fromCharCode",
      Value::object(interp.make_native_function(
          "fromCharCode", [](Interpreter& in, const Value&, const Args& args) {
            std::string out;
            for (const auto& a : args) out += char(int(in.to_number(a)) & 0xff);
            return Value::str(std::move(out));
          })));
  string_ctor->set_property("prototype", Value::object(proto));
  interp.define_global("String", Value::object(string_ctor));
}

// ---------------------------------------------------------------------------
// Object / Function / JSON / console / global functions
// ---------------------------------------------------------------------------

void install_object(Interpreter& interp) {
  ObjPtr object_ctor = interp.make_native_function(
      "Object", [](Interpreter& in, const Value&, const Args&) {
        return Value::object(in.make_object());
      });
  object_ctor->set_property(
      "keys", Value::object(interp.make_native_function(
                  "keys", [](Interpreter& in, const Value&, const Args& args) {
                    const Value& v = arg_or_undefined(args, 0);
                    ObjPtr out = in.make_array(0);
                    if (v.is_object()) {
                      const ObjPtr& obj = v.as_object();
                      if (obj->is_array()) {
                        for (std::size_t i = 0; i < obj->elements().size(); ++i) {
                          out->elements().push_back(
                              Value::str(Interpreter::number_to_string(double(i))));
                        }
                      }
                      for (const auto& key : obj->key_order()) {
                        out->elements().push_back(Value::str(key));
                      }
                    }
                    return Value::object(out);
                  })));
  object_ctor->set_property(
      "create", Value::object(interp.make_native_function(
                    "create", [](Interpreter& in, const Value&, const Args& args) {
                      ObjPtr obj = in.make_object();
                      const Value& proto = arg_or_undefined(args, 0);
                      if (proto.is_object()) obj->set_prototype(proto.as_object());
                      if (proto.is_null()) obj->set_prototype(nullptr);
                      return Value::object(obj);
                    })));
  object_ctor->set_property("prototype", Value::object(interp.object_prototype()));
  interp.define_global("Object", Value::object(object_ctor));

  const ObjPtr& fn_proto = interp.function_prototype();
  define_method(interp, fn_proto, "call",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const Value& this_arg = arg_or_undefined(args, 0);
                  // Forward the tail of the caller's argument span directly;
                  // the storage outlives the inner call by construction.
                  const Args rest = args.empty() ? Args()
                                                 : Args(args.data() + 1, args.size() - 1);
                  return in.call(self, this_arg, rest);
                });
  define_method(interp, fn_proto, "apply",
                [](Interpreter& in, const Value& self, const Args& args) {
                  const Value& this_arg = arg_or_undefined(args, 0);
                  const Value& arg_list = arg_or_undefined(args, 1);
                  if (arg_list.is_object() && arg_list.as_object()->is_array()) {
                    // Snapshot the elements into an ArgStack frame (the
                    // callee may mutate the array while the call is in
                    // flight, so a borrowed span would dangle) — same
                    // reused storage as call(), so no heap traffic.
                    return in.call_spread(self, this_arg,
                                          arg_list.as_object()->elements());
                  }
                  return in.call(self, this_arg, Args());
                });
}

std::string json_stringify(Interpreter& interp, const Value& v, int depth) {
  if (depth > 16) return "null";
  switch (v.kind()) {
    case Value::Kind::Undefined:
      return "null";
    case Value::Kind::Null:
      return "null";
    case Value::Kind::Boolean:
      return v.as_boolean() ? "true" : "false";
    case Value::Kind::Number:
      return std::isfinite(v.as_number()) ? Interpreter::number_to_string(v.as_number())
                                          : "null";
    case Value::Kind::String: {
      std::string out = "\"";
      for (const char c : v.as_string()) {
        if (c == '"' || c == '\\') {
          out += '\\';
          out += c;
        } else if (c == '\n') {
          out += "\\n";
        } else if (c == '\t') {
          out += "\\t";
        } else {
          out += c;
        }
      }
      return out + "\"";
    }
    case Value::Kind::Object: {
      const ObjPtr& obj = v.as_object();
      if (obj->is_function()) return "null";
      if (obj->is_array()) {
        std::string out = "[";
        for (std::size_t i = 0; i < obj->elements().size(); ++i) {
          if (i > 0) out += ",";
          out += json_stringify(interp, obj->elements()[i], depth + 1);
        }
        return out + "]";
      }
      std::string out = "{";
      bool first = true;
      for (const auto& key : obj->key_order()) {
        const Value* val = obj->own_property(key);
        if (val == nullptr) continue;
        if (!first) out += ",";
        first = false;
        out += json_stringify(interp, Value::str(key), depth + 1) + ":" +
               json_stringify(interp, *val, depth + 1);
      }
      return out + "}";
    }
  }
  return "null";
}

void install_misc(Interpreter& interp) {
  ObjPtr console = std::make_shared<JSObject>(0);
  define_method(interp, console, "log",
                [](Interpreter& in, const Value&, const Args& args) {
                  std::string line;
                  for (std::size_t i = 0; i < args.size(); ++i) {
                    if (i > 0) line += " ";
                    line += in.to_string_value(args[i]);
                  }
                  in.console_write(line);
                  return Value::undefined();
                });
  console->set_property("warn", *console->own_property("log"));
  console->set_property("error", *console->own_property("log"));
  interp.define_global("console", Value::object(console));

  ObjPtr json = std::make_shared<JSObject>(0);
  define_method(interp, json, "stringify",
                [](Interpreter& in, const Value&, const Args& args) {
                  return Value::str(json_stringify(in, arg_or_undefined(args, 0), 0));
                });
  interp.define_global("JSON", Value::object(json));

  interp.define_global(
      "parseInt", Value::object(interp.make_native_function(
                      "parseInt", [](Interpreter& in, const Value&, const Args& args) {
                        const std::string s = in.to_string_value(arg_or_undefined(args, 0));
                        const int radix = args.size() >= 2 ? int(in.to_number(args[1])) : 10;
                        const long long v = std::strtoll(s.c_str(), nullptr,
                                                         radix == 0 ? 10 : radix);
                        if (s.empty()) {
                          return Value::number(std::numeric_limits<double>::quiet_NaN());
                        }
                        return Value::number(double(v));
                      })));
  interp.define_global(
      "parseFloat", Value::object(interp.make_native_function(
                        "parseFloat", [](Interpreter& in, const Value&, const Args& args) {
                          const std::string s = in.to_string_value(arg_or_undefined(args, 0));
                          return Value::number(std::strtod(s.c_str(), nullptr));
                        })));
  interp.define_global(
      "isNaN", Value::object(interp.make_native_function(
                   "isNaN", [](Interpreter& in, const Value&, const Args& args) {
                     return Value::boolean(std::isnan(num_arg(in, args, 0)));
                   })));
  interp.define_global(
      "isFinite", Value::object(interp.make_native_function(
                      "isFinite", [](Interpreter& in, const Value&, const Args& args) {
                        return Value::boolean(std::isfinite(num_arg(in, args, 0)));
                      })));
  interp.define_global(
      "Number", Value::object(interp.make_native_function(
                    "Number", [](Interpreter& in, const Value&, const Args& args) {
                      return Value::number(args.empty() ? 0 : in.to_number(args[0]));
                    })));
  interp.define_global(
      "Boolean", Value::object(interp.make_native_function(
                     "Boolean", [](Interpreter&, const Value&, const Args& args) {
                       return Value::boolean(!args.empty() &&
                                             Interpreter::to_boolean(args[0]));
                     })));

  // Time sources read the deterministic virtual clock ([4] in the paper:
  // the JavaScript high-resolution timer).
  ObjPtr date = interp.make_native_function(
      "Date", [](Interpreter& in, const Value&, const Args&) {
        return Value::number(double(in.clock().wall_ns() / 1000000));
      });
  date->set_property("now",
                     Value::object(interp.make_native_function(
                         "now", [](Interpreter& in, const Value&, const Args&) {
                           return Value::number(double(in.clock().wall_ns() / 1000000));
                         })));
  interp.define_global("Date", Value::object(date));

  ObjPtr performance = std::make_shared<JSObject>(0);
  define_method(interp, performance, "now",
                [](Interpreter& in, const Value&, const Args&) {
                  return Value::number(double(in.clock().wall_ns()) / 1e6);
                });
  interp.define_global("performance", Value::object(performance));
}

}  // namespace

void install_stdlib(Interpreter& interp) {
  install_math(interp);
  install_array(interp);
  install_string(interp);
  install_object(interp);
  install_misc(interp);
}

}  // namespace jsceres::interp
