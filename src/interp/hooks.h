#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "js/atom.h"

namespace jsceres::interp {

/// Static loop metadata forwarded to hooks (mirrors js::LoopSite, duplicated
/// here to keep the hook interface free of front-end includes).
struct LoopEvent {
  int loop_id = 0;
  int line = 0;
  int kind = 0;  // cast of js::LoopKind
};

/// How the base object of a property access was reached. The dependence
/// analysis characterizes a property access by the *reference path*: when a
/// loop body writes `p.vX` and `p` is a `var` binding hoisted to function
/// scope, the access inherits the binding's sharing across iterations (the
/// paper's Fig. 6 walkthrough); when the object is reached anonymously
/// (e.g. `bodies[i].vX`), the object's own creation stamp is used.
struct BaseProvenance {
  enum class Kind : std::uint8_t {
    Object,   // complex base expression: use the object's creation stamp
    Binding,  // base was an identifier: use the owning environment's stamp
    This,     // base was `this`: use the call environment's stamp
  };
  Kind kind = Kind::Object;
  std::uint64_t env_id = 0;  // valid for Binding / This
};

/// One buffered memory-access event (see ExecutionHooks::on_memory_batch).
/// `id` is the environment id for Var* kinds and the object id for Prop*
/// kinds; `base` is meaningful for Prop* kinds only.
struct MemoryEvent {
  enum class Kind : std::uint8_t { VarWrite, VarRead, PropWrite, PropRead };
  Kind kind = Kind::VarWrite;
  int line = 0;
  std::uint64_t id = 0;
  js::Atom name;
  BaseProvenance base;
};

/// Category of host (browser-substrate) API touched by a native call.
enum class HostAccess : std::uint8_t {
  Dom,      // document tree reads/writes
  Canvas,   // 2D context draw calls / image data
  WebGl,    // shader-style calls
  Storage,  // localStorage-style calls
  Timer,    // setTimeout / requestAnimationFrame
  Network,  // simulated resource loading
};

/// Engine-level instrumentation interface — the reproduction's equivalent of
/// JS-CERES's source-to-source instrumentation. The interpreter emits these
/// events as it executes; the three instrumentation modes of the paper
/// (lightweight profiling, loop profiling, dependence analysis) are
/// implementations of this interface in `src/ceres`.
///
/// All callbacks default to no-ops so a mode only pays for what it observes.
class ExecutionHooks {
 public:
  virtual ~ExecutionHooks() = default;

  // --- loops ---
  virtual void on_loop_enter(const LoopEvent&) {}
  /// Fired before each iteration's body executes (after the condition).
  virtual void on_loop_iteration(const LoopEvent&) {}
  virtual void on_loop_exit(const LoopEvent&) {}

  // --- calls ---
  virtual void on_function_enter(int /*fn_id*/, const std::string& /*name*/) {}
  virtual void on_function_exit(int /*fn_id*/) {}

  // --- heap / environments ---
  virtual void on_env_created(std::uint64_t /*env_id*/) {}
  virtual void on_object_created(std::uint64_t /*obj_id*/, int /*line*/) {}

  // --- memory accesses ---
  // All memory events carry interned atoms: variable names are identifiers
  // (interned by the lexer), and property keys are interned by the emitter —
  // statically-known keys at parse time, computed keys on first use. This
  // lets implementations key their tables on atom identity (pointer compare
  // + precomputed hash) and still read the text via js::Atom's implicit
  // string conversion. Interpreters only pay the computed-key interning when
  // a hook actually wants memory events (mode 3).
  virtual void on_var_write(std::uint64_t /*env_id*/, js::Atom /*name*/,
                            int /*line*/) {}
  virtual void on_var_read(std::uint64_t /*env_id*/, js::Atom /*name*/,
                           int /*line*/) {}
  virtual void on_prop_write(std::uint64_t /*obj_id*/, js::Atom /*key*/,
                             int /*line*/, const BaseProvenance&) {}
  virtual void on_prop_read(std::uint64_t /*obj_id*/, js::Atom /*key*/,
                            int /*line*/, const BaseProvenance&) {}

  /// Batched delivery of the four memory-access callbacks above. The
  /// interpreter buffers mode-3 memory events per statement and flushes the
  /// run in ONE virtual call (BM_DependenceEndToEnd is bounded by event
  /// *emission*, not analysis — the per-event double virtual dispatch was
  /// the remaining cost). Events arrive in exact program order, and the
  /// interpreter flushes the buffer before emitting any non-memory event,
  /// so an implementation that overrides only the per-event callbacks (via
  /// this default unpacking loop) observes a stream identical to eager
  /// delivery.
  virtual void on_memory_batch(const MemoryEvent* events, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const MemoryEvent& e = events[i];
      switch (e.kind) {
        case MemoryEvent::Kind::VarWrite:
          on_var_write(e.id, e.name, e.line);
          break;
        case MemoryEvent::Kind::VarRead:
          on_var_read(e.id, e.name, e.line);
          break;
        case MemoryEvent::Kind::PropWrite:
          on_prop_write(e.id, e.name, e.line, e.base);
          break;
        case MemoryEvent::Kind::PropRead:
          on_prop_read(e.id, e.name, e.line, e.base);
          break;
      }
    }
  }

  // --- substrate ---
  virtual void on_host_access(HostAccess, const char* /*api_name*/) {}

  /// Periodic low-frequency callback (every few dozen cost-model ticks and
  /// after event-loop idle jumps); used by the sampling profiler.
  virtual void on_clock_advance(int /*current_fn_id*/) {}

  /// Whether memory-access callbacks are wanted at all. The interpreter
  /// checks this once per access site; returning false keeps the lightweight
  /// and loop-profiling modes cheap (the paper's reason for staging modes).
  [[nodiscard]] virtual bool wants_memory_events() const { return false; }

  /// The object memory-event batches should be delivered to. A composite
  /// with exactly ONE member that wants memory events returns that member,
  /// letting the interpreter skip the fan-out layer on every flush (the
  /// common mode-3 topology: a HookList holding one DependenceAnalyzer).
  [[nodiscard]] virtual ExecutionHooks* memory_event_sink() { return this; }
};

/// Fan-out composite so several observers (e.g. loop profiler + sampling
/// profiler) can be attached to one run.
class HookList final : public ExecutionHooks {
 public:
  void add(ExecutionHooks* hooks) {
    if (hooks == nullptr) return;
    hooks_.push_back(hooks);
    // Cache the memory-events fan-out at add() time: the interpreter and
    // builtins query this per access site, and re-walking the observer list
    // on every query made the cheap modes pay for the expensive one.
    wants_memory_ = wants_memory_ || hooks->wants_memory_events();
  }

  void on_loop_enter(const LoopEvent& e) override {
    for (auto* h : hooks_) h->on_loop_enter(e);
  }
  void on_loop_iteration(const LoopEvent& e) override {
    for (auto* h : hooks_) h->on_loop_iteration(e);
  }
  void on_loop_exit(const LoopEvent& e) override {
    for (auto* h : hooks_) h->on_loop_exit(e);
  }
  void on_function_enter(int fn_id, const std::string& name) override {
    for (auto* h : hooks_) h->on_function_enter(fn_id, name);
  }
  void on_function_exit(int fn_id) override {
    for (auto* h : hooks_) h->on_function_exit(fn_id);
  }
  void on_env_created(std::uint64_t env_id) override {
    for (auto* h : hooks_) h->on_env_created(env_id);
  }
  void on_object_created(std::uint64_t obj_id, int line) override {
    for (auto* h : hooks_) h->on_object_created(obj_id, line);
  }
  void on_var_write(std::uint64_t env_id, js::Atom name, int line) override {
    for (auto* h : hooks_) h->on_var_write(env_id, name, line);
  }
  void on_var_read(std::uint64_t env_id, js::Atom name, int line) override {
    for (auto* h : hooks_) h->on_var_read(env_id, name, line);
  }
  void on_prop_write(std::uint64_t obj_id, js::Atom key, int line,
                     const BaseProvenance& base) override {
    for (auto* h : hooks_) h->on_prop_write(obj_id, key, line, base);
  }
  void on_prop_read(std::uint64_t obj_id, js::Atom key, int line,
                    const BaseProvenance& base) override {
    for (auto* h : hooks_) h->on_prop_read(obj_id, key, line, base);
  }
  void on_memory_batch(const MemoryEvent* events, std::size_t count) override {
    // Whole-batch fan-out: each observer sees its own events in order (an
    // observer-local stream is all the hook contract promises); observers
    // with a native batch path (DependenceAnalyzer) process it directly.
    for (auto* h : hooks_) h->on_memory_batch(events, count);
  }
  void on_host_access(HostAccess access, const char* api_name) override {
    for (auto* h : hooks_) h->on_host_access(access, api_name);
  }
  void on_clock_advance(int fn_id) override {
    for (auto* h : hooks_) h->on_clock_advance(fn_id);
  }
  [[nodiscard]] bool wants_memory_events() const override {
    return wants_memory_;
  }
  [[nodiscard]] ExecutionHooks* memory_event_sink() override {
    ExecutionHooks* sole = nullptr;
    for (auto* h : hooks_) {
      if (!h->wants_memory_events()) continue;
      if (sole != nullptr) return this;  // several consumers: keep fan-out
      sole = h->memory_event_sink();
    }
    return sole != nullptr ? sole : this;
  }

 private:
  std::vector<ExecutionHooks*> hooks_;
  bool wants_memory_ = false;
};

}  // namespace jsceres::interp
