#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <chrono>

#include "interp/args.h"
#include "interp/environment.h"
#include "interp/hooks.h"
#include "interp/object.h"
#include "interp/value.h"
#include "js/ast.h"
#include "support/cancel.h"
#include "support/clock.h"
#include "support/limits.h"
#include "support/rng.h"

namespace jsceres::interp {

/// A JavaScript `throw` propagating through C++ frames. Caught by
/// try/catch statements; escapes `run()` as an EngineError if uncaught.
struct JSException {
  Value value;
};

// EngineError lives in support/limits.h (the sandbox layer below js/ and
// interp/); re-exported here so interp::EngineError keeps working.
using ::jsceres::EngineError;

/// Tree-walking interpreter for the engine's JavaScript subset.
///
/// Deterministic by construction: Math.random is seeded, Date.now /
/// performance.now read the virtual clock, and property enumeration follows
/// insertion order. Every evaluated node advances the cost-model clock, so
/// "CPU time" in the reproduction is a pure function of the executed
/// program.
struct InterpreterConfig {
  std::uint64_t random_seed = 42;
  std::int64_t max_ticks = -1;  // <0: unlimited
  int max_call_depth = 256;
  bool echo_console = false;  // also print console.log to stdout
  /// Simulated OS/browser thread preemption: every `preempt_interval_ticks`
  /// of CPU work the engine is suspended for `preempt_block_ns` of
  /// wall-clock. Models the paper's §3.1 observation that "if ... the OS or
  /// Firefox decides to suspend the thread, JS-CERES continues to count the
  /// time as part of the loop" — the mechanism behind In-Loops > Active.
  std::int64_t preempt_interval_ticks = 0;  // 0: disabled
  std::int64_t preempt_block_ns = 0;
  /// Hard resource limits (memory ceiling, array-length cap, wall-clock
  /// watchdog, allocation-failure injection). Every trip raises a
  /// recoverable EngineError; the interpreter stays destructible and
  /// reusable afterwards. The tick budget above and the wall-clock watchdog
  /// are both armed per run window (each run() / top-level call()), so a
  /// tripped interpreter gets a fresh budget on its next entry.
  EngineLimits limits;
  /// Cooperative cancellation/deadline token, observed in the amortized
  /// tick probe (every ~64 ticks, the wall-watchdog cadence). A trip raises
  /// CancelledError — an EngineError, so the recovery/reuse contract is
  /// identical to any other limit trip. The token's CancelSource must
  /// outlive the interpreter's runs; default is inert.
  CancelToken cancel;
};

class Interpreter {
 public:
  using Config = InterpreterConfig;

  Interpreter(const js::Program& program, VirtualClock& clock,
              ExecutionHooks* hooks = nullptr, Config config = Config());
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Execute the top-level program.
  void run();

  /// Invoke a callable value (used by builtins, the event loop, tests).
  /// `args` is a borrowed view; vectors and braced lists convert implicitly.
  Value call(const Value& callee, const Value& this_val, Args args);

  /// call(), with the argument list copied into a frame on the reused
  /// ArgStack first — Function.prototype.apply's path. The copy is load-
  /// bearing (the callee may mutate `elements`' owner mid-call, and a
  /// vector reallocation would invalidate a borrowed span), but the frame
  /// comes from the same segmented stack as every other call, so a steady-
  /// state apply() allocates nothing.
  Value call_spread(const Value& callee, const Value& this_val,
                    const std::vector<Value>& elements);

  // --- globals ---
  void define_global(const std::string& name, Value value);
  [[nodiscard]] Value global(const std::string& name);
  [[nodiscard]] const EnvPtr& global_env() const { return global_env_; }

  // --- object construction (used by builtins and substrate bindings) ---
  ObjPtr make_object();
  ObjPtr make_array(std::size_t reserve = 0);
  ObjPtr make_native_function(std::string name, NativeFn fn);
  /// Create an error object ({name, message}) ready to be thrown.
  [[noreturn]] void throw_error(const std::string& kind, const std::string& message);

  // --- property protocol (prototype-chain aware, hook-emitting) ---
  // String-keyed generic path, used for computed accesses and by hosts.
  // Non-computed accesses go through the atom-keyed inline-cached fast path
  // (eval_member_named / assign_member_named below).
  Value property_get(const Value& base, const std::string& key, int line,
                     const BaseProvenance& prov);
  void property_set(const Value& base, const std::string& key, Value value,
                    int line, const BaseProvenance& prov);

  // --- conversions (exposed for builtins) ---
  static bool to_boolean(const Value& v);
  double to_number(const Value& v);
  std::string to_string_value(const Value& v);
  static std::string number_to_string(double d);
  static std::int32_t to_int32(double d);
  static std::uint32_t to_uint32(double d);

  // --- services ---
  [[nodiscard]] VirtualClock& clock() {
    flush_ticks();  // make batched cost-model ticks visible to the reader
    return *clock_;
  }
  [[nodiscard]] ExecutionHooks* hooks() { return hooks_; }
  /// hooks(), with any buffered mode-3 memory events flushed first. Every
  /// non-memory hook emission (loops, calls, creations, host accesses,
  /// clock probes) goes through this so observers see all event kinds in
  /// exact program order despite the memory-event batching.
  ExecutionHooks* sync_hooks() {
    if (!memory_batch_.empty()) flush_memory_events();
    return hooks_;
  }
  /// Internal (FunctionFrame): a hook flush failed inside a destructor,
  /// where propagating would std::terminate. Latch the in-flight exception;
  /// the next flush_ticks() on a normal frame rethrows it. Recovery clears
  /// the latch (when an exception was already unwinding, that one wins).
  void note_hook_failure() noexcept {
    if (deferred_hook_error_ == nullptr) {
      deferred_hook_error_ = std::current_exception();
    }
  }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const js::Program& program() const { return program_; }
  [[nodiscard]] const std::string& console_output() const { return console_; }
  void console_write(const std::string& text);
  /// fn_id of the innermost JS function currently executing (0 == top level).
  [[nodiscard]] int current_fn_id() const {
    return fn_stack_.empty() ? 0 : fn_stack_.back();
  }
  /// Report a host API touch to the active instrumentation.
  void note_host_access(HostAccess access, const char* api_name) {
    if (hooks_ != nullptr) sync_hooks()->on_host_access(access, api_name);
  }
  /// Whether the attached hooks want memory-access events (mode 3).
  [[nodiscard]] bool wants_memory_events() const { return memory_events_; }
  /// Native-initiated property write (the builtins' stand-in for a Proxy
  /// trapping Array internals). Buffered with interpreter-emitted memory
  /// events so observers see one stream in program order.
  void note_prop_write(std::uint64_t obj_id, js::Atom key, int line,
                       const BaseProvenance& prov) {
    if (memory_events_) {
      buffer_memory_event(MemoryEvent::Kind::PropWrite, obj_id, key, line, prov);
    }
  }
  /// Charge `ticks` cost-model ticks (used by substrate bindings to model
  /// non-trivial native work, e.g. canvas raster fills).
  void charge(std::int64_t ticks);
  /// Advance wall-clock only (blocking host work: decode, compositor, ...).
  void block(std::int64_t ns);

  /// The per-interpreter allocation ledger (limit introspection, and
  /// arming `fail_after_n_allocations` injection after construction so the
  /// stdlib baseline doesn't consume injection charges).
  [[nodiscard]] AllocationLedger& ledger() { return ledger_; }
  /// Grow an array's dense element store to `new_len`, enforcing
  /// `limits.max_array_length` and charging the ledger for the growth.
  /// All engine-initiated element growth (computed stores past the end,
  /// Array builtins, `new Array(n)`) funnels through here.
  void grow_elements(JSObject& obj, std::size_t new_len);
  /// The length-cap check + ledger charge of grow_elements without the
  /// resize, for callers that append element by element.
  void charge_elements(JSObject& obj, std::size_t new_len);

  [[nodiscard]] const ObjPtr& array_prototype() const { return array_proto_; }
  [[nodiscard]] const ObjPtr& object_prototype() const { return object_proto_; }
  [[nodiscard]] const ObjPtr& string_prototype() const { return string_proto_; }
  [[nodiscard]] const ObjPtr& function_prototype() const { return function_proto_; }

  /// Atom spelling a small array index ("0", "1", ...), served from a
  /// per-interpreter cache so mode-3 instrumentation of hot array loops
  /// stops taking the process-wide atom-table lock per element access.
  /// Indices beyond the cache cap fall back to a plain intern.
  [[nodiscard]] js::Atom index_atom(std::size_t index) {
    if (index >= kIndexAtomCacheCap) {
      return js::Atom::intern(number_to_string(double(index)));
    }
    if (index >= index_atom_cache_.size()) index_atom_cache_.resize(index + 1);
    js::Atom& slot = index_atom_cache_[index];
    if (slot.empty()) slot = js::Atom::intern(number_to_string(double(index)));
    return slot;
  }

  // --- test/debug introspection (tests/test_interp_hotpath.cpp) ---
  struct ReadICDebug {
    int ways = 0;
    bool megamorphic = false;
    const Shape* shapes[4] = {nullptr, nullptr, nullptr, nullptr};
  };
  struct WriteICDebug {
    int ways = 0;
    bool megamorphic = false;
    const Shape* shapes[4] = {nullptr, nullptr, nullptr, nullptr};
    bool is_transition[4] = {false, false, false, false};
  };
  [[nodiscard]] ReadICDebug debug_read_ic(std::uint32_t ic_id) const;
  [[nodiscard]] WriteICDebug debug_write_ic(std::uint32_t ic_id) const;
  /// Cumulative inline-cache transition counters for this interpreter.
  /// Plain (non-atomic) members bumped on the hot paths; flushed into the
  /// process-wide obs registry (interp.ic_*) at the end of every run().
  struct ICStats {
    std::uint64_t read_hits = 0;       // PIC way hits at read sites
    std::uint64_t read_misses = 0;     // read_ic_miss entries (incl. generic)
    std::uint64_t write_hits = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t megamorphic_trips = 0;  // caching -> megamorphic
    std::uint64_t recaches = 0;           // megamorphic -> caching
  };
  [[nodiscard]] const ICStats& ic_stats() const { return ic_stats_; }
  /// Argument-stack slots currently reserved (0 whenever no call is live).
  [[nodiscard]] std::size_t debug_arg_stack_in_use() const {
    return arg_stack_.in_use();
  }

 private:
  struct Completion {
    enum class Type : std::uint8_t { Normal, Return, Break, Continue };
    Type type = Type::Normal;
    Value value;
  };

  /// Polymorphic (up to kWays-way) inline cache for one named property
  /// *read* site. Ways are probed linearly; a hit is `receiver->shape() ==
  /// way.shape` (own property at `slot`), optionally chained through the
  /// direct prototype (`holder` + `holder_shape` checks) for method lookups
  /// like `arr.push`. On a miss the resolved way is inserted at the front
  /// and the oldest way rotates out; once a full cache keeps missing
  /// (kMegamorphicMisses rotations) the site goes megamorphic and falls
  /// back to `Shape::slot_of` with no cache writes.
  ///
  /// Megamorphic is not terminal: the generic path keeps a one-entry streak
  /// counter (`last_shape`/`stable`), and kRecacheHits consecutive accesses
  /// with the same receiver shape flip the site back to the caching state —
  /// a polymorphic warmup phase (setup code touching many shapes) no longer
  /// condemns the monomorphic steady state that follows it.
  struct ReadIC {
    static constexpr std::uint8_t kWays = 4;
    static constexpr std::uint8_t kMegamorphicMisses = 8;
    static constexpr std::uint8_t kRecacheHits = 16;
    struct Way {
      const Shape* shape = nullptr;
      std::uint32_t slot = 0;
      JSObject* holder = nullptr;  // non-null: prototype hit
      const Shape* holder_shape = nullptr;
    };
    Way ways[kWays];
    std::uint8_t count = 0;   // filled ways (probe bound)
    std::uint8_t misses = 0;  // full-cache misses; saturates into megamorphic
    bool megamorphic = false;
    /// Megamorphic-state streak tracking; compared by identity only (never
    /// dereferenced — the pointers may name shapes this session no longer
    /// reaches). The streak is over the PAIR (receiver shape, holder shape):
    /// a stable receiver over a churning prototype chain must not re-cache,
    /// since the cached way would be invalidated by the very next access.
    /// last_holder is nullptr for own-property accesses.
    const Shape* last_shape = nullptr;
    const Shape* last_holder = nullptr;
    std::uint8_t stable = 0;  // consecutive same-(shape,holder) accesses
  };
  /// Polymorphic inline cache for one named property *write* site: each way
  /// is either an in-place store to `slot`, or (when `new_shape` is set) the
  /// cached property-add transition `shape -> new_shape` appending at
  /// `slot`. Caching the transition target means repeated object-literal /
  /// constructor shapes append without touching the shape tree's mutex.
  /// Megamorphic write sites re-cache exactly like read sites (see ReadIC).
  struct WriteIC {
    static constexpr std::uint8_t kWays = 4;
    static constexpr std::uint8_t kMegamorphicMisses = 8;
    static constexpr std::uint8_t kRecacheHits = 16;
    struct Way {
      const Shape* shape = nullptr;
      std::uint32_t slot = 0;
      const Shape* new_shape = nullptr;
    };
    Way ways[kWays];
    std::uint8_t count = 0;
    std::uint8_t misses = 0;
    bool megamorphic = false;
    /// Streak pair as in ReadIC; writes always resolve on the receiver, so
    /// last_holder stays nullptr and only participates for symmetry.
    const Shape* last_shape = nullptr;
    const Shape* last_holder = nullptr;
    std::uint8_t stable = 0;
  };

  // Statement / expression evaluation.
  Completion exec(const js::Stmt& stmt, const EnvPtr& env);
  Completion exec_block(const js::Block& block, const EnvPtr& env);
  Value eval(const js::Expr& expr, const EnvPtr& env);
  Value eval_call(const js::Call& call, const EnvPtr& env);
  Value eval_new(const js::New& node, const EnvPtr& env);
  Value eval_member(const js::Member& member, const EnvPtr& env);
  Value eval_assign(const js::Assign& assign, const EnvPtr& env);
  Value eval_update(const js::Update& update, const EnvPtr& env);
  Value eval_binary(const js::Binary& binary, const EnvPtr& env);
  Value apply_binary(js::BinaryOp op, const Value& lhs, const Value& rhs, int line);

  Completion exec_for(const js::For& node, const EnvPtr& env);
  Completion exec_for_in(const js::ForIn& node, const EnvPtr& env);
  Completion exec_while(const js::While& node, const EnvPtr& env);
  Completion exec_do_while(const js::DoWhile& node, const EnvPtr& env);

  /// Key for a property access; resolves computed indices.
  std::string property_key(const Value& key);

  /// Inline-cached named property read/write (non-computed member sites).
  Value eval_member_named(const Value& base, const js::Member& member,
                          const EnvPtr& env);

  /// PIC miss paths: resolve the access, then rotate the resolved way into
  /// the cache (or trip the site megamorphic). Out of line to keep the hit
  /// path small.
  Value read_ic_miss(ReadIC& ic, JSObject& obj, const Shape* shape, js::Atom key);
  void write_ic_miss(WriteIC& ic, JSObject& obj, const Shape* shape, js::Atom key,
                     Value value);

  /// Inline-dispatched evaluation of the two dominant expression leaves
  /// (number literals, identifier reads); everything else forwards to eval.
  /// Charges exactly the same ticks as eval would.
  Value eval_leaf(const js::Expr& expr, const EnvPtr& env);

  /// Boolean evaluation of a branch/loop condition. Numeric comparisons —
  /// the dominant loop-condition form — produce the bool directly without a
  /// Value round trip; everything else is to_boolean(eval(...)). Tick
  /// charging matches eval exactly.
  bool eval_condition(const js::Expr& expr, const EnvPtr& env);
  void assign_member_named(const Value& base, const js::Member& member,
                           Value value, const EnvPtr& env);

  /// Slot-resolved identifier access. Statically resolved references chase
  /// `hops` parent pointers and index the slot directly; global references
  /// go through the per-site global slot cache; unresolved nodes fall back
  /// to the dynamic scope walk. Returns nullptr when the name is unbound
  /// (read path only). `owner` receives the owning environment for
  /// provenance stamping.
  Value* lookup_for_read(js::Atom name, const js::SlotRef& ref,
                         const EnvPtr& env, Environment** owner);
  /// Write flavour: a global miss creates the binding (sloppy mode).
  Value* lookup_for_write(js::Atom name, const js::SlotRef& ref,
                          const EnvPtr& env, Environment** owner);

  Value call_js_function(JSObject& fn_obj, const Value& this_val,
                         const Value* argv, std::size_t argc);

  ObjPtr make_function_from_node(const js::FunctionNode& node, const EnvPtr& env);
  void hoist_into(Environment& env, const std::vector<js::Atom>& vars,
                  const std::vector<const js::FunctionDecl*>& fns, const EnvPtr& env_ptr);

  bool strict_equals(const Value& a, const Value& b);
  bool loose_equals(const Value& a, const Value& b);

  /// Charge `n` cost-model ticks. The hot path only bumps a pending counter;
  /// the clock store, sampling probe, budget check and simulated preemption
  /// run in flush_ticks() every `tick_flush_threshold_` ticks (and at every
  /// external observation point: clock(), block(), end of run()/call()), so
  /// all observable totals match per-node charging exactly.
  void tick(std::int64_t n = 1) {
    ticks_pending_ += n;
    if (ticks_pending_ >= tick_flush_threshold_) flush_ticks();
  }
  void flush_ticks();
  /// Exception-safe flush used while unwinding (and by nothing else).
  void flush_ticks_on_unwind() noexcept;

  /// Arm the per-window budgets (tick budget end, wall-clock deadline) at
  /// each outermost entry — run() and depth-0 call(). Re-arming per window
  /// is what makes the interpreter reusable after a budget trip.
  void begin_run_window();
  /// Backstop after an EngineError escapes an outermost entry: the RAII
  /// frames have already unwound, but anything a mid-statement trip left
  /// half-open (call depth, fn stack, buffered memory events, ArgStack
  /// slots) is reset so the next run starts from a clean machine state.
  void recover_after_engine_error() noexcept;

  BaseProvenance provenance_of(const js::Expr& base_expr, const EnvPtr& env);

  // --- mode-3 memory-event batching (see ExecutionHooks::on_memory_batch) -
  // Every memory-access event is appended here instead of paying the
  // double virtual dispatch (HookList fan-out + observer) per event; the
  // buffer drains to the hooks in one call at each statement boundary and
  // before ANY non-memory hook event, so observers see exactly the eager
  // event order. All emission sites below are already gated on
  // memory_events_, so modes 0-2 never touch the buffer.
  void buffer_memory_event(MemoryEvent::Kind kind, std::uint64_t id, js::Atom name,
                           int line, const BaseProvenance& base = BaseProvenance{}) {
    memory_batch_.push_back(MemoryEvent{kind, line, id, name, base});
  }
  void flush_memory_events() {
    memory_sink_->on_memory_batch(memory_batch_.data(), memory_batch_.size());
    memory_batch_.clear();
  }

  /// Pooled activation-environment allocation (see EnvPool). The raw
  /// pointer is intentional: the pool detach-then-self-deletes so closures
  /// that outlive the interpreter stay valid.
  EnvPtr make_env(EnvPtr parent) {
    return env_pool_->acquire(next_env_id_++, std::move(parent));
  }

  const js::Program& program_;
  VirtualClock* clock_;
  ExecutionHooks* hooks_;
  Config config_;
  AllocationLedger ledger_;
  Rng rng_;

  EnvPool* env_pool_ = nullptr;
  EnvPtr global_env_;
  ObjPtr object_proto_;
  ObjPtr array_proto_;
  ObjPtr string_proto_;
  ObjPtr function_proto_;

  // Per-interpreter caches indexed by the ids resolve_scopes assigned to
  // the program's AST (the AST itself stays immutable and shareable).
  std::vector<ReadIC> read_ics_;
  std::vector<WriteIC> write_ics_;
  ICStats ic_stats_;
  /// Watermark of what flush_ic_stats() already pushed to the registry, so
  /// repeated run() calls and the destructor only add deltas.
  ICStats ic_stats_flushed_;
  void flush_ic_stats();
  std::vector<std::int32_t> global_ref_cache_;  // -1: not yet resolved

  /// Reused argument storage for Call/New evaluation (see ArgStack).
  ArgStack arg_stack_;
  /// index → atom cache for computed numeric property keys (mode 3).
  static constexpr std::size_t kIndexAtomCacheCap = 4096;
  std::vector<js::Atom> index_atom_cache_;

  // Pre-interned hot atoms.
  js::Atom atom_length_;
  js::Atom atom_prototype_;
  js::Atom atom_constructor_;
  js::Atom atom_name_;
  js::Atom atom_message_;

  std::uint64_t next_env_id_ = 1;
  std::uint64_t next_obj_id_ = 1;
  int call_depth_ = 0;
  std::vector<int> fn_stack_;
  std::int64_t ticks_pending_ = 0;
  std::int64_t tick_flush_threshold_ = 64;
  std::int64_t ticks_since_probe_ = 0;
  std::int64_t ticks_since_preempt_ = 0;
  /// End of the current window's tick budget in cpu_ns (<0: unlimited).
  std::int64_t tick_budget_end_ns_ = -1;
  /// Wall-clock watchdog deadline for the current window.
  std::chrono::steady_clock::time_point wall_deadline_{};
  bool wall_watchdog_ = false;
  bool memory_events_ = false;
  /// Where memory-event batches land: hooks_->memory_event_sink(), cached
  /// at construction (a HookList with one mode-3 consumer resolves to that
  /// consumer, skipping the fan-out layer per flush). Null iff hooks_ is.
  ExecutionHooks* memory_sink_ = nullptr;
  std::vector<MemoryEvent> memory_batch_;
  /// Sandbox trip that surfaced inside a destructor's hook flush (see
  /// note_hook_failure); rethrown by the next flush_ticks() probe.
  std::exception_ptr deferred_hook_error_;
  std::string console_;
};

/// Install the standard library (Math, console, Array/String/Object
/// builtins, parseInt & friends, performance.now / Date.now) into a fresh
/// interpreter. Called by the Interpreter constructor.
void install_stdlib(Interpreter& interp);

}  // namespace jsceres::interp
