#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "interp/environment.h"
#include "interp/hooks.h"
#include "interp/object.h"
#include "interp/value.h"
#include "js/ast.h"
#include "support/clock.h"
#include "support/rng.h"

namespace jsceres::interp {

/// A JavaScript `throw` propagating through C++ frames. Caught by
/// try/catch statements; escapes `run()` as an EngineError if uncaught.
struct JSException {
  Value value;
};

/// Host-level failure (uncaught JS exception, tick budget exceeded, call
/// stack overflow).
class EngineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Tree-walking interpreter for the engine's JavaScript subset.
///
/// Deterministic by construction: Math.random is seeded, Date.now /
/// performance.now read the virtual clock, and property enumeration follows
/// insertion order. Every evaluated node advances the cost-model clock, so
/// "CPU time" in the reproduction is a pure function of the executed
/// program.
struct InterpreterConfig {
  std::uint64_t random_seed = 42;
  std::int64_t max_ticks = -1;  // <0: unlimited
  int max_call_depth = 256;
  bool echo_console = false;  // also print console.log to stdout
  /// Simulated OS/browser thread preemption: every `preempt_interval_ticks`
  /// of CPU work the engine is suspended for `preempt_block_ns` of
  /// wall-clock. Models the paper's §3.1 observation that "if ... the OS or
  /// Firefox decides to suspend the thread, JS-CERES continues to count the
  /// time as part of the loop" — the mechanism behind In-Loops > Active.
  std::int64_t preempt_interval_ticks = 0;  // 0: disabled
  std::int64_t preempt_block_ns = 0;
};

class Interpreter {
 public:
  using Config = InterpreterConfig;

  Interpreter(const js::Program& program, VirtualClock& clock,
              ExecutionHooks* hooks = nullptr, Config config = Config());
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Execute the top-level program.
  void run();

  /// Invoke a callable value (used by builtins, the event loop, tests).
  Value call(const Value& callee, const Value& this_val,
             const std::vector<Value>& args);

  // --- globals ---
  void define_global(const std::string& name, Value value);
  [[nodiscard]] Value global(const std::string& name);
  [[nodiscard]] const EnvPtr& global_env() const { return global_env_; }

  // --- object construction (used by builtins and substrate bindings) ---
  ObjPtr make_object();
  ObjPtr make_array(std::size_t reserve = 0);
  ObjPtr make_native_function(std::string name, NativeFn fn);
  /// Create an error object ({name, message}) ready to be thrown.
  [[noreturn]] void throw_error(const std::string& kind, const std::string& message);

  // --- property protocol (prototype-chain aware, hook-emitting) ---
  Value property_get(const Value& base, const std::string& key, int line,
                     const BaseProvenance& prov);
  void property_set(const Value& base, const std::string& key, Value value,
                    int line, const BaseProvenance& prov);

  // --- conversions (exposed for builtins) ---
  static bool to_boolean(const Value& v);
  double to_number(const Value& v);
  std::string to_string_value(const Value& v);
  static std::string number_to_string(double d);
  static std::int32_t to_int32(double d);
  static std::uint32_t to_uint32(double d);

  // --- services ---
  [[nodiscard]] VirtualClock& clock() { return *clock_; }
  [[nodiscard]] ExecutionHooks* hooks() { return hooks_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const js::Program& program() const { return program_; }
  [[nodiscard]] const std::string& console_output() const { return console_; }
  void console_write(const std::string& text);
  /// fn_id of the innermost JS function currently executing (0 == top level).
  [[nodiscard]] int current_fn_id() const {
    return fn_stack_.empty() ? 0 : fn_stack_.back();
  }
  /// Report a host API touch to the active instrumentation.
  void note_host_access(HostAccess access, const char* api_name) {
    if (hooks_ != nullptr) hooks_->on_host_access(access, api_name);
  }
  /// Charge `ticks` cost-model ticks (used by substrate bindings to model
  /// non-trivial native work, e.g. canvas raster fills).
  void charge(std::int64_t ticks);
  /// Advance wall-clock only (blocking host work: decode, compositor, ...).
  void block(std::int64_t ns);

  [[nodiscard]] const ObjPtr& array_prototype() const { return array_proto_; }
  [[nodiscard]] const ObjPtr& object_prototype() const { return object_proto_; }
  [[nodiscard]] const ObjPtr& string_prototype() const { return string_proto_; }
  [[nodiscard]] const ObjPtr& function_prototype() const { return function_proto_; }

 private:
  struct Completion {
    enum class Type : std::uint8_t { Normal, Return, Break, Continue };
    Type type = Type::Normal;
    Value value;
  };

  // Statement / expression evaluation.
  Completion exec(const js::Stmt& stmt, const EnvPtr& env);
  Completion exec_block(const js::Block& block, const EnvPtr& env);
  Value eval(const js::Expr& expr, const EnvPtr& env);
  Value eval_call(const js::Call& call, const EnvPtr& env);
  Value eval_new(const js::New& node, const EnvPtr& env);
  Value eval_member(const js::Member& member, const EnvPtr& env);
  Value eval_assign(const js::Assign& assign, const EnvPtr& env);
  Value eval_update(const js::Update& update, const EnvPtr& env);
  Value eval_binary(const js::Binary& binary, const EnvPtr& env);
  Value apply_binary(js::BinaryOp op, const Value& lhs, const Value& rhs, int line);

  Completion exec_for(const js::For& node, const EnvPtr& env);
  Completion exec_for_in(const js::ForIn& node, const EnvPtr& env);
  Completion exec_while(const js::While& node, const EnvPtr& env);
  Completion exec_do_while(const js::DoWhile& node, const EnvPtr& env);

  /// Key for a property access; resolves computed indices.
  std::string property_key(const Value& key);

  Value call_js_function(JSObject& fn_obj, const Value& this_val,
                         const std::vector<Value>& args);

  ObjPtr make_function_from_node(const js::FunctionNode& node, const EnvPtr& env);
  void hoist_into(Environment& env, const std::vector<std::string>& vars,
                  const std::vector<const js::FunctionDecl*>& fns, const EnvPtr& env_ptr);

  /// Resolve an identifier for assignment; creates a global on miss
  /// (sloppy-mode JavaScript).
  Environment::Resolution resolve_for_write(const std::string& name, const EnvPtr& env);

  bool strict_equals(const Value& a, const Value& b);
  bool loose_equals(const Value& a, const Value& b);

  void tick(std::int64_t n = 1);

  BaseProvenance provenance_of(const js::Expr& base_expr, const EnvPtr& env);

  const js::Program& program_;
  VirtualClock* clock_;
  ExecutionHooks* hooks_;
  Config config_;
  Rng rng_;

  EnvPtr global_env_;
  ObjPtr object_proto_;
  ObjPtr array_proto_;
  ObjPtr string_proto_;
  ObjPtr function_proto_;

  std::uint64_t next_env_id_ = 1;
  std::uint64_t next_obj_id_ = 1;
  int call_depth_ = 0;
  std::vector<int> fn_stack_;
  std::int64_t ticks_since_probe_ = 0;
  std::int64_t ticks_since_preempt_ = 0;
  bool memory_events_ = false;
  std::string console_;
};

/// Install the standard library (Math, console, Array/String/Object
/// builtins, parseInt & friends, performance.now / Date.now) into a fresh
/// interpreter. Called by the Interpreter constructor.
void install_stdlib(Interpreter& interp);

}  // namespace jsceres::interp
