#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "js/atom.h"

namespace jsceres::interp {

/// A hidden class: the property layout shared by every object created with
/// the same insertion sequence of (atom) keys. Shapes form a transition tree
/// rooted at the empty shape; adding property `k` to an object with shape S
/// moves it to the unique child S.transition(k). Two objects with the same
/// shape therefore store the same properties at the same slot indices, which
/// is what lets a property-access site cache (shape, slot) once and then
/// validate a hit with a single pointer compare.
///
/// Storage is *incremental*: a transition stores only its own (key, slot)
/// pair plus a parent pointer, so creating a child shape is O(1) — the old
/// representation copied the parent's full slot table into every child,
/// an O(props²) cost in time and memory across a chain. `slot_of` walks the
/// ancestor chain; once a shape is hot (kHotFlattenLookups misses resolved
/// through it) or deep (> kDeepChain links, flattened on its second lookup
/// so one-shot chain builds stay copy-free), a flattened table is
/// materialized lazily: a dense open-addressed vector keyed by the atoms'
/// precomputed hashes (no std::unordered_map probe on the hot path) plus the
/// insertion-ordered key list for enumeration.
///
/// Shapes are immutable after construction except for the transition map
/// (guarded by a per-shape mutex) and the lazily installed flat table
/// (atomic pointer, installed at most once via CAS; losers discard their
/// candidate). Interpreters on different threads may grow the tree and
/// flatten shapes concurrently; steady-state reads never take a lock.
///
/// Lifetime: by default the tree only grows, so cached `const Shape*`
/// values can never dangle — the right contract for one-shot runs. A
/// resident service additionally runs `reclaim_unused(min_pinned)` at
/// session boundaries: every `transition()` stamps the returned shape with
/// the global epoch, and a subtree whose newest stamp predates the oldest
/// live session pin is provably unreachable (an interpreter can only hold
/// a shape it obtained through `transition()` during its own pinned
/// lifetime, and `slot_of`/flat-table walks only go *up* the chain), so
/// the pass frees it. Ordering contract: run shape reclamation *before*
/// `EpochDomain::reclaim()` in the same pass, so shapes keyed by retired
/// atoms are destroyed before those atoms' table slots are recycled.
class Shape {
 public:
  /// Chains longer than this flatten on their second lookup (the first
  /// lookup already paid the walk; flattening on the first would make
  /// one-shot chain builds quadratic in copies again).
  static constexpr std::uint32_t kDeepChain = 8;
  /// Shallow shapes flatten after this many chain-walk lookups.
  static constexpr std::uint16_t kHotFlattenLookups = 8;

  /// The process-wide empty shape (no properties).
  static const Shape* root();

  /// The shape an object reaches by adding `key` as its next property.
  const Shape* transition(js::Atom key) const;

  /// Slot index of `key`, or -1 when this shape has no such property.
  [[nodiscard]] std::int32_t slot_of(js::Atom key) const {
    const FlatTable* flat = flat_.load(std::memory_order_acquire);
    if (flat != nullptr) return flat->find(key);
    return slot_of_slow(key);
  }

  /// Property keys in insertion order. Materializes the flat table (callers
  /// are enumeration-shaped: for-in, Object.keys, dictionary conversion).
  [[nodiscard]] const std::vector<js::Atom>& keys() const {
    return ensure_flat()->keys;
  }
  [[nodiscard]] std::uint32_t slot_count() const { return depth_; }

  /// Test introspection: whether the flat table has been materialized.
  [[nodiscard]] bool flattened_for_test() const {
    return flat_.load(std::memory_order_acquire) != nullptr;
  }

  /// Free every transition subtree whose newest epoch stamp is strictly
  /// below `min_pinned` (see the class comment for why that is safe).
  /// Returns the bytes released. Call with `EpochDomain::min_pinned()`.
  static std::size_t reclaim_unused(std::uint64_t min_pinned);

  /// Bytes held by live Shape nodes + installed flat tables, process-wide
  /// (the memory governor's shape-tree input).
  static std::size_t live_bytes();

  /// Live shape-node count (root included; diagnostics/tests).
  static std::size_t live_count();

  ~Shape();

 private:
  /// Materialized slot table: `keys` in insertion (slot) order for
  /// enumeration, `table` an open-addressed power-of-two probe array over
  /// the atoms' precomputed hashes for O(1) key → slot.
  struct FlatTable {
    struct Entry {
      js::Atom key;
      std::int32_t slot = -1;  // -1: empty probe slot
    };

    std::vector<js::Atom> keys;
    std::vector<Entry> table;
    std::uint32_t mask = 0;

    [[nodiscard]] std::int32_t find(js::Atom key) const {
      std::size_t i = key.hash() & mask;
      while (table[i].slot >= 0) {
        if (table[i].key == key) return table[i].slot;
        i = (i + 1) & mask;
      }
      return -1;
    }
    void insert(js::Atom key, std::int32_t slot);
    void rehash(std::size_t capacity);
  };

  Shape();
  Shape(const Shape* parent, js::Atom key);

  std::int32_t slot_of_slow(js::Atom key) const;
  const FlatTable* ensure_flat() const;

  /// Reclamation walk (locks parent before child, the only ordering used):
  /// erase children whose whole subtree predates `min_pinned`, recurse into
  /// the survivors.
  void prune_children(std::uint64_t min_pinned) const;
  /// True when this shape and every descendant was last touched before
  /// `min_pinned` (i.e. the subtree is reclaimable).
  [[nodiscard]] bool subtree_touched_before(std::uint64_t min_pinned) const;

  js::Atom key_;             // the property this link appends (root: unused)
  std::uint32_t slot_ = 0;   // key_'s slot index (== parent->depth_)
  std::uint32_t depth_ = 0;  // == slot_count()
  const Shape* parent_ = nullptr;
  mutable std::atomic<const FlatTable*> flat_{nullptr};
  mutable std::atomic<std::uint16_t> lookups_{0};
  /// Global epoch at the last transition() that returned this shape; every
  /// holder of a `const Shape*` obtained it (directly or via an object/IC
  /// it built) through such a call during its own pinned session.
  mutable std::atomic<std::uint64_t> touch_epoch_{0};
  mutable std::mutex transitions_mutex_;
  mutable std::unordered_map<js::Atom, std::unique_ptr<Shape>> transitions_;
};

}  // namespace jsceres::interp
