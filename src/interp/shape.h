#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "js/atom.h"

namespace jsceres::interp {

/// A hidden class: the property layout shared by every object created with
/// the same insertion sequence of (atom) keys. Shapes form a transition tree
/// rooted at the empty shape; adding property `k` to an object with shape S
/// moves it to the unique child S.transition(k). Two objects with the same
/// shape therefore store the same properties at the same slot indices, which
/// is what lets a property-access site cache (shape, slot) once and then
/// validate a hit with a single pointer compare.
///
/// Shapes are immutable after construction except for the transition map,
/// which is guarded by a per-shape mutex (interpreters on different threads
/// may grow the tree concurrently; steady-state reads never take the lock).
/// The tree lives for the process lifetime — shapes are never reclaimed, so
/// cached `const Shape*` values can never dangle.
class Shape {
 public:
  /// The process-wide empty shape (no properties).
  static const Shape* root();

  /// The shape an object reaches by adding `key` as its next property.
  const Shape* transition(js::Atom key) const;

  /// Slot index of `key`, or -1 when this shape has no such property.
  [[nodiscard]] std::int32_t slot_of(js::Atom key) const {
    const auto it = slot_map_.find(key);
    return it == slot_map_.end() ? -1 : std::int32_t(it->second);
  }

  /// Property keys in insertion order.
  [[nodiscard]] const std::vector<js::Atom>& keys() const { return keys_; }
  [[nodiscard]] std::uint32_t slot_count() const {
    return std::uint32_t(keys_.size());
  }

 private:
  Shape() = default;
  Shape(const Shape& parent, js::Atom key);

  std::unordered_map<js::Atom, std::uint32_t> slot_map_;
  std::vector<js::Atom> keys_;
  mutable std::mutex transitions_mutex_;
  mutable std::unordered_map<js::Atom, std::unique_ptr<Shape>> transitions_;
};

}  // namespace jsceres::interp
