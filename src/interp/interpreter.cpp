#include "interp/interpreter.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <optional>

#include "support/obs.h"

namespace jsceres::interp {

namespace {

/// Canonical array index parse: "0", "1", ... without leading zeros.
bool index_from_string(const std::string& key, std::size_t* out) {
  if (key.empty() || key.size() > 10) return false;
  if (key.size() > 1 && key[0] == '0') return false;
  std::size_t value = 0;
  for (const char c : key) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + std::size_t(c - '0');
  }
  *out = value;
  return true;
}

bool number_as_index(double d, std::size_t* out) {
  if (!(d >= 0) || d != std::floor(d) || d >= 4294967295.0) return false;
  *out = std::size_t(d);
  return true;
}

/// RAII guard pairing on_function_enter / on_function_exit even when a JS
/// exception unwinds through C++ frames.
class FunctionFrame {
 public:
  FunctionFrame(Interpreter& interp, std::vector<int>& stack, int fn_id,
                const std::string& name)
      : interp_(interp), stack_(stack), fn_id_(fn_id) {
    stack_.push_back(fn_id_);
    if (interp_.hooks() != nullptr) interp_.sync_hooks()->on_function_enter(fn_id_, name);
  }
  ~FunctionFrame() {
    stack_.pop_back();
    // sync_hooks: memory events buffered by the body flush before the exit.
    // The flush can trip the sandbox (the analyzer's tables charge the
    // ledger), and a destructor is an implicitly-noexcept frame — letting
    // the trip escape would terminate the process whether or not another
    // exception is unwinding. Latch it instead; the next probe rethrows.
    if (interp_.hooks() == nullptr) return;
    try {
      interp_.sync_hooks()->on_function_exit(fn_id_);
    } catch (...) {
      interp_.note_hook_failure();
    }
  }

 private:
  Interpreter& interp_;
  std::vector<int>& stack_;
  int fn_id_;
};

}  // namespace

Interpreter::Interpreter(const js::Program& program, VirtualClock& clock,
                         ExecutionHooks* hooks, Config config)
    : program_(program),
      clock_(&clock),
      hooks_(hooks),
      config_(config),
      ledger_(config.limits),
      rng_(config.random_seed) {
  memory_events_ = hooks_ != nullptr && hooks_->wants_memory_events();
  if (hooks_ != nullptr) memory_sink_ = hooks_->memory_event_sink();
  if (memory_events_) memory_batch_.reserve(256);

  atom_length_ = js::Atom::intern("length");
  atom_prototype_ = js::Atom::intern("prototype");
  atom_constructor_ = js::Atom::intern("constructor");
  atom_name_ = js::Atom::intern("name");
  atom_message_ = js::Atom::intern("message");

  if (config_.preempt_interval_ticks > 0) {
    tick_flush_threshold_ =
        std::min<std::int64_t>(64, config_.preempt_interval_ticks);
  }

  // Per-site caches sized by the resolver's id assignment.
  read_ics_.resize(program.ic_count);
  write_ics_.resize(program.ic_count);
  global_ref_cache_.assign(program.global_ref_count, -1);

  env_pool_ = new EnvPool();
  // If the rest of the constructor throws, ~Interpreter never runs; this
  // guard detaches the pool first (local destructors run before member
  // destructors during ctor unwinding), so released members free their
  // environments through the detached pool and it self-deletes cleanly.
  struct DetachGuard {
    EnvPool* pool;
    ~DetachGuard() {
      if (pool != nullptr) pool->detach();
    }
  } pool_guard{env_pool_};

  global_env_ = make_env(nullptr);
  if (hooks_ != nullptr) sync_hooks()->on_env_created(global_env_->id());

  object_proto_ = std::make_shared<JSObject>(next_obj_id_++);
  array_proto_ = std::make_shared<JSObject>(next_obj_id_++);
  string_proto_ = std::make_shared<JSObject>(next_obj_id_++);
  function_proto_ = std::make_shared<JSObject>(next_obj_id_++);
  array_proto_->set_prototype(object_proto_);

  define_global("undefined", Value::undefined());
  define_global("NaN", Value::number(std::numeric_limits<double>::quiet_NaN()));
  define_global("Infinity", Value::number(std::numeric_limits<double>::infinity()));

  install_stdlib(*this);
  pool_guard.pool = nullptr;  // construction succeeded: dtor owns detach
}

Interpreter::~Interpreter() {
  // Callbacks run via call() after the last run() (event-loop sessions)
  // accrue IC transitions too; push the remainder before teardown.
  flush_ic_stats();
  // Break the closure <-> global-environment refcount cycle: a function
  // object stored in a global slot holds an EnvPtr to the environment that
  // stores it, so without this the whole global graph (stdlib included)
  // outlives every interpreter. Closures a caller still holds remain valid
  // objects; the scope chain they lose is only usable through this engine.
  if (global_env_ != nullptr) global_env_->clear_for_reuse();
  // The builtin prototype web is cyclic on its own: a prototype owns its
  // native methods, and every method's [[prototype]] link leads back into
  // the web via Function.prototype. Sever the roots so the web unwinds.
  for (const ObjPtr& proto :
       {object_proto_, array_proto_, string_proto_, function_proto_}) {
    if (proto != nullptr) proto->sever_for_teardown();
  }
  // Detach (not delete): environments captured by closures a caller still
  // holds keep the pool alive until the last of them releases.
  env_pool_->detach();
}

void Interpreter::begin_run_window() {
  if (config_.max_ticks >= 0) {
    tick_budget_end_ns_ =
        clock_->cpu_ns() + config_.max_ticks * VirtualClock::kTickNs;
  }
  if (config_.limits.max_wall_ms > 0) {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(config_.limits.max_wall_ms);
    wall_watchdog_ = true;
  }
}

void Interpreter::recover_after_engine_error() noexcept {
  // The RAII frames (ArgFrame, FunctionFrame, call-depth catch blocks)
  // unwind their own state; this clears whatever a mid-statement trip can
  // leave half-open so the next run window starts clean.
  call_depth_ = 0;
  fn_stack_.clear();
  memory_batch_.clear();
  arg_stack_.unwind_all();
  ticks_pending_ = 0;
  // A trip latched during the unwind is redundant with the error that
  // triggered this recovery; dropping it keeps the next window clean.
  deferred_hook_error_ = nullptr;
}

void Interpreter::flush_ticks_on_unwind() noexcept {
  // Exception-path flush: charge pending ticks so caller-owned clocks stay
  // exact, but never let a budget overrun replace the in-flight exception.
  try {
    flush_ticks();
  } catch (...) {
    // Budget exhaustion discovered while unwinding: the original error wins.
  }
}

void Interpreter::flush_ticks() {
  // Surface a sandbox trip that was latched inside a destructor's hook
  // flush (see FunctionFrame): this is the first probe on a normal frame,
  // where throwing is safe and the usual recovery contract applies.
  if (deferred_hook_error_ != nullptr) {
    std::exception_ptr error = deferred_hook_error_;
    deferred_hook_error_ = nullptr;
    std::rethrow_exception(error);
  }
  // Charge the batched ticks to the clock and run the low-frequency work
  // (sampling probe, budget check, simulated preemption). The probe cadence
  // (every ~64 ticks) and all totals are identical to charging per node;
  // only the store into the clock is amortized over the batch.
  // Drain the memory-event buffer even when no ticks are pending: every
  // external observation point (clock(), end of run()/call(), unwinding)
  // funnels through here, so observers never see a stale event stream.
  if (!memory_batch_.empty()) flush_memory_events();
  const std::int64_t pending = ticks_pending_;
  if (pending == 0) return;
  ticks_pending_ = 0;
  clock_->tick(pending);
  ticks_since_probe_ += pending;
  if (ticks_since_probe_ >= 64) {
    ticks_since_probe_ = 0;
    if (hooks_ != nullptr) sync_hooks()->on_clock_advance(current_fn_id());
    if (tick_budget_end_ns_ >= 0 && clock_->cpu_ns() > tick_budget_end_ns_) {
      throw EngineError("tick budget exceeded");
    }
    if (wall_watchdog_ && std::chrono::steady_clock::now() > wall_deadline_) {
      throw EngineError("wall-clock limit exceeded (" +
                        std::to_string(config_.limits.max_wall_ms) + "ms)");
    }
    // Cooperative cancellation rides the same amortized probe: a supervisor
    // cancel or expired deadline surfaces as CancelledError (an EngineError,
    // so the reuse/recovery contract is the limit-trip one).
    config_.cancel.raise_if_cancelled();
  }
  if (config_.preempt_interval_ticks > 0) {
    ticks_since_preempt_ += pending;
    if (ticks_since_preempt_ >= config_.preempt_interval_ticks) {
      ticks_since_preempt_ = 0;
      block(config_.preempt_block_ns);
    }
  }
}

void Interpreter::charge(std::int64_t ticks) { tick(ticks); }

void Interpreter::block(std::int64_t ns) {
  flush_ticks();
  clock_->block_ns(ns);
  if (hooks_ != nullptr) sync_hooks()->on_clock_advance(current_fn_id());
}

void Interpreter::charge_elements(JSObject& obj, std::size_t new_len) {
  const std::size_t len = obj.elements().size();
  if (new_len <= len) return;
  const std::size_t cap = config_.limits.max_array_length;
  if (cap != 0 && new_len > cap) {
    throw EngineError("array length limit exceeded: " + std::to_string(new_len) +
                      " > " + std::to_string(cap));
  }
  ledger_.charge((new_len - len) * sizeof(Value));
}

void Interpreter::grow_elements(JSObject& obj, std::size_t new_len) {
  if (new_len <= obj.elements().size()) return;
  charge_elements(obj, new_len);
  obj.elements().resize(new_len);
}

void Interpreter::console_write(const std::string& text) {
  console_ += text;
  console_ += '\n';
  if (config_.echo_console) std::cout << text << "\n";
}

// ---------------------------------------------------------------------------
// Object construction
// ---------------------------------------------------------------------------

ObjPtr Interpreter::make_object() {
  auto obj = std::make_shared<JSObject>(next_obj_id_++);
  obj->set_prototype(object_proto_);
  if (hooks_ != nullptr) sync_hooks()->on_object_created(obj->id(), 0);
  return obj;
}

ObjPtr Interpreter::make_array(std::size_t reserve) {
  auto obj = std::make_shared<JSObject>(next_obj_id_++, JSObject::Cls::Array);
  obj->set_prototype(array_proto_);
  if (reserve > 0) {
    charge_elements(*obj, reserve);
    obj->elements().reserve(reserve);
  }
  if (hooks_ != nullptr) sync_hooks()->on_object_created(obj->id(), 0);
  return obj;
}

ObjPtr Interpreter::make_native_function(std::string name, NativeFn fn) {
  auto obj = std::make_shared<JSObject>(next_obj_id_++, JSObject::Cls::Function);
  obj->set_prototype(function_proto_);
  auto data = std::make_unique<FunctionData>();
  data->name = std::move(name);
  data->native = std::move(fn);
  obj->set_function(std::move(data));
  return obj;
}

ObjPtr Interpreter::make_function_from_node(const js::FunctionNode& node,
                                            const EnvPtr& env) {
  auto obj = std::make_shared<JSObject>(next_obj_id_++, JSObject::Cls::Function);
  obj->set_prototype(function_proto_);
  auto data = std::make_unique<FunctionData>();
  data->decl = &node;
  data->closure = env;
  data->name = node.name;
  data->fn_id = node.fn_id;
  obj->set_function(std::move(data));
  // Constructor protocol: every function carries a fresh `prototype` object.
  auto proto = std::make_shared<JSObject>(next_obj_id_++);
  proto->set_prototype(object_proto_);
  // No `proto.constructor` backref: with shared_ptr-owned objects the
  // fn <-> prototype pair would be an uncollectable cycle leaking every
  // closure ever instantiated. Nothing in the engine or the study corpus
  // reads `constructor` (documented simplification).
  obj->set_property(atom_prototype_, Value::object(proto));
  if (hooks_ != nullptr) sync_hooks()->on_object_created(obj->id(), node.line);
  return obj;
}

void Interpreter::throw_error(const std::string& kind, const std::string& message) {
  auto obj = std::make_shared<JSObject>(next_obj_id_++);
  obj->set_prototype(object_proto_);
  obj->set_property(atom_name_, Value::str(kind));
  obj->set_property(atom_message_, Value::str(message));
  throw JSException{Value::object(obj)};
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

bool Interpreter::to_boolean(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Undefined:
    case Value::Kind::Null:
      return false;
    case Value::Kind::Boolean:
      return v.as_boolean();
    case Value::Kind::Number:
      return v.as_number() != 0 && !std::isnan(v.as_number());
    case Value::Kind::String:
      return !v.as_string().empty();
    case Value::Kind::Object:
      return true;
  }
  return false;
}

double Interpreter::to_number(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Undefined:
      return std::numeric_limits<double>::quiet_NaN();
    case Value::Kind::Null:
      return 0;
    case Value::Kind::Boolean:
      return v.as_boolean() ? 1 : 0;
    case Value::Kind::Number:
      return v.as_number();
    case Value::Kind::String: {
      const std::string& s = v.as_string();
      std::size_t begin = 0;
      std::size_t end = s.size();
      while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
      while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
      if (begin == end) return 0;
      char* parse_end = nullptr;
      const std::string trimmed = s.substr(begin, end - begin);
      const double d = std::strtod(trimmed.c_str(), &parse_end);
      if (parse_end != trimmed.c_str() + trimmed.size()) {
        return std::numeric_limits<double>::quiet_NaN();
      }
      return d;
    }
    case Value::Kind::Object:
      return std::numeric_limits<double>::quiet_NaN();
  }
  return 0;
}

std::string Interpreter::number_to_string(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", d);
  return buf;
}

std::string Interpreter::to_string_value(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Undefined:
      return "undefined";
    case Value::Kind::Null:
      return "null";
    case Value::Kind::Boolean:
      return v.as_boolean() ? "true" : "false";
    case Value::Kind::Number:
      return number_to_string(v.as_number());
    case Value::Kind::String:
      return v.as_string();
    case Value::Kind::Object: {
      const ObjPtr& obj = v.as_object();
      if (obj->is_array()) {
        std::string out;
        for (std::size_t i = 0; i < obj->elements().size(); ++i) {
          if (i > 0) out += ",";
          const Value& e = obj->elements()[i];
          if (!e.is_nullish()) out += to_string_value(e);
        }
        return out;
      }
      if (obj->is_function()) {
        const auto* fn = obj->function();
        return "function " + (fn != nullptr ? fn->name : "") + "() { ... }";
      }
      return "[object Object]";
    }
  }
  return "";
}

std::int32_t Interpreter::to_int32(double d) {
  if (std::isnan(d) || std::isinf(d)) return 0;
  return std::int32_t(std::uint32_t(std::fmod(std::trunc(d), 4294967296.0)));
}

std::uint32_t Interpreter::to_uint32(double d) {
  if (std::isnan(d) || std::isinf(d)) return 0;
  return std::uint32_t(std::int64_t(std::fmod(std::trunc(d), 4294967296.0)));
}

std::string Interpreter::property_key(const Value& key) {
  if (key.is_string()) return key.as_string();
  if (key.is_number()) return number_to_string(key.as_number());
  return to_string_value(key);
}

// ---------------------------------------------------------------------------
// Property protocol
// ---------------------------------------------------------------------------

Value Interpreter::property_get(const Value& base, const std::string& key, int line,
                                const BaseProvenance& prov) {
  if (base.is_string()) {
    const std::string& s = base.as_string();
    if (key == "length") return Value::number(double(s.size()));
    if (const Value* method = string_proto_->own_property(key)) return *method;
    std::size_t index = 0;
    if (index_from_string(key, &index) && index < s.size()) {
      return Value::str(std::string(1, s[index]));
    }
    return Value::undefined();
  }
  if (base.is_number()) {
    // Allow Number method lookups (toFixed) through a tiny implicit box.
    if (const Value* method = string_proto_->own_property(key)) return *method;
    return Value::undefined();
  }
  if (!base.is_object()) {
    throw_error("TypeError",
                "cannot read property '" + key + "' of " + to_string_value(base));
  }
  const ObjPtr& obj = base.as_object();
  if (obj->host() != nullptr) {
    note_host_access(obj->host()->category(), key.c_str());
  }

  if (obj->is_array()) {
    if (key == "length") return Value::number(double(obj->elements().size()));
    std::size_t index = 0;
    if (index_from_string(key, &index)) {
      // Only mode 3 needs an atom for the key, and it comes from the
      // per-interpreter index cache — no atom-table lock in hot loops.
      if (memory_events_) {
        buffer_memory_event(MemoryEvent::Kind::PropRead, obj->id(), index_atom(index), line, prov);
      }
      return index < obj->elements().size() ? obj->elements()[index]
                                            : Value::undefined();
    }
  }
  if (memory_events_) {
    buffer_memory_event(MemoryEvent::Kind::PropRead, obj->id(), js::Atom::intern(key), line, prov);
  }
  for (const JSObject* walk = obj.get(); walk != nullptr;
       walk = walk->prototype().get()) {
    if (const Value* found = walk->own_property(key)) return *found;
  }
  return Value::undefined();
}

void Interpreter::property_set(const Value& base, const std::string& key, Value value,
                               int line, const BaseProvenance& prov) {
  if (!base.is_object()) {
    throw_error("TypeError",
                "cannot set property '" + key + "' of " + to_string_value(base));
  }
  const ObjPtr& obj = base.as_object();
  if (obj->host() != nullptr) {
    note_host_access(obj->host()->category(), key.c_str());
  }
  std::size_t index = 0;
  const bool is_index = obj->is_array() && index_from_string(key, &index);
  if (memory_events_) {
    buffer_memory_event(MemoryEvent::Kind::PropWrite, obj->id(),
                        is_index ? index_atom(index) : js::Atom::intern(key), line, prov);
  }

  if (obj->is_array()) {
    if (key == "length") {
      std::size_t n = 0;
      if (number_as_index(to_number(value), &n)) {
        if (n > obj->elements().size()) grow_elements(*obj, n);
        else obj->elements().resize(n);
      }
      return;
    }
    if (is_index) {
      if (index >= obj->elements().size()) grow_elements(*obj, index + 1);
      obj->elements()[index] = std::move(value);
      return;
    }
  }
  obj->set_property(key, std::move(value));
}

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

void Interpreter::define_global(const std::string& name, Value value) {
  global_env_->declare(js::Atom::intern(name), std::move(value));
}

Value Interpreter::global(const std::string& name) {
  const Value* slot = global_env_->own_slot(name);
  return slot == nullptr ? Value::undefined() : *slot;
}

// ---------------------------------------------------------------------------
// Identifier resolution — the slot-resolved fast paths
// ---------------------------------------------------------------------------

Value* Interpreter::lookup_for_read(js::Atom name, const js::SlotRef& ref,
                                    const EnvPtr& env, Environment** owner) {
  if (ref.hops >= 0) {
    // Statically resolved: two pointer chases, no hashing.
    Environment* target = env->ancestor(ref.hops);
    *owner = target;
    return target->slot_at(ref.slot);
  }
  if (ref.ref_id != js::kNoCacheId) {
    // Global reference: hash once per site, then direct slot index (global
    // bindings are never removed, so a cached index stays valid).
    Environment* global = global_env_.get();
    *owner = global;
    std::int32_t& cached = global_ref_cache_[ref.ref_id];
    if (cached >= 0) return global->slot_at(std::uint32_t(cached));
    const std::int64_t index = global->slot_index(name);
    if (index < 0) return nullptr;
    cached = std::int32_t(index);
    return global->slot_at(std::uint32_t(index));
  }
  // Unresolved AST (synthesized without resolve_scopes): dynamic walk.
  const Environment::Resolution res = env->resolve(name);
  *owner = res.env;
  return res.slot;
}

Value* Interpreter::lookup_for_write(js::Atom name, const js::SlotRef& ref,
                                     const EnvPtr& env, Environment** owner) {
  if (ref.hops >= 0) {
    Environment* target = env->ancestor(ref.hops);
    *owner = target;
    return target->slot_at(ref.slot);
  }
  Environment* global = global_env_.get();
  if (ref.ref_id != js::kNoCacheId) {
    *owner = global;
    std::int32_t& cached = global_ref_cache_[ref.ref_id];
    if (cached >= 0) return global->slot_at(std::uint32_t(cached));
    std::int64_t index = global->slot_index(name);
    if (index < 0) {
      // Sloppy-mode JavaScript: assigning an undeclared name creates a global.
      global->declare(name, Value::undefined());
      index = global->slot_index(name);
    }
    cached = std::int32_t(index);
    return global->slot_at(std::uint32_t(index));
  }
  const Environment::Resolution res = env->resolve(name);
  if (res.slot != nullptr) {
    *owner = res.env;
    return res.slot;
  }
  *owner = global;
  global->declare(name, Value::undefined());
  return global->own_slot(name);
}

// ---------------------------------------------------------------------------
// Equality
// ---------------------------------------------------------------------------

bool Interpreter::strict_equals(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Value::Kind::Undefined:
    case Value::Kind::Null:
      return true;
    case Value::Kind::Boolean:
      return a.as_boolean() == b.as_boolean();
    case Value::Kind::Number:
      return a.as_number() == b.as_number();
    case Value::Kind::String:
      return a.as_string() == b.as_string();
    case Value::Kind::Object:
      return a.as_object() == b.as_object();
  }
  return false;
}

bool Interpreter::loose_equals(const Value& a, const Value& b) {
  if (a.kind() == b.kind()) return strict_equals(a, b);
  if (a.is_nullish() && b.is_nullish()) return true;
  if (a.is_nullish() || b.is_nullish()) return false;
  if (a.is_object() || b.is_object()) {
    // Compare via string representation when one side is an object
    // (sufficient for the study corpus, which compares primitives).
    return to_string_value(a) == to_string_value(b);
  }
  return to_number(a) == to_number(b);
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

void Interpreter::hoist_into(Environment& env, const std::vector<js::Atom>& vars,
                             const std::vector<const js::FunctionDecl*>& fns,
                             const EnvPtr& env_ptr) {
  for (const auto& name : vars) {
    if (!env.has_own(name)) env.declare(name, Value::undefined());
  }
  for (const auto* decl : fns) {
    env.declare(decl->fn->name, Value::object(make_function_from_node(*decl->fn, env_ptr)));
  }
}

Value Interpreter::call(const Value& callee, const Value& this_val, Args args) {
  if (!callee.is_object() || !callee.as_object()->is_function()) {
    throw_error("TypeError", to_string_value(callee) + " is not a function");
  }
  JSObject& fn_obj = *callee.as_object();
  FunctionData& fn = *fn_obj.function();
  if (fn.native) {
    tick(2);
    return fn.native(*this, this_val, args);
  }
  const bool outermost = call_depth_ == 0;
  std::optional<AllocationLedger::Scope> ledger_scope;
  if (outermost) {
    ledger_scope.emplace(&ledger_);
    begin_run_window();
  }
  Value result;
  try {
    result = call_js_function(fn_obj, this_val, args.data(), args.size());
  } catch (...) {
    if (outermost) {
      flush_ticks_on_unwind();
      recover_after_engine_error();
    }
    throw;
  }
  if (outermost) flush_ticks();  // external observers see exact totals
  return result;
}

Value Interpreter::call_spread(const Value& callee, const Value& this_val,
                               const std::vector<Value>& elements) {
  // The snapshot into a frame is required (the callee can mutate the array
  // mid-call, and a reallocation would invalidate a borrowed span), but it
  // goes through the reused segmented ArgStack, so steady-state apply()
  // touches no allocator.
  ArgFrame frame(arg_stack_, elements.size());
  Value* slots = frame.data();
  for (std::size_t i = 0; i < elements.size(); ++i) slots[i] = elements[i];
  return call(callee, this_val, frame.args());
}

Value Interpreter::call_js_function(JSObject& fn_obj, const Value& this_val,
                                    const Value* argv, std::size_t argc) {
  FunctionData& fn = *fn_obj.function();
  const js::FunctionNode& node = *fn.decl;
  if (++call_depth_ > config_.max_call_depth) {
    --call_depth_;
    throw_error("RangeError", "maximum call stack size exceeded");
  }

  EnvPtr env = make_env(fn.closure);
  // Stamp the activation from the resolver's template when the function has
  // enough names for the per-call declare scan (quadratic in the name
  // count) to matter; for tiny activations a handful of pointer compares
  // beats the template stamp. Each slot is written exactly once: the
  // resolver's per-slot init provenance replaces the old fill-undefined-
  // then-store-params double write (entry-written slots skip the zero-fill).
  if (node.layout != nullptr && node.layout->names.size() > 4) {
    const js::ActivationLayout& layout = *node.layout;
    using SlotInit = js::ActivationLayout::SlotInit;
    env->adopt_layout(layout.names, [&](std::size_t slot) -> Value {
      const js::ActivationLayout::SlotSource& src = layout.inits[slot];
      switch (src.kind) {
        case SlotInit::Param:
          return src.index < argc ? argv[src.index] : Value::undefined();
        case SlotInit::Fn:
          return Value::object(
              make_function_from_node(*node.hoisted_functions[src.index]->fn, env));
        case SlotInit::Zero:
        default:
          return Value::undefined();
      }
    });
    if (!layout.fns_in_slot_order) {
      // Degenerate shadowing (a function re-binding a parameter or an
      // earlier function): store in declaration order so closure-object
      // creation order matches the declare-scan path exactly.
      for (std::size_t j = 0; j < node.hoisted_functions.size(); ++j) {
        *env->slot_at(layout.fn_slots[j]) = Value::object(
            make_function_from_node(*node.hoisted_functions[j]->fn, env));
      }
    }
  } else {
    // Synthesized AST that never went through resolve_scopes.
    env->reserve(node.params.size() + node.hoisted_vars.size());
    for (std::size_t i = 0; i < node.params.size(); ++i) {
      env->declare(node.params[i], i < argc ? argv[i] : Value::undefined());
    }
    hoist_into(*env, node.hoisted_vars, node.hoisted_functions, env);
  }
  env->set_this(this_val);
  if (hooks_ != nullptr) sync_hooks()->on_env_created(env->id());

  FunctionFrame frame(*this, fn_stack_, node.fn_id,
                      fn.name.empty() ? "<anonymous>" : fn.name);
  tick(3);
  Value result;
  try {
    Completion completion = exec(*static_cast<const js::Block*>(node.body.get()), env);
    if (completion.type == Completion::Type::Return) result = std::move(completion.value);
  } catch (...) {
    --call_depth_;
    throw;
  }
  --call_depth_;
  return result;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

void Interpreter::flush_ic_stats() {
#if JSCERES_OBS
  const auto delta = [](std::uint64_t cur, std::uint64_t& flushed) {
    const std::uint64_t d = cur - flushed;
    flushed = cur;
    return d;
  };
  JSCERES_OBS_COUNT("interp.ic_read_hits",
                    delta(ic_stats_.read_hits, ic_stats_flushed_.read_hits));
  JSCERES_OBS_COUNT(
      "interp.ic_read_misses",
      delta(ic_stats_.read_misses, ic_stats_flushed_.read_misses));
  JSCERES_OBS_COUNT("interp.ic_write_hits",
                    delta(ic_stats_.write_hits, ic_stats_flushed_.write_hits));
  JSCERES_OBS_COUNT(
      "interp.ic_write_misses",
      delta(ic_stats_.write_misses, ic_stats_flushed_.write_misses));
  JSCERES_OBS_COUNT("interp.ic_megamorphic_trips",
                    delta(ic_stats_.megamorphic_trips,
                          ic_stats_flushed_.megamorphic_trips));
  JSCERES_OBS_COUNT("interp.ic_recaches",
                    delta(ic_stats_.recaches, ic_stats_flushed_.recaches));
  JSCERES_OBS_HIST("interp.ledger_peak_bytes", ledger_.peak());
#endif
}

void Interpreter::run() {
  const AllocationLedger::Scope ledger_scope(&ledger_);
  begin_run_window();
  try {
    hoist_into(*global_env_, program_.hoisted_vars, program_.hoisted_functions,
               global_env_);
    for (const auto& stmt : program_.statements) {
      const Completion completion = exec(*stmt, global_env_);
      if (completion.type != Completion::Type::Normal) break;
    }
    flush_ticks();
    flush_ic_stats();
  } catch (const JSException& ex) {
    flush_ticks_on_unwind();
    flush_ic_stats();
    std::string name = "Error";
    std::string message = to_string_value(ex.value);
    if (ex.value.is_object()) {
      if (const Value* n = ex.value.as_object()->own_property(atom_name_)) {
        name = to_string_value(*n);
      }
      if (const Value* m = ex.value.as_object()->own_property(atom_message_)) {
        message = to_string_value(*m);
      }
    }
    recover_after_engine_error();
    throw EngineError("uncaught " + name + ": " + message);
  } catch (...) {
    flush_ticks_on_unwind();
    flush_ic_stats();
    recover_after_engine_error();
    throw;
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Interpreter::Completion Interpreter::exec_block(const js::Block& block,
                                                const EnvPtr& env) {
  for (const auto& stmt : block.statements) {
    Completion completion = exec(*stmt, env);
    if (completion.type != Completion::Type::Normal) return completion;
  }
  return {};
}

Interpreter::Completion Interpreter::exec(const js::Stmt& stmt, const EnvPtr& env) {
  tick(1);
  switch (stmt.kind) {
    case js::NodeKind::Block:
      return exec_block(static_cast<const js::Block&>(stmt), env);
    case js::NodeKind::ExprStmt:
      eval(*static_cast<const js::ExprStmt&>(stmt).expr, env);
      return {};
    case js::NodeKind::VarDecl: {
      const auto& decl = static_cast<const js::VarDecl&>(stmt);
      for (const auto& d : decl.declarators) {
        if (!d.init) continue;
        Value value = eval(*d.init, env);
        Environment* owner = nullptr;
        Value* slot = lookup_for_write(d.name, d.ref, env, &owner);
        if (memory_events_) buffer_memory_event(MemoryEvent::Kind::VarWrite, owner->id(), d.name, stmt.line);
        *slot = std::move(value);
      }
      return {};
    }
    case js::NodeKind::FunctionDecl:
      return {};  // bound during hoisting
    case js::NodeKind::If: {
      const auto& node = static_cast<const js::If&>(stmt);
      if (eval_condition(*node.condition, env)) return exec(*node.consequent, env);
      if (node.alternate) return exec(*node.alternate, env);
      return {};
    }
    case js::NodeKind::For:
      return exec_for(static_cast<const js::For&>(stmt), env);
    case js::NodeKind::ForIn:
      return exec_for_in(static_cast<const js::ForIn&>(stmt), env);
    case js::NodeKind::While:
      return exec_while(static_cast<const js::While&>(stmt), env);
    case js::NodeKind::DoWhile:
      return exec_do_while(static_cast<const js::DoWhile&>(stmt), env);
    case js::NodeKind::Return: {
      const auto& node = static_cast<const js::Return&>(stmt);
      Completion completion;
      completion.type = Completion::Type::Return;
      if (node.value) completion.value = eval(*node.value, env);
      return completion;
    }
    case js::NodeKind::Break:
      return {Completion::Type::Break, {}};
    case js::NodeKind::Continue:
      return {Completion::Type::Continue, {}};
    case js::NodeKind::Empty:
      return {};
    case js::NodeKind::Throw:
      throw JSException{eval(*static_cast<const js::Throw&>(stmt).value, env)};
    case js::NodeKind::TryCatch: {
      const auto& node = static_cast<const js::TryCatch&>(stmt);
      Completion completion;
      try {
        completion = exec(*node.try_block, env);
      } catch (const JSException& ex) {
        if (node.catch_block) {
          EnvPtr catch_env = make_env(env);
          catch_env->declare(node.catch_param, ex.value);
          if (hooks_ != nullptr) sync_hooks()->on_env_created(catch_env->id());
          completion = exec(*node.catch_block, catch_env);
        } else {
          if (node.finally_block) exec(*node.finally_block, env);
          throw;
        }
      }
      if (node.finally_block) {
        const Completion fin = exec(*node.finally_block, env);
        if (fin.type != Completion::Type::Normal) return fin;
      }
      return completion;
    }
    default:
      throw EngineError("unexpected statement node");
  }
}

// ---------------------------------------------------------------------------
// Loops — the instrumented events the whole study hangs off
// ---------------------------------------------------------------------------

namespace {
LoopEvent loop_event(int loop_id, int line, js::LoopKind kind) {
  return LoopEvent{loop_id, line, int(kind)};
}
}  // namespace

Interpreter::Completion Interpreter::exec_for(const js::For& node, const EnvPtr& env) {
  if (node.init) exec(*node.init, env);
  const LoopEvent event = loop_event(node.loop_id, node.line, js::LoopKind::For);
  if (hooks_ != nullptr) sync_hooks()->on_loop_enter(event);
  Completion result;
  while (true) {
    if (node.condition && !eval_condition(*node.condition, env)) break;
    if (hooks_ != nullptr) sync_hooks()->on_loop_iteration(event);
    Completion completion = exec(*node.body, env);
    if (completion.type == Completion::Type::Break) break;
    if (completion.type == Completion::Type::Return) {
      result = std::move(completion);
      break;
    }
    if (node.update) eval(*node.update, env);
  }
  if (hooks_ != nullptr) sync_hooks()->on_loop_exit(event);
  return result;
}

Interpreter::Completion Interpreter::exec_while(const js::While& node,
                                                const EnvPtr& env) {
  const LoopEvent event = loop_event(node.loop_id, node.line, js::LoopKind::While);
  if (hooks_ != nullptr) sync_hooks()->on_loop_enter(event);
  Completion result;
  while (eval_condition(*node.condition, env)) {
    if (hooks_ != nullptr) sync_hooks()->on_loop_iteration(event);
    Completion completion = exec(*node.body, env);
    if (completion.type == Completion::Type::Break) break;
    if (completion.type == Completion::Type::Return) {
      result = std::move(completion);
      break;
    }
  }
  if (hooks_ != nullptr) sync_hooks()->on_loop_exit(event);
  return result;
}

Interpreter::Completion Interpreter::exec_do_while(const js::DoWhile& node,
                                                   const EnvPtr& env) {
  const LoopEvent event = loop_event(node.loop_id, node.line, js::LoopKind::DoWhile);
  if (hooks_ != nullptr) sync_hooks()->on_loop_enter(event);
  Completion result;
  do {
    if (hooks_ != nullptr) sync_hooks()->on_loop_iteration(event);
    Completion completion = exec(*node.body, env);
    if (completion.type == Completion::Type::Break) break;
    if (completion.type == Completion::Type::Return) {
      result = std::move(completion);
      break;
    }
  } while (eval_condition(*node.condition, env));
  if (hooks_ != nullptr) sync_hooks()->on_loop_exit(event);
  return result;
}

Interpreter::Completion Interpreter::exec_for_in(const js::ForIn& node,
                                                 const EnvPtr& env) {
  const Value object = eval(*node.object, env);
  const LoopEvent event = loop_event(node.loop_id, node.line, js::LoopKind::ForIn);
  if (hooks_ != nullptr) sync_hooks()->on_loop_enter(event);
  Completion result;

  std::vector<Value> keys;
  if (object.is_object()) {
    const ObjPtr& obj = object.as_object();
    if (obj->is_array()) {
      keys.reserve(obj->elements().size() + obj->key_order().size());
      for (std::size_t i = 0; i < obj->elements().size(); ++i) {
        keys.push_back(Value::str(number_to_string(double(i))));
      }
    }
    for (const auto& key : obj->key_order()) keys.push_back(Value::str(key));
  }

  for (auto& key : keys) {
    Environment* owner = nullptr;
    Value* slot = lookup_for_write(node.var_name, node.var_ref, env, &owner);
    if (memory_events_) buffer_memory_event(MemoryEvent::Kind::VarWrite, owner->id(), node.var_name, node.line);
    *slot = std::move(key);
    if (hooks_ != nullptr) sync_hooks()->on_loop_iteration(event);
    Completion completion = exec(*node.body, env);
    if (completion.type == Completion::Type::Break) break;
    if (completion.type == Completion::Type::Return) {
      result = std::move(completion);
      break;
    }
  }
  if (hooks_ != nullptr) sync_hooks()->on_loop_exit(event);
  return result;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

BaseProvenance Interpreter::provenance_of(const js::Expr& base_expr, const EnvPtr& env) {
  if (base_expr.kind == js::NodeKind::Ident) {
    const auto& ident = static_cast<const js::Ident&>(base_expr);
    Environment* owner = nullptr;
    if (lookup_for_read(ident.name, ident.ref, env, &owner) != nullptr) {
      return BaseProvenance{BaseProvenance::Kind::Binding, owner->id()};
    }
    return BaseProvenance{BaseProvenance::Kind::Object, 0};
  }
  if (base_expr.kind == js::NodeKind::ThisExpr) {
    const Environment* owner = env->this_env();
    if (owner != nullptr) {
      return BaseProvenance{BaseProvenance::Kind::This, owner->id()};
    }
  }
  return BaseProvenance{BaseProvenance::Kind::Object, 0};
}

Value Interpreter::eval(const js::Expr& expr, const EnvPtr& env) {
  tick(1);
  switch (expr.kind) {
    case js::NodeKind::NumberLit:
      return Value::number(static_cast<const js::NumberLit&>(expr).value);
    case js::NodeKind::StringLit:
      return Value::str(static_cast<const js::StringLit&>(expr).value);
    case js::NodeKind::BoolLit:
      return Value::boolean(static_cast<const js::BoolLit&>(expr).value);
    case js::NodeKind::NullLit:
      return Value::null();
    case js::NodeKind::Ident: {
      const auto& ident = static_cast<const js::Ident&>(expr);
      Environment* owner = nullptr;
      const Value* slot = lookup_for_read(ident.name, ident.ref, env, &owner);
      if (slot == nullptr) {
        throw_error("ReferenceError", ident.name.str() + " is not defined");
      }
      if (memory_events_) buffer_memory_event(MemoryEvent::Kind::VarRead, owner->id(), ident.name, expr.line);
      return *slot;
    }
    case js::NodeKind::ThisExpr: {
      const Value* this_val = env->this_value();
      return this_val == nullptr ? Value::undefined() : *this_val;
    }
    case js::NodeKind::ArrayLit: {
      const auto& lit = static_cast<const js::ArrayLit&>(expr);
      auto arr = std::make_shared<JSObject>(next_obj_id_++, JSObject::Cls::Array);
      arr->set_prototype(array_proto_);
      if (hooks_ != nullptr) sync_hooks()->on_object_created(arr->id(), expr.line);
      charge_elements(*arr, lit.elements.size());
      arr->elements().reserve(lit.elements.size());
      const BaseProvenance prov{BaseProvenance::Kind::Object, 0};
      for (std::size_t i = 0; i < lit.elements.size(); ++i) {
        arr->elements().push_back(eval(*lit.elements[i], env));
        if (memory_events_) {
          buffer_memory_event(MemoryEvent::Kind::PropWrite, arr->id(), index_atom(i),
                                expr.line, prov);
        }
      }
      return Value::object(arr);
    }
    case js::NodeKind::ObjectLit: {
      const auto& lit = static_cast<const js::ObjectLit&>(expr);
      auto obj = std::make_shared<JSObject>(next_obj_id_++);
      obj->set_prototype(object_proto_);
      if (hooks_ != nullptr) sync_hooks()->on_object_created(obj->id(), expr.line);
      const BaseProvenance prov{BaseProvenance::Kind::Object, 0};
      for (const auto& [key, value_expr] : lit.properties) {
        obj->set_property(key, eval(*value_expr, env));
        if (memory_events_) buffer_memory_event(MemoryEvent::Kind::PropWrite, obj->id(), key, expr.line, prov);
      }
      return Value::object(obj);
    }
    case js::NodeKind::FunctionExpr: {
      const auto& node = static_cast<const js::FunctionExpr&>(expr);
      return Value::object(make_function_from_node(*node.fn, env));
    }
    case js::NodeKind::Call:
      return eval_call(static_cast<const js::Call&>(expr), env);
    case js::NodeKind::New:
      return eval_new(static_cast<const js::New&>(expr), env);
    case js::NodeKind::Member:
      return eval_member(static_cast<const js::Member&>(expr), env);
    case js::NodeKind::Assign:
      return eval_assign(static_cast<const js::Assign&>(expr), env);
    case js::NodeKind::Conditional: {
      const auto& node = static_cast<const js::Conditional&>(expr);
      return to_boolean(eval(*node.condition, env)) ? eval(*node.consequent, env)
                                                    : eval(*node.alternate, env);
    }
    case js::NodeKind::Binary:
      return eval_binary(static_cast<const js::Binary&>(expr), env);
    case js::NodeKind::Logical: {
      const auto& node = static_cast<const js::Logical&>(expr);
      Value lhs = eval(*node.lhs, env);
      if (node.op == js::LogicalOp::And) {
        return to_boolean(lhs) ? eval(*node.rhs, env) : lhs;
      }
      return to_boolean(lhs) ? lhs : eval(*node.rhs, env);
    }
    case js::NodeKind::Unary: {
      const auto& node = static_cast<const js::Unary&>(expr);
      switch (node.op) {
        case js::UnaryOp::Neg:
          return Value::number(-to_number(eval(*node.operand, env)));
        case js::UnaryOp::Plus:
          return Value::number(to_number(eval(*node.operand, env)));
        case js::UnaryOp::Not:
          return Value::boolean(!to_boolean(eval(*node.operand, env)));
        case js::UnaryOp::BitNot:
          return Value::number(double(~to_int32(to_number(eval(*node.operand, env)))));
        case js::UnaryOp::TypeOf: {
          // typeof tolerates unresolved identifiers.
          if (node.operand->kind == js::NodeKind::Ident) {
            const auto& ident = static_cast<const js::Ident&>(*node.operand);
            Environment* owner = nullptr;
            if (lookup_for_read(ident.name, ident.ref, env, &owner) == nullptr) {
              return Value::str("undefined");
            }
          }
          const Value v = eval(*node.operand, env);
          switch (v.kind()) {
            case Value::Kind::Undefined: return Value::str("undefined");
            case Value::Kind::Null: return Value::str("object");
            case Value::Kind::Boolean: return Value::str("boolean");
            case Value::Kind::Number: return Value::str("number");
            case Value::Kind::String: return Value::str("string");
            case Value::Kind::Object:
              return Value::str(v.as_object()->is_function() ? "function" : "object");
          }
          return Value::str("undefined");
        }
        case js::UnaryOp::Delete: {
          const auto& member = static_cast<const js::Member&>(*node.operand);
          const Value base = eval(*member.object, env);
          if (!base.is_object()) return Value::boolean(true);
          std::string key = member.computed ? property_key(eval(*member.index, env))
                                            : member.property.str();
          const ObjPtr& obj = base.as_object();
          std::size_t index = 0;
          if (obj->is_array() && index_from_string(key, &index)) {
            if (index < obj->elements().size()) {
              obj->elements()[index] = Value::undefined();
            }
            return Value::boolean(true);
          }
          return Value::boolean(obj->delete_property(key));
        }
      }
      return Value::undefined();
    }
    case js::NodeKind::Update:
      return eval_update(static_cast<const js::Update&>(expr), env);
    case js::NodeKind::Sequence: {
      const auto& node = static_cast<const js::Sequence&>(expr);
      Value last;
      for (const auto& e : node.exprs) last = eval(*e, env);
      return last;
    }
    default:
      throw EngineError("unexpected expression node");
  }
}

Value Interpreter::eval_member(const js::Member& member, const EnvPtr& env) {
  const Value base = eval_leaf(*member.object, env);
  if (member.computed) {
    const Value key = eval_leaf(*member.index, env);
    // Fast path: numeric index into a dense array. Mode 3 takes it too —
    // the element-read event's key atom comes from the per-interpreter
    // index cache instead of interning a freshly formatted string, so hot
    // array loops never touch the process-wide atom-table lock.
    if (base.is_object() && base.as_object()->is_array() && key.is_number() &&
        base.as_object()->host() == nullptr) {
      std::size_t index = 0;
      if (number_as_index(key.as_number(), &index)) {
        JSObject& obj = *base.as_object();
        if (memory_events_) {
          buffer_memory_event(MemoryEvent::Kind::PropRead, obj.id(), index_atom(index),
                              member.line, provenance_of(*member.object, env));
        }
        const auto& elements = obj.elements();
        return index < elements.size() ? elements[index] : Value::undefined();
      }
    }
    return property_get(base, property_key(key), member.line,
                        memory_events_ ? provenance_of(*member.object, env)
                                       : BaseProvenance{});
  }
  return eval_member_named(base, member, env);
}

/// Named (non-computed) property read with a polymorphic shape inline
/// cache: steady state is a linear probe of up to four (shape, slot) ways —
/// one pointer compare per way — plus one indexed load.
Value Interpreter::eval_member_named(const Value& base, const js::Member& member,
                                     const EnvPtr& env) {
  const js::Atom key = member.property;
  if (base.is_object()) {
    JSObject& obj = *base.as_object();
    if (obj.host() != nullptr) {
      note_host_access(obj.host()->category(), key.str().c_str());
    }
    if (obj.is_array() && key == atom_length_) {
      return Value::number(double(obj.elements().size()));
    }
    if (memory_events_) {
      buffer_memory_event(MemoryEvent::Kind::PropRead, obj.id(), key, member.line,
                           provenance_of(*member.object, env));
    }
    const Shape* shape = obj.shape();
    if (shape != nullptr && member.ic_id != js::kNoCacheId) {
      ReadIC& ic = read_ics_[member.ic_id];
      for (std::uint8_t i = 0; i < ic.count; ++i) {
        const ReadIC::Way& way = ic.ways[i];
        if (way.shape != shape) continue;
        if (way.holder == nullptr) {
          ++ic_stats_.read_hits;
          return *obj.prop_slot(way.slot);
        }
        if (obj.prototype().get() == way.holder &&
            way.holder->shape() == way.holder_shape) {
          ++ic_stats_.read_hits;
          return *way.holder->prop_slot(way.slot);
        }
        break;  // receiver matched but the holder moved: re-resolve
      }
      return read_ic_miss(ic, obj, shape, key);
    }
    for (const JSObject* walk = &obj; walk != nullptr;
         walk = walk->prototype().get()) {
      if (const Value* found = walk->own_property(key)) return *found;
    }
    return Value::undefined();
  }
  // Non-object bases (string/number/nullish): one implementation lives in
  // the generic string-keyed path.
  return property_get(base, key.str(), member.line, BaseProvenance{});
}

namespace {

/// Rotate `way` into the front of a PIC's way array: an existing way for
/// the same shape is overwritten in place (holder revalidation); otherwise
/// ways shift down one slot and the oldest falls off the end. Returns false
/// when the cache was full and a way was evicted (a megamorphic signal).
template <typename IC, typename Way>
bool pic_insert(IC& ic, const Way& way) {
  for (std::uint8_t i = 0; i < ic.count; ++i) {
    if (ic.ways[i].shape == way.shape) {
      ic.ways[i] = way;
      return true;
    }
  }
  const bool evicted = ic.count == IC::kWays;
  const std::uint8_t tail = evicted ? IC::kWays - 1 : ic.count++;
  for (std::uint8_t i = tail; i > 0; --i) ic.ways[i] = ic.ways[i - 1];
  ic.ways[0] = way;
  return !evicted;
}

/// Megamorphic-state streak tracking: called with the (receiver shape,
/// holder shape) pair of a generic (megamorphic) access — holder_shape is
/// nullptr when the property resolved on the receiver itself. Returns true
/// when kRecacheHits consecutive accesses shared one pair — the site is
/// reset to the caching state (the caller's normal insert path then
/// repopulates the ways), so a site condemned during a polymorphic warmup
/// phase recovers once the workload settles on one shape. Tracking the pair
/// (not the receiver alone) keeps a stable receiver over a CHURNING
/// prototype chain megamorphic: re-caching it would install a way the very
/// next access invalidates, paying resolve-and-insert forever.
template <typename IC>
bool recache_if_stable(IC& ic, const Shape* shape, const Shape* holder_shape) {
  if (shape == ic.last_shape && holder_shape == ic.last_holder) {
    if (++ic.stable < IC::kRecacheHits) return false;
    ic.megamorphic = false;
    ic.misses = 0;
    ic.stable = 0;
    ic.last_shape = nullptr;
    ic.last_holder = nullptr;
    return true;
  }
  ic.last_shape = shape;
  ic.last_holder = holder_shape;
  ic.stable = 1;
  return false;
}

}  // namespace

Value Interpreter::read_ic_miss(ReadIC& ic, JSObject& obj, const Shape* shape,
                                js::Atom key) {
  ++ic_stats_.read_misses;
  const std::int32_t own = shape->slot_of(key);
  if (own >= 0) {
    // Own-property access: the streak holder is the nullptr sentinel. A
    // megamorphic site that just crossed the stable-(shape,holder) streak
    // re-enters caching here — the insert below runs on this very access.
    if (ic.megamorphic && recache_if_stable(ic, shape, nullptr)) {
      ++ic_stats_.recaches;
    }
    if (!ic.megamorphic &&
        !pic_insert(ic, ReadIC::Way{shape, std::uint32_t(own), nullptr, nullptr}) &&
        ++ic.misses >= ReadIC::kMegamorphicMisses) {
      ic.megamorphic = true;
      ic.count = 0;  // stop probing stale ways; all accesses go generic
      ++ic_stats_.megamorphic_trips;
    }
    return *obj.prop_slot(std::uint32_t(own));
  }
  // Not an own property: resolve the direct-prototype holder FIRST, so the
  // megamorphic streak can be fed with the pair it would actually cache.
  JSObject* proto = obj.prototype().get();
  const Shape* proto_shape = proto != nullptr ? proto->shape() : nullptr;
  const std::int32_t proto_slot =
      proto_shape != nullptr ? proto_shape->slot_of(key) : -1;
  if (proto_slot >= 0) {
    if (ic.megamorphic && recache_if_stable(ic, shape, proto_shape)) {
      ++ic_stats_.recaches;
    }
    if (!ic.megamorphic) {
      if (!pic_insert(ic, ReadIC::Way{shape, std::uint32_t(proto_slot), proto,
                                      proto_shape}) &&
          ++ic.misses >= ReadIC::kMegamorphicMisses) {
        ic.megamorphic = true;
        ic.count = 0;
        ++ic_stats_.megamorphic_trips;
      }
      return *proto->prop_slot(std::uint32_t(proto_slot));
    }
  }
  // Megamorphic site, or a deeper/dictionary-mode holder or absent key.
  // Uncacheable resolutions are streak-neutral: they could never be served
  // by a re-cached way, so they neither build nor break a stable streak.
  // Generic prototype walk with no cache churn (`own` above already settled
  // the receiver).
  if (proto_slot >= 0) return *proto->prop_slot(std::uint32_t(proto_slot));
  for (const JSObject* walk = obj.prototype().get(); walk != nullptr;
       walk = walk->prototype().get()) {
    if (const Value* found = walk->own_property(key)) return *found;
  }
  return Value::undefined();
}

/// Named property write with a store inline cache: an in-place slot store or
/// a cached property-add shape transition.
void Interpreter::assign_member_named(const Value& base, const js::Member& member,
                                      Value value, const EnvPtr& env) {
  const js::Atom key = member.property;
  if (!base.is_object()) {
    throw_error("TypeError",
                "cannot set property '" + key.str() + "' of " + to_string_value(base));
  }
  JSObject& obj = *base.as_object();
  if (obj.host() != nullptr) {
    note_host_access(obj.host()->category(), key.str().c_str());
  }
  if (memory_events_) {
    buffer_memory_event(MemoryEvent::Kind::PropWrite, obj.id(), key, member.line,
                          provenance_of(*member.object, env));
  }
  if (obj.is_array() && key == atom_length_) {
    std::size_t n = 0;
    if (number_as_index(to_number(value), &n)) {
      if (n > obj.elements().size()) grow_elements(obj, n);
      else obj.elements().resize(n);
    }
    return;
  }
  const Shape* shape = obj.shape();
  if (shape != nullptr && member.ic_id != js::kNoCacheId) {
    WriteIC& ic = write_ics_[member.ic_id];
    for (std::uint8_t i = 0; i < ic.count; ++i) {
      const WriteIC::Way& way = ic.ways[i];
      if (way.shape != shape) continue;
      ++ic_stats_.write_hits;
      if (way.new_shape == nullptr) {
        *obj.prop_slot(way.slot) = std::move(value);
      } else {
        // Cached property-add transition: append without consulting the
        // shape tree (no transition-map mutex on the steady-state path).
        obj.append_prop(way.new_shape, std::move(value));
      }
      return;
    }
    write_ic_miss(ic, obj, shape, key, std::move(value));
    return;
  }
  obj.set_property(key, std::move(value));
}

void Interpreter::write_ic_miss(WriteIC& ic, JSObject& obj, const Shape* shape,
                                js::Atom key, Value value) {
  ++ic_stats_.write_misses;
  if (ic.megamorphic) {
    if (!recache_if_stable(ic, shape, nullptr)) {
      obj.set_property(key, std::move(value));
      return;
    }
    ++ic_stats_.recaches;
  }
  const std::int32_t own = shape->slot_of(key);
  WriteIC::Way way;
  if (own >= 0) {
    way = WriteIC::Way{shape, std::uint32_t(own), nullptr};
  } else {
    way = WriteIC::Way{shape, shape->slot_count(), shape->transition(key)};
  }
  if (!pic_insert(ic, way) && ++ic.misses >= WriteIC::kMegamorphicMisses) {
    ic.megamorphic = true;
    ic.count = 0;
    ++ic_stats_.megamorphic_trips;
  }
  if (way.new_shape == nullptr) {
    *obj.prop_slot(way.slot) = std::move(value);
  } else {
    obj.append_prop(way.new_shape, std::move(value));
  }
}

Value Interpreter::eval_assign(const js::Assign& assign, const EnvPtr& env) {
  if (assign.target->kind == js::NodeKind::Ident) {
    const auto& ident = static_cast<const js::Ident&>(*assign.target);
    Value value;
    if (assign.op == js::AssignOp::None) {
      value = eval(*assign.value, env);
    } else {
      Environment* owner = nullptr;
      const Value* pre = lookup_for_read(ident.name, ident.ref, env, &owner);
      if (pre == nullptr) {
        throw_error("ReferenceError", ident.name.str() + " is not defined");
      }
      if (memory_events_) buffer_memory_event(MemoryEvent::Kind::VarRead, owner->id(), ident.name, assign.line);
      // Copy before evaluating the RHS: the RHS may declare new bindings,
      // which can reallocate the slot storage behind `pre`.
      const Value current = *pre;
      value = apply_binary(js::BinaryOp(int(assign.op) - 1 + int(js::BinaryOp::Add)),
                           current, eval(*assign.value, env), assign.line);
    }
    Environment* owner = nullptr;
    Value* slot = lookup_for_write(ident.name, ident.ref, env, &owner);
    if (memory_events_) buffer_memory_event(MemoryEvent::Kind::VarWrite, owner->id(), ident.name, assign.line);
    *slot = value;
    return value;
  }

  const auto& member = static_cast<const js::Member&>(*assign.target);
  const Value base = eval_leaf(*member.object, env);

  if (!member.computed) {
    Value value;
    if (assign.op == js::AssignOp::None) {
      value = eval(*assign.value, env);
    } else {
      const Value current = eval_member_named(base, member, env);
      value = apply_binary(js::BinaryOp(int(assign.op) - 1 + int(js::BinaryOp::Add)),
                           current, eval(*assign.value, env), assign.line);
    }
    assign_member_named(base, member, value, env);
    return value;
  }

  const Value key_val = eval_leaf(*member.index, env);
  // Fast path mirror of eval_member: numeric index into a dense array, in
  // every mode — mode 3 buffers its events with index-cache atoms.
  if (base.is_object() && base.as_object()->is_array() && key_val.is_number() &&
      base.as_object()->host() == nullptr) {
    std::size_t index = 0;
    if (number_as_index(key_val.as_number(), &index)) {
      JSObject& obj = *base.as_object();
      const BaseProvenance prov = memory_events_ ? provenance_of(*member.object, env)
                                                 : BaseProvenance{};
      Value value;
      if (assign.op == js::AssignOp::None) {
        value = eval(*assign.value, env);
      } else {
        if (memory_events_) {
          buffer_memory_event(MemoryEvent::Kind::PropRead, obj.id(), index_atom(index),
                              assign.line, prov);
        }
        const Value current = index < obj.elements().size() ? obj.elements()[index]
                                                            : Value::undefined();
        value = apply_binary(js::BinaryOp(int(assign.op) - 1 + int(js::BinaryOp::Add)),
                             current, eval(*assign.value, env), assign.line);
      }
      if (memory_events_) {
        buffer_memory_event(MemoryEvent::Kind::PropWrite, obj.id(), index_atom(index),
                            assign.line, prov);
      }
      if (index >= obj.elements().size()) grow_elements(obj, index + 1);
      obj.elements()[index] = value;
      return value;
    }
  }
  std::string key = property_key(key_val);
  const BaseProvenance prov = memory_events_ ? provenance_of(*member.object, env)
                                             : BaseProvenance{};
  Value value;
  if (assign.op == js::AssignOp::None) {
    value = eval(*assign.value, env);
  } else {
    const Value current = property_get(base, key, assign.line, prov);
    value = apply_binary(js::BinaryOp(int(assign.op) - 1 + int(js::BinaryOp::Add)),
                         current, eval(*assign.value, env), assign.line);
  }
  property_set(base, key, value, assign.line, prov);
  return value;
}

Value Interpreter::eval_update(const js::Update& update, const EnvPtr& env) {
  const double delta = update.increment ? 1 : -1;
  if (update.target->kind == js::NodeKind::Ident) {
    const auto& ident = static_cast<const js::Ident&>(*update.target);
    Environment* owner = nullptr;
    Value* slot = lookup_for_read(ident.name, ident.ref, env, &owner);
    if (slot == nullptr) {
      throw_error("ReferenceError", ident.name.str() + " is not defined");
    }
    const double before = to_number(*slot);
    if (memory_events_) buffer_memory_event(MemoryEvent::Kind::VarWrite, owner->id(), ident.name, update.line);
    *slot = Value::number(before + delta);
    return Value::number(update.prefix ? before + delta : before);
  }
  const auto& member = static_cast<const js::Member&>(*update.target);
  const Value base = eval_leaf(*member.object, env);
  if (!member.computed) {
    const double before = to_number(eval_member_named(base, member, env));
    assign_member_named(base, member, Value::number(before + delta), env);
    return Value::number(update.prefix ? before + delta : before);
  }
  std::string key = property_key(eval(*member.index, env));
  const BaseProvenance prov = memory_events_ ? provenance_of(*member.object, env)
                                             : BaseProvenance{};
  const double before = to_number(property_get(base, key, update.line, prov));
  property_set(base, key, Value::number(before + delta), update.line, prov);
  return Value::number(update.prefix ? before + delta : before);
}

Value Interpreter::eval_call(const js::Call& call, const EnvPtr& env) {
  Value this_val;
  Value callee;
  if (call.callee->kind == js::NodeKind::Member) {
    const auto& member = static_cast<const js::Member&>(*call.callee);
    this_val = eval_leaf(*member.object, env);
    if (member.computed) {
      const std::string key = property_key(eval(*member.index, env));
      callee = property_get(this_val, key, member.line,
                            memory_events_ ? provenance_of(*member.object, env)
                                           : BaseProvenance{});
      if (!callee.is_object() || !callee.as_object()->is_function()) {
        throw_error("TypeError", key + " is not a function");
      }
    } else {
      callee = eval_member_named(this_val, member, env);
      if (!callee.is_object() || !callee.as_object()->is_function()) {
        throw_error("TypeError", member.property.str() + " is not a function");
      }
    }
  } else {
    callee = eval(*call.callee, env);
  }
  // Argument values live in a frame on the reused per-interpreter stack:
  // the span is reserved up front (nested calls in argument position push
  // above it), filled left to right, and released by the frame's destructor
  // even when an argument's evaluation throws.
  const std::size_t argc = call.args.size();
  ArgFrame frame(arg_stack_, argc);
  Value* argv = frame.data();
  for (std::size_t i = 0; i < argc; ++i) argv[i] = eval_leaf(*call.args[i], env);
  return this->call(callee, this_val, frame.args());
}

Value Interpreter::eval_new(const js::New& node, const EnvPtr& env) {
  const Value callee = eval(*node.callee, env);
  if (!callee.is_object() || !callee.as_object()->is_function()) {
    throw_error("TypeError", "constructor is not a function");
  }
  auto obj = std::make_shared<JSObject>(next_obj_id_++);
  if (const Value* proto = callee.as_object()->own_property(atom_prototype_);
      proto != nullptr && proto->is_object()) {
    obj->set_prototype(proto->as_object());
  } else {
    obj->set_prototype(object_proto_);
  }
  if (hooks_ != nullptr) sync_hooks()->on_object_created(obj->id(), node.line);

  const std::size_t argc = node.args.size();
  ArgFrame frame(arg_stack_, argc);
  Value* argv = frame.data();
  for (std::size_t i = 0; i < argc; ++i) argv[i] = eval(*node.args[i], env);
  const Value result = call(callee, Value::object(obj), frame.args());
  return result.is_object() ? result : Value::object(obj);
}

inline Value Interpreter::eval_leaf(const js::Expr& expr, const EnvPtr& env) {
  if (expr.kind == js::NodeKind::NumberLit) {
    tick(1);
    return Value::number(static_cast<const js::NumberLit&>(expr).value);
  }
  if (expr.kind == js::NodeKind::Ident) {
    tick(1);
    const auto& ident = static_cast<const js::Ident&>(expr);
    Environment* owner = nullptr;
    const Value* slot = lookup_for_read(ident.name, ident.ref, env, &owner);
    if (slot == nullptr) {
      throw_error("ReferenceError", ident.name.str() + " is not defined");
    }
    if (memory_events_) buffer_memory_event(MemoryEvent::Kind::VarRead, owner->id(), ident.name, expr.line);
    return *slot;
  }
  return eval(expr, env);
}

Value Interpreter::eval_binary(const js::Binary& binary, const EnvPtr& env) {
  const Value lhs = eval_leaf(*binary.lhs, env);
  const Value rhs = eval_leaf(*binary.rhs, env);
  return apply_binary(binary.op, lhs, rhs, binary.line);
}

inline bool Interpreter::eval_condition(const js::Expr& expr, const EnvPtr& env) {
  if (expr.kind == js::NodeKind::Binary) {
    const auto& binary = static_cast<const js::Binary&>(expr);
    switch (binary.op) {
      case js::BinaryOp::Lt:
      case js::BinaryOp::Gt:
      case js::BinaryOp::Le:
      case js::BinaryOp::Ge: {
        tick(1);  // the Binary node's own charge
        const Value lhs = eval_leaf(*binary.lhs, env);
        const Value rhs = eval_leaf(*binary.rhs, env);
        if (lhs.is_number() && rhs.is_number()) {
          const double a = lhs.as_number();
          const double b = rhs.as_number();
          switch (binary.op) {
            case js::BinaryOp::Lt: return a < b;
            case js::BinaryOp::Gt: return a > b;
            case js::BinaryOp::Le: return a <= b;
            default: return a >= b;
          }
        }
        return to_boolean(apply_binary(binary.op, lhs, rhs, binary.line));
      }
      default:
        break;
    }
  }
  return to_boolean(eval(expr, env));
}

Value Interpreter::apply_binary(js::BinaryOp op, const Value& lhs, const Value& rhs,
                                int line) {
  using js::BinaryOp;
  // Number ⊕ number covers the vast majority of loop arithmetic: dispatch
  // once on the kinds, then once on the operator, skipping the per-operand
  // to_number coercion switches.
  if (lhs.is_number() && rhs.is_number()) {
    const double a = lhs.as_number();
    const double b = rhs.as_number();
    switch (op) {
      case BinaryOp::Add: return Value::number(a + b);
      case BinaryOp::Sub: return Value::number(a - b);
      case BinaryOp::Mul: return Value::number(a * b);
      case BinaryOp::Div: return Value::number(a / b);
      case BinaryOp::Mod: return Value::number(std::fmod(a, b));
      case BinaryOp::BitAnd: return Value::number(double(to_int32(a) & to_int32(b)));
      case BinaryOp::BitOr: return Value::number(double(to_int32(a) | to_int32(b)));
      case BinaryOp::BitXor: return Value::number(double(to_int32(a) ^ to_int32(b)));
      case BinaryOp::Shl:
        return Value::number(double(to_int32(a) << (to_uint32(b) & 31)));
      case BinaryOp::Shr:
        return Value::number(double(to_int32(a) >> (to_uint32(b) & 31)));
      case BinaryOp::UShr:
        return Value::number(double(to_uint32(a) >> (to_uint32(b) & 31)));
      case BinaryOp::Lt: return Value::boolean(a < b);
      case BinaryOp::Gt: return Value::boolean(a > b);
      case BinaryOp::Le: return Value::boolean(a <= b);
      case BinaryOp::Ge: return Value::boolean(a >= b);
      case BinaryOp::Eq:
      case BinaryOp::StrictEq: return Value::boolean(a == b);
      case BinaryOp::Ne:
      case BinaryOp::StrictNe: return Value::boolean(a != b);
      default: break;  // In / InstanceOf fall through to the generic path
    }
  }
  switch (op) {
    case BinaryOp::Add:
      if (lhs.is_number() && rhs.is_number()) {
        return Value::number(lhs.as_number() + rhs.as_number());
      }
      if (lhs.is_string() || rhs.is_string() || lhs.is_object() || rhs.is_object()) {
        std::string left = to_string_value(lhs);
        std::string right = to_string_value(rhs);
        // Concatenation is the string-doubling amplifier (`s = s + s`):
        // charge large results before building them. Small results are
        // value-churn temporaries and stay off the ledger.
        const std::size_t result_size = left.size() + right.size();
        if (result_size >= 1024) ledger_.charge(result_size);
        return Value::str(left + right);
      }
      return Value::number(to_number(lhs) + to_number(rhs));
    case BinaryOp::Sub:
      return Value::number(to_number(lhs) - to_number(rhs));
    case BinaryOp::Mul:
      return Value::number(to_number(lhs) * to_number(rhs));
    case BinaryOp::Div:
      return Value::number(to_number(lhs) / to_number(rhs));
    case BinaryOp::Mod:
      return Value::number(std::fmod(to_number(lhs), to_number(rhs)));
    case BinaryOp::BitAnd:
      return Value::number(double(to_int32(to_number(lhs)) & to_int32(to_number(rhs))));
    case BinaryOp::BitOr:
      return Value::number(double(to_int32(to_number(lhs)) | to_int32(to_number(rhs))));
    case BinaryOp::BitXor:
      return Value::number(double(to_int32(to_number(lhs)) ^ to_int32(to_number(rhs))));
    case BinaryOp::Shl:
      return Value::number(
          double(to_int32(to_number(lhs)) << (to_uint32(to_number(rhs)) & 31)));
    case BinaryOp::Shr:
      return Value::number(
          double(to_int32(to_number(lhs)) >> (to_uint32(to_number(rhs)) & 31)));
    case BinaryOp::UShr:
      return Value::number(
          double(to_uint32(to_number(lhs)) >> (to_uint32(to_number(rhs)) & 31)));
    case BinaryOp::Lt:
      if (lhs.is_string() && rhs.is_string()) {
        return Value::boolean(lhs.as_string() < rhs.as_string());
      }
      return Value::boolean(to_number(lhs) < to_number(rhs));
    case BinaryOp::Gt:
      if (lhs.is_string() && rhs.is_string()) {
        return Value::boolean(lhs.as_string() > rhs.as_string());
      }
      return Value::boolean(to_number(lhs) > to_number(rhs));
    case BinaryOp::Le:
      if (lhs.is_string() && rhs.is_string()) {
        return Value::boolean(lhs.as_string() <= rhs.as_string());
      }
      return Value::boolean(to_number(lhs) <= to_number(rhs));
    case BinaryOp::Ge:
      if (lhs.is_string() && rhs.is_string()) {
        return Value::boolean(lhs.as_string() >= rhs.as_string());
      }
      return Value::boolean(to_number(lhs) >= to_number(rhs));
    case BinaryOp::Eq:
      return Value::boolean(loose_equals(lhs, rhs));
    case BinaryOp::Ne:
      return Value::boolean(!loose_equals(lhs, rhs));
    case BinaryOp::StrictEq:
      return Value::boolean(strict_equals(lhs, rhs));
    case BinaryOp::StrictNe:
      return Value::boolean(!strict_equals(lhs, rhs));
    case BinaryOp::In: {
      if (!rhs.is_object()) throw_error("TypeError", "'in' requires an object");
      const std::string key = property_key(lhs);
      const ObjPtr& obj = rhs.as_object();
      std::size_t index = 0;
      if (obj->is_array() && index_from_string(key, &index)) {
        return Value::boolean(index < obj->elements().size());
      }
      for (const JSObject* walk = obj.get(); walk != nullptr;
           walk = walk->prototype().get()) {
        if (walk->own_property(key) != nullptr) return Value::boolean(true);
      }
      return Value::boolean(false);
    }
    case BinaryOp::InstanceOf: {
      if (!rhs.is_object() || !rhs.as_object()->is_function()) {
        throw_error("TypeError", "instanceof requires a function");
      }
      if (!lhs.is_object()) return Value::boolean(false);
      const Value* proto = rhs.as_object()->own_property(atom_prototype_);
      if (proto == nullptr || !proto->is_object()) return Value::boolean(false);
      for (const JSObject* walk = lhs.as_object()->prototype().get(); walk != nullptr;
           walk = walk->prototype().get()) {
        if (walk == proto->as_object().get()) return Value::boolean(true);
      }
      return Value::boolean(false);
    }
  }
  (void)line;
  throw EngineError("unexpected binary operator");
}

Interpreter::ReadICDebug Interpreter::debug_read_ic(std::uint32_t ic_id) const {
  const ReadIC& ic = read_ics_.at(ic_id);
  ReadICDebug out;
  out.ways = ic.count;
  out.megamorphic = ic.megamorphic;
  for (std::uint8_t i = 0; i < ic.count; ++i) out.shapes[i] = ic.ways[i].shape;
  return out;
}

Interpreter::WriteICDebug Interpreter::debug_write_ic(std::uint32_t ic_id) const {
  const WriteIC& ic = write_ics_.at(ic_id);
  WriteICDebug out;
  out.ways = ic.count;
  out.megamorphic = ic.megamorphic;
  for (std::uint8_t i = 0; i < ic.count; ++i) {
    out.shapes[i] = ic.ways[i].shape;
    out.is_transition[i] = ic.ways[i].new_shape != nullptr;
  }
  return out;
}

}  // namespace jsceres::interp
