#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "interp/value.h"
#include "support/limits.h"

namespace jsceres::interp {

/// Read-only view of a call's argument list — the builtin/native call
/// convention. Implicitly constructible from a `std::vector<Value>` or a
/// braced list, so host call sites read naturally; the interpreter's own
/// Call evaluation points it at a frame on the reused ArgStack, which is
/// what makes steady-state JS→JS and JS→native calls allocation-free.
///
/// An Args is a borrow: it never owns the Values and must not outlive the
/// storage it was built over (for natives: the duration of the call).
class Args {
 public:
  Args() = default;
  Args(const Value* data, std::size_t size) : data_(data), size_(size) {}
  Args(const std::vector<Value>& values)  // NOLINT(google-explicit-constructor)
      : data_(values.data()), size_(values.size()) {}
  // The braced-list form is safe for the supported pattern — passing `{a,
  // b}` directly to a call(), where the backing array outlives the full
  // expression — which is exactly the case GCC's lifetime warning cannot
  // see. Binding a braced list to a *named* Args would dangle; don't.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
  Args(std::initializer_list<Value> values)  // NOLINT(google-explicit-constructor)
      : data_(values.begin()), size_(values.size()) {}
#pragma GCC diagnostic pop

  [[nodiscard]] const Value* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  const Value& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const Value* begin() const { return data_; }
  [[nodiscard]] const Value* end() const { return data_ + size_; }

 private:
  const Value* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Per-interpreter reused argument stack. Call argument evaluation used to
/// build one heap `std::vector<Value>` per call; this replaces it with
/// frames pushed onto segmented storage that survives across calls, so a
/// steady-state call allocates nothing.
///
/// Frames are strictly LIFO and each frame's slots are contiguous (a Call
/// knows its argument count up front, reserves the span, then fills it —
/// nested calls evaluated in argument position push their own frames above
/// the reservation). Segments never reallocate their slot storage, so a
/// frame's `Value*` span stays valid across nested push/pop pairs even when
/// the segment directory grows.
class ArgStack {
 public:
  static constexpr std::size_t kSegmentSlots = 64;

  ArgStack() = default;
  ArgStack(const ArgStack&) = delete;
  ArgStack& operator=(const ArgStack&) = delete;

  struct Mark {
    std::uint32_t segment = 0;
    std::uint32_t used = 0;
  };

  /// Reserve `n` contiguous slots (default-constructed Values) on top of
  /// the stack. `mark` receives the state `pop` needs to restore.
  Value* push(std::size_t n, Mark* mark) {
    // Segment growth charges the active run's ledger before mutating any
    // stack state, so a ledger trip mid-push leaves the stack exactly as the
    // enclosing frames left it.
    if (segments_.empty()) {
      AllocationLedger::charge_current(std::max(kSegmentSlots, n) * sizeof(Value));
      segments_.emplace_back(std::max(kSegmentSlots, n));
    }
    mark->segment = current_;
    mark->used = segments_[current_].used;
    Segment* seg = &segments_[current_];
    if (seg->slots.size() - seg->used < n) {
      // The frame needs contiguity: advance to (or create) a segment with
      // room. Segments past `current_` are always fully popped.
      if (current_ + 1 == segments_.size()) {
        AllocationLedger::charge_current(std::max(kSegmentSlots, n) * sizeof(Value));
        segments_.emplace_back(std::max(kSegmentSlots, n));
      } else if (segments_[current_ + 1].slots.size() < n) {
        const std::size_t grown = std::max(kSegmentSlots, n);
        AllocationLedger::charge_current(
            (grown - segments_[current_ + 1].slots.size()) * sizeof(Value));
        segments_[current_ + 1] = Segment(grown);
      }
      ++current_;
      seg = &segments_[current_];
    }
    Value* out = seg->slots.data() + seg->used;
    seg->used += std::uint32_t(n);
    return out;
  }

  /// Pop the top frame (LIFO). Clears the frame's slots so object/string
  /// references are released promptly, then rewinds to `mark`.
  void pop(const Mark& mark, Value* slots, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) slots[i] = Value();
    if (current_ != mark.segment) {
      segments_[current_].used = 0;
      current_ = mark.segment;
    }
    segments_[current_].used = mark.used;
  }

  /// Slots currently reserved across all segments (test introspection; 0
  /// once every frame has unwound).
  [[nodiscard]] std::size_t in_use() const {
    std::size_t total = 0;
    for (const Segment& seg : segments_) total += seg.used;
    return total;
  }

  /// Recovery backstop: drop every frame and clear its slots so object and
  /// string references release. Used after an EngineError escapes the
  /// interpreter's outermost entry point; segment capacity is kept.
  void unwind_all() noexcept {
    for (Segment& seg : segments_) {
      for (std::uint32_t i = 0; i < seg.used; ++i) seg.slots[i] = Value();
      seg.used = 0;
    }
    current_ = 0;
  }

 private:
  struct Segment {
    explicit Segment(std::size_t n) : slots(n) {}
    std::vector<Value> slots;
    std::uint32_t used = 0;
  };

  std::vector<Segment> segments_;
  std::uint32_t current_ = 0;
};

/// RAII frame on an ArgStack: reserves on construction, pops (and clears)
/// on destruction — including when a JSException unwinds mid-argument-
/// evaluation.
class ArgFrame {
 public:
  ArgFrame(ArgStack& stack, std::size_t n) : stack_(stack), n_(n) {
    data_ = stack_.push(n, &mark_);
  }
  ~ArgFrame() { stack_.pop(mark_, data_, n_); }
  ArgFrame(const ArgFrame&) = delete;
  ArgFrame& operator=(const ArgFrame&) = delete;

  [[nodiscard]] Value* data() { return data_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] Args args() const { return Args(data_, n_); }

 private:
  ArgStack& stack_;
  Value* data_;
  std::size_t n_;
  ArgStack::Mark mark_;
};

}  // namespace jsceres::interp
