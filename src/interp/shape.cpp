#include "interp/shape.h"

#include "support/epoch.h"
#include "support/limits.h"

namespace jsceres::interp {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

/// Process-wide accounting for the governor: node + map-link cost per
/// shape, plus installed flat tables. Maintained by ctor/dtor (so a
/// recursive unique_ptr teardown during reclamation self-accounts) and by
/// the flat-table install CAS winner.
constexpr std::size_t kShapeNodeCost = sizeof(Shape) + 64;
std::atomic<std::size_t> g_shape_bytes{0};
std::atomic<std::size_t> g_shape_count{0};

}  // namespace

Shape::Shape() {
  g_shape_bytes.fetch_add(kShapeNodeCost, std::memory_order_relaxed);
  g_shape_count.fetch_add(1, std::memory_order_relaxed);
}

Shape::Shape(const Shape* parent, js::Atom key)
    : key_(key), slot_(parent->depth_), depth_(parent->depth_ + 1), parent_(parent) {
  g_shape_bytes.fetch_add(kShapeNodeCost, std::memory_order_relaxed);
  g_shape_count.fetch_add(1, std::memory_order_relaxed);
}

Shape::~Shape() {
  const FlatTable* flat = flat_.load(std::memory_order_acquire);
  if (flat != nullptr) {
    g_shape_bytes.fetch_sub(sizeof(FlatTable) +
                                flat->table.capacity() * sizeof(FlatTable::Entry) +
                                flat->keys.capacity() * sizeof(js::Atom),
                            std::memory_order_relaxed);
    delete flat;
  }
  g_shape_bytes.fetch_sub(kShapeNodeCost, std::memory_order_relaxed);
  g_shape_count.fetch_sub(1, std::memory_order_relaxed);
}

void Shape::FlatTable::insert(js::Atom key, std::int32_t slot) {
  std::size_t i = key.hash() & mask;
  while (table[i].slot >= 0) {
    if (table[i].key == key) return;  // duplicate key: first slot wins
    i = (i + 1) & mask;
  }
  table[i] = Entry{key, slot};
}

void Shape::FlatTable::rehash(std::size_t capacity) {
  table.assign(capacity, Entry{});
  mask = std::uint32_t(capacity - 1);
  for (std::size_t slot = 0; slot < keys.size(); ++slot) {
    insert(keys[slot], std::int32_t(slot));
  }
}

const Shape* Shape::root() {
  static const Shape* shape = new Shape();  // leaked: process lifetime
  return shape;
}

const Shape* Shape::transition(js::Atom key) const {
  const std::lock_guard lock(transitions_mutex_);
  auto& slot = transitions_[key];
  if (!slot) {
    // Charge the run that forces a fresh transition (the 10k-distinct-
    // property amplifier) through the thread-local ledger. A trip leaves
    // the empty map slot in place — retried transitions simply fill it
    // later.
    AllocationLedger::charge_current(sizeof(Shape) + 64);
    slot.reset(new Shape(this, key));
  }
  // Epoch stamp under this shape's mutex: the reclamation pass reads it
  // under the same mutex, so a racing prune either sees the fresh stamp or
  // finishes first (and this call recreates the child).
  slot->touch_epoch_.store(EpochDomain::global().current(),
                           std::memory_order_relaxed);
  return slot.get();
}

std::size_t Shape::reclaim_unused(std::uint64_t min_pinned) {
  const std::size_t before = g_shape_bytes.load(std::memory_order_relaxed);
  root()->prune_children(min_pinned);
  const std::size_t after = g_shape_bytes.load(std::memory_order_relaxed);
  return before > after ? before - after : 0;
}

std::size_t Shape::live_bytes() {
  return g_shape_bytes.load(std::memory_order_relaxed);
}

std::size_t Shape::live_count() {
  return g_shape_count.load(std::memory_order_relaxed);
}

void Shape::prune_children(std::uint64_t min_pinned) const {
  const std::lock_guard lock(transitions_mutex_);
  for (auto it = transitions_.begin(); it != transitions_.end();) {
    const Shape* child = it->second.get();
    // A null slot is a ledger-tripped transition() that never built its
    // shape (see transition()); the empty map entry is all there is to free.
    if (child == nullptr || child->subtree_touched_before(min_pinned)) {
      it = transitions_.erase(it);  // unique_ptr frees the whole subtree
    } else {
      child->prune_children(min_pinned);
      ++it;
    }
  }
}

bool Shape::subtree_touched_before(std::uint64_t min_pinned) const {
  if (touch_epoch_.load(std::memory_order_relaxed) >= min_pinned) return false;
  const std::lock_guard lock(transitions_mutex_);
  for (const auto& [key, child] : transitions_) {
    // Null slots (tripped transitions) hold nothing a session can reach.
    if (child != nullptr && !child->subtree_touched_before(min_pinned)) {
      return false;
    }
  }
  return true;
}

std::int32_t Shape::slot_of_slow(js::Atom key) const {
  const auto lookups =
      std::uint16_t(lookups_.fetch_add(1, std::memory_order_relaxed) + 1);
  const std::uint16_t threshold = depth_ > kDeepChain ? 2 : kHotFlattenLookups;
  if (lookups >= threshold) return ensure_flat()->find(key);
  // Ancestor walk: pointer-identity compares link by link; a flattened
  // ancestor answers for the whole prefix below it in one probe.
  for (const Shape* s = this; s->parent_ != nullptr; s = s->parent_) {
    if (s->key_ == key) return std::int32_t(s->slot_);
    const FlatTable* flat = s->parent_->flat_.load(std::memory_order_acquire);
    if (flat != nullptr) return flat->find(key);
  }
  return -1;
}

const Shape::FlatTable* Shape::ensure_flat() const {
  const FlatTable* existing = flat_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;

  // Charged before any table is built; on a trip the shape stays
  // un-flattened (a consistent state — lookups keep walking the chain and
  // retry the flatten later).
  const std::size_t table_bytes =
      sizeof(FlatTable) +
      next_pow2(std::size_t(depth_) * 2) * sizeof(FlatTable::Entry) +
      std::size_t(depth_) * sizeof(js::Atom);
  AllocationLedger::charge_current(table_bytes);
  auto fresh = std::make_unique<FlatTable>();
  // Collect the suffix links down to the nearest flattened ancestor; its
  // table is copied wholesale (vector memcpy) instead of re-walking and
  // re-hashing the entire chain.
  std::vector<const Shape*> suffix;
  const FlatTable* base = nullptr;
  for (const Shape* s = this; s->parent_ != nullptr; s = s->parent_) {
    suffix.push_back(s);
    base = s->parent_->flat_.load(std::memory_order_acquire);
    if (base != nullptr) break;
  }
  if (base != nullptr) *fresh = *base;
  fresh->keys.reserve(depth_);
  const std::size_t capacity = next_pow2(std::size_t(depth_) * 2);
  if (fresh->table.size() < capacity) {
    fresh->rehash(capacity);
  }
  for (auto it = suffix.rbegin(); it != suffix.rend(); ++it) {
    fresh->keys.push_back((*it)->key_);
    fresh->insert((*it)->key_, std::int32_t((*it)->slot_));
  }

  const FlatTable* expected = nullptr;
  if (flat_.compare_exchange_strong(expected, fresh.get(),
                                    std::memory_order_release,
                                    std::memory_order_acquire)) {
    g_shape_bytes.fetch_add(
        sizeof(FlatTable) + fresh->table.capacity() * sizeof(FlatTable::Entry) +
            fresh->keys.capacity() * sizeof(js::Atom),
        std::memory_order_relaxed);
    return fresh.release();
  }
  // Another thread won the install; ours is discarded — refund the charge.
  if (AllocationLedger* ledger = AllocationLedger::current()) {
    ledger->release(table_bytes);
  }
  return expected;
}

}  // namespace jsceres::interp
