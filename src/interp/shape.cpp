#include "interp/shape.h"

namespace jsceres::interp {

Shape::Shape(const Shape& parent, js::Atom key)
    : slot_map_(parent.slot_map_), keys_(parent.keys_) {
  slot_map_.emplace(key, std::uint32_t(keys_.size()));
  keys_.push_back(key);
}

const Shape* Shape::root() {
  static const Shape* shape = new Shape();  // leaked: process lifetime
  return shape;
}

const Shape* Shape::transition(js::Atom key) const {
  const std::lock_guard lock(transitions_mutex_);
  auto& slot = transitions_[key];
  if (!slot) slot.reset(new Shape(*this, key));
  return slot.get();
}

}  // namespace jsceres::interp
