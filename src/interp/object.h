#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/hooks.h"
#include "interp/value.h"

namespace jsceres::js {
struct FunctionNode;
}

namespace jsceres::interp {

class Interpreter;
class Environment;
using EnvPtr = std::shared_ptr<Environment>;

/// Signature of C++-implemented builtins and substrate bindings.
using NativeFn =
    std::function<Value(Interpreter&, const Value& this_val, const std::vector<Value>& args)>;

/// Payload attached to objects that front a host-substrate entity (DOM
/// element, canvas context, ...). The DOM module subclasses this. Property
/// touches on host-backed objects are reported to the instrumentation under
/// `category()` — this is how the study detects DOM/Canvas access inside
/// loops (Table 3, column 6).
struct HostData {
  virtual ~HostData() = default;
  [[nodiscard]] virtual HostAccess category() const { return HostAccess::Dom; }
};

/// Closure / native-function payload of callable objects.
struct FunctionData {
  const js::FunctionNode* decl = nullptr;  // null for native functions
  EnvPtr closure;                          // captured scope for JS functions
  NativeFn native;                         // set for native functions
  std::string name;
  int fn_id = 0;  // 0 for natives (they don't appear in sampled JS stacks)
};

/// A JavaScript heap object. One representation serves plain objects,
/// arrays (dense element storage fast path) and functions.
class JSObject {
 public:
  enum class Cls : std::uint8_t { Plain, Array, Function };

  explicit JSObject(std::uint64_t id, Cls cls = Cls::Plain) : id_(id), cls_(cls) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] Cls cls() const { return cls_; }
  [[nodiscard]] bool is_array() const { return cls_ == Cls::Array; }
  [[nodiscard]] bool is_function() const { return cls_ == Cls::Function; }

  // --- named properties (own only; prototype walk is in the interpreter) ---

  [[nodiscard]] const Value* own_property(const std::string& key) const {
    const auto it = props_.find(key);
    return it == props_.end() ? nullptr : &it->second;
  }
  void set_property(const std::string& key, Value value) {
    const auto [it, inserted] = props_.insert_or_assign(key, std::move(value));
    (void)it;
    if (inserted) key_order_.push_back(key);
  }
  bool delete_property(const std::string& key) {
    if (props_.erase(key) == 0) return false;
    std::erase(key_order_, key);
    return true;
  }
  /// Own property names in insertion order (deterministic for-in /
  /// Object.keys, matching the de-facto JS enumeration contract).
  [[nodiscard]] const std::vector<std::string>& key_order() const {
    return key_order_;
  }

  // --- dense array elements ---

  [[nodiscard]] std::vector<Value>& elements() { return elements_; }
  [[nodiscard]] const std::vector<Value>& elements() const { return elements_; }

  // --- prototype chain ---

  [[nodiscard]] const ObjPtr& prototype() const { return prototype_; }
  void set_prototype(ObjPtr proto) { prototype_ = std::move(proto); }

  // --- callable payload ---

  [[nodiscard]] FunctionData* function() { return fn_.get(); }
  [[nodiscard]] const FunctionData* function() const { return fn_.get(); }
  void set_function(std::unique_ptr<FunctionData> fn) { fn_ = std::move(fn); }

  // --- host payload ---

  [[nodiscard]] const std::shared_ptr<HostData>& host() const { return host_; }
  void set_host(std::shared_ptr<HostData> host) { host_ = std::move(host); }

  template <typename T>
  [[nodiscard]] T* host_as() const {
    return dynamic_cast<T*>(host_.get());
  }

 private:
  std::uint64_t id_;
  Cls cls_;
  ObjPtr prototype_;
  std::unordered_map<std::string, Value> props_;
  std::vector<std::string> key_order_;
  std::vector<Value> elements_;
  std::unique_ptr<FunctionData> fn_;
  std::shared_ptr<HostData> host_;
};

}  // namespace jsceres::interp
