#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/args.h"
#include "interp/environment.h"
#include "interp/hooks.h"
#include "interp/shape.h"
#include "interp/value.h"
#include "js/atom.h"
#include "support/limits.h"

namespace jsceres::js {
struct FunctionNode;
}

namespace jsceres::interp {

class Interpreter;

/// Signature of C++-implemented builtins and substrate bindings. `args` is
/// a borrowed view (see Args): for interpreter-originated calls it points
/// into the reused argument stack, so no per-call vector is materialized.
using NativeFn =
    std::function<Value(Interpreter&, const Value& this_val, const Args& args)>;

/// Payload attached to objects that front a host-substrate entity (DOM
/// element, canvas context, ...). The DOM module subclasses this. Property
/// touches on host-backed objects are reported to the instrumentation under
/// `category()` — this is how the study detects DOM/Canvas access inside
/// loops (Table 3, column 6).
struct HostData {
  virtual ~HostData() = default;
  [[nodiscard]] virtual HostAccess category() const { return HostAccess::Dom; }
};

/// Closure / native-function payload of callable objects.
struct FunctionData {
  const js::FunctionNode* decl = nullptr;  // null for native functions
  EnvPtr closure;                          // captured scope for JS functions
  NativeFn native;                         // set for native functions
  std::string name;
  int fn_id = 0;  // 0 for natives (they don't appear in sampled JS stacks)
};

/// A JavaScript heap object. One representation serves plain objects,
/// arrays (dense element storage fast path) and functions.
///
/// Named properties live in shape mode by default: the object's `Shape`
/// (hidden class) maps interned keys to indices into a dense `prop_slots_`
/// vector, so a property-access site that has seen this shape before reads
/// its slot with one pointer compare and one indexed load. `delete`
/// transitions the object to dictionary mode (atom-keyed hash map), which
/// inline caches simply never match.
class JSObject {
 public:
  enum class Cls : std::uint8_t { Plain, Array, Function };

  explicit JSObject(std::uint64_t id, Cls cls = Cls::Plain) : id_(id), cls_(cls) {
    // Sandbox accounting: every heap object charges the active run's ledger
    // (nullptr outside a run — prototypes and stdlib objects built during
    // interpreter construction form an uncharged baseline). Throwing here is
    // clean: make_shared releases the allocation and nothing was published.
    AllocationLedger::charge_current(sizeof(JSObject) + 64);
  }

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] Cls cls() const { return cls_; }
  [[nodiscard]] bool is_array() const { return cls_ == Cls::Array; }
  [[nodiscard]] bool is_function() const { return cls_ == Cls::Function; }

  // --- named properties (own only; prototype walk is in the interpreter) ---

  [[nodiscard]] const Value* own_property(js::Atom key) const {
    if (dict_ == nullptr) {
      const std::int32_t slot = shape_->slot_of(key);
      return slot < 0 ? nullptr : &prop_slots_[std::size_t(slot)];
    }
    const auto it = dict_->map.find(key);
    return it == dict_->map.end() ? nullptr : &it->second;
  }
  /// String-keyed probe: every stored key is interned, so a string that was
  /// never interned cannot name a property.
  [[nodiscard]] const Value* own_property(const std::string& key) const {
    js::Atom atom;
    return js::Atom::try_find(key, &atom) ? own_property(atom) : nullptr;
  }

  void set_property(js::Atom key, Value value) {
    if (dict_ == nullptr) {
      const std::int32_t slot = shape_->slot_of(key);
      if (slot >= 0) {
        prop_slots_[std::size_t(slot)] = std::move(value);
        return;
      }
      // Charge-before-mutate, and store the slot before publishing the new
      // shape: a ledger trip at either point leaves shape_ and prop_slots_
      // still consistent with each other.
      const Shape* next = shape_->transition(key);
      AllocationLedger::charge_current(sizeof(Value));
      prop_slots_.push_back(std::move(value));
      shape_ = next;
      return;
    }
    const auto it = dict_->map.find(key);
    if (it != dict_->map.end()) {
      it->second = std::move(value);
      return;
    }
    AllocationLedger::charge_current(sizeof(Value) + sizeof(js::Atom) + 48);
    dict_->map.emplace(key, std::move(value));
    dict_->order.push_back(key);
  }
  void set_property(const std::string& key, Value value) {
    set_property(js::Atom::intern(key), std::move(value));
  }

  bool delete_property(js::Atom key) {
    if (dict_ == nullptr) {
      if (shape_->slot_of(key) < 0) return false;
      to_dictionary();
    }
    if (dict_->map.erase(key) == 0) return false;
    std::erase(dict_->order, key);
    return true;
  }
  bool delete_property(const std::string& key) {
    js::Atom atom;
    return js::Atom::try_find(key, &atom) && delete_property(atom);
  }

  /// Own property names in insertion order (deterministic for-in /
  /// Object.keys, matching the de-facto JS enumeration contract).
  [[nodiscard]] const std::vector<js::Atom>& key_order() const {
    return dict_ == nullptr ? shape_->keys() : dict_->order;
  }

  // --- inline-cache protocol (shape mode only) ---

  /// Current hidden class, or nullptr in dictionary mode (never IC-cached).
  [[nodiscard]] const Shape* shape() const {
    return dict_ == nullptr ? shape_ : nullptr;
  }
  [[nodiscard]] Value* prop_slot(std::uint32_t index) {
    return &prop_slots_[index];
  }
  /// Append the value for a property-add transition already computed by an
  /// inline cache: `new_shape` must be `shape()->transition(key)`.
  void append_prop(const Shape* new_shape, Value value) {
    AllocationLedger::charge_current(sizeof(Value));
    prop_slots_.push_back(std::move(value));
    shape_ = new_shape;
  }

  // --- dense array elements ---

  [[nodiscard]] std::vector<Value>& elements() { return elements_; }
  [[nodiscard]] const std::vector<Value>& elements() const { return elements_; }

  // --- prototype chain ---

  [[nodiscard]] const ObjPtr& prototype() const { return prototype_; }
  void set_prototype(ObjPtr proto) { prototype_ = std::move(proto); }

  // --- callable payload ---

  [[nodiscard]] FunctionData* function() { return fn_.get(); }
  [[nodiscard]] const FunctionData* function() const { return fn_.get(); }
  void set_function(std::unique_ptr<FunctionData> fn) { fn_ = std::move(fn); }

  /// Drop every outgoing strong edge (properties, elements, prototype link,
  /// callable payload). The builtin prototype web is refcount-cyclic — a
  /// prototype owns its native methods, and each method's [[prototype]] link
  /// leads back into the web through Function.prototype — so ~Interpreter
  /// severs the roots explicitly. Objects a caller still holds afterwards
  /// stay valid but see an emptied prototype chain.
  void sever_for_teardown() noexcept {
    prop_slots_.clear();
    dict_.reset();
    elements_.clear();
    prototype_.reset();
    fn_.reset();
    shape_ = Shape::root();
  }

  // --- host payload ---

  [[nodiscard]] const std::shared_ptr<HostData>& host() const { return host_; }
  void set_host(std::shared_ptr<HostData> host) { host_ = std::move(host); }

  template <typename T>
  [[nodiscard]] T* host_as() const {
    return dynamic_cast<T*>(host_.get());
  }

 private:
  struct Dict {
    std::unordered_map<js::Atom, Value> map;
    std::vector<js::Atom> order;
  };

  void to_dictionary() {
    AllocationLedger::charge_current(shape_->keys().size() *
                                     (sizeof(Value) + sizeof(js::Atom) + 48));
    auto dict = std::make_unique<Dict>();
    dict->order = shape_->keys();
    dict->map.reserve(dict->order.size());
    for (std::size_t i = 0; i < dict->order.size(); ++i) {
      dict->map.emplace(dict->order[i], std::move(prop_slots_[i]));
    }
    prop_slots_.clear();
    shape_ = Shape::root();
    dict_ = std::move(dict);
  }

  std::uint64_t id_;
  Cls cls_;
  ObjPtr prototype_;
  const Shape* shape_ = Shape::root();
  std::vector<Value> prop_slots_;
  std::unique_ptr<Dict> dict_;  // non-null == dictionary mode
  std::vector<Value> elements_;
  std::unique_ptr<FunctionData> fn_;
  std::shared_ptr<HostData> host_;
};

}  // namespace jsceres::interp
