#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/value.h"

namespace jsceres::interp {

class Environment;
using EnvPtr = std::shared_ptr<Environment>;

/// A function-scope environment record. JavaScript (ES5) has *function*
/// scoping: one environment is created per call, holding the parameters and
/// every `var` hoisted from the body — regardless of where the `var` appears
/// textually. This is exactly the semantics the paper's Fig. 6 relies on
/// (`var p` inside a loop body is one binding shared by all iterations).
///
/// Each environment carries a process-unique id; the dependence analyzer
/// stamps the id with the loop-characterization stack current at creation.
class Environment {
 public:
  Environment(std::uint64_t id, EnvPtr parent)
      : id_(id), parent_(std::move(parent)) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const EnvPtr& parent() const { return parent_; }

  /// Declare (or re-declare, a no-op) a binding in this environment.
  void declare(const std::string& name, Value value) {
    const auto it = names_.find(name);
    if (it != names_.end()) {
      slots_[it->second] = std::move(value);
      return;
    }
    names_.emplace(name, std::uint32_t(slots_.size()));
    slots_.push_back(std::move(value));
  }

  [[nodiscard]] bool has_own(const std::string& name) const {
    return names_.find(name) != names_.end();
  }

  /// Slot of an own binding, or nullptr.
  [[nodiscard]] Value* own_slot(const std::string& name) {
    const auto it = names_.find(name);
    return it == names_.end() ? nullptr : &slots_[it->second];
  }

  /// Resolve a name through the scope chain. Returns the owning environment
  /// (for provenance stamping) and the slot, or {nullptr, nullptr}.
  struct Resolution {
    Environment* env = nullptr;
    Value* slot = nullptr;
  };
  Resolution resolve(const std::string& name) {
    for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
      if (Value* slot = env->own_slot(name)) return {env, slot};
    }
    return {};
  }

  // `this` binding of the activation this environment belongs to.
  void set_this(Value this_val) {
    this_val_ = std::move(this_val);
    has_this_ = true;
  }
  /// The `this` value, walking outward to the nearest activation that set one.
  [[nodiscard]] const Value* this_value() const {
    const Environment* env = this_env();
    return env == nullptr ? nullptr : &env->this_val_;
  }

  /// The activation environment owning the current `this` binding; used by
  /// the dependence analysis to stamp `this.foo` accesses.
  [[nodiscard]] const Environment* this_env() const {
    for (const Environment* env = this; env != nullptr; env = env->parent_.get()) {
      if (env->has_this_) return env;
    }
    return nullptr;
  }

  void reserve(std::size_t n) {
    names_.reserve(n);
    slots_.reserve(n);
  }

 private:
  std::uint64_t id_;
  EnvPtr parent_;
  std::unordered_map<std::string, std::uint32_t> names_;
  std::vector<Value> slots_;
  Value this_val_;
  bool has_this_ = false;
};

}  // namespace jsceres::interp
