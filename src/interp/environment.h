#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interp/value.h"
#include "js/atom.h"
#include "support/limits.h"

namespace jsceres::interp {

class Environment;
class EnvPool;

/// Intrusive, non-atomic reference-counted handle to an Environment.
///
/// Activation environments are created once per JS call — the hottest
/// allocation in call-dominated code (BM_InterpretCalls). A shared_ptr paid
/// one control-block allocation per call plus atomic refcount traffic, and
/// destroying the Environment threw away its map buckets and slot capacity.
/// The intrusive count lives in the Environment itself (the interpreter is
/// single-threaded by construction, so the count is a plain integer), and
/// the final release hands the object back to the interpreter's EnvPool for
/// reuse instead of freeing it.
class EnvPtr {
 public:
  EnvPtr() = default;
  EnvPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  explicit EnvPtr(Environment* env);
  EnvPtr(const EnvPtr& other);
  EnvPtr(EnvPtr&& other) noexcept : env_(other.env_) { other.env_ = nullptr; }
  EnvPtr& operator=(const EnvPtr& other) {
    EnvPtr(other).swap(*this);
    return *this;
  }
  EnvPtr& operator=(EnvPtr&& other) noexcept {
    EnvPtr(std::move(other)).swap(*this);
    return *this;
  }
  ~EnvPtr();

  void swap(EnvPtr& other) noexcept { std::swap(env_, other.env_); }
  void reset() { EnvPtr().swap(*this); }
  [[nodiscard]] Environment* get() const { return env_; }
  Environment* operator->() const { return env_; }
  Environment& operator*() const { return *env_; }
  [[nodiscard]] explicit operator bool() const { return env_ != nullptr; }
  friend bool operator==(const EnvPtr& a, const EnvPtr& b) { return a.env_ == b.env_; }
  friend bool operator==(const EnvPtr& a, std::nullptr_t) { return a.env_ == nullptr; }

 private:
  Environment* env_ = nullptr;
};

/// A function-scope environment record. JavaScript (ES5) has *function*
/// scoping: one environment is created per call, holding the parameters and
/// every `var` hoisted from the body — regardless of where the `var` appears
/// textually. This is exactly the semantics the paper's Fig. 6 relies on
/// (`var p` inside a loop body is one binding shared by all iterations).
///
/// Bindings are keyed by interned atoms (js::Atom) in a flat name vector
/// parallel to the slot vector (index == slot). Function scopes hold a
/// handful of names, so a linear scan of pointer-identity compares beats a
/// hash map — and unlike map nodes, the vectors' capacity survives
/// clear_for_reuse(), which is what makes pooled activations allocation-free
/// in steady state. Statically resolved references (js::SlotRef) index
/// `slots_` directly without touching the names at all; the scan only runs
/// on declare and on the dynamic-resolution fallback.
///
/// Each environment carries a process-unique id; the dependence analyzer
/// stamps the id with the loop-characterization stack current at creation.
class Environment {
 public:
  Environment(std::uint64_t id, EnvPtr parent)
      : id_(id), parent_(std::move(parent)) {}

  /// Rebind a recycled environment to a new activation. The name and slot
  /// vectors keep their capacity across reuse — the whole point of pooling
  /// (see EnvPool).
  void rebind(std::uint64_t id, EnvPtr parent) {
    id_ = id;
    parent_ = std::move(parent);
  }

  /// Drop activation state before the environment parks in the free list,
  /// so captured objects and parent scopes are released promptly.
  void clear_for_reuse() {
    names_.clear();   // keeps capacity
    slots_.clear();   // keeps capacity
    parent_.reset();  // may recursively recycle the parent chain
    this_val_ = Value();
    has_this_ = false;
  }

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const EnvPtr& parent() const { return parent_; }

  /// Stamp this (fresh or recycled) activation from a pre-resolved layout:
  /// the name vector is copied wholesale and each slot is constructed
  /// exactly once from `init_at(slot)` — no per-name duplicate scan, and no
  /// zero-then-overwrite for slots the resolver proved are written at entry
  /// (parameters, hoisted functions; see js::ActivationLayout::inits). The
  /// vector assignments reuse the pooled environment's capacity, so a
  /// steady-state call allocates nothing.
  template <typename InitAt>
  void adopt_layout(const std::vector<js::Atom>& names, InitAt&& init_at) {
    names_ = names;
    slots_.clear();  // keeps capacity
    slots_.reserve(names.size());
    for (std::size_t slot = 0; slot < names.size(); ++slot) {
      slots_.push_back(init_at(slot));
    }
  }

  /// Declare (or re-declare, reusing the slot) a binding in this environment.
  void declare(js::Atom name, Value value) {
    const std::int64_t index = find(name);
    if (index >= 0) {
      slots_[std::size_t(index)] = std::move(value);
      return;
    }
    names_.push_back(name);
    slots_.push_back(std::move(value));
  }

  [[nodiscard]] bool has_own(js::Atom name) const { return find(name) >= 0; }

  /// Slot of an own binding, or nullptr.
  [[nodiscard]] Value* own_slot(js::Atom name) {
    const std::int64_t index = find(name);
    return index < 0 ? nullptr : &slots_[std::size_t(index)];
  }
  /// String-keyed convenience for hosts/tests: a name that was never
  /// interned cannot be bound.
  [[nodiscard]] Value* own_slot(const std::string& name) {
    js::Atom atom;
    return js::Atom::try_find(name, &atom) ? own_slot(atom) : nullptr;
  }

  /// Slot index of an own binding, or -1. Indices are stable for the
  /// lifetime of the environment (bindings are never removed), which is what
  /// makes the interpreter's global-reference cache sound.
  [[nodiscard]] std::int64_t slot_index(js::Atom name) const { return find(name); }

  /// Direct slot access for statically resolved references.
  [[nodiscard]] Value* slot_at(std::uint32_t index) { return &slots_[index]; }

  /// The environment `hops` levels up the chain (0 == this).
  [[nodiscard]] Environment* ancestor(std::int32_t hops) {
    Environment* env = this;
    for (; hops > 0; --hops) env = env->parent_.get();
    return env;
  }

  /// Resolve a name through the scope chain. Returns the owning environment
  /// (for provenance stamping) and the slot, or {nullptr, nullptr}. This is
  /// the dynamic fallback; statically resolved references bypass it.
  struct Resolution {
    Environment* env = nullptr;
    Value* slot = nullptr;
  };
  Resolution resolve(js::Atom name) {
    for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
      if (Value* slot = env->own_slot(name)) return {env, slot};
    }
    return {};
  }

  // `this` binding of the activation this environment belongs to.
  void set_this(Value this_val) {
    this_val_ = std::move(this_val);
    has_this_ = true;
  }
  /// The `this` value, walking outward to the nearest activation that set one.
  [[nodiscard]] const Value* this_value() const {
    const Environment* env = this_env();
    return env == nullptr ? nullptr : &env->this_val_;
  }

  /// The activation environment owning the current `this` binding; used by
  /// the dependence analysis to stamp `this.foo` accesses.
  [[nodiscard]] const Environment* this_env() const {
    for (const Environment* env = this; env != nullptr; env = env->parent_.get()) {
      if (env->has_this_) return env;
    }
    return nullptr;
  }

  void reserve(std::size_t n) {
    names_.reserve(n);
    slots_.reserve(n);
  }

 private:
  friend class EnvPtr;
  friend class EnvPool;

  void add_ref() { ++refs_; }
  void drop_ref();  // recycles via pool_ on last release (defined below)

  /// Index of `name`, or -1. Pointer-identity compares over a flat array.
  [[nodiscard]] std::int64_t find(js::Atom name) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return std::int64_t(i);
    }
    return -1;
  }

  std::uint64_t id_;
  EnvPtr parent_;
  std::vector<js::Atom> names_;  // names_[i] owns slots_[i]
  std::vector<Value> slots_;
  Value this_val_;
  bool has_this_ = false;
  std::uint32_t refs_ = 0;
  std::uint32_t pool_index_ = 0;  // position in EnvPool::all_
  EnvPool* pool_ = nullptr;
};

/// Per-interpreter free list of activation environments.
///
/// acquire() reuses a parked environment — rebinding it instead of paying
/// make_shared + fresh hash-map + fresh slot vector per call — and release()
/// parks up to kMaxFree of them. Environments can outlive their interpreter
/// (a test may hold a function Value whose closure chain roots here), so the
/// pool is detach-then-self-delete: the interpreter detaches in its
/// destructor, after which stragglers are freed instead of parked and the
/// pool deletes itself once the last one goes.
class EnvPool {
 public:
  /// Environments parked for reuse; beyond this, release() just frees.
  static constexpr std::size_t kMaxFree = 256;

  EnvPool() = default;
  EnvPool(const EnvPool&) = delete;
  EnvPool& operator=(const EnvPool&) = delete;

  /// A recycled-or-new environment bound to (id, parent), owned by the
  /// returned handle.
  EnvPtr acquire(std::uint64_t id, EnvPtr parent) {
    Environment* env;
    if (!free_.empty()) {
      env = free_.back();
      free_.pop_back();
      env->rebind(id, std::move(parent));
    } else {
      // Sandbox accounting: a fresh activation charges the active run's
      // ledger before allocating; recycled activations were already paid
      // for. Charge-first keeps live_ exact when the ledger trips.
      AllocationLedger::charge_current(sizeof(Environment) + 64);
      env = new Environment(id, std::move(parent));
      env->pool_ = this;
      env->pool_index_ = std::uint32_t(all_.size());
      all_.push_back(env);
    }
    ++live_;
    return EnvPtr(env);
  }

  /// Owner (the interpreter) is going away: free the parked list, sever
  /// closure <-> activation refcount cycles, stop caching, and self-delete
  /// once the last live environment releases.
  ///
  /// The cycle: a nested function declaration's FunctionData::closure holds
  /// an EnvPtr to the activation whose slot stores the function object, so
  /// neither refcount can reach zero and every such activation would leak.
  /// The sweep pins every environment the pool ever handed out (so clearing
  /// one cannot delete another mid-pass), drops their bindings, then lets
  /// the pins drain: cycle-only environments free through recycle(), while
  /// environments a caller still holds stay valid but emptied.
  void detach() {
    detached_ = true;
    for (Environment* env : free_) forget_and_delete(env);
    free_.clear();
    ++recycle_depth_;  // keep the self-delete out of the pin releases
    {
      std::vector<EnvPtr> pins;
      pins.reserve(all_.size());
      for (Environment* env : all_) pins.emplace_back(EnvPtr(env));
      for (const EnvPtr& pin : pins) pin->clear_for_reuse();
    }
    --recycle_depth_;
    if (live_ == 0) delete this;
  }

 private:
  friend class Environment;

  void recycle(Environment* env) {
    // Parking (clear_for_reuse) and freeing both release the environment's
    // parent chain, re-entering recycle for ancestors. The depth counter
    // keeps the detached-pool self-delete at the OUTERMOST frame only:
    // without it, an inner frame that drives live_ to 0 would free the pool
    // while outer frames still hold `this`.
    ++recycle_depth_;
    --live_;
    if (!detached_ && free_.size() < kMaxFree) {
      env->clear_for_reuse();
      free_.push_back(env);
    } else {
      forget_and_delete(env);
    }
    --recycle_depth_;
    if (detached_ && live_ == 0 && recycle_depth_ == 0) delete this;
  }

  /// Swap-remove from the all-environments registry, then free.
  void forget_and_delete(Environment* env) {
    const std::uint32_t index = env->pool_index_;
    all_[index] = all_.back();
    all_[index]->pool_index_ = index;
    all_.pop_back();
    delete env;
  }

  std::vector<Environment*> all_;  // everything handed out and still alive
  std::vector<Environment*> free_;
  std::size_t live_ = 0;
  int recycle_depth_ = 0;
  bool detached_ = false;
};

inline EnvPtr::EnvPtr(Environment* env) : env_(env) {
  if (env_ != nullptr) env_->add_ref();
}
inline EnvPtr::EnvPtr(const EnvPtr& other) : env_(other.env_) {
  if (env_ != nullptr) env_->add_ref();
}
inline EnvPtr::~EnvPtr() {
  if (env_ != nullptr) env_->drop_ref();
}
inline void Environment::drop_ref() {
  if (--refs_ == 0) pool_->recycle(this);
}

}  // namespace jsceres::interp
