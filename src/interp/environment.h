#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/value.h"
#include "js/atom.h"

namespace jsceres::interp {

class Environment;
using EnvPtr = std::shared_ptr<Environment>;

/// A function-scope environment record. JavaScript (ES5) has *function*
/// scoping: one environment is created per call, holding the parameters and
/// every `var` hoisted from the body — regardless of where the `var` appears
/// textually. This is exactly the semantics the paper's Fig. 6 relies on
/// (`var p` inside a loop body is one binding shared by all iterations).
///
/// Bindings are keyed by interned atoms (js::Atom): name maps reuse the
/// atom's precomputed hash, and the slot index assigned to a name never
/// changes, so statically resolved references (js::SlotRef) index `slots_`
/// directly without touching the map at all.
///
/// Each environment carries a process-unique id; the dependence analyzer
/// stamps the id with the loop-characterization stack current at creation.
class Environment {
 public:
  Environment(std::uint64_t id, EnvPtr parent)
      : id_(id), parent_(std::move(parent)) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const EnvPtr& parent() const { return parent_; }

  /// Declare (or re-declare, reusing the slot) a binding in this environment.
  void declare(js::Atom name, Value value) {
    const auto it = names_.find(name);
    if (it != names_.end()) {
      slots_[it->second] = std::move(value);
      return;
    }
    names_.emplace(name, std::uint32_t(slots_.size()));
    slots_.push_back(std::move(value));
  }

  [[nodiscard]] bool has_own(js::Atom name) const {
    return names_.find(name) != names_.end();
  }

  /// Slot of an own binding, or nullptr.
  [[nodiscard]] Value* own_slot(js::Atom name) {
    const auto it = names_.find(name);
    return it == names_.end() ? nullptr : &slots_[it->second];
  }
  /// String-keyed convenience for hosts/tests: a name that was never
  /// interned cannot be bound.
  [[nodiscard]] Value* own_slot(const std::string& name) {
    js::Atom atom;
    return js::Atom::try_find(name, &atom) ? own_slot(atom) : nullptr;
  }

  /// Slot index of an own binding, or -1. Indices are stable for the
  /// lifetime of the environment (bindings are never removed), which is what
  /// makes the interpreter's global-reference cache sound.
  [[nodiscard]] std::int64_t slot_index(js::Atom name) const {
    const auto it = names_.find(name);
    return it == names_.end() ? -1 : std::int64_t(it->second);
  }

  /// Direct slot access for statically resolved references.
  [[nodiscard]] Value* slot_at(std::uint32_t index) { return &slots_[index]; }

  /// The environment `hops` levels up the chain (0 == this).
  [[nodiscard]] Environment* ancestor(std::int32_t hops) {
    Environment* env = this;
    for (; hops > 0; --hops) env = env->parent_.get();
    return env;
  }

  /// Resolve a name through the scope chain. Returns the owning environment
  /// (for provenance stamping) and the slot, or {nullptr, nullptr}. This is
  /// the dynamic fallback; statically resolved references bypass it.
  struct Resolution {
    Environment* env = nullptr;
    Value* slot = nullptr;
  };
  Resolution resolve(js::Atom name) {
    for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
      if (Value* slot = env->own_slot(name)) return {env, slot};
    }
    return {};
  }

  // `this` binding of the activation this environment belongs to.
  void set_this(Value this_val) {
    this_val_ = std::move(this_val);
    has_this_ = true;
  }
  /// The `this` value, walking outward to the nearest activation that set one.
  [[nodiscard]] const Value* this_value() const {
    const Environment* env = this_env();
    return env == nullptr ? nullptr : &env->this_val_;
  }

  /// The activation environment owning the current `this` binding; used by
  /// the dependence analysis to stamp `this.foo` accesses.
  [[nodiscard]] const Environment* this_env() const {
    for (const Environment* env = this; env != nullptr; env = env->parent_.get()) {
      if (env->has_this_) return env;
    }
    return nullptr;
  }

  void reserve(std::size_t n) {
    names_.reserve(n);
    slots_.reserve(n);
  }

 private:
  std::uint64_t id_;
  EnvPtr parent_;
  std::unordered_map<js::Atom, std::uint32_t> names_;
  std::vector<Value> slots_;
  Value this_val_;
  bool has_this_ = false;
};

}  // namespace jsceres::interp
