#pragma once

#include <cstdint>

namespace jsceres {

/// Deterministic xoshiro256** PRNG.
///
/// Everything in the reproduction that needs randomness (workload inputs,
/// Math.random inside the JS engine, survey free-text synthesis) draws from a
/// seeded instance of this generator so that every table and figure is
/// bit-reproducible across runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return double(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_between(std::int64_t lo, std::int64_t hi) {
    return lo + std::int64_t(next_below(std::uint64_t(hi - lo + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace jsceres
