#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "support/obs.h"

namespace jsceres {

/// What the governor tells the admission path to do with a new session.
enum class AdmitDecision : std::uint8_t {
  Admit,    // pressure low: run at the requested mode
  Degrade,  // pressure high: run, but at a cheaper instrumentation mode
  Shed,     // at/over ceiling: reject with a structured SHED, do not queue
};

inline const char* to_string(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::Admit:
      return "admit";
    case AdmitDecision::Degrade:
      return "degrade";
    case AdmitDecision::Shed:
      return "shed";
  }
  return "?";
}

/// Process-wide memory governor for the resident service. Rolls the
/// per-session AllocationLedger charges (reserved up front at admission,
/// reconciled against the attempt's real high-water mark on release) plus
/// the process-lifetime shared structures (atom table, shape tree, stamp
/// segments — reported by the caller, since support/ cannot depend on the
/// structures it governs) into one pressure number against a hard ceiling:
///
///   pressure = (reserved session bytes + shared structure bytes) / ceiling
///
/// Policy is *newest first*: sessions already admitted keep their
/// reservation; it is the incoming session that degrades (pressure >=
/// degrade_pressure) or is shed (pressure >= shed_pressure, or the
/// reservation itself would cross the ceiling). That gives the overload
/// behavior the paper's server scenario needs — bounded memory with graceful
/// degradation instead of an OOM kill taking down every tenant at once.
class MemoryGovernor {
 public:
  struct Options {
    /// Hard ceiling on reserved + shared bytes. 0: governor disabled
    /// (everything admits; pressure reads 0).
    std::size_t ceiling_bytes = 0;
    /// Pressure at which new sessions degrade to a cheaper mode.
    double degrade_pressure = 0.75;
    /// Pressure at which new sessions are shed outright.
    double shed_pressure = 0.92;
  };

  // Two constructors instead of one defaulted argument: a default argument
  // of nested-class type cannot use that class's member initializers until
  // the enclosing class is complete (GCC enforces this strictly).
  MemoryGovernor() : MemoryGovernor(Options{}) {}
  explicit MemoryGovernor(Options options) : options_(options) {}

  /// Decide what to do with a session asking to reserve `estimate` bytes,
  /// given `shared_bytes` currently held by the process-wide structures.
  /// Admit/Degrade take the reservation (call release() when the session
  /// ends); Shed takes nothing.
  AdmitDecision admit(std::size_t estimate, std::size_t shared_bytes) {
    const std::lock_guard lock(mutex_);
    if (options_.ceiling_bytes == 0) {
      reserved_ += estimate;
      note_high_water(shared_bytes);
      JSCERES_OBS_COUNT("governor.admit", 1);
      return AdmitDecision::Admit;
    }
    const std::size_t in_use = reserved_ + shared_bytes;
    const auto pressure =
        double(in_use + estimate) / double(options_.ceiling_bytes);
    // Pressure-band occupancy: every admission decision counts into the
    // band it landed in, and the gauge tracks the last observed pressure
    // (percent, so the integer gauge keeps two digits of resolution).
    JSCERES_OBS_GAUGE_SET("governor.pressure_pct",
                          std::int64_t(pressure * 100.0));
    if (pressure >= options_.shed_pressure ||
        in_use + estimate > options_.ceiling_bytes) {
      ++shed_count_;
      JSCERES_OBS_COUNT("governor.shed", 1);
      return AdmitDecision::Shed;
    }
    reserved_ += estimate;
    note_high_water(shared_bytes);
    if (pressure >= options_.degrade_pressure) {
      ++degrade_count_;
      JSCERES_OBS_COUNT("governor.degrade", 1);
      return AdmitDecision::Degrade;
    }
    JSCERES_OBS_COUNT("governor.admit", 1);
    return AdmitDecision::Admit;
  }

  /// Return a reservation. `actual_peak` is the session's measured ledger
  /// high-water mark; the gap between estimate and reality feeds the
  /// estimate_error high-water diagnostic.
  void release(std::size_t estimate, std::size_t actual_peak) {
    const std::lock_guard lock(mutex_);
    reserved_ -= std::min(reserved_, estimate);
    if (actual_peak > estimate) {
      max_underestimate_ =
          std::max(max_underestimate_, actual_peak - estimate);
      JSCERES_OBS_GAUGE_SET("governor.max_underestimate_bytes",
                            max_underestimate_);
    }
  }

  /// Current pressure in [0, 1+] for diagnostics; 0 when disabled.
  [[nodiscard]] double pressure(std::size_t shared_bytes) const {
    const std::lock_guard lock(mutex_);
    if (options_.ceiling_bytes == 0) return 0.0;
    return double(reserved_ + shared_bytes) / double(options_.ceiling_bytes);
  }

  [[nodiscard]] std::size_t reserved_bytes() const {
    const std::lock_guard lock(mutex_);
    return reserved_;
  }
  /// Highest reserved + shared total ever observed at an admission.
  [[nodiscard]] std::size_t high_water_bytes() const {
    const std::lock_guard lock(mutex_);
    return high_water_;
  }
  [[nodiscard]] std::size_t shed_count() const {
    const std::lock_guard lock(mutex_);
    return shed_count_;
  }
  [[nodiscard]] std::size_t degrade_count() const {
    const std::lock_guard lock(mutex_);
    return degrade_count_;
  }
  /// Largest (actual peak - estimate) gap seen: how badly callers
  /// under-reserve. Feed this back into memory_estimate defaults.
  [[nodiscard]] std::size_t max_underestimate() const {
    const std::lock_guard lock(mutex_);
    return max_underestimate_;
  }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void note_high_water(std::size_t shared_bytes) {
    high_water_ = std::max(high_water_, reserved_ + shared_bytes);
  }

  Options options_;
  mutable std::mutex mutex_;
  std::size_t reserved_ = 0;
  std::size_t high_water_ = 0;
  std::size_t shed_count_ = 0;
  std::size_t degrade_count_ = 0;
  std::size_t max_underestimate_ = 0;
};

}  // namespace jsceres
