#pragma once

#include <string>
#include <vector>

namespace jsceres {

/// Plain-text table renderer used by every bench harness to print the
/// paper's tables in a stable, diff-friendly format.
class Table {
 public:
  enum class Align { Left, Right };

  explicit Table(std::vector<std::string> headers);

  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Horizontal ASCII bar chart, used to render the survey figures the way the
/// paper plots them (Figures 1-4).
class BarChart {
 public:
  BarChart(std::string title, int width = 40);

  /// Add one bar. `share` is in [0,1]; `annotation` is printed after the bar.
  void add(std::string label, double share, std::string annotation);

  [[nodiscard]] std::string render() const;

 private:
  struct Bar {
    std::string label;
    double share;
    std::string annotation;
  };

  std::string title_;
  int width_;
  std::vector<Bar> bars_;
};

}  // namespace jsceres
