#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace jsceres {

/// Epoch-based reclamation for the process-lifetime structures a resident
/// multi-tenant service would otherwise grow without bound (atom table,
/// shape tree, stamp-arena segment pool).
///
/// Protocol: every session pins the global epoch for its lifetime
/// (`EpochPin` RAII). A structure that wants to free shared state *retires*
/// it instead — it unlinks the state from every lookup path first (so no
/// new session can reach it), then hands the actual free to the domain as a
/// deferred callback stamped with the current epoch. `reclaim()` runs the
/// callbacks whose epoch is strictly below the oldest pin still alive:
/// every session that could hold an in-flight raw pointer into the retired
/// state has ended, so the free cannot dangle.
///
/// The domain is deliberately simple — a mutex, a pin multiset, a FIFO of
/// deferred frees. Pins and retires are per-session events (thousands per
/// run, not millions per second), so contention is not a concern; what
/// matters is that the *structures'* hot paths stay lock-free and only the
/// session-boundary bookkeeping goes through here.
class EpochDomain {
 public:
  using Epoch = std::uint64_t;

  /// The process-wide domain shared by the atom table, the shape tree, and
  /// the stamp segment pool. Leaked (never destroyed): retire callbacks may
  /// reference process-lifetime structures with unordered static teardown.
  static EpochDomain& global();

  /// Current epoch. Advanced at session boundaries, not on a clock.
  /// Lock-free: hot paths (shape transitions) stamp structures with it.
  [[nodiscard]] Epoch current() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Bump the epoch (typically: one session just ended). Returns the new
  /// value.
  Epoch advance() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Oldest epoch still pinned by a live session; `current() + 1` when no
  /// pin is held (everything retired so far is reclaimable).
  [[nodiscard]] Epoch min_pinned() const {
    const std::lock_guard lock(mutex_);
    return min_pinned_locked();
  }

  /// Register a pin at the current epoch (session start). Returns the
  /// pinned epoch; pass it back to unpin.
  Epoch pin() {
    const std::lock_guard lock(mutex_);
    const Epoch now = epoch_.load(std::memory_order_relaxed);
    ++pins_[now];
    return now;
  }

  /// Drop a pin previously taken at `epoch` (session end).
  void unpin(Epoch epoch) {
    const std::lock_guard lock(mutex_);
    const auto it = pins_.find(epoch);
    if (it == pins_.end()) return;  // double-unpin: ignore
    if (--it->second == 0) pins_.erase(it);
  }

  /// Defer `free_fn` until every pin at or before the current epoch is
  /// gone. `bytes` is accounting only (high-water / pressure reporting).
  /// `free_fn` runs outside the domain lock and may take its structure's
  /// own locks.
  void retire(std::size_t bytes, std::function<void()> free_fn) {
    const std::lock_guard lock(mutex_);
    deferred_.push_back(Deferred{epoch_.load(std::memory_order_relaxed),
                                 bytes, std::move(free_fn)});
    deferred_bytes_ += bytes;
  }

  /// Run every deferred free whose retire epoch is strictly below the
  /// oldest live pin. Returns the bytes released. Safe to call from any
  /// thread; frees run without the domain lock held.
  ///
  /// `floor_cap` bounds the floor from above. Callers that run a
  /// multi-structure pass (prune shapes, then reclaim atoms) must compute
  /// the floor ONCE and pass it here: sessions ending mid-pass advance the
  /// epoch, and an uncapped reclaim would free atoms newer than the floor
  /// the shape prune used — leaving live shape-map entries keyed by
  /// recycled atoms.
  std::size_t reclaim(Epoch floor_cap = ~Epoch{0}) {
    std::vector<Deferred> ready;
    {
      const std::lock_guard lock(mutex_);
      const Epoch floor = std::min(min_pinned_locked(), floor_cap);
      while (!deferred_.empty() && deferred_.front().epoch < floor) {
        deferred_bytes_ -= deferred_.front().bytes;
        ready.push_back(std::move(deferred_.front()));
        deferred_.pop_front();
      }
    }
    std::size_t freed = 0;
    for (Deferred& d : ready) {
      d.free_fn();
      freed += d.bytes;
    }
    if (freed > 0) {
      const std::lock_guard lock(mutex_);
      reclaimed_bytes_ += freed;
    }
    return freed;
  }

  // --- diagnostics ---------------------------------------------------------

  /// Bytes sitting on the deferred list, waiting for pins to drain.
  [[nodiscard]] std::size_t deferred_bytes() const {
    const std::lock_guard lock(mutex_);
    return deferred_bytes_;
  }
  [[nodiscard]] std::size_t deferred_count() const {
    const std::lock_guard lock(mutex_);
    return deferred_.size();
  }
  /// Total bytes ever released through reclaim().
  [[nodiscard]] std::size_t reclaimed_bytes() const {
    const std::lock_guard lock(mutex_);
    return reclaimed_bytes_;
  }
  [[nodiscard]] std::size_t pinned_count() const {
    const std::lock_guard lock(mutex_);
    std::size_t n = 0;
    for (const auto& [epoch, count] : pins_) n += std::size_t(count);
    return n;
  }

 private:
  struct Deferred {
    Epoch epoch = 0;
    std::size_t bytes = 0;
    std::function<void()> free_fn;
  };

  [[nodiscard]] Epoch min_pinned_locked() const {
    return pins_.empty() ? epoch_.load(std::memory_order_relaxed) + 1
                         : pins_.begin()->first;
  }

  mutable std::mutex mutex_;
  std::atomic<Epoch> epoch_{1};  // 0 is "never touched" in callers' stamps
  std::map<Epoch, std::int64_t> pins_;
  std::deque<Deferred> deferred_;  // FIFO by retire epoch
  std::size_t deferred_bytes_ = 0;
  std::size_t reclaimed_bytes_ = 0;
};

/// RAII pin on a domain for one session's lifetime.
class EpochPin {
 public:
  explicit EpochPin(EpochDomain& domain = EpochDomain::global())
      : domain_(&domain), epoch_(domain.pin()) {}
  ~EpochPin() { domain_->unpin(epoch_); }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

  [[nodiscard]] EpochDomain::Epoch epoch() const { return epoch_; }

 private:
  EpochDomain* domain_;
  EpochDomain::Epoch epoch_;
};

}  // namespace jsceres
