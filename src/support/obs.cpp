#include "support/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace jsceres::obs {

std::int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return std::int64_t(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
#else
  return 0;
#endif
}

// --- registry --------------------------------------------------------------

namespace {

struct MetricDef {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint32_t cell = 0;    // first shard cell (counters/histograms)
  std::size_t handle = 0;    // index into the per-kind handle deque
};

struct Registry {
  std::mutex mutex;
  std::vector<MetricDef> defs;
  std::unordered_map<std::string, std::size_t> index;  // name -> defs slot
  // Deques: handles hand out stable references for the process lifetime.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::uint32_t next_cell = 0;
  bool overflowed = false;

  std::mutex shard_mutex;
  std::vector<detail::Shard*> shards;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: process lifetime
  return *r;
}

constexpr char kOverflowCounter[] = "obs.registry_overflow";

// The top (kHistogramBuckets + 1) cells are reserved for the histogram
// dead-end sink handed out on overflow or cross-kind name collision: the
// caller gets a live handle whose records land in cells no real metric
// owns, instead of corrupting another metric (or indexing out of bounds).
constexpr std::uint32_t kUsableCells =
    std::uint32_t(detail::kMaxCells) - (std::uint32_t(kHistogramBuckets) + 1);

}  // namespace

// RegistryAccess is the friend bridge into the private metric constructors.
struct RegistryAccess {
  /// Under registry().mutex. Returns the def slot, registering if new.
  static std::size_t intern_locked(Registry& r, const std::string& name,
                                   MetricKind kind) {
    const auto it = r.index.find(name);
    if (it != r.index.end()) return it->second;

    const std::uint32_t cells_needed =
        kind == MetricKind::Histogram ? std::uint32_t(kHistogramBuckets) + 1
        : kind == MetricKind::Counter ? 1u
                                      : 0u;
    MetricDef def;
    def.name = name;
    def.kind = kind;
    if (cells_needed != 0 && r.next_cell + cells_needed > kUsableCells) {
      // Cell space exhausted (unbounded dynamic names): alias the overflow
      // counter so callers still get a live handle and the condition shows
      // up in snapshots instead of crashing. The caller checks the returned
      // def's kind and falls back to a same-kind sink on mismatch.
      r.overflowed = true;
      return intern_locked(r, kOverflowCounter, MetricKind::Counter);
    }
    def.cell = r.next_cell;
    r.next_cell += cells_needed;
    switch (kind) {
      case MetricKind::Counter:
        def.handle = r.counters.size();
        r.counters.push_back(Counter(def.cell));
        break;
      case MetricKind::Gauge:
        def.handle = r.gauges.size();
        r.gauges.emplace_back();
        break;
      case MetricKind::Histogram:
        def.handle = r.histograms.size();
        r.histograms.push_back(Histogram(def.cell));
        break;
    }
    const std::size_t slot = r.defs.size();
    r.defs.push_back(std::move(def));
    r.index.emplace(r.defs.back().name, slot);
    return slot;
  }

  /// Under registry().mutex.
  static Counter& overflow_counter_locked(Registry& r) {
    const std::size_t slot =
        intern_locked(r, kOverflowCounter, MetricKind::Counter);
    return r.counters[r.defs[slot].handle];
  }

  // The kind check below catches both overflow (intern_locked aliased the
  // overflow counter) and a name interned earlier as a different kind; in
  // either case the overflow counter records the bad registration and the
  // caller gets a safe same-kind sink.
  static Counter& counter(const std::string& name) {
    Registry& r = registry();
    const std::lock_guard lock(r.mutex);
    const std::size_t slot = intern_locked(r, name, MetricKind::Counter);
    if (r.defs[slot].kind != MetricKind::Counter) {
      Counter& overflow = overflow_counter_locked(r);
      overflow.add(1);
      return overflow;
    }
    return r.counters[r.defs[slot].handle];
  }
  static Gauge& gauge(const std::string& name) {
    Registry& r = registry();
    const std::lock_guard lock(r.mutex);
    const std::size_t slot = intern_locked(r, name, MetricKind::Gauge);
    if (r.defs[slot].kind != MetricKind::Gauge) {
      overflow_counter_locked(r).add(1);
      static Gauge sink;  // unsnapshotted dead-end (own atomic, no cells)
      return sink;
    }
    return r.gauges[r.defs[slot].handle];
  }
  static Histogram& histogram(const std::string& name) {
    Registry& r = registry();
    const std::lock_guard lock(r.mutex);
    const std::size_t slot = intern_locked(r, name, MetricKind::Histogram);
    if (r.defs[slot].kind != MetricKind::Histogram) {
      overflow_counter_locked(r).add(1);
      static Histogram sink{kUsableCells};  // records land in reserved cells
      return sink;
    }
    return r.histograms[r.defs[slot].handle];
  }
};

Counter& Counter::at(const char* name) {
  return RegistryAccess::counter(name);
}
Counter& Counter::at(const std::string& name) {
  return RegistryAccess::counter(name);
}
Gauge& Gauge::at(const char* name) { return RegistryAccess::gauge(name); }
Gauge& Gauge::at(const std::string& name) {
  return RegistryAccess::gauge(name);
}
Histogram& Histogram::at(const char* name) {
  return RegistryAccess::histogram(name);
}
Histogram& Histogram::at(const std::string& name) {
  return RegistryAccess::histogram(name);
}

namespace detail {

constinit thread_local Shard* tls_shard = nullptr;

Shard* acquire_shard() {
  auto* shard = new Shard();  // zero-initialized atomics; never freed
  for (auto& cell : shard->cells) {
    cell.store(0, std::memory_order_relaxed);
  }
  Registry& r = registry();
  {
    const std::lock_guard lock(r.shard_mutex);
    r.shards.push_back(shard);
  }
  tls_shard = shard;
  return shard;
}

}  // namespace detail

// --- snapshot --------------------------------------------------------------

Snapshot snapshot() {
  Registry& r = registry();
  // Copy the def table and shard list under their locks, then aggregate
  // lock-free: writers only touch cells, which are atomic.
  std::vector<MetricDef> defs;
  std::vector<const Gauge*> gauges;
  {
    const std::lock_guard lock(r.mutex);
    defs = r.defs;
    gauges.reserve(r.gauges.size());
    for (const Gauge& gauge : r.gauges) gauges.push_back(&gauge);
  }
  std::vector<detail::Shard*> shards;
  {
    const std::lock_guard lock(r.shard_mutex);
    shards = r.shards;
  }

  const auto cell_sum = [&shards](std::uint32_t cell) {
    std::uint64_t total = 0;
    for (const detail::Shard* shard : shards) {
      total += shard->cells[cell].load(std::memory_order_relaxed);
    }
    return total;
  };

  Snapshot out;
  out.entries.reserve(defs.size());
  for (const MetricDef& def : defs) {
    SnapshotEntry entry;
    entry.name = def.name;
    entry.kind = def.kind;
    switch (def.kind) {
      case MetricKind::Counter:
        entry.value = cell_sum(def.cell);
        break;
      case MetricKind::Gauge:
        entry.gauge = gauges[def.handle]->value();
        break;
      case MetricKind::Histogram:
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          entry.hist.buckets[i] = cell_sum(def.cell + std::uint32_t(i));
          entry.hist.count += entry.hist.buckets[i];
        }
        entry.hist.sum = cell_sum(def.cell + std::uint32_t(kHistogramBuckets));
        break;
    }
    out.entries.push_back(std::move(entry));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_all_for_testing() {
  Registry& r = registry();
  std::vector<detail::Shard*> shards;
  {
    const std::lock_guard lock(r.shard_mutex);
    shards = r.shards;
  }
  for (detail::Shard* shard : shards) {
    for (auto& cell : shard->cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
  const std::lock_guard lock(r.mutex);
  for (Gauge& gauge : r.gauges) gauge.set(0);
}

const SnapshotEntry* Snapshot::find(const std::string& name) const {
  for (const SnapshotEntry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::uint64_t Snapshot::value(const std::string& name) const {
  const SnapshotEntry* entry = find(name);
  if (entry == nullptr) return 0;
  switch (entry->kind) {
    case MetricKind::Counter:
      return entry->value;
    case MetricKind::Gauge:
      return entry->gauge < 0 ? 0 : std::uint64_t(entry->gauge);
    case MetricKind::Histogram:
      return entry->hist.count;
  }
  return 0;
}

std::string Snapshot::to_text() const {
  std::string out;
  char line[256];
  for (const SnapshotEntry& entry : entries) {
    switch (entry.kind) {
      case MetricKind::Counter:
        std::snprintf(line, sizeof(line), "%-44s %20llu\n",
                      entry.name.c_str(),
                      (unsigned long long)entry.value);
        break;
      case MetricKind::Gauge:
        std::snprintf(line, sizeof(line), "%-44s %20lld  (gauge)\n",
                      entry.name.c_str(), (long long)entry.gauge);
        break;
      case MetricKind::Histogram:
        std::snprintf(line, sizeof(line),
                      "%-44s count=%llu sum=%llu mean=%.1f\n",
                      entry.name.c_str(),
                      (unsigned long long)entry.hist.count,
                      (unsigned long long)entry.hist.sum,
                      entry.hist.mean());
        break;
    }
    out += line;
  }
  return out;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string counters = "{";
  std::string gauges = "{";
  std::string histograms = "{";
  bool first_counter = true;
  bool first_gauge = true;
  bool first_hist = true;
  char buf[64];
  for (const SnapshotEntry& entry : entries) {
    switch (entry.kind) {
      case MetricKind::Counter:
        if (!first_counter) counters += ',';
        first_counter = false;
        append_json_string(counters, entry.name);
        std::snprintf(buf, sizeof(buf), ":%llu",
                      (unsigned long long)entry.value);
        counters += buf;
        break;
      case MetricKind::Gauge:
        if (!first_gauge) gauges += ',';
        first_gauge = false;
        append_json_string(gauges, entry.name);
        std::snprintf(buf, sizeof(buf), ":%lld", (long long)entry.gauge);
        gauges += buf;
        break;
      case MetricKind::Histogram: {
        if (!first_hist) histograms += ',';
        first_hist = false;
        append_json_string(histograms, entry.name);
        std::snprintf(buf, sizeof(buf), ":{\"count\":%llu,\"sum\":%llu,",
                      (unsigned long long)entry.hist.count,
                      (unsigned long long)entry.hist.sum);
        histograms += buf;
        histograms += "\"buckets\":[";
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          if (i != 0) histograms += ',';
          std::snprintf(buf, sizeof(buf), "%llu",
                        (unsigned long long)entry.hist.buckets[i]);
          histograms += buf;
        }
        histograms += "]}";
        break;
      }
    }
  }
  counters += '}';
  gauges += '}';
  histograms += '}';
  std::string out = "{\"counters\":";
  out += counters;
  out += ",\"gauges\":";
  out += gauges;
  out += ",\"histograms\":";
  out += histograms;
  out += '}';
  return out;
}

// --- trace recorder --------------------------------------------------------

struct TraceRecorder::Ring {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // ring storage, capacity fixed per start
  std::size_t head = 0;            // next write slot
  bool wrapped = false;
  std::uint32_t tid = 0;
  std::string thread_name;
};

namespace {

struct RingTable {
  std::mutex mutex;
  std::vector<TraceRecorder::Ring*> rings;  // never freed
};

RingTable& ring_table() {
  static RingTable* t = new RingTable();
  return *t;
}

thread_local TraceRecorder::Ring* tls_ring = nullptr;

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* rec = new TraceRecorder();
  return *rec;
}

TraceRecorder::Ring& TraceRecorder::ring() {
  Ring* r = tls_ring;
  if (r == nullptr) {
    r = new Ring();  // never freed: collect() must outlive the thread
    r->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    r->events.reserve(capacity_.load(std::memory_order_relaxed));
    RingTable& table = ring_table();
    const std::lock_guard lock(table.mutex);
    table.rings.push_back(r);
    tls_ring = r;
  }
  return *r;
}

void TraceRecorder::start(std::size_t events_per_thread) {
  capacity_.store(std::max<std::size_t>(events_per_thread, 16),
                  std::memory_order_relaxed);
  RingTable& table = ring_table();
  {
    const std::lock_guard lock(table.mutex);
    for (Ring* r : table.rings) {
      const std::lock_guard ring_lock(r->mutex);
      r->events.clear();
      r->head = 0;
      r->wrapped = false;
    }
  }
  epoch_ns_.store(mono_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::stop() { enabled_.store(false, std::memory_order_release); }

void TraceRecorder::append(TraceEvent event) {
  if (!enabled()) return;
  Ring& r = ring();
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  const std::lock_guard lock(r.mutex);
  event.tid = r.tid;
  if (r.events.size() < cap) {
    r.events.push_back(event);
    r.head = r.events.size() % cap;
  } else {
    r.events[r.head] = event;
    r.head = (r.head + 1) % cap;
    r.wrapped = true;
  }
}

void TraceRecorder::instant(const char* cat, const char* name,
                            const char* arg_name, std::uint64_t arg) {
  if (!enabled()) return;
  TraceEvent event;
  event.cat = cat;
  event.name = name;
  event.arg_name = arg_name;
  event.arg = arg;
  event.ph = 'i';
  event.ts_ns = since_start_ns();
  event.tts_ns = thread_cpu_ns();
  append(event);
}

void TraceRecorder::set_thread_name(std::string name) {
  Ring& r = ring();
  const std::lock_guard lock(r.mutex);
  r.thread_name = std::move(name);
}

std::vector<TraceEvent> TraceRecorder::collect() const {
  std::vector<TraceRecorder::Ring*> rings;
  {
    RingTable& table = ring_table();
    const std::lock_guard lock(table.mutex);
    rings = table.rings;
  }
  std::vector<TraceEvent> out;
  for (Ring* r : rings) {
    const std::lock_guard lock(r->mutex);
    if (r->wrapped) {
      // Oldest-first: head..end, then 0..head.
      out.insert(out.end(), r->events.begin() + std::ptrdiff_t(r->head),
                 r->events.end());
      out.insert(out.end(), r->events.begin(),
                 r->events.begin() + std::ptrdiff_t(r->head));
    } else {
      out.insert(out.end(), r->events.begin(), r->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::string TraceRecorder::to_json() const {
  // Thread-name metadata first, then the events.
  std::vector<std::pair<std::uint32_t, std::string>> names;
  {
    RingTable& table = ring_table();
    const std::lock_guard lock(table.mutex);
    for (Ring* r : table.rings) {
      const std::lock_guard ring_lock(r->mutex);
      if (!r->thread_name.empty()) names.emplace_back(r->tid, r->thread_name);
    }
  }
  const std::vector<TraceEvent> events = collect();

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const auto& [tid, name] : names) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", tid);
    out += buf;
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, name);
    out += "}}";
  }
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += event.ph;
    out += "\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u,\"ts\":%.3f", event.tid,
                  double(event.ts_ns) / 1000.0);
    out += buf;
    if (event.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f,\"tts\":%.3f,\"tdur\":%.3f",
                    double(event.dur_ns) / 1000.0,
                    double(event.tts_ns) / 1000.0,
                    double(event.tdur_ns) / 1000.0);
      out += buf;
    }
    if (event.ph == 'i') out += ",\"s\":\"t\"";
    out += ",\"cat\":";
    append_json_string(out, event.cat);
    out += ",\"name\":";
    append_json_string(out, event.name);
    if (event.arg_name != nullptr) {
      out += ",\"args\":{";
      append_json_string(out, event.arg_name);
      std::snprintf(buf, sizeof(buf), ":%llu",
                    (unsigned long long)event.arg);
      out += buf;
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void SpanScope::close() {
  TraceRecorder& rec = TraceRecorder::instance();
  if (!rec.enabled()) return;  // stopped mid-span: drop it
  event_.dur_ns = rec.since_start_ns() - event_.ts_ns;
  event_.tdur_ns = thread_cpu_ns() - event_.tts_ns;
  event_.ph = 'X';
  rec.append(event_);
}

}  // namespace jsceres::obs
