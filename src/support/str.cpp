#include "support/str.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace jsceres::str {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t j = i;
    while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });
  return out;
}

bool contains_word(std::string_view haystack, std::string_view word) {
  if (word.empty()) return false;
  std::size_t pos = 0;
  const auto is_word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-';
  };
  while ((pos = haystack.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word_char(haystack[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end == haystack.size() || !is_word_char(haystack[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string compact_count(double value) {
  if (value >= 1000.0) {
    const double k = value / 1000.0;
    // One decimal only when it is informative (54.6k), none when round (90k).
    if (std::fabs(k - std::round(k)) < 0.05) {
      return fixed(std::round(k), 0) + "k";
    }
    return fixed(k, 1) + "k";
  }
  if (std::fabs(value - std::round(value)) < 1e-9) return fixed(value, 0);
  return fixed(value, 1);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string repeat(std::string_view unit, int times) {
  std::string out;
  out.reserve(unit.size() * std::size_t(std::max(times, 0)));
  for (int i = 0; i < times; ++i) out += unit;
  return out;
}

}  // namespace jsceres::str
