#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/cancel.h"
#include "support/limits.h"

namespace jsceres::rivertrail {
class ThreadPool;
}

namespace jsceres {

/// Terminal state of a supervised session. Every session ends in exactly one
/// of these — the supervisor never lets an exception cross the session
/// boundary, so a batch of N requests always yields N structured outcomes.
enum class SessionState : std::uint8_t {
  Completed,    // finished at the requested instrumentation mode
  Degraded,     // finished, but at a lower mode than requested (3 -> 1 -> 0)
  Cancelled,    // explicit external cancel (sticky across retries)
  TimedOut,     // deadline missed even at mode 0
  Quarantined,  // no mode produced an answer; see runtime_fault for blame
};

const char* to_string(SessionState state);

/// One attempt's ledger line: which mode ran, how it ended, and the virtual
/// clocks it accumulated. `outcome` is a stable keyword — "ok", "cancelled",
/// "deadline", "retryable", "limit", "parse", "fatal".
struct AttemptRecord {
  int mode = 0;
  std::string outcome;
  std::string error;  // empty for "ok"
  std::int64_t cpu_ns = 0;
  std::int64_t wall_ns = 0;
  std::size_t peak_bytes = 0;  // attempt's ledger high-water mark
};

/// Structured per-session result: the state, the mode that finally answered,
/// the full attempt history, and the last attempt's observable output.
/// `runtime_fault` assigns blame for a quarantine: true means the runtime
/// itself misbehaved (unknown exception, broken engine invariant, injected
/// fault that survived every retry); false means the *input* exhausted every
/// rung of the ladder — the expected fate of genuinely hostile programs.
struct SessionOutcome {
  std::string name;
  SessionState state = SessionState::Quarantined;
  int final_mode = 0;
  int attempts = 0;
  std::vector<AttemptRecord> history;
  std::string console;
  std::string error;
  std::int64_t cpu_ns = 0;
  std::int64_t wall_ns = 0;
  /// Largest per-attempt ledger high-water mark — what the session really
  /// cost in sandbox bytes (the memory governor reconciles its admission
  /// estimate against this on release).
  std::size_t peak_bytes = 0;
  bool runtime_fault = false;
};

/// Retry/degradation policy knobs shared by every session in a batch.
struct SupervisorOptions {
  /// Same-mode retries of a *retryable* fault (injected scheduler faults,
  /// transient runtime errors) before falling through to degradation.
  int max_retries = 2;
  /// Exponential backoff between retries: base * 2^attempt, capped. Kept
  /// tiny — attempts run on pool workers, and a sleeping worker is a stolen
  /// worker; the point is jitter, not politeness to an external service.
  std::int64_t backoff_base_ms = 1;
  std::int64_t backoff_cap_ms = 50;
  /// Degrade mode 3 -> 1 -> 0 on limit trips and deadline misses. Off:
  /// the first limit trip quarantines (a strict-analysis server).
  bool degrade_on_limit = true;
};

/// Thrown by an attempt body when a post-failure engine invariant is broken
/// (argument stack not unwound, interpreter unusable). Always classified as
/// a runtime-fault quarantine — never retried, never degraded.
struct RuntimeInvariantError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What a successful attempt hands back to the supervisor.
struct AttemptSuccess {
  std::string console;
  std::int64_t cpu_ns = 0;
  std::int64_t wall_ns = 0;
  std::size_t peak_bytes = 0;  // ledger high-water mark of the attempt
};

/// One analysis session: a program, its sandbox, its time bounds, and its
/// instrumentation ambition. `mode` uses the paper's numbering — 3 is the
/// dependence analyzer, 1 the lightweight profiler, 0 uninstrumented — and
/// is the *top* rung; the supervisor may answer from a lower one (Degraded).
struct SessionRequest {
  std::string name;
  std::string source;
  EngineLimits limits;
  std::int64_t max_ticks = 0;    // 0 = no tick budget
  int mode = 3;                  // requested rung: 3, 1, or 0
  std::int64_t deadline_ms = 0;  // per-attempt wall deadline; 0 = none
  bool has_timers = false;       // run a DOM page + event loop after main
  std::int64_t horizon_ms = 2000;
  /// External cancellation handle (optional). The supervisor arms the
  /// per-attempt deadline on it and resets it between attempts; an explicit
  /// request_cancel() stays latched across resets, so cancelling a session
  /// wins over any retry. Must outlive the batch. nullptr: the supervisor
  /// owns a private source.
  CancelSource* cancel = nullptr;
  /// Pool for the timer session's frame graph (kernel/upload/commit run as
  /// pipeline stages instead of inline). nullptr: frames run serially on the
  /// event-loop thread. Only consulted when `has_timers` is set. Must
  /// outlive the batch.
  rivertrail::ThreadPool* frame_pool = nullptr;
  /// Custom attempt body (runner integration): executes one attempt at
  /// `mode` under `limits`/`max_ticks`, observing the token, and either
  /// returns or throws (EngineError, CancelledError, InjectedFault, ...) for
  /// the supervisor to classify. Unset: the built-in body parses `source`
  /// and runs it under the mode's hooks.
  std::function<AttemptSuccess(const SessionRequest&, int mode,
                               const EngineLimits& limits,
                               std::int64_t max_ticks, CancelToken)>
      attempt;
};

/// Runs N analysis sessions concurrently over a shared work-stealing pool,
/// each inside its own fault boundary: an EngineError, deadline miss,
/// cancellation, or injected scheduler fault in one session is caught at the
/// session boundary, classified, and handled by policy — retryable faults
/// retry with tightened budgets and exponential backoff, limit trips and
/// deadline misses degrade mode 3 -> 1 -> 0 before quarantining — while
/// sibling sessions keep running undisturbed. The supervision model is the
/// actor one: sessions are isolated failure domains sharing a scheduler,
/// and the batch always returns one structured outcome per request.
class SessionSupervisor {
 public:
  explicit SessionSupervisor(rivertrail::ThreadPool& pool,
                             SupervisorOptions options = {})
      : pool_(&pool), options_(options) {}

  /// Run every request to a terminal outcome; index i of the result is
  /// request i. The calling thread helps the pool while waiting.
  std::vector<SessionOutcome> run(const std::vector<SessionRequest>& requests);

  /// Run a single session on the calling thread (the per-session state
  /// machine without the fan-out; what each pool task executes).
  SessionOutcome run_one(const SessionRequest& request);

  [[nodiscard]] const SupervisorOptions& options() const { return options_; }

 private:
  rivertrail::ThreadPool* pool_;
  SupervisorOptions options_;
};

}  // namespace jsceres
