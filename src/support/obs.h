#pragma once

// Engine-wide observability: a lock-free metrics registry plus a Chrome
// trace-event span recorder, threaded through every layer as cheap probes.
//
// Metrics. Counters and histograms write to per-thread shards (one relaxed
// fetch_add on a thread-local cell — no sharing, no locks on the hot path);
// gauges are single process-wide atomics (low-frequency writers). Metrics
// are interned by name on first touch (registration is the cold path, under
// a mutex) and live for the process; snapshot() aggregates every shard into
// a point-in-time view dumpable as aligned text or machine JSON. Histograms
// are fixed log2 buckets (bucket i counts values with bit_width == i,
// clamped), so aggregation is a straight sum and recording is a bit_width.
//
// Tracing. TraceRecorder::start() arms per-thread ring buffers; SpanScope
// (via JSCERES_OBS_SPAN) records complete 'X' events with wall ("ts"/"dur")
// and thread-CPU ("tts"/"tdur") times. write_chrome_trace() emits the
// Chrome trace-event JSON that chrome://tracing and ui.perfetto.dev open
// directly. Rings wrap (newest wins) so a soak cannot grow without bound;
// appends take a per-ring mutex — uncontended, and spans are coarse enough
// (tasks, stages, frames) that this is noise while staying TSan-clean and
// collectable at any instant.
//
// Zero-cost when disabled, following fault_injection.h: build with
// -DJSCERES_OBS=0 and every probe macro expands to ((void)0) — verified by
// bench/ablation_instrumentation_overhead.cpp. The obs classes themselves
// stay compiled either way (direct API calls are not probes), so tests and
// tools that consume snapshots work in both configurations. The default
// keeps probes compiled in: a disarmed probe is one static-guard check plus
// a thread-local relaxed fetch_add (counters) or one relaxed load (spans
// with the recorder stopped).
//
// Probe catalog: see src/support/README.md (metrics-name reference table).

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef JSCERES_OBS
#define JSCERES_OBS 1
#endif

namespace jsceres::obs {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// Log2 histogram buckets: bucket i counts recorded values v with
/// bit_width(v) == i (bucket 0: v == 0), clamped to the last bucket.
constexpr std::size_t kHistogramBuckets = 32;

namespace detail {

/// Cells per thread shard. A counter owns 1 cell, a histogram owns
/// kHistogramBuckets + 1 (buckets + running sum). When the registry runs
/// out, registration aliases the reserved overflow counter instead of
/// failing — dynamic names (per-tenant histograms) cannot crash the engine.
constexpr std::size_t kMaxCells = 4096;

struct Shard {
  std::atomic<std::uint64_t> cells[kMaxCells];
};

/// Allocate + globally register this thread's shard (cold, once per
/// thread). Shards are never freed: aggregation must see counts from
/// threads that have already exited.
Shard* acquire_shard();

// constinit is load-bearing: without it, every other TU must assume the
// extern thread_local might need dynamic initialization and route each
// access through a TLS wrapper function call — which costs more than the
// entire rest of the probe (measured ~90ns/probe vs ~2ns).
extern constinit thread_local Shard* tls_shard;

inline Shard& shard() {
  Shard* s = tls_shard;
  if (s == nullptr) s = acquire_shard();
  return *s;
}

}  // namespace detail

/// Monotonically increasing event count. at() interns by name (cold path);
/// the returned reference is stable for the process lifetime.
class Counter {
 public:
  static Counter& at(const char* name);
  static Counter& at(const std::string& name);

  void add(std::uint64_t n = 1) {
    detail::shard().cells[cell_].fetch_add(n, std::memory_order_relaxed);
  }

 private:
  friend struct RegistryAccess;
  explicit Counter(std::uint32_t cell) : cell_(cell) {}
  std::uint32_t cell_;
};

/// Point-in-time signed level (queue depth, live bytes, pressure percent).
/// One process-wide atomic: gauges are written at bounded frequency.
class Gauge {
 public:
  Gauge() = default;
  static Gauge& at(const char* name);
  static Gauge& at(const std::string& name);

  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log2-bucket distribution (latencies in ns/us, byte sizes).
class Histogram {
 public:
  static Histogram& at(const char* name);
  static Histogram& at(const std::string& name);

  void record(std::uint64_t value) {
    const auto bucket = std::min<unsigned>(unsigned(std::bit_width(value)),
                                           kHistogramBuckets - 1);
    auto& cells = detail::shard().cells;
    cells[cell_ + bucket].fetch_add(1, std::memory_order_relaxed);
    cells[cell_ + kHistogramBuckets].fetch_add(value,
                                               std::memory_order_relaxed);
  }

 private:
  friend struct RegistryAccess;
  explicit Histogram(std::uint32_t cell) : cell_(cell) {}
  std::uint32_t cell_;
};

struct HistogramData {
  std::uint64_t buckets[kHistogramBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : double(sum) / double(count);
  }
};

struct SnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t value = 0;   // counters
  std::int64_t gauge = 0;    // gauges
  HistogramData hist;        // histograms
};

/// Point-in-time aggregation of every registered metric over every shard.
/// Taken while writers run: each cell is read atomically, the snapshot as a
/// whole is a consistent-enough cut for monitoring (no torn cells).
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  [[nodiscard]] const SnapshotEntry* find(const std::string& name) const;
  /// Counter value / gauge value / histogram count for `name`; 0 if absent.
  [[nodiscard]] std::uint64_t value(const std::string& name) const;
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] Snapshot snapshot();

/// Zero every counter/histogram cell and gauge (tests and benches that
/// measure deltas). Registrations persist; concurrent writers may land
/// adds across the reset — callers quiesce first when exactness matters.
void reset_all_for_testing();

/// Thread-CPU time of the calling thread (CLOCK_THREAD_CPUTIME_ID); 0 when
/// the platform has no thread clock.
[[nodiscard]] std::int64_t thread_cpu_ns();
/// Monotonic wall clock (steady_clock), ns.
[[nodiscard]] std::int64_t mono_ns();

// --- trace recorder --------------------------------------------------------

struct TraceEvent {
  const char* name = "";      // string literal (events store the pointer)
  const char* cat = "";       // string literal
  std::int64_t ts_ns = 0;     // wall, relative to recorder start
  std::int64_t dur_ns = 0;    // 'X' events
  std::int64_t tts_ns = 0;    // thread-CPU at begin
  std::int64_t tdur_ns = 0;   // thread-CPU duration
  std::uint64_t arg = 0;
  const char* arg_name = nullptr;  // null: no args object
  std::uint32_t tid = 0;
  char ph = 'X';
};

/// Process-wide span recorder with per-thread ring buffers. start() arms it
/// (and zeroes any previous recording); stop() disarms; collect() merges
/// every ring into one ts-sorted vector at any time, armed or not. Rings
/// are registered on a thread's first append and live for the process, like
/// metric shards.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Arm. `events_per_thread` sizes each ring (wraps, newest wins); the
  /// size is applied to rings created after this call and existing rings
  /// are re-sized. Resets the time origin.
  void start(std::size_t events_per_thread = std::size_t(1) << 14);
  void stop();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Record a complete event (ts/dur prefilled by the caller; tid filled
  /// here). No-op when disarmed.
  void append(TraceEvent event);
  /// Record an instant ('i') event at now.
  void instant(const char* cat, const char* name,
               const char* arg_name = nullptr, std::uint64_t arg = 0);
  /// Label the calling thread in trace output ("worker-3", "main").
  void set_thread_name(std::string name);

  /// ns since start() (the trace time origin).
  [[nodiscard]] std::int64_t since_start_ns() const {
    return mono_ns() - epoch_ns_.load(std::memory_order_relaxed);
  }

  /// Merge all rings, oldest-first per ring, sorted by ts.
  [[nodiscard]] std::vector<TraceEvent> collect() const;
  /// Chrome trace-event JSON ({"traceEvents":[...]}; ts/dur in us).
  [[nodiscard]] std::string to_json() const;
  /// to_json() to a file; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  struct Ring;  // public: the TU-local ring table holds Ring pointers

 private:
  TraceRecorder() = default;
  Ring& ring();

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> epoch_ns_{0};
  std::atomic<std::uint32_t> next_tid_{1};
  std::atomic<std::size_t> capacity_{std::size_t(1) << 14};
};

/// RAII complete-span ('X') probe. Cheap when the recorder is disarmed: one
/// relaxed load in the constructor, nothing in the destructor.
class SpanScope {
 public:
  SpanScope(const char* cat, const char* name) { open(cat, name, nullptr, 0); }
  SpanScope(const char* cat, const char* name, const char* arg_name,
            std::uint64_t arg) {
    open(cat, name, arg_name, arg);
  }
  ~SpanScope() {
    if (armed_) close();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  void open(const char* cat, const char* name, const char* arg_name,
            std::uint64_t arg) {
    TraceRecorder& rec = TraceRecorder::instance();
    if (!rec.enabled()) {
      armed_ = false;
      return;
    }
    armed_ = true;
    event_.cat = cat;
    event_.name = name;
    event_.arg_name = arg_name;
    event_.arg = arg;
    event_.ts_ns = rec.since_start_ns();
    event_.tts_ns = thread_cpu_ns();
  }
  void close();

  TraceEvent event_;
  bool armed_ = false;
};

}  // namespace jsceres::obs

// --- probe macros ----------------------------------------------------------
//
// Every engine probe goes through these; -DJSCERES_OBS=0 compiles them all
// to nothing. The function-local static pins the interned metric so steady
// state is guard-check + shard fetch_add, with no name lookup.

#if JSCERES_OBS

#define JSCERES_OBS_CONCAT_INNER(a, b) a##b
#define JSCERES_OBS_CONCAT(a, b) JSCERES_OBS_CONCAT_INNER(a, b)

#define JSCERES_OBS_COUNT(name, n)                                         \
  do {                                                                     \
    static ::jsceres::obs::Counter& jsceres_obs_counter =                  \
        ::jsceres::obs::Counter::at(name);                                 \
    jsceres_obs_counter.add(std::uint64_t(n));                             \
  } while (0)

#define JSCERES_OBS_GAUGE_SET(name, v)                                     \
  do {                                                                     \
    static ::jsceres::obs::Gauge& jsceres_obs_gauge =                      \
        ::jsceres::obs::Gauge::at(name);                                   \
    jsceres_obs_gauge.set(std::int64_t(v));                                \
  } while (0)

#define JSCERES_OBS_GAUGE_ADD(name, d)                                     \
  do {                                                                     \
    static ::jsceres::obs::Gauge& jsceres_obs_gauge =                      \
        ::jsceres::obs::Gauge::at(name);                                   \
    jsceres_obs_gauge.add(std::int64_t(d));                                \
  } while (0)

#define JSCERES_OBS_HIST(name, v)                                          \
  do {                                                                     \
    static ::jsceres::obs::Histogram& jsceres_obs_hist =                   \
        ::jsceres::obs::Histogram::at(name);                               \
    jsceres_obs_hist.record(std::uint64_t(v));                             \
  } while (0)

#define JSCERES_OBS_SPAN(cat, name)                                        \
  ::jsceres::obs::SpanScope JSCERES_OBS_CONCAT(jsceres_obs_span_,          \
                                               __LINE__)(cat, name)

#define JSCERES_OBS_SPAN_ARG(cat, name, argname, argval)                   \
  ::jsceres::obs::SpanScope JSCERES_OBS_CONCAT(jsceres_obs_span_,          \
                                               __LINE__)(                  \
      cat, name, argname, std::uint64_t(argval))

#define JSCERES_OBS_INSTANT(cat, name)                                     \
  ::jsceres::obs::TraceRecorder::instance().instant(cat, name)

#define JSCERES_OBS_SET_THREAD_NAME(name_expr)                             \
  ::jsceres::obs::TraceRecorder::instance().set_thread_name(name_expr)

#else  // !JSCERES_OBS

#define JSCERES_OBS_COUNT(name, n) ((void)0)
#define JSCERES_OBS_GAUGE_SET(name, v) ((void)0)
#define JSCERES_OBS_GAUGE_ADD(name, d) ((void)0)
#define JSCERES_OBS_HIST(name, v) ((void)0)
#define JSCERES_OBS_SPAN(cat, name) ((void)0)
#define JSCERES_OBS_SPAN_ARG(cat, name, argname, argval) ((void)0)
#define JSCERES_OBS_INSTANT(cat, name) ((void)0)
#define JSCERES_OBS_SET_THREAD_NAME(name_expr) ((void)0)

#endif  // JSCERES_OBS
