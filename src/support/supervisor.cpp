#include "support/supervisor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "ceres/dependence_analyzer.h"
#include "ceres/lightweight_profiler.h"
#include "dom/page.h"
#include "interp/interpreter.h"
#include "js/lexer.h"
#include "js/parser.h"
#include "rivertrail/fault_injection.h"
#include "rivertrail/parallel_for.h"
#include "rivertrail/thread_pool.h"
#include "support/clock.h"
#include "support/obs.h"

namespace jsceres {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::Completed:
      return "completed";
    case SessionState::Degraded:
      return "degraded";
    case SessionState::Cancelled:
      return "cancelled";
    case SessionState::TimedOut:
      return "timed-out";
    case SessionState::Quarantined:
      return "quarantined";
  }
  return "?";
}

namespace {

/// How one attempt ended, from the supervisor's point of view. The policy
/// state machine runs entirely on this classification.
enum class AttemptClass {
  Ok,
  Cancelled,  // explicit cancel observed (sticky; ends the session)
  Deadline,   // deadline expiry (degradable: a cheaper mode may fit)
  Retryable,  // injected/transient scheduler fault (same mode, backoff)
  Limit,      // sandbox limit trip (degradable)
  FrontEnd,   // parse/lex error (no mode can help; input quarantine)
  Fatal,      // broken runtime invariant or unknown exception
};

const char* keyword(AttemptClass c) {
  switch (c) {
    case AttemptClass::Ok:
      return "ok";
    case AttemptClass::Cancelled:
      return "cancelled";
    case AttemptClass::Deadline:
      return "deadline";
    case AttemptClass::Retryable:
      return "retryable";
    case AttemptClass::Limit:
      return "limit";
    case AttemptClass::FrontEnd:
      return "parse";
    case AttemptClass::Fatal:
      return "fatal";
  }
  return "?";
}

/// Built-in attempt body: parse + run `request.source` at `mode` under the
/// attempt's budgets, observing `token` in the interpreter's tick probe and
/// the event loop's dispatch boundary. Throws for the supervisor to
/// classify; verifies the engine's post-failure invariants on the way out.
AttemptSuccess run_builtin_attempt(const SessionRequest& request, int mode,
                                   const EngineLimits& limits,
                                   std::int64_t max_ticks, CancelToken token) {
  const js::Program program =
      js::parse(request.source, "<session:" + request.name + ">", limits);

  VirtualClock clock;
  std::unique_ptr<ceres::DependenceAnalyzer> dependence;
  std::unique_ptr<ceres::LightweightProfiler> lightweight;
  interp::ExecutionHooks* hooks = nullptr;
  if (mode >= 3) {
    dependence = std::make_unique<ceres::DependenceAnalyzer>(program);
    hooks = dependence.get();
  } else if (mode >= 1) {
    lightweight = std::make_unique<ceres::LightweightProfiler>(clock);
    hooks = lightweight.get();
  }

  interp::InterpreterConfig config;
  // Supervisor convention: <=0 means "no tick budget". The interpreter's own
  // sentinel is negative-only (0 arms a zero-tick budget), so translate.
  config.max_ticks = max_ticks > 0 ? max_ticks : -1;
  config.limits = limits;
  config.cancel = token;
  interp::Interpreter interp(program, clock, hooks, config);

  const auto check_invariants = [&interp] {
    if (interp.debug_arg_stack_in_use() != 0) {
      throw RuntimeInvariantError("argument stack not unwound after attempt");
    }
  };

  try {
    if (request.has_timers) {
      dom::Page page(interp);
      // Frame graph works without a canvas (the kernel stage no-ops); the
      // point is exercising the pipelined frame path under supervision and
      // emitting its per-stage spans into any active trace.
      if (request.frame_pool != nullptr) {
        page.event_loop().enable_frame_graph(*request.frame_pool);
      }
      interp.run();
      page.event_loop().run(request.horizon_ms, token);
    } else {
      interp.run();
    }
  } catch (...) {
    check_invariants();  // a dirty stack outranks the in-flight failure
    throw;
  }
  check_invariants();

  AttemptSuccess success;
  success.console = interp.console_output();
  success.cpu_ns = clock.cpu_ns();
  success.wall_ns = clock.wall_ns();
  success.peak_bytes = interp.ledger().peak();
  return success;
}

/// Run one attempt through its fault boundary and classify the result.
AttemptClass run_attempt(const SessionRequest& request, int mode,
                         const EngineLimits& limits, std::int64_t max_ticks,
                         CancelToken token, AttemptRecord& record,
                         AttemptSuccess& success) {
  record.mode = mode;
  AttemptClass result = AttemptClass::Ok;
  try {
    if (request.attempt) {
      success = request.attempt(request, mode, limits, max_ticks, token);
    } else {
      success = run_builtin_attempt(request, mode, limits, max_ticks, token);
    }
  } catch (const CancelledError& e) {
    record.error = e.what();
    result = e.cancel_reason() == CancelReason::DeadlineExpired
                 ? AttemptClass::Deadline
                 : AttemptClass::Cancelled;
  } catch (const rivertrail::sched_faults::InjectedFault& e) {
    record.error = e.what();
    result = AttemptClass::Retryable;
  } catch (const RuntimeInvariantError& e) {
    record.error = e.what();
    result = AttemptClass::Fatal;
  } catch (const EngineError& e) {
    record.error = e.what();
    result = AttemptClass::Limit;
  } catch (const js::ParseError& e) {
    record.error = e.what();
    result = AttemptClass::FrontEnd;
  } catch (const js::LexError& e) {
    record.error = e.what();
    result = AttemptClass::FrontEnd;
  } catch (const std::exception& e) {
    record.error = std::string("unexpected exception: ") + e.what();
    result = AttemptClass::Fatal;
  } catch (...) {
    record.error = "unknown exception";
    result = AttemptClass::Fatal;
  }
  record.outcome = keyword(result);
  record.cpu_ns = success.cpu_ns;
  record.wall_ns = success.wall_ns;
  record.peak_bytes = success.peak_bytes;
  return result;
}

int next_rung(int mode) { return mode >= 3 ? 1 : 0; }

/// Tighten per-attempt budgets for a retry: a fault already burned part of
/// the session's patience, so the rerun gets half the wall budget and half
/// the tick budget (floored — a retry with no budget at all would be a
/// guaranteed deadline miss, which defeats the retry).
void tighten(EngineLimits& limits, std::int64_t& max_ticks) {
  if (limits.max_wall_ms > 0) {
    limits.max_wall_ms = std::max<std::int64_t>(limits.max_wall_ms / 2, 10);
  }
  if (max_ticks > 0) max_ticks = std::max<std::int64_t>(max_ticks / 2, 10'000);
}

}  // namespace

SessionOutcome SessionSupervisor::run_one(const SessionRequest& request) {
  JSCERES_OBS_COUNT("supervisor.sessions", 1);
  JSCERES_OBS_SPAN_ARG("supervisor", "session", "mode",
                       std::uint64_t(request.mode));
  SessionOutcome outcome;
  outcome.name = request.name;
  outcome.final_mode = request.mode;

  CancelSource local_source;
  CancelSource* source = request.cancel != nullptr ? request.cancel : &local_source;

  int mode = request.mode;
  int retries_left = options_.max_retries;
  std::int64_t backoff_ms = options_.backoff_base_ms;
  EngineLimits budgets = request.limits;
  std::int64_t ticks = request.max_ticks;

  for (;;) {
    // An explicit cancel is sticky across attempts: observe it here so a
    // cancel that lands between attempts (or during backoff) ends the
    // session even if the next attempt would be too short to poll the token.
    if (source->reason() == CancelReason::Cancelled) {
      outcome.state = SessionState::Cancelled;
      outcome.error = "cancelled";
      return outcome;
    }
    // Fresh per-attempt deadline; reset() clears a previous expiry but
    // keeps an explicit cancel latched (checked above).
    source->reset();
    if (request.deadline_ms > 0) source->set_deadline_in(request.deadline_ms);

    AttemptRecord record;
    AttemptSuccess success;
    const AttemptClass result = run_attempt(request, mode, budgets, ticks,
                                            CancelToken(*source), record, success);
    ++outcome.attempts;
    outcome.history.push_back(record);
    outcome.error = record.error;
    outcome.cpu_ns = record.cpu_ns;
    outcome.wall_ns = record.wall_ns;
    outcome.peak_bytes = std::max(outcome.peak_bytes, record.peak_bytes);

    switch (result) {
      case AttemptClass::Ok:
        outcome.state = mode == request.mode ? SessionState::Completed
                                             : SessionState::Degraded;
        outcome.final_mode = mode;
        outcome.console = std::move(success.console);
        outcome.error.clear();
        outcome.runtime_fault = false;  // the session answered after all
        source->clear_deadline();
        return outcome;

      case AttemptClass::Cancelled:
        outcome.state = SessionState::Cancelled;
        outcome.final_mode = mode;
        return outcome;

      case AttemptClass::Retryable:
        if (retries_left-- > 0) {
          JSCERES_OBS_COUNT("supervisor.retries", 1);
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
          backoff_ms = std::min(backoff_ms * 2, options_.backoff_cap_ms);
          tighten(budgets, ticks);
          continue;  // same rung
        }
        // Retries exhausted on a runtime-side fault: the ladder below can
        // still answer, but if it never does, the blame is the runtime's.
        outcome.runtime_fault = true;
        [[fallthrough]];

      case AttemptClass::Deadline:
      case AttemptClass::Limit:
        if (options_.degrade_on_limit && mode > 0) {
          JSCERES_OBS_COUNT("supervisor.degradations", 1);
          mode = next_rung(mode);
          continue;
        }
        outcome.final_mode = mode;
        outcome.state = result == AttemptClass::Deadline
                            ? SessionState::TimedOut
                            : SessionState::Quarantined;
        if (outcome.state == SessionState::Quarantined) {
          JSCERES_OBS_COUNT("supervisor.quarantines", 1);
        }
        return outcome;

      case AttemptClass::FrontEnd:
        // No instrumentation mode can fix a parse error: quarantine
        // immediately, blamed on the input.
        JSCERES_OBS_COUNT("supervisor.quarantines", 1);
        outcome.state = SessionState::Quarantined;
        outcome.final_mode = mode;
        return outcome;

      case AttemptClass::Fatal:
        JSCERES_OBS_COUNT("supervisor.quarantines", 1);
        outcome.state = SessionState::Quarantined;
        outcome.final_mode = mode;
        outcome.runtime_fault = true;
        return outcome;
    }
  }
}

std::vector<SessionOutcome> SessionSupervisor::run(
    const std::vector<SessionRequest>& requests) {
  std::vector<SessionOutcome> outcomes(requests.size());
  if (requests.empty()) return outcomes;

  // One pool task per session; the gate is the batch join. Each body is
  // airtight — run_one already never throws by design, but the supervisor's
  // whole point is that a session failure cannot take down its siblings, so
  // the boundary is enforced here too, not just promised.
  rivertrail::CompletionGate gate{std::int64_t(requests.size())};
  for (std::size_t i = 0; i < requests.size(); ++i) {
    pool_->submit([this, &requests, &outcomes, &gate, i] {
      try {
        outcomes[i] = run_one(requests[i]);
      } catch (...) {
        outcomes[i].name = requests[i].name;
        outcomes[i].state = SessionState::Quarantined;
        outcomes[i].runtime_fault = true;
        outcomes[i].error = "exception escaped the session state machine";
      }
      gate.arrive(1);
    });
  }
  rivertrail::detail::help_until(*pool_, gate);
  return outcomes;
}

}  // namespace jsceres
