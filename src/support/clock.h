#pragma once

#include <cstdint>

namespace jsceres {

/// Deterministic virtual clock used by the interpreter and the DOM event
/// loop.
///
/// The paper measured three time bases on a real browser: wall-clock time
/// (total application lifetime), CPU-active time (Gecko sampling profiler),
/// and high-resolution in-loop time (JS-CERES instrumentation). We reproduce
/// all three deterministically:
///
///  - `cpu_ns` advances whenever the interpreter evaluates something
///    (cost-model ticks), standing in for CPU-active time.
///  - `wall_ns` advances in lockstep with `cpu_ns` *and* additionally during
///    blocking operations (simulated resource loads, event-loop idle time)
///    where the CPU is not active.
///
/// One cost-model tick is defined as 10 microseconds of virtual time
/// (`kTickNs`), calibrating the tree-walking interpreter to a slow JIT-less
/// engine on a low-end device: workload virtual times then land in the same
/// seconds range as the paper's Table 2 while host wall-clock stays
/// test-suite friendly (see DESIGN.md §5 on scale calibration).
class VirtualClock {
 public:
  static constexpr std::int64_t kTickNs = 10'000;  // 1 tick == 10 us

  /// Advance both CPU and wall time by `ticks` cost-model ticks.
  void tick(std::int64_t ticks) {
    cpu_ns_ += ticks * kTickNs;
    wall_ns_ += ticks * kTickNs;
  }

  /// Advance wall time only (blocking I/O, event-loop idle, suspension).
  void block_ns(std::int64_t ns) { wall_ns_ += ns; }

  /// Jump wall time forward to `target_ns` if it is in the future.
  void advance_wall_to(std::int64_t target_ns) {
    if (target_ns > wall_ns_) wall_ns_ = target_ns;
  }

  [[nodiscard]] std::int64_t wall_ns() const { return wall_ns_; }
  [[nodiscard]] std::int64_t cpu_ns() const { return cpu_ns_; }

  [[nodiscard]] double wall_seconds() const { return double(wall_ns_) / 1e9; }
  [[nodiscard]] double cpu_seconds() const { return double(cpu_ns_) / 1e9; }

  void reset() {
    wall_ns_ = 0;
    cpu_ns_ = 0;
  }

 private:
  std::int64_t wall_ns_ = 0;
  std::int64_t cpu_ns_ = 0;
};

}  // namespace jsceres
