#include "support/limits.h"

namespace jsceres {

namespace {
thread_local AllocationLedger* g_current_ledger = nullptr;
}  // namespace

AllocationLedger* AllocationLedger::current() noexcept {
  return g_current_ledger;
}

AllocationLedger::Scope::Scope(AllocationLedger* ledger) noexcept
    : previous_(g_current_ledger) {
  g_current_ledger = ledger;
}

AllocationLedger::Scope::~Scope() { g_current_ledger = previous_; }

}  // namespace jsceres
