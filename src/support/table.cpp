#include "support/table.h"

#include <algorithm>

#include "support/str.h"

namespace jsceres {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  aligns_.assign(headers_.size(), Align::Left);
}

void Table::set_align(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void Table::add_rule() { pending_rule_ = true; }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto pad = [&](const std::string& text, std::size_t c) {
    const std::size_t fill = widths[c] - std::min(widths[c], text.size());
    if (aligns_[c] == Align::Right) return std::string(fill, ' ') + text;
    return text + std::string(fill, ' ');
  };

  std::string rule = "+";
  for (const auto w : widths) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out = rule;
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += " " + pad(headers_[c], c) + " |";
  }
  out += "\n" + rule;
  for (const auto& row : rows_) {
    if (row.rule_before) out += rule;
    out += "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      out += " " + pad(row.cells[c], c) + " |";
    }
    out += "\n";
  }
  out += rule;
  return out;
}

BarChart::BarChart(std::string title, int width)
    : title_(std::move(title)), width_(width) {}

void BarChart::add(std::string label, double share, std::string annotation) {
  bars_.push_back(Bar{std::move(label), share, std::move(annotation)});
}

std::string BarChart::render() const {
  std::size_t label_width = 0;
  for (const auto& bar : bars_) label_width = std::max(label_width, bar.label.size());

  std::string out = title_ + "\n";
  for (const auto& bar : bars_) {
    const double clamped = std::clamp(bar.share, 0.0, 1.0);
    const int filled = int(clamped * width_ + 0.5);
    out += "  " + bar.label + std::string(label_width - bar.label.size(), ' ') + " |";
    out += str::repeat("#", filled);
    out += std::string(std::size_t(width_ - filled), ' ');
    out += "| " + bar.annotation + "\n";
  }
  return out;
}

}  // namespace jsceres
