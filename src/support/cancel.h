#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "support/limits.h"

namespace jsceres {

/// Why a CancelToken reports cancelled. Latched into the source the first
/// time it is observed, so classification at a session boundary is stable
/// even when an explicit cancel and a deadline expiry race.
enum class CancelReason : std::uint8_t {
  None = 0,
  Cancelled,        // explicit request_cancel()
  DeadlineExpired,  // the source's deadline passed (or expire_now())
};

/// Cooperative cancellation surfacing as an EngineError subclass: every
/// recovery path built for limit trips (interpreter reuse, clean argument
/// stack, sandbox oracles) applies to a cancelled run unchanged.
class CancelledError : public EngineError {
 public:
  CancelledError(CancelReason reason, const std::string& what)
      : EngineError(what), reason_(reason) {}
  [[nodiscard]] CancelReason cancel_reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

class CancelToken;

/// Shared cancellation state: one owner requests, any number of CancelToken
/// observers poll. Observation points are cooperative — split/steal/stage/
/// sync points in the scheduler, the event loop's dispatch boundary, and the
/// interpreter's amortized tick probe — so cancellation never interrupts a
/// body mid-flight; it drains structured work to a clean joined state.
///
/// A source is reusable across attempts: reset() clears a deadline expiry
/// (each retry gets a fresh budget) but deliberately keeps an explicit
/// cancel latched — a caller that cancelled a session must not see a retry
/// resurrect it.
class CancelSource {
 public:
  static constexpr std::int64_t kNoDeadline =
      std::int64_t(0x7fffffffffffffff);

  /// Request cancellation (any thread, idempotent; first reason wins).
  void request_cancel(CancelReason reason = CancelReason::Cancelled) noexcept {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(expected, std::uint8_t(reason),
                                    std::memory_order_release,
                                    std::memory_order_relaxed);
  }

  /// Treat the deadline as already passed (fault injection's deadline-expiry
  /// action; equivalent to the deadline racing to now).
  void expire_now() noexcept { request_cancel(CancelReason::DeadlineExpired); }

  /// Arm (or clear, with kNoDeadline) an absolute steady-clock deadline.
  void set_deadline(std::chrono::steady_clock::time_point when) noexcept {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            when.time_since_epoch())
            .count(),
        std::memory_order_release);
  }
  void set_deadline_in(std::int64_t ms) noexcept {
    set_deadline(std::chrono::steady_clock::now() + std::chrono::milliseconds(ms));
  }
  void clear_deadline() noexcept {
    deadline_ns_.store(kNoDeadline, std::memory_order_release);
  }

  /// Deterministic sweep hook: latch an explicit cancel at the N-th
  /// cancelled() observation (N = 1 fires at the very next check). This is
  /// what lets tests and the fuzz harness parameterically cancel at *every*
  /// cooperative observation point without wall-clock races.
  void cancel_after_observations(std::int64_t n) noexcept {
    observations_left_.store(n, std::memory_order_relaxed);
    observation_armed_.store(true, std::memory_order_release);
  }

  /// Re-arm for another attempt: clears the deadline, its expiry, and any
  /// observation countdown. An explicit Cancelled stays latched.
  void reset() noexcept {
    observation_armed_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
    std::uint8_t expired = std::uint8_t(CancelReason::DeadlineExpired);
    reason_.compare_exchange_strong(expired, 0, std::memory_order_release,
                                    std::memory_order_relaxed);
  }

  /// One cooperative observation: true once the source is cancelled or its
  /// deadline has passed (the expiry is latched as the reason).
  [[nodiscard]] bool cancelled() const noexcept {
    if (observation_armed_.load(std::memory_order_acquire)) observe();
    const std::uint8_t reason = reason_.load(std::memory_order_acquire);
    if (reason != 0) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != kNoDeadline && now_ns() >= deadline) {
      std::uint8_t expected = 0;
      reason_.compare_exchange_strong(
          expected, std::uint8_t(CancelReason::DeadlineExpired),
          std::memory_order_release, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  [[nodiscard]] CancelReason reason() const noexcept {
    return CancelReason(reason_.load(std::memory_order_acquire));
  }

 private:
  void observe() const noexcept {
    if (observations_left_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::uint8_t expected = 0;
      reason_.compare_exchange_strong(expected,
                                      std::uint8_t(CancelReason::Cancelled),
                                      std::memory_order_release,
                                      std::memory_order_relaxed);
      observation_armed_.store(false, std::memory_order_relaxed);
    }
  }

  static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // mutable: observation counting and reason latching happen from const
  // observers; both are idempotent latches, not logical state changes.
  mutable std::atomic<std::uint8_t> reason_{0};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  mutable std::atomic<bool> observation_armed_{false};
  mutable std::atomic<std::int64_t> observations_left_{0};
};

/// Cheap copyable observer handle. Default-constructed tokens are inert
/// (never cancelled), so every API that grew a token parameter keeps its old
/// behavior for existing call sites. A token borrows its source: the source
/// must outlive every structure still polling the token.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(const CancelSource& source) : source_(&source) {}

  [[nodiscard]] bool valid() const noexcept { return source_ != nullptr; }
  [[nodiscard]] bool cancelled() const noexcept {
    return source_ != nullptr && source_->cancelled();
  }
  [[nodiscard]] CancelReason reason() const noexcept {
    return source_ == nullptr ? CancelReason::None : source_->reason();
  }

  /// Throw CancelledError when cancelled (the join-point raise: called once
  /// after a graph/loop/pipeline has fully drained).
  void raise_if_cancelled() const {
    if (!cancelled()) return;
    const CancelReason why = reason();
    throw CancelledError(why, why == CancelReason::DeadlineExpired
                                  ? "deadline expired"
                                  : "cancelled");
  }

 private:
  const CancelSource* source_ = nullptr;
};

}  // namespace jsceres
