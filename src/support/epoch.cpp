#include "support/epoch.h"

namespace jsceres {

EpochDomain& EpochDomain::global() {
  static EpochDomain* domain = new EpochDomain();  // leaked: see header
  return *domain;
}

}  // namespace jsceres
