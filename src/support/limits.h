#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace jsceres {

/// Host-level failure: uncaught JS exception, tick budget exceeded, call
/// stack overflow, or any EngineLimits trip (memory ceiling, parse depth,
/// wall-clock watchdog). Always recoverable — after catching one the engine
/// object that threw it is unwound, destructible, and reusable.
class EngineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard resource limits for one engine session (mujs-style JS_STACKSIZE /
/// JS_ENVLIMIT discipline). A zero/negative value disables that limit; the
/// defaults keep everything off except the parser recursion cap, which is
/// always enforced (unbounded native recursion is never recoverable).
///
/// Threaded through lexer -> parser -> interpreter -> Ceres: js::parse takes
/// the struct for the front-end caps, InterpreterConfig embeds it for the
/// runtime caps, and the instrumentation arenas charge the interpreter's
/// AllocationLedger through the thread-local scope installed around
/// execution.
struct EngineLimits {
  /// Ceiling on ledger-charged engine allocations, in bytes. 0 = unlimited.
  std::size_t max_memory_bytes = 0;
  /// Parser recursion cap (statement/expression nesting depth). Always
  /// enforced; the default sits far below native stack exhaustion
  /// (~15 C++ frames and a few KB of stack per nesting level).
  int max_parse_depth = 400;
  /// Cap on the token count of one program. 0 = unlimited.
  std::size_t max_tokens = 0;
  /// Cap on source size in bytes, checked before lexing. 0 = unlimited.
  std::size_t max_source_bytes = 0;
  /// Cap on any array's length (dense elements). 0 = unlimited.
  std::size_t max_array_length = 0;
  /// Wall-clock watchdog over one run()/call(), in milliseconds; trips even
  /// when virtual-time ticks are unlimited. 0 = disabled.
  std::int64_t max_wall_ms = 0;
  /// Fault injection: the (N+1)th ledger charge after arming throws
  /// EngineError, exercising every recovery path without a real ceiling.
  /// Negative = disabled.
  std::int64_t fail_after_n_allocations = -1;
};

/// Per-interpreter accounting of engine-owned allocations. Every growth
/// point (object slots, strings, environments, shape flat-tables, ArgStack
/// segments, stamp-tree arenas, analyzer tables) charges the ledger BEFORE
/// allocating/mutating, so a trip raises a recoverable EngineError while the
/// structure it gated is still in its previous consistent state.
///
/// Process-lifetime structures that cannot hold an interpreter pointer
/// (shape trees, stamp arenas) charge opportunistically through the
/// thread-local `current()` ledger, installed by AllocationLedger::Scope for
/// the duration of a run. Thread-locality keeps the scheme exact under TSan:
/// a worker thread without a scope simply doesn't charge.
class AllocationLedger {
 public:
  AllocationLedger() = default;
  explicit AllocationLedger(const EngineLimits& limits)
      : ceiling_(limits.max_memory_bytes),
        fail_after_(limits.fail_after_n_allocations) {}

  /// Account `bytes` of imminent growth. Throws EngineError (and records
  /// nothing) when the ceiling would be exceeded or the injection counter
  /// expires. Call before the allocation it gates.
  void charge(std::size_t bytes) {
    ++charges_;
    if (fail_after_ >= 0 && charges_ > fail_after_) {
      throw EngineError("injected allocation failure (charge #" +
                        std::to_string(charges_) + ")");
    }
    if (ceiling_ != 0 && in_use_ + bytes > ceiling_) {
      throw EngineError("memory limit exceeded: " +
                        std::to_string(in_use_ + bytes) + " > " +
                        std::to_string(ceiling_) + " bytes");
    }
    in_use_ += bytes;
    if (in_use_ > peak_) peak_ = in_use_;
  }

  /// Return `bytes` to the budget (shrink/free of a charged structure).
  void release(std::size_t bytes) noexcept {
    in_use_ = bytes > in_use_ ? 0 : in_use_ - bytes;
  }

  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }
  [[nodiscard]] std::int64_t charges() const noexcept { return charges_; }

  /// The ledger scoped to the current thread (nullptr outside any run).
  [[nodiscard]] static AllocationLedger* current() noexcept;

  /// Charge the current thread's ledger, if any. For process-lifetime
  /// structures (shapes, stamp arenas) that grow during interpretation but
  /// hold no interpreter reference.
  static void charge_current(std::size_t bytes) {
    if (AllocationLedger* ledger = current()) ledger->charge(bytes);
  }

  /// RAII installer for `current()`; nests (restores the previous ledger).
  class Scope {
   public:
    explicit Scope(AllocationLedger* ledger) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    AllocationLedger* previous_;
  };

 private:
  std::size_t ceiling_ = 0;       // 0: unlimited
  std::int64_t fail_after_ = -1;  // <0: injection disabled
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::int64_t charges_ = 0;
};

}  // namespace jsceres
