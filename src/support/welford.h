#pragma once

#include <cmath>
#include <cstdint>

namespace jsceres {

/// Welford's online algorithm for mean and variance, exactly as cited by the
/// paper (§3.2, [36]) for maintaining loop trip-count and running-time
/// statistics without storing samples.
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    total_ += x;
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Population variance (the paper reports spread across all observed
  /// instances, not a sample estimate).
  [[nodiscard]] double variance() const {
    return n_ == 0 ? 0.0 : m2_ / double(n_);
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void merge(const Welford& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = double(n_);
    const auto n2 = double(other.n_);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
    n_ += other.n_;
    total_ += other.total_;
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double total_ = 0.0;
};

}  // namespace jsceres
