#include "support/service.h"

#include <algorithm>
#include <chrono>

#include "ceres/char_stack.h"
#include "interp/shape.h"
#include "js/atom.h"
#include "rivertrail/thread_pool.h"
#include "support/epoch.h"
#include "support/obs.h"

namespace jsceres {

const char* to_string(ServiceState state) {
  switch (state) {
    case ServiceState::Completed:
      return "completed";
    case ServiceState::Degraded:
      return "degraded";
    case ServiceState::Cancelled:
      return "cancelled";
    case ServiceState::TimedOut:
      return "timed-out";
    case ServiceState::Quarantined:
      return "quarantined";
    case ServiceState::Shed:
      return "shed";
  }
  return "?";
}

/// Shared completion state of one submitted request. Owned jointly by the
/// ticket, the admission queue / active set, and the pool task, so it
/// outlives whichever of them finishes last.
struct ServiceTicket::Entry {
  ServiceRequest request;
  int requested_mode = 3;  // mode the caller asked for, before admission
  int admitted_mode = 3;   // may be below requested_mode (governor)
  CancelSource cancel;    // armed per-attempt; watchdog latches Cancelled
  /// steady_clock ns when the session actually started running; 0 while
  /// queued. The watchdog keys stuck detection off this.
  std::atomic<std::int64_t> started_ns{0};
  std::atomic<bool> watchdog_flagged{false};

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool done = false;
  ServiceOutcome outcome;

  void complete(ServiceOutcome result) {
    {
      const std::lock_guard lock(mutex);
      outcome = std::move(result);
      done = true;
    }
    cv.notify_all();
  }
};

ServiceOutcome ServiceTicket::wait() const {
  std::unique_lock lock(entry_->mutex);
  entry_->cv.wait(lock, [this] { return entry_->done; });
  return entry_->outcome;
}

std::optional<ServiceOutcome> ServiceTicket::wait_for(std::int64_t ms) const {
  std::unique_lock lock(entry_->mutex);
  if (ms <= 0) {
    if (!entry_->done) return std::nullopt;
    return entry_->outcome;
  }
  // wait_for's predicate form re-checks under the lock, so the
  // timeout-then-complete race collapses to two clean cases: the outcome
  // either became visible within the window (returned) or it did not
  // (nullopt now, a later wait sees it).
  if (!entry_->cv.wait_for(lock, std::chrono::milliseconds(ms),
                           [this] { return entry_->done; })) {
    return std::nullopt;
  }
  return entry_->outcome;
}

bool ServiceTicket::done() const {
  const std::lock_guard lock(entry_->mutex);
  return entry_->done;
}

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ServiceState from_session_state(SessionState state) {
  switch (state) {
    case SessionState::Completed:
      return ServiceState::Completed;
    case SessionState::Degraded:
      return ServiceState::Degraded;
    case SessionState::Cancelled:
      return ServiceState::Cancelled;
    case SessionState::TimedOut:
      return ServiceState::TimedOut;
    case SessionState::Quarantined:
      return ServiceState::Quarantined;
  }
  return ServiceState::Quarantined;
}

}  // namespace

std::size_t AnalysisService::shared_structure_bytes() {
  return js::atom_table_bytes() + interp::Shape::live_bytes() +
         ceres::stamp_bytes_live() + EpochDomain::global().deferred_bytes();
}

std::size_t AnalysisService::run_reclamation_pass() {
  // One pass at a time, process-wide. Two overlapping passes are unsafe
  // even though each structure locks itself: pass A's epoch reclaim could
  // recycle atom slots under a floor that pass B's still-running shape
  // prune has not applied yet, leaving B to erase shape-map entries whose
  // keys hash through recycled atom data.
  static std::mutex pass_mutex;
  const std::lock_guard lock(pass_mutex);
  JSCERES_OBS_SPAN("service", "reclamation_pass");
#if JSCERES_OBS
  const std::int64_t obs_pass_start = obs::mono_ns();
#endif
  // The floor is computed once and used for BOTH structures: sessions that
  // end mid-pass advance the epoch, and a refreshed floor in the second
  // step would free atoms the first step still considered reachable.
  const auto floor = EpochDomain::global().min_pinned();
  std::size_t freed = interp::Shape::reclaim_unused(floor);
  freed += EpochDomain::global().reclaim(floor);
#if JSCERES_OBS
  JSCERES_OBS_COUNT("epoch.reclaim_passes", 1);
  JSCERES_OBS_COUNT("epoch.freed_bytes", freed);
  JSCERES_OBS_HIST("epoch.reclaim_pass_us",
                   (obs::mono_ns() - obs_pass_start) / 1000);
#endif
  return freed;
}

AnalysisService::AnalysisService(rivertrail::ThreadPool& pool,
                                 ServiceOptions options)
    : pool_(&pool),
      options_(options),
      governor_(options.governor),
      supervisor_(pool, options.supervisor) {
  if (options_.watchdog_interval_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

void AnalysisService::begin_shutdown() {
  const std::lock_guard lock(mutex_);
  shutting_down_ = true;
}

AnalysisService::~AnalysisService() {
  begin_shutdown();
  drain();
  if (watchdog_.joinable()) {
    {
      const std::lock_guard lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  // Final reclamation: no session is pinned anymore, so everything retired
  // is reclaimable.
  EpochDomain::global().advance();
  run_reclamation_pass();
}

ServiceTicket AnalysisService::submit(ServiceRequest request) {
  auto entry = std::make_shared<Entry>();
  entry->request = std::move(request);
  entry->requested_mode = entry->request.session.mode;
  entry->admitted_mode = entry->requested_mode;
  entry->request.session.cancel = &entry->cancel;

  const auto shed = [&entry](const char* reason) {
    ServiceOutcome outcome;
    outcome.state = ServiceState::Shed;
    outcome.shed_reason = reason;
    outcome.session.name = entry->request.session.name;
    entry->complete(std::move(outcome));
    return ServiceTicket(entry);
  };

  const std::lock_guard lock(mutex_);
  ++submitted_;
  JSCERES_OBS_COUNT("service.submitted", 1);
  if (shutting_down_) {
    ++shed_shutdown_;
    JSCERES_OBS_COUNT("service.shed_shutdown", 1);
    return shed("shutdown");
  }

  const bool can_run_now =
      active_.size() < options_.max_active &&
      tenant_active_[entry->request.tenant] < options_.max_per_tenant;
  // Queue capacity is checked before the governor so a queue-full shed
  // leaves no reservation to unwind.
  if (!can_run_now && queue_.size() >= options_.max_queue) {
    ++shed_queue_full_;
    JSCERES_OBS_COUNT("service.shed_queue_full", 1);
    return shed("queue-full");
  }

  switch (governor_.admit(entry->request.memory_estimate,
                          shared_structure_bytes())) {
    case AdmitDecision::Shed:
      ++shed_memory_;
      JSCERES_OBS_COUNT("service.shed_memory", 1);
      return shed("memory-pressure");
    case AdmitDecision::Degrade:
      // Admit one rung down: the paper's ladder (3 -> 1 -> 0), entered
      // lower so the session's instrumentation footprint shrinks with the
      // process's memory headroom. The supervisor may still degrade
      // further on its own.
      if (entry->admitted_mode > 0) {
        entry->admitted_mode = entry->admitted_mode >= 3 ? 1 : 0;
        ++degraded_admissions_;
      }
      break;
    case AdmitDecision::Admit:
      break;
  }
  entry->request.session.mode = entry->admitted_mode;

  if (can_run_now) {
    dispatch_locked(entry);
  } else {
    queue_.push_back(entry);
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
    JSCERES_OBS_GAUGE_SET("service.queue_depth", queue_.size());
  }
  return ServiceTicket(entry);
}

void AnalysisService::dispatch_locked(const std::shared_ptr<Entry>& entry) {
  active_.push_back(entry);
  active_high_water_ = std::max(active_high_water_, active_.size());
  ++tenant_active_[entry->request.tenant];
  pool_->submit([this, entry] { run_entry(entry); });
}

void AnalysisService::run_entry(const std::shared_ptr<Entry>& entry) {
  entry->started_ns.store(now_ns(), std::memory_order_release);

  ServiceOutcome outcome;
  {
    // Pin first, scope second: the scope's destructor retires dead atoms
    // at the then-current epoch, and it must run while our pin ordering is
    // irrelevant but *before* the unpin so reverse destruction keeps the
    // session's own lookups safe to the last instruction.
    const EpochPin pin;
    const js::AtomScope scope;
    outcome.session = supervisor_.run_one(entry->request.session);
  }

  outcome.state = from_session_state(outcome.session.state);
  if (outcome.session.state == SessionState::Cancelled &&
      entry->watchdog_flagged.load(std::memory_order_acquire)) {
    // The cancel was the watchdog's, not a caller's: the session was stuck
    // and has been forcibly reclaimed — that is a quarantine.
    outcome.state = ServiceState::Quarantined;
    outcome.watchdog_quarantined = true;
  } else if (outcome.session.state == SessionState::Completed &&
             entry->admitted_mode < entry->requested_mode) {
    outcome.state = ServiceState::Degraded;  // admission already degraded it
  }

  finish_entry(entry, outcome.session.peak_bytes);
  entry->complete(std::move(outcome));
}

void AnalysisService::finish_entry(const std::shared_ptr<Entry>& entry,
                                   std::size_t peak_bytes) {
  governor_.release(entry->request.memory_estimate, peak_bytes);
  EpochDomain::global().advance();

#if JSCERES_OBS
  // Per-tenant session latency. Dynamic names intern once per tenant; the
  // registry's cell cap turns a hostile tenant-name cardinality into the
  // obs.registry_overflow counter instead of unbounded growth.
  const std::int64_t started =
      entry->started_ns.load(std::memory_order_acquire);
  if (started != 0) {
    const std::int64_t ms = (now_ns() - started) / 1'000'000;
    JSCERES_OBS_HIST("service.session_ms", ms);
    const std::string& tenant = entry->request.tenant;
    obs::Histogram::at("service.session_ms." +
                       (tenant.empty() ? std::string("anon") : tenant))
        .record(std::uint64_t(ms));
  }
  JSCERES_OBS_COUNT("service.completed", 1);
#endif

  // Shutdown edge: once the final unlock below publishes "queue and active
  // both empty", drain() may return and the destructor may start tearing
  // the service down — so that unlock must be this handler's LAST touch of
  // any member. The amortized reclamation pass therefore runs *before* the
  // entry leaves the active set (the session slot is held a little longer,
  // which only delays the next dispatch, never correctness); the old shape
  // — notify idle, then re-lock mutex_ to bank reclaimed_bytes_ — was a
  // use-after-destruction window for a submit/destructor race.
  bool run_reclaim = false;
  {
    const std::lock_guard lock(mutex_);
    ++completed_;
    if (++completions_since_reclaim_ >= options_.reclaim_every) {
      completions_since_reclaim_ = 0;
      run_reclaim = true;
    }
  }
  std::size_t freed = 0;
  if (run_reclaim) freed = run_reclamation_pass();

  std::shared_ptr<Entry> next;
  {
    const std::lock_guard lock(mutex_);
    reclaimed_bytes_ += freed;
    active_.erase(std::remove(active_.begin(), active_.end(), entry),
                  active_.end());
    const auto it = tenant_active_.find(entry->request.tenant);
    if (it != tenant_active_.end() && --it->second == 0) {
      tenant_active_.erase(it);
    }
    // Dispatch the next eligible queued request (FIFO, skipping requests
    // whose tenant is at its cap — they keep their queue position).
    if (active_.size() < options_.max_active) {
      for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
        if (tenant_active_[(*qit)->request.tenant] < options_.max_per_tenant) {
          next = *qit;
          queue_.erase(qit);
          break;
        }
      }
      if (next != nullptr) dispatch_locked(next);
    }
    JSCERES_OBS_GAUGE_SET("service.queue_depth", queue_.size());
    JSCERES_OBS_GAUGE_SET("service.active_sessions", active_.size());
    if (queue_.empty() && active_.empty()) idle_cv_.notify_all();
  }
}

void AnalysisService::drain() {
  // Help the pool while waiting: drain() may be called from a thread the
  // sessions' own parallel work would otherwise like to use, and helping
  // keeps a single-worker pool deadlock-free.
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      if (queue_.empty() && active_.empty()) return;
      if (idle_cv_.wait_for(lock, std::chrono::milliseconds(1),
                            [this] { return queue_.empty() && active_.empty(); })) {
        return;
      }
    }
    pool_->try_run_one();
  }
}

ServiceStats AnalysisService::stats() const {
  ServiceStats out;
  {
    const std::lock_guard lock(mutex_);
    out.submitted = submitted_;
    out.completed = completed_;
    out.shed_queue_full = shed_queue_full_;
    out.shed_memory = shed_memory_;
    out.shed_shutdown = shed_shutdown_;
    out.degraded_admissions = degraded_admissions_;
    out.watchdog_quarantines = watchdog_quarantines_;
    out.queue_depth = queue_.size();
    out.active_sessions = active_.size();
    out.queue_high_water = queue_high_water_;
    out.active_high_water = active_high_water_;
    out.reclaimed_bytes = reclaimed_bytes_;
  }
  out.governor_reserved_bytes = governor_.reserved_bytes();
  out.governor_high_water_bytes = governor_.high_water_bytes();
  out.shared_structure_bytes = shared_structure_bytes();
  return out;
}

void AnalysisService::watchdog_main() {
  for (;;) {
    {
      std::unique_lock lock(watchdog_mutex_);
      watchdog_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.watchdog_interval_ms),
          [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    if (options_.watchdog_stuck_ms <= 0) continue;
    const std::int64_t now = now_ns();
    const std::int64_t stuck_ns = options_.watchdog_stuck_ms * 1'000'000;
    const std::lock_guard lock(mutex_);
    for (const auto& entry : active_) {
      const std::int64_t started =
          entry->started_ns.load(std::memory_order_acquire);
      if (started == 0 || now - started < stuck_ns) continue;
      if (entry->watchdog_flagged.exchange(true, std::memory_order_acq_rel)) {
        continue;  // already flagged on a previous scan
      }
      // Explicit cancel, not a deadline: the supervisor's reset() clears
      // deadline expiries between attempts, but an explicit cancel is
      // sticky — the stuck session cannot resurrect itself by retrying.
      entry->cancel.request_cancel();
      ++watchdog_quarantines_;
      JSCERES_OBS_COUNT("service.watchdog_quarantines", 1);
    }
  }
}

void AnalysisService::refresh_engine_gauges() {
  JSCERES_OBS_GAUGE_SET("interp.shape_count", interp::Shape::live_count());
  JSCERES_OBS_GAUGE_SET("interp.shape_bytes", interp::Shape::live_bytes());
  JSCERES_OBS_GAUGE_SET("js.atom_table_size", js::atom_table_size());
  JSCERES_OBS_GAUGE_SET("js.atom_table_bytes", js::atom_table_bytes());
  JSCERES_OBS_GAUGE_SET("ceres.stamp_segments_live",
                        ceres::stamp_segments_live());
  JSCERES_OBS_GAUGE_SET("ceres.stamp_bytes_live", ceres::stamp_bytes_live());
  JSCERES_OBS_GAUGE_SET("epoch.deferred_bytes",
                        EpochDomain::global().deferred_bytes());
  JSCERES_OBS_GAUGE_SET("epoch.deferred_count",
                        EpochDomain::global().deferred_count());
  JSCERES_OBS_GAUGE_SET("epoch.pinned_sessions",
                        EpochDomain::global().pinned_count());
}

obs::Snapshot AnalysisService::metrics_snapshot() const {
  refresh_engine_gauges();
  {
    const std::lock_guard lock(mutex_);
    JSCERES_OBS_GAUGE_SET("service.queue_depth", queue_.size());
    JSCERES_OBS_GAUGE_SET("service.active_sessions", active_.size());
  }
  JSCERES_OBS_GAUGE_SET("governor.reserved_bytes", governor_.reserved_bytes());
  JSCERES_OBS_GAUGE_SET("governor.max_underestimate_bytes",
                        governor_.max_underestimate());
  JSCERES_OBS_GAUGE_SET(
      "governor.pressure_pct",
      std::int64_t(governor_.pressure(shared_structure_bytes()) * 100.0));
  return obs::snapshot();
}

}  // namespace jsceres
