#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/cancel.h"
#include "support/govern.h"
#include "support/obs.h"
#include "support/supervisor.h"

namespace jsceres {

/// Terminal state of a service request. Extends SessionState with the one
/// outcome only the ingress layer can produce: Shed — the request was
/// rejected at admission (queue full, memory ceiling, shutdown) and never
/// became a session. A shed is structured and immediate: submit() never
/// blocks the caller and a ticket for a shed request is already complete.
enum class ServiceState : std::uint8_t {
  Completed,
  Degraded,     // answered below the requested mode (ladder or admission)
  Cancelled,
  TimedOut,
  Quarantined,  // includes sessions the watchdog declared stuck
  Shed,
};

const char* to_string(ServiceState state);

/// One tenant-attributed unit of ingress work.
struct ServiceRequest {
  SessionRequest session;
  /// Tenant key for the per-tenant concurrency cap (empty: the anonymous
  /// tenant, still capped as one tenant).
  std::string tenant;
  /// Bytes the governor reserves at admission; reconciled against the
  /// session's measured peak on release. Callers that underestimate show up
  /// in MemoryGovernor::max_underestimate().
  std::size_t memory_estimate = 1u << 20;
};

/// The structured result every submit() eventually yields — shed or served,
/// never a hang and never an exception.
struct ServiceOutcome {
  ServiceState state = ServiceState::Shed;
  /// Why admission rejected this request ("queue-full", "memory-pressure",
  /// "shutdown"); empty when the request became a session.
  std::string shed_reason;
  /// True when the watchdog cancelled the session for running past the
  /// stuck threshold (state reads Quarantined).
  bool watchdog_quarantined = false;
  /// The supervised session result; default-constructed for a shed.
  SessionOutcome session;
};

class AnalysisService;

/// Completion handle for one submitted request. wait() blocks until the
/// outcome is final; a shed ticket is complete before submit() returns.
class ServiceTicket {
 public:
  /// Block until the outcome is final, then return a copy. By value on
  /// purpose: the ticket is the outcome's only owner, so a reference would
  /// dangle in the natural one-liner `service.submit(...).wait()`.
  ServiceOutcome wait() const;

  /// Bounded wait: the outcome if it turns final within `ms` milliseconds
  /// (<= 0: an immediate check), std::nullopt otherwise. A nullopt return
  /// claims nothing about the future — the outcome may complete a
  /// nanosecond later and a subsequent wait()/wait_for() will see it. The
  /// server's writer loop polls tickets with this so a wire client can
  /// never pin a connection thread on an outcome forever.
  [[nodiscard]] std::optional<ServiceOutcome> wait_for(std::int64_t ms) const;

  [[nodiscard]] bool done() const;

 private:
  friend class AnalysisService;
  struct Entry;
  explicit ServiceTicket(std::shared_ptr<Entry> entry)
      : entry_(std::move(entry)) {}

  std::shared_ptr<Entry> entry_;
};

struct ServiceOptions {
  /// Sessions running concurrently (each occupies one pool task).
  std::size_t max_active = 4;
  /// Bounded admission queue; a submit that finds it full is shed.
  std::size_t max_queue = 16;
  /// Concurrent sessions per tenant; excess requests queue behind the cap
  /// even when global capacity is free.
  std::size_t max_per_tenant = 2;
  /// Memory governor knobs (ceiling 0: admission never sheds on memory).
  MemoryGovernor::Options governor;
  /// Watchdog scan period; 0 disables the watchdog thread.
  std::int64_t watchdog_interval_ms = 0;
  /// Wall time after which a running session is declared stuck and
  /// cancelled (sticky — it wins over any retry rung). 0 with a nonzero
  /// interval means the watchdog only maintains diagnostics.
  std::int64_t watchdog_stuck_ms = 0;
  /// Run the reclamation pass (shape prune, then epoch reclaim) every N
  /// session completions. The pass is amortized bookkeeping, not a GC
  /// pause: it frees only state no live session can reach.
  std::size_t reclaim_every = 8;
  SupervisorOptions supervisor;
};

/// Point-in-time service counters (all monotonic except the gauges).
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;   // sessions that ran to a terminal outcome
  std::size_t shed_queue_full = 0;
  std::size_t shed_memory = 0;
  std::size_t shed_shutdown = 0;
  std::size_t degraded_admissions = 0;  // admitted below the asked mode
  std::size_t watchdog_quarantines = 0;
  std::size_t queue_depth = 0;         // gauge
  std::size_t active_sessions = 0;     // gauge
  std::size_t queue_high_water = 0;
  std::size_t active_high_water = 0;
  std::size_t governor_reserved_bytes = 0;   // gauge
  std::size_t governor_high_water_bytes = 0;
  std::size_t shared_structure_bytes = 0;    // gauge (atoms+shapes+stamps)
  std::size_t reclaimed_bytes = 0;  // total freed by reclamation passes
};

/// Ingress front-end of the resident analysis service: a bounded admission
/// queue over SessionSupervisor with memory-governed admission, per-tenant
/// concurrency caps, a stuck-session watchdog, and epoch-scoped global
/// state so the process does not accrete atoms/shapes/stamp segments across
/// tenants.
///
/// Structure: submit() decides synchronously — shed (structured, instant),
/// run now (a pool task is dispatched inline), or queue (bounded). There is
/// no dispatcher thread: the completion handler of each finishing session
/// dispatches the next eligible queued request, so the service is driven
/// entirely by the pool it already shares with the sessions' own parallel
/// work. Each running session holds an epoch pin and a thread-local
/// AtomScope; completion releases both, advances the epoch, and (amortized)
/// runs shape pruning before epoch reclamation — the documented ordering
/// that lets atom slots recycle safely.
class AnalysisService {
 public:
  AnalysisService(rivertrail::ThreadPool& pool, ServiceOptions options = {});
  /// Drains (queued requests still run; new submits shed with "shutdown"),
  /// stops the watchdog, and runs a final reclamation pass.
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Admit, queue, or shed `request`. Never blocks on capacity: the worst
  /// case is an immediate structured Shed. The returned ticket's wait() is
  /// the only blocking point, and only for admitted requests.
  ServiceTicket submit(ServiceRequest request);

  /// Block until every admitted request has a final outcome.
  void drain();

  /// Flip the service into shutdown: every later submit() is shed with the
  /// structured "shutdown" reason; already-admitted requests still run.
  /// Idempotent, and the first thing the destructor does — exposed so
  /// ingress layers (and tests) can fence submitters racing teardown
  /// before the destructor starts invalidating state.
  void begin_shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] MemoryGovernor& governor() { return governor_; }

  /// Full observability snapshot: refreshes the cross-layer engine gauges
  /// (shape tree, atom table, stamp segments, epoch domain) plus this
  /// service's own gauges, then aggregates the whole metrics registry.
  [[nodiscard]] obs::Snapshot metrics_snapshot() const;

  /// Push the process-wide shared-structure gauges into the registry.
  /// Static: callable without a service (the soak driver's periodic dump).
  static void refresh_engine_gauges();

  /// Bytes held by the process-wide shared structures the governor folds
  /// into pressure: atom table + shape tree + stamp segments + frees still
  /// deferred on the epoch domain.
  static std::size_t shared_structure_bytes();

  /// One serialized reclamation pass over every shared structure: computes
  /// the epoch floor once, prunes the shape tree with it, then reclaims the
  /// epoch domain capped to the SAME floor. Passes from different threads
  /// are mutually exclusive — interleaving them would let one thread's atom
  /// recycling overtake another thread's shape prune and resurrect the
  /// shapes-before-atoms ordering hazard (see interp/shape.h). Returns the
  /// bytes freed.
  static std::size_t run_reclamation_pass();

 private:
  using Entry = ServiceTicket::Entry;

  void dispatch_locked(const std::shared_ptr<Entry>& entry);
  void run_entry(const std::shared_ptr<Entry>& entry);
  void finish_entry(const std::shared_ptr<Entry>& entry,
                    std::size_t peak_bytes);
  void watchdog_main();

  rivertrail::ThreadPool* pool_;
  ServiceOptions options_;
  MemoryGovernor governor_;
  SessionSupervisor supervisor_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;  // drain(): queue and active both empty
  std::deque<std::shared_ptr<Entry>> queue_;
  std::vector<std::shared_ptr<Entry>> active_;
  std::unordered_map<std::string, std::size_t> tenant_active_;
  bool shutting_down_ = false;

  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t shed_queue_full_ = 0;
  std::size_t shed_memory_ = 0;
  std::size_t shed_shutdown_ = 0;
  std::size_t degraded_admissions_ = 0;
  std::size_t watchdog_quarantines_ = 0;
  std::size_t queue_high_water_ = 0;
  std::size_t active_high_water_ = 0;
  std::size_t completions_since_reclaim_ = 0;
  std::size_t reclaimed_bytes_ = 0;

  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace jsceres
