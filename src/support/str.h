#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jsceres::str {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Split on any whitespace run, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

std::string to_lower(std::string_view text);

bool contains_word(std::string_view haystack, std::string_view word);

std::string trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style double formatting with `digits` decimals.
std::string fixed(double value, int digits);

/// Compact human format used in the paper's tables: 90000 -> "90k",
/// 54600 -> "54.6k", 120 -> "120".
std::string compact_count(double value);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string repeat(std::string_view unit, int times);

}  // namespace jsceres::str
