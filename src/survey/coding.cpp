#include "survey/coding.h"

#include <algorithm>

#include "support/str.h"

namespace jsceres::survey {

std::set<Category> Coder::code(const std::string& answer) const {
  std::set<Category> codes;
  const std::string lower = str::to_lower(answer);
  for (std::size_t c = 0; c < keywords_.size(); ++c) {
    for (const std::string& keyword : keywords_[c]) {
      if (str::contains_word(lower, keyword)) {
        codes.insert(Category(c));
        break;
      }
    }
  }
  return codes;
}

Coder Coder::rater_a() {
  return Coder({
      /* Games */ {"games", "game", "gaming", "gameplay"},
      /* P2P/Social */ {"peer-to-peer", "social", "chat"},
      /* Desktop like */ {"desktop", "desktop-class"},
      /* Data processing */ {"data analysis", "productivity", "analytics",
                             "spreadsheet", "data processing"},
      /* Audio/Video */ {"audio", "video", "music"},
      /* Visualization */ {"visualization", "charts"},
      /* AR/recognition */ {"augmented", "recognition", "gesture", "voice"},
  });
}

Coder Coder::rater_b() {
  return Coder({
      /* Games */ {"game", "games", "engines", "multiplayer"},
      /* P2P/Social */ {"peer-to-peer", "peers", "social", "messaging"},
      /* Desktop like */ {"desktop"},
      /* Data processing */ {"data analysis", "data processing", "productivity",
                             "number-heavy", "analytics"},
      /* Audio/Video */ {"audio", "video", "compositing"},
      /* Visualization */ {"visualization", "maps"},
      /* AR/recognition */ {"augmented reality", "recognition", "camera",
                            "gesture"},
  });
}

double jaccard(const std::set<Category>& a, const std::set<Category>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  for (const Category c : a) intersection += b.count(c);
  const std::size_t union_size = a.size() + b.size() - intersection;
  return double(intersection) / double(union_size);
}

double inter_rater_agreement(const Dataset& dataset, const Coder& a, const Coder& b,
                             double fraction) {
  std::vector<const Respondent*> answered;
  for (const Respondent& r : dataset.respondents()) {
    if (!r.trends_answer.empty()) answered.push_back(&r);
  }
  const std::size_t sample =
      std::max<std::size_t>(1, std::size_t(double(answered.size()) * fraction));
  double total = 0;
  for (std::size_t i = 0; i < sample; ++i) {
    total += jaccard(a.code(answered[i]->trends_answer),
                     b.code(answered[i]->trends_answer));
  }
  return total / double(sample);
}

}  // namespace jsceres::survey
