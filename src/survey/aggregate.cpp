#include "survey/aggregate.h"

#include "support/str.h"
#include "support/table.h"

namespace jsceres::survey {

Fig1Data fig1_categories(const Dataset& dataset, const Coder& coder) {
  Fig1Data data;
  for (const Respondent& r : dataset.respondents()) {
    if (r.trends_answer.empty()) {
      ++data.no_answer;
      continue;
    }
    const std::set<Category> codes = coder.code(r.trends_answer);
    if (codes.empty()) {
      ++data.uncoded;
      continue;
    }
    for (const Category c : codes) {
      ++data.counts[std::size_t(int(c))];
      ++data.total_codings;
    }
  }
  return data;
}

Fig2Data fig2_bottlenecks(const Dataset& dataset) {
  Fig2Data data;
  for (const Respondent& r : dataset.respondents()) {
    for (int c = 0; c < kComponentCount; ++c) {
      const Rating rating = r.bottlenecks[std::size_t(c)];
      if (rating == Rating::NoAnswer) continue;
      ++data.counts[std::size_t(c)][std::size_t(int(rating))];
    }
  }
  return data;
}

ScaleData fig3_style(const Dataset& dataset) {
  ScaleData data;
  for (const Respondent& r : dataset.respondents()) {
    if (r.style_preference >= 1 && r.style_preference <= 5) {
      ++data.counts[std::size_t(r.style_preference - 1)];
    }
  }
  return data;
}

ScaleData fig4_polymorphism(const Dataset& dataset) {
  ScaleData data;
  for (const Respondent& r : dataset.respondents()) {
    if (r.polymorphism >= 1 && r.polymorphism <= 5) {
      ++data.counts[std::size_t(r.polymorphism - 1)];
    }
  }
  return data;
}

OperatorPreference operators_preference(const Dataset& dataset) {
  OperatorPreference pref;
  for (const Respondent& r : dataset.respondents()) {
    if (!r.answered_operators) continue;
    ++pref.answered;
    if (r.prefers_operators) ++pref.prefer_operators;
  }
  return pref;
}

GlobalsUsage globals_usage(const Dataset& dataset) {
  GlobalsUsage usage;
  for (const Respondent& r : dataset.respondents()) {
    if (r.globals_answer.empty()) continue;
    ++usage.answered;
    const std::string lower = str::to_lower(r.globals_answer);
    if (str::contains_word(lower, "namespace") ||
        str::contains_word(lower, "module")) {
      ++usage.namespace_emulation;
    } else if (str::contains_word(lower, "scripts") ||
               str::contains_word(lower, "server-rendered")) {
      ++usage.inter_script_communication;
    } else if (str::contains_word(lower, "singleton")) {
      ++usage.singletons;
    } else {
      ++usage.other;
    }
  }
  return usage;
}

std::string render_fig1(const Fig1Data& data) {
  BarChart chart(
      "Figure 1. Future web application categories, as identified by respondents",
      40);
  for (int c = 0; c < kCategoryCount; ++c) {
    const auto count = data.counts[std::size_t(c)];
    const double share = data.share(Category(c));
    chart.add(category_label(Category(c)), share,
              std::to_string(count) + " (" + str::fixed(share * 100, 0) + "%)");
  }
  std::string out = chart.render();
  out += "  (no answer / not codable: " + std::to_string(data.no_answer) + " / " +
         std::to_string(data.uncoded) + " of " +
         std::to_string(data.no_answer + data.uncoded + data.total_codings) +
         " responses)\n";
  return out;
}

std::string render_fig2(const Fig2Data& data) {
  Table table({"component", "not an issue", "so, so...", "is a bottleneck",
               "answered"});
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, Table::Align::Right);
  for (int c = 0; c < kComponentCount; ++c) {
    const Component comp = Component(c);
    std::vector<std::string> row{component_label(comp)};
    for (int level = 0; level < 3; ++level) {
      row.push_back(std::to_string(data.counts[std::size_t(c)][std::size_t(level)]) +
                    " (" +
                    str::fixed(data.share(comp, Rating(level)) * 100, 0) + "%)");
    }
    row.push_back(std::to_string(data.answered(comp)));
    table.add_row(std::move(row));
  }
  return "Figure 2. Performance bottlenecks importance as scaled by respondents\n" +
         table.render();
}

std::string render_scale(const ScaleData& data, const std::string& title,
                         const std::string& low_label,
                         const std::string& high_label) {
  BarChart chart(title + "  [1 = " + low_label + " ... 5 = " + high_label + "]", 40);
  for (int level = 1; level <= 5; ++level) {
    const double share = data.share(level);
    chart.add(std::to_string(level), share,
              std::to_string(data.counts[std::size_t(level - 1)]) + " (" +
                  str::fixed(share * 100, 0) + "%)");
  }
  std::string out = chart.render();
  out += "  (" + std::to_string(data.answered()) + " respondents answered)\n";
  return out;
}

}  // namespace jsceres::survey
