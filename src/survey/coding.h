#pragma once

#include <set>
#include <string>
#include <vector>

#include "survey/model.h"

namespace jsceres::survey {

/// Qualitative thematic coding (paper §2.1, citing Cruzes & Dybå [18]): two
/// coders independently assign category codes to free-text answers; the
/// codebook is validated by inter-rater agreement (Jaccard coefficient) of
/// over 80% on 20% of the data.
class Coder {
 public:
  /// Each category has a keyword list; an answer receives a code when any
  /// keyword matches (whole-word, case-insensitive).
  explicit Coder(std::vector<std::vector<std::string>> keywords)
      : keywords_(std::move(keywords)) {}

  [[nodiscard]] std::set<Category> code(const std::string& answer) const;

  /// The two raters of the paper (developed by the second and third
  /// authors): same codebook, independently chosen keyword vocabularies.
  static Coder rater_a();
  static Coder rater_b();

 private:
  std::vector<std::vector<std::string>> keywords_;  // indexed by Category
};

/// Jaccard coefficient between two code sets; 1.0 when both are empty
/// (perfect agreement on "no category").
double jaccard(const std::set<Category>& a, const std::set<Category>& b);

/// Mean Jaccard agreement between two coders over the first `fraction` of
/// the answered responses (the paper uses 20% of the data).
double inter_rater_agreement(const Dataset& dataset, const Coder& a, const Coder& b,
                             double fraction = 0.2);

}  // namespace jsceres::survey
