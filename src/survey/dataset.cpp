#include <algorithm>

#include "support/rng.h"
#include "survey/model.h"

namespace jsceres::survey {

const char* component_label(Component c) {
  switch (c) {
    case Component::ResourceLoading: return "resource loading";
    case Component::DomManipulation: return "DOM manipulation";
    case Component::CanvasImages: return "Canvas (read/write images)";
    case Component::WebGlInteraction: return "WebGL interaction";
    case Component::NumberCrunching: return "number crunching";
    case Component::StylingCss: return "styling (CSS)";
  }
  return "?";
}

const char* category_label(Category c) {
  switch (c) {
    case Category::Games: return "Games";
    case Category::PeerToPeerSocial: return "Peer-to-Peer and Social";
    case Category::DesktopLike: return "Desktop like";
    case Category::DataProcessing: return "Data processing, analysis; productivity";
    case Category::AudioVideo: return "Audio and Video";
    case Category::Visualization: return "Visualization";
    case Category::AugmentedRealityRecognition:
      return "Augmented reality; voice, gesture, user recognition";
  }
  return "?";
}

namespace {

/// Phrase pools per category. Each generated trends answer draws a template
/// from its category's pool; the coders must recover the category from the
/// text (keyword matching), so phrasing is varied deliberately.
const std::vector<std::vector<std::string>>& phrase_pools() {
  static const std::vector<std::vector<std::string>> pools = {
      // Games
      {"commercial-quality 3d games in the browser, like on consoles",
       "webgl games with realistic physics and game ai",
       "multiplayer gaming experiences rivaling native titles",
       "full 3d game engines running on canvas and webgl",
       "isometric games with realistic physics simulation"},
      // Peer-to-Peer and Social
      {"peer-to-peer collaboration apps and social platforms",
       "more social networking, realtime chat between peers",
       "decentralized peer-to-peer messaging and social feeds",
       "social apps with direct browser-to-browser communication"},
      // Desktop like
      {"desktop applications moving to the web",
       "everything that is a desktop app today: office suites, editors",
       "desktop-class software delivered in the browser",
       "web versions of traditional desktop programs"},
      // Data processing / productivity
      {"data analysis dashboards and rich productivity suites",
       "in-browser data processing and spreadsheet-class productivity tools",
       "analytics and number-heavy productivity applications"},
      // Audio and Video
      {"audio and video editing directly in the page",
       "realtime video processing and audio synthesis apps",
       "browser-based music production and video compositing"},
      // Visualization
      {"interactive data visualization of large datasets",
       "rich visualization of scientific data in the browser",
       "complex interactive charts and maps as visualization"},
      // AR / recognition
      {"augmented reality overlays using the camera",
       "voice and gesture recognition as primary input",
       "face and handwriting recognition, augmented reality"},
  };
  return pools;
}

const std::vector<std::string>& uncategorized_answers() {
  // Valid text the codebook deliberately does not cover ("other" answers).
  static const std::vector<std::string> pool = {
      "hard to say, probably more of the same",
      "better tooling for developers themselves",
      "faster javascript engines across devices",
      "more standards work and cross browser fixes",
      "things nobody has imagined yet",
  };
  return pool;
}

const std::vector<std::string>& globals_answers() {
  static const std::vector<std::string> pool = {
      // namespace/module emulation (33 respondents in the paper)
      "emulating a namespace so the code has one entry point",
      "a module system substitute: one global object per library",
      // inter-script communication
      "communicating values between different scripts on the same page",
      "passing state from the server-rendered page to client code on load",
      // singletons
      "a global singleton for the app-wide data structures",
      // other
      "quick prototyping and debugging from the console",
  };
  return pool;
}

}  // namespace

Dataset Dataset::paper_reconstruction(std::uint64_t seed) {
  Rng rng(seed);
  Dataset dataset;
  constexpr int kRespondents = 174;
  dataset.respondents_.resize(kRespondents);
  for (int i = 0; i < kRespondents; ++i) dataset.respondents_[std::size_t(i)].id = i + 1;

  // ---- Figure 1: trends ----------------------------------------------------
  // 45 no-answer/invalid; 85 answers coded into the seven categories with
  // the paper's counts; the remaining 44 valid but uncategorized.
  constexpr int kCategoryCounts[kCategoryCount] = {26, 17, 15, 7, 8, 7, 5};
  {
    std::size_t r = 0;
    for (int c = 0; c < kCategoryCount; ++c) {
      const auto& pool = phrase_pools()[std::size_t(c)];
      for (int k = 0; k < kCategoryCounts[c]; ++k, ++r) {
        dataset.respondents_[r].trends_answer =
            pool[rng.next_below(pool.size())];
      }
    }
    const auto& other = uncategorized_answers();
    for (int k = 0; k < 44; ++k, ++r) {
      dataset.respondents_[r].trends_answer = other[rng.next_below(other.size())];
    }
    // The remaining 45 stay empty (no answer).
  }

  // ---- Figure 2: bottleneck ratings ---------------------------------------
  // Counts straight from the paper's data table:
  // component -> {not an issue, so-so, bottleneck}
  constexpr int kRatings[kComponentCount][3] = {
      {13, 64, 85},  // resource loading
      {23, 65, 83},  // DOM manipulation
      {37, 72, 46},  // Canvas
      {37, 72, 41},  // WebGL
      {65, 65, 35},  // number crunching
      {62, 77, 25},  // styling (CSS)
  };
  for (int comp = 0; comp < kComponentCount; ++comp) {
    std::size_t r = 0;
    for (int level = 0; level < 3; ++level) {
      for (int k = 0; k < kRatings[comp][level]; ++k, ++r) {
        dataset.respondents_[r].bottlenecks[std::size_t(comp)] = Rating(level);
      }
    }
    // Everyone beyond the answered total stays NoAnswer.
  }

  // ---- Figure 3: functional (1) .. imperative (5), 166 answered -----------
  constexpr int kStyle[5] = {52, 50, 41, 15, 8};
  {
    std::size_t r = 0;
    for (int level = 0; level < 5; ++level) {
      for (int k = 0; k < kStyle[level]; ++k, ++r) {
        dataset.respondents_[r].style_preference = level + 1;
      }
    }
  }

  // ---- Figure 4: monomorphic (1) .. polymorphic (5), 168 answered ---------
  // The figure's percentages (58/29/7/5/1) over the text's 168 respondents;
  // see EXPERIMENTS.md for the figure/text discrepancy note.
  constexpr int kPoly[5] = {97, 49, 12, 8, 2};
  {
    std::size_t r = 0;
    for (int level = 0; level < 5; ++level) {
      for (int k = 0; k < kPoly[level]; ++k, ++r) {
        dataset.respondents_[r].polymorphism = level + 1;
      }
    }
  }

  // ---- §2.3: operators vs loops (74% of answerers prefer operators) -------
  {
    constexpr int kAnswered = 160;
    constexpr int kPreferOps = 118;  // 118/160 = 73.75% -> 74%
    for (int i = 0; i < kAnswered; ++i) {
      auto& resp = dataset.respondents_[std::size_t(i)];
      resp.answered_operators = true;
      resp.prefers_operators = i < kPreferOps;
    }
  }

  // ---- §2.4: globals scenarios (105 answered; 33 mention namespacing) -----
  {
    const auto& pool = globals_answers();
    std::size_t r = 0;
    const auto fill = [&](std::size_t pool_index, int count) {
      for (int k = 0; k < count; ++k, ++r) {
        dataset.respondents_[r].globals_answer = pool[pool_index];
      }
    };
    fill(0, 20);  // namespace wording A
    fill(1, 13);  // namespace wording B  (33 total mention namespacing)
    fill(2, 14);  // inter-script communication
    fill(3, 10);  // server->client on load
    fill(4, 18);  // singletons
    fill(5, 30);  // other
  }

  // Shuffle each attribute column independently so the filling order above
  // does not manufacture cross-question correlations (the paper reports
  // marginals only, and marginals survive any per-column permutation).
  auto& rs = dataset.respondents_;
  const auto column_shuffle = [&rng, &rs](auto member) {
    for (std::size_t i = rs.size(); i > 1; --i) {
      std::swap(rs[i - 1].*member, rs[rng.next_below(i)].*member);
    }
  };
  column_shuffle(&Respondent::trends_answer);
  column_shuffle(&Respondent::bottlenecks);
  column_shuffle(&Respondent::style_preference);
  column_shuffle(&Respondent::polymorphism);
  column_shuffle(&Respondent::globals_answer);
  // operators answers travel as a pair.
  for (std::size_t i = rs.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(rs[i - 1].answered_operators, rs[j].answered_operators);
    std::swap(rs[i - 1].prefers_operators, rs[j].prefers_operators);
  }
  return dataset;
}

}  // namespace jsceres::survey
