#pragma once

#include <array>
#include <string>
#include <vector>

namespace jsceres::survey {

/// The six performance components of Figure 2, in the paper's order.
enum class Component {
  ResourceLoading = 0,
  DomManipulation,
  CanvasImages,
  WebGlInteraction,
  NumberCrunching,
  StylingCss,
};
constexpr int kComponentCount = 6;
const char* component_label(Component c);

/// Figure 2 rating levels.
enum class Rating { NoAnswer = -1, NotAnIssue = 0, SoSo = 1, Bottleneck = 2 };

/// Figure 1 categories (thematic codes developed by the two coders).
enum class Category {
  Games = 0,
  PeerToPeerSocial,
  DesktopLike,
  DataProcessing,
  AudioVideo,
  Visualization,
  AugmentedRealityRecognition,
};
constexpr int kCategoryCount = 7;
const char* category_label(Category c);

/// One survey respondent. The paper's questionnaire had 20 questions in four
/// groups (trends, style, tools, bottlenecks); this model carries the
/// answers the evaluation aggregates.
struct Respondent {
  int id = 0;

  /// Open-ended: "what new kinds of applications will trend on the web over
  /// the next 5 years?" Empty = no answer.
  std::string trends_answer;

  /// Figure 2 ratings, indexed by Component.
  std::array<Rating, kComponentCount> bottlenecks{
      Rating::NoAnswer, Rating::NoAnswer, Rating::NoAnswer,
      Rating::NoAnswer, Rating::NoAnswer, Rating::NoAnswer};

  /// Figure 3: 1 = strongly functional ... 5 = strongly imperative; 0 = n/a.
  int style_preference = 0;

  /// Figure 4: 1 = purely monomorphic ... 5 = heavy polymorphism; 0 = n/a.
  int polymorphism = 0;

  /// §2.3: prefers builtin Array operators over explicit loops.
  bool answered_operators = false;
  bool prefers_operators = false;

  /// §2.4 open-ended: "what would be a scenario where using global variables
  /// helps?" Empty = no answer.
  std::string globals_answer;
};

/// The reconstructed 174-respondent dataset (see DESIGN.md: the raw survey
/// data is not public; the dataset is synthesized so that every aggregate
/// the paper reports is reproduced, while the free-text answers are
/// generated from per-category phrase pools so the thematic-coding pipeline
/// has real text to work on).
class Dataset {
 public:
  static Dataset paper_reconstruction(std::uint64_t seed = 2015);

  [[nodiscard]] const std::vector<Respondent>& respondents() const {
    return respondents_;
  }
  [[nodiscard]] std::size_t size() const { return respondents_.size(); }

 private:
  std::vector<Respondent> respondents_;
};

}  // namespace jsceres::survey
