#pragma once

#include <array>
#include <string>

#include "survey/coding.h"
#include "survey/model.h"

namespace jsceres::survey {

/// Figure 1 data: respondents per coded category, plus the no-answer bucket.
struct Fig1Data {
  std::array<int, kCategoryCount> counts{};
  int uncoded = 0;     // valid answers the codebook does not cover
  int no_answer = 0;   // empty responses
  int total_codings = 0;

  [[nodiscard]] double share(Category c) const {
    return total_codings > 0 ? double(counts[std::size_t(int(c))]) / total_codings
                             : 0;
  }
};

Fig1Data fig1_categories(const Dataset& dataset, const Coder& coder);

/// Figure 2 data: per component, counts for the three rating levels.
struct Fig2Data {
  // [component][level]: level 0 = not an issue, 1 = so-so, 2 = bottleneck.
  std::array<std::array<int, 3>, kComponentCount> counts{};

  [[nodiscard]] int answered(Component c) const {
    const auto& row = counts[std::size_t(int(c))];
    return row[0] + row[1] + row[2];
  }
  [[nodiscard]] double share(Component c, Rating level) const {
    const int n = answered(c);
    return n > 0 ? double(counts[std::size_t(int(c))][std::size_t(int(level))]) / n
                 : 0;
  }
};

Fig2Data fig2_bottlenecks(const Dataset& dataset);

/// Figures 3 and 4: 1..5 preference histograms.
struct ScaleData {
  std::array<int, 5> counts{};
  [[nodiscard]] int answered() const {
    int total = 0;
    for (const int c : counts) total += c;
    return total;
  }
  [[nodiscard]] double share(int level) const {
    return answered() > 0 ? double(counts[std::size_t(level - 1)]) / answered() : 0;
  }
};

ScaleData fig3_style(const Dataset& dataset);
ScaleData fig4_polymorphism(const Dataset& dataset);

/// §2.3 operators-vs-loops summary.
struct OperatorPreference {
  int answered = 0;
  int prefer_operators = 0;
  [[nodiscard]] double share() const {
    return answered > 0 ? double(prefer_operators) / answered : 0;
  }
};
OperatorPreference operators_preference(const Dataset& dataset);

/// §2.4 globals-usage summary (counts by detected usage pattern).
struct GlobalsUsage {
  int answered = 0;
  int namespace_emulation = 0;
  int inter_script_communication = 0;
  int singletons = 0;
  int other = 0;
};
GlobalsUsage globals_usage(const Dataset& dataset);

// --- renderers (the paper's figures, as ASCII bar charts) -------------------
std::string render_fig1(const Fig1Data& data);
std::string render_fig2(const Fig2Data& data);
std::string render_scale(const ScaleData& data, const std::string& title,
                         const std::string& low_label, const std::string& high_label);

}  // namespace jsceres::survey
