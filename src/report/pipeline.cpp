#include "report/pipeline.h"

#include <sstream>

#include "analysis/nest.h"
#include "ceres/abort_advisor.h"
#include "js/loop_scanner.h"
#include "support/str.h"

namespace jsceres::report {

PipelineResult run_pipeline(const workloads::Workload& workload, ResultStore& store) {
  std::ostringstream out;
  out << "# JS-CERES report: " << workload.name << "\n";
  out << workload.category << " / " << workload.description << " (" << workload.url
      << ")\n\n";

  // Steps 1-4: instrumented runs (the three staged modes).
  auto light = workloads::run_workload(workload, workloads::Mode::Lightweight);
  const auto row = light.table2_row();
  out << "## running time (mode 1)\n";
  out << "total " << str::fixed(row.total_s, 2) << " s, active "
      << str::fixed(row.active_s, 2) << " s, in loops "
      << str::fixed(row.in_loops_s, 2) << " s\n\n";

  const auto nests = build_table3_rows(workload);
  out << "## loop nests (modes 2+3)\n";
  for (const auto& nest : nests) {
    out << "- line " << nest.root_line << ": " << str::fixed(nest.share * 100, 0)
        << "% of loop time, " << nest.instances << " instance(s), trips "
        << str::fixed(nest.trips_mean, 1) << "±" << str::fixed(nest.trips_stddev, 1)
        << "; divergence " << analysis::divergence_label(nest.divergence) << ", DOM "
        << (nest.dom_access ? "yes" : "no") << ", deps "
        << analysis::difficulty_label(nest.breaking_deps) << ", difficulty "
        << analysis::difficulty_label(nest.difficulty) << "\n";
  }

  // Steps 5-6: interpreted results — warnings + speculation advice.
  auto dep = workloads::run_workload(workload, workloads::Mode::Dependence);
  out << "\n## dependence warnings (mode 3, "
      << dep.dependence->warnings().size() << " distinct sites; top 10)\n";
  std::size_t shown = 0;
  for (const auto& warning : dep.dependence->warnings()) {
    if (shown++ == 10) break;
    out << "- " << warning.render(dep.program) << "\n";
  }
  out << "\n## speculation advice\n";
  for (const int root : dep.nest_roots) {
    out << ceres::advise(dep.program, *dep.dependence, root, nullptr)
               .render(dep.program);
  }

  // Step 7: version the report.
  PipelineResult result;
  result.report = out.str();
  std::string slug;
  for (const char c : workload.name) {
    slug += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? char(std::tolower(c))
                                                               : '-';
  }
  result.stored_path = store.store(slug, result.report);
  return result;
}

}  // namespace jsceres::report
