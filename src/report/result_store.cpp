#include "report/result_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace jsceres::report {

ResultStore::ResultStore(std::string root_dir) : root_(std::move(root_dir)) {
  std::filesystem::create_directories(root_);
}

std::uint64_t ResultStore::content_hash(const std::string& content) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : content) {
    hash ^= std::uint8_t(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string ResultStore::store(const std::string& name, const std::string& content) {
  char suffix[20];
  std::snprintf(suffix, sizeof suffix, "%08llx",
                static_cast<unsigned long long>(content_hash(content) & 0xffffffffULL));
  const std::string file_name = name + "-" + suffix + ".txt";
  const std::filesystem::path path = std::filesystem::path(root_) / file_name;
  if (!std::filesystem::exists(path)) {
    std::ofstream out(path);
    out << content;
  }
  {
    std::ofstream index(std::filesystem::path(root_) / "index.md", std::ios::app);
    index << "- [" << name << "](" << file_name << ")\n";
  }
  entries_.push_back(path.string());
  return path.string();
}

}  // namespace jsceres::report
