#pragma once

#include <string>

#include "report/result_store.h"
#include "report/tables.h"

namespace jsceres::report {

/// The end-to-end JS-CERES flow of the paper's Fig. 5, as one call:
///
///   1-3. the engine "instruments" the app (hooks attached at run creation),
///   4.   the event script exercises it,
///   5-6. results are interpreted into a human-readable report,
///   7.   the report is versioned into the ResultStore (the github.com
///        substitute).
///
/// The produced report contains the app's Table 2 row, its Table 3 nest
/// rows, the top dependence warnings, and a speculation abort report per
/// nest.
struct PipelineResult {
  std::string report;        // the human-readable report text
  std::string stored_path;   // where the ResultStore filed it
};

PipelineResult run_pipeline(const workloads::Workload& workload, ResultStore& store);

}  // namespace jsceres::report
