#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jsceres::report {

/// Versioned, content-addressed report storage — the reproduction's
/// substitute for JS-CERES's step 6/7 (the proxy committing human-readable
/// result reports to a git repository and pushing them to github.com).
///
/// Each store() writes `<name>-<hash8>.txt` under the root directory and
/// appends an entry to `index.md`; identical content is stored once.
class ResultStore {
 public:
  explicit ResultStore(std::string root_dir);

  /// Returns the path of the stored snapshot.
  std::string store(const std::string& name, const std::string& content);

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] const std::vector<std::string>& entries() const { return entries_; }

  static std::uint64_t content_hash(const std::string& content);

 private:
  std::string root_;
  std::vector<std::string> entries_;
};

}  // namespace jsceres::report
