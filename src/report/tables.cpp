#include "report/tables.h"

#include "analysis/nest.h"
#include "js/loop_scanner.h"
#include "support/str.h"
#include "support/table.h"

namespace jsceres::report {

std::vector<Table2Row> build_table2() {
  std::vector<Table2Row> rows;
  for (const auto& workload : workloads::all_workloads()) {
    auto run = workloads::run_workload(workload, workloads::Mode::Lightweight);
    rows.push_back(Table2Row{workload.name, run.table2_row(), workload.paper});
  }
  return rows;
}

std::string render_table2(const std::vector<Table2Row>& rows) {
  Table table({"Name", "Total (s)", "Active (s)", "In Loops (s)", "paper T/A/L"});
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, Table::Align::Right);
  for (const auto& row : rows) {
    table.add_row({row.name, str::fixed(row.measured.total_s, 2),
                   str::fixed(row.measured.active_s, 2),
                   str::fixed(row.measured.in_loops_s, 2),
                   str::fixed(row.paper.total_s, 0) + " / " +
                       str::fixed(row.paper.active_s, 2) + " / " +
                       str::fixed(row.paper.in_loops_s, 2)});
  }
  return "Table 2. Case study - running time (measured on the simulated "
         "engine; paper values for shape comparison)\n" +
         table.render();
}

std::vector<Table3Row> build_table3_rows(const workloads::Workload& workload) {
  // Mode 2 at full scale: timings, trip counts, DOM column.
  auto profile_run = workloads::run_workload(workload, workloads::Mode::LoopProfile);
  // Mode 3 at reduced scale: dependence evidence (very high overhead — the
  // staged-mode design of the paper).
  auto dep_run = workloads::run_workload(workload, workloads::Mode::Dependence);

  const auto nests =
      analysis::build_nests(*profile_run.loops, profile_run.nest_roots);
  const auto static_info = js::scan_loops(profile_run.program);

  std::vector<Table3Row> rows;
  for (const auto& nest : nests) {
    // The dependence run re-parses the same source: loop ids are identical.
    analysis::LoopNest dep_nest = nest;
    const auto evidence = analysis::gather_evidence(dep_nest, dep_run.program,
                                                    static_info, *dep_run.dependence);
    Table3Row row;
    row.workload = workload.name;
    row.root_line = profile_run.program.loop(nest.root_loop_id).line;
    row.share = nest.share_of_loop_time;
    row.instances = nest.instances;
    row.trips_mean = nest.trips_mean;
    row.trips_stddev = nest.trips_stddev;
    row.divergence = analysis::classify_divergence(evidence);
    row.dom_access = nest.touches_dom || nest.touches_canvas;
    row.breaking_deps = analysis::classify_dependences(evidence);
    row.difficulty = analysis::classify_parallelization(evidence);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Table3Row> build_table3() {
  std::vector<Table3Row> rows;
  for (const auto& workload : workloads::all_workloads()) {
    const auto app_rows = build_table3_rows(workload);
    rows.insert(rows.end(), app_rows.begin(), app_rows.end());
  }
  return rows;
}

std::string render_table3(const std::vector<Table3Row>& rows) {
  Table table({"name", "%", "instances", "trips", "divergence", "DOM",
               "breaking deps", "difficulty"});
  table.set_align(1, Table::Align::Right);
  table.set_align(2, Table::Align::Right);
  table.set_align(3, Table::Align::Right);
  std::string last;
  for (const auto& row : rows) {
    if (!last.empty() && last != row.workload) table.add_rule();
    std::string trips = str::compact_count(row.trips_mean);
    if (row.trips_stddev >= 0.5) {
      trips += "±" + str::compact_count(row.trips_stddev);
    }
    table.add_row({row.workload == last ? "" : row.workload,
                   str::fixed(row.share * 100, 0), str::compact_count(double(row.instances)),
                   trips, analysis::divergence_label(row.divergence),
                   row.dom_access ? "yes" : "no",
                   analysis::difficulty_label(row.breaking_deps),
                   analysis::difficulty_label(row.difficulty)});
    last = row.workload;
  }
  return "Table 3. Case study - detailed inspection of loop nests\n" + table.render();
}

std::vector<AmdahlRow> build_amdahl(analysis::Difficulty max_difficulty) {
  std::vector<AmdahlRow> rows;
  for (const auto& workload : workloads::all_workloads()) {
    auto profile_run = workloads::run_workload(workload, workloads::Mode::LoopProfile);
    auto dep_run = workloads::run_workload(workload, workloads::Mode::Dependence);
    const auto nests =
        analysis::build_nests(*profile_run.loops, profile_run.nest_roots);
    const auto static_info = js::scan_loops(profile_run.program);

    double parallel_ns = 0;
    for (const auto& nest : nests) {
      const auto evidence = analysis::gather_evidence(nest, dep_run.program,
                                                      static_info, *dep_run.dependence);
      if (analysis::classify_parallelization(evidence) <= max_difficulty) {
        parallel_ns += nest.runtime_ns;
      }
    }
    const double active_ns = double(profile_run.clock.cpu_ns());
    AmdahlRow row;
    row.workload = workload.name;
    row.parallel_fraction = active_ns > 0 ? std::min(1.0, parallel_ns / active_ns) : 0;
    row.bound_4_cores = analysis::amdahl_bound(row.parallel_fraction, 4);
    row.bound_infinite = analysis::amdahl_bound(row.parallel_fraction, 0);
    rows.push_back(row);
  }
  return rows;
}

std::string render_amdahl(const std::vector<AmdahlRow>& rows) {
  Table table({"name", "parallel fraction", "bound (4 cores)", "bound (inf)"});
  for (std::size_t c = 1; c <= 3; ++c) table.set_align(c, Table::Align::Right);
  int above_3x = 0;
  for (const auto& row : rows) {
    if (row.bound_infinite > 3.0) ++above_3x;
    table.add_row({row.workload, str::fixed(row.parallel_fraction * 100, 1) + "%",
                   str::fixed(row.bound_4_cores, 2) + "x",
                   std::isfinite(row.bound_infinite)
                       ? str::fixed(row.bound_infinite, 2) + "x"
                       : "inf"});
  }
  return "Amdahl upper bounds from easy-to-parallelize loop nests (paper "
         "SS4.2: >3x for 5 of 12 apps)\n" +
         table.render() + "apps with upper bound > 3x: " + std::to_string(above_3x) +
         " of " + std::to_string(rows.size()) + "\n";
}

}  // namespace jsceres::report
