#pragma once

#include <string>
#include <vector>

#include "analysis/classifier.h"
#include "workloads/runner.h"

namespace jsceres::report {

/// One measured Table 2 row next to the paper's published values.
struct Table2Row {
  std::string name;
  workloads::LightweightResult measured;
  workloads::PaperTable2Row paper;
};

/// Run all 12 workloads under instrumentation mode 1 (+ the sampling
/// profiler) and collect Table 2.
std::vector<Table2Row> build_table2();

std::string render_table2(const std::vector<Table2Row>& rows);

/// One Table 3 row: a reported loop nest of one workload.
struct Table3Row {
  std::string workload;
  int root_line = 0;
  double share = 0;  // of the app's total loop time
  std::int64_t instances = 0;
  double trips_mean = 0;
  double trips_stddev = 0;
  analysis::Divergence divergence = analysis::Divergence::None;
  bool dom_access = false;
  analysis::Difficulty breaking_deps = analysis::Difficulty::VeryEasy;
  analysis::Difficulty difficulty = analysis::Difficulty::VeryEasy;
};

/// Full Table 3 pipeline for one workload: a loop-profiling run (mode 2,
/// full scale) for timing/trips/DOM columns plus a dependence run (mode 3,
/// reduced scale) for columns 5/7/8.
std::vector<Table3Row> build_table3_rows(const workloads::Workload& workload);

/// All 22 rows (every workload's reported nests).
std::vector<Table3Row> build_table3();

std::string render_table3(const std::vector<Table3Row>& rows);

/// §4.2 Amdahl analysis: per application, the fraction of CPU-active time
/// spent in nests classified at most `max_difficulty`, and the resulting
/// speedup bounds.
struct AmdahlRow {
  std::string workload;
  double parallel_fraction = 0;
  double bound_4_cores = 1;
  double bound_infinite = 1;
};

std::vector<AmdahlRow> build_amdahl(
    analysis::Difficulty max_difficulty = analysis::Difficulty::Easy);

std::string render_amdahl(const std::vector<AmdahlRow>& rows);

}  // namespace jsceres::report
