#include "rivertrail/task_graph.h"

#include <stdexcept>

#include "rivertrail/fault_injection.h"

namespace jsceres::rivertrail {

TaskGraph::NodeId TaskGraph::add(std::function<void()> body) {
  const auto id = NodeId(nodes_.size());
  Node& node = nodes_.emplace_back();
  node.body = std::move(body);
  return id;
}

void TaskGraph::depend(NodeId before, NodeId after) {
  if (before >= nodes_.size() || after >= nodes_.size()) {
    throw std::out_of_range("TaskGraph::depend: unknown node id");
  }
  if (before == after) {
    throw std::logic_error("TaskGraph::depend: node cannot depend on itself");
  }
  nodes_[before].successors.push_back(after);
  ++nodes_[after].initial_pending;
  topology_validated_ = false;
}

void TaskGraph::check_acyclic() const {
  // Kahn's algorithm over a scratch copy of the counters: if topological
  // retirement cannot reach every node, running would hang the join.
  std::vector<std::int32_t> pending(nodes_.size());
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < NodeId(nodes_.size()); ++id) {
    pending[id] = nodes_[id].initial_pending;
    if (pending[id] == 0) ready.push_back(id);
  }
  std::size_t retired = 0;
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    ++retired;
    for (const NodeId succ : nodes_[id].successors) {
      if (--pending[succ] == 0) ready.push_back(succ);
    }
  }
  if (retired != nodes_.size()) {
    throw std::logic_error("TaskGraph::run: graph has a dependency cycle");
  }
}

void TaskGraph::spawn(NodeId id) {
  TaskGraph* self = this;
  const auto run_node = [self, id] { self->execute(id); };
  if (!pool_->try_push_local(run_node)) {
    pool_->inject(Task::inline_of(run_node));
  }
}

void TaskGraph::execute(NodeId id) {
  // Loop instead of recursing into the chosen successor: a long chain of
  // nodes (the common frame-graph shape) must not grow the C++ stack.
  while (true) {
    Node& node = nodes_[id];
    if (!error_.has_failed() && !cancel_.cancelled()) {
      try {
        JSCERES_SCHED_EVENT();
        node.body();
      } catch (...) {
        error_.capture();
      }
    }
    NodeId next = kInvalidNode;
    for (const NodeId succ : node.successors) {
      // acq_rel: the final decrement acquires every predecessor's release,
      // so the successor's body sees all predecessor writes.
      if (nodes_[succ].pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (next == kInvalidNode) {
          next = succ;  // continue into this one ourselves (cache-warm)
        } else {
          spawn(succ);  // help-first: stealable by hungry thieves
        }
      }
    }
    gate_->arrive(1);  // last touch of `node` for this task
    if (next == kInvalidNode) return;
    id = next;
  }
}

void TaskGraph::run(CancelToken cancel) {
  if (nodes_.empty()) return;
  cancel.raise_if_cancelled();
  cancel_ = cancel;
  // Validate only when edges changed since the last run: a re-run frame
  // graph must not pay O(V+E) plus allocations per frame.
  if (!topology_validated_) {
    check_acyclic();
    topology_validated_ = true;
  }
  error_.reset();
  std::vector<NodeId> sources;
  for (NodeId id = 0; id < NodeId(nodes_.size()); ++id) {
    nodes_[id].pending.store(nodes_[id].initial_pending, std::memory_order_relaxed);
    if (nodes_[id].initial_pending == 0) sources.push_back(id);
  }
  CompletionGate gate{std::int64_t(nodes_.size())};
  gate_ = &gate;
  // Launch all sources but one through the injection rings under a single
  // wakeup; the caller runs the first source itself and then helps at the
  // join (caller-runs, same as parallel_for).
  if (sources.size() > 1) {
    std::vector<Task> injected;
    injected.reserve(sources.size() - 1);
    TaskGraph* self = this;
    for (std::size_t i = 1; i < sources.size(); ++i) {
      const NodeId id = sources[i];
      injected.push_back(Task::inline_of([self, id] { self->execute(id); }));
    }
    pool_->inject_bulk(injected.data(), injected.size());
  }
  execute(sources.front());
  detail::help_until(*pool_, gate);
  gate_ = nullptr;
  cancel_ = CancelToken();  // the graph outlives the caller's source
  error_.rethrow_if_failed();
  cancel.raise_if_cancelled();
}

}  // namespace jsceres::rivertrail
