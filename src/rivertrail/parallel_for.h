#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <vector>

#include "rivertrail/fault_injection.h"
#include "rivertrail/schedule.h"
#include "rivertrail/task.h"
#include "rivertrail/thread_pool.h"
#include "support/cancel.h"

namespace jsceres::rivertrail {

/// Blocking completion latch (std::latch-alike; kept local so the pool stays
/// task-agnostic). Counts down by arbitrary amounts so range tasks can
/// retire whole spans of iterations at once.
///
/// Destruction protocol: `done()` is an advisory lock-free peek (help loops
/// poll it to decide whether to keep running tasks) — it may become true
/// while the final arriver is still inside the mutex/cv members. Anyone
/// about to DESTROY the gate must return through `wait()`, whose predicate
/// is the `completed_` flag written under the mutex: that handshake
/// guarantees the last arriver has fully left the gate (POSIX permits
/// destroying a mutex immediately after it is unlocked).
class CompletionGate {
 public:
  explicit CompletionGate(std::int64_t count)
      : remaining_(count), completed_(count <= 0) {}
  void arrive(std::int64_t n = 1) {
    if (remaining_.fetch_sub(n, std::memory_order_acq_rel) == n) {
      const std::lock_guard lock(mutex_);
      completed_ = true;
      cv_.notify_all();
    }
  }
  /// Advisory: true once every count has been retired. NOT sufficient to
  /// destroy the gate — see class comment.
  [[nodiscard]] bool done() const {
    return remaining_.load(std::memory_order_acquire) <= 0;
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return completed_; });
  }

 private:
  std::atomic<std::int64_t> remaining_;
  bool completed_;  // guarded by mutex_: the destruction-safe signal
  std::mutex mutex_;
  std::condition_variable cv_;
};

namespace detail {

/// First-exception-wins capture shared by every loop descriptor. Bodies run
/// on whichever thread claimed the span; the winning exception is rethrown
/// on the calling thread once the loop quiesces, later ones are swallowed.
struct ErrorSlot {
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::exception_ptr error;

  void capture() noexcept {
    const std::lock_guard lock(mutex);
    if (!failed.exchange(true, std::memory_order_relaxed)) {
      error = std::current_exception();
    }
  }
  /// Fast pre-check so remaining spans are skipped after a failure.
  [[nodiscard]] bool has_failed() const {
    return failed.load(std::memory_order_relaxed);
  }
  void rethrow_if_failed() {
    if (failed.load(std::memory_order_acquire)) std::rethrow_exception(error);
  }
  /// Re-arm for another invocation (reusable TaskGraph runs). Only valid
  /// while no task can touch the slot (between quiesced runs).
  void reset() {
    failed.store(false, std::memory_order_relaxed);
    error = nullptr;
  }
};

/// Help-first join: run pool tasks while the gate is pending, then block.
/// Waiting threads contribute cycles instead of sleeping (the caller-runs
/// half of the low dispatch latency), and a worker blocked at a nested
/// parallel_for keeps draining its own deque — which is what makes nesting
/// deadlock-free.
inline void help_until(ThreadPool& pool, CompletionGate& gate) {
  int misses = 0;
  while (!gate.done()) {
    if (pool.try_run_one()) {
      misses = 0;
      continue;
    }
    // After a few empty scans the remaining spans are executing on other
    // threads; stop spinning and block.
    if (++misses >= 3) break;
    cpu_relax();
  }
  // Callers destroy the gate right after this returns; wait() (not the
  // advisory done()) is the handshake that lets them (see CompletionGate).
  gate.wait();
}

/// Shared state of one parallel_for invocation, on the calling thread's
/// stack; the gate's final arrive is the lifetime fence (every task touches
/// the descriptor strictly before its last arrive, and the caller cannot
/// return from wait before that).
template <typename Body>
struct LoopDesc {
  ThreadPool* pool;
  const Body* body;
  CompletionGate* gate;
  std::int64_t min_grain;  // never split below this many iterations
  std::int64_t leaf_cap;   // longest indivisible span handed to `body`
  CancelToken cancel;      // observed per leaf span and at split points
  ErrorSlot error;
};

/// Execute [lo, hi): steal-half discipline. When a thief is hungry the
/// owner sheds the top half of its remaining range as ONE task — at most
/// once per leaf span — and the thief re-splits its stolen half locally for
/// whoever is still hungry. Distribution therefore fans out exponentially
/// across thieves while the victim pays a single push (and a single
/// signal_work) per shed, instead of the old cascade that shed 1/2, 1/4,
/// 1/8, ... from one victim while a thief was mid-scan (the ROADMAP
/// steal-half item: deep splits used to multiply steal traffic at the
/// victim). Running the remainder in leaf_cap-bounded spans keeps the
/// hungry check fresh, so a range that started with no thieves in sight
/// still sheds when one shows up mid-flight. The body region is wrapped so
/// the gate always retires every iteration of the range, exception or not.
///
/// Cancellation is observed here, at the split decision (a cancelled loop
/// stops shedding new tasks) and before each leaf span (remaining spans
/// drain as no-ops, exactly like the post-exception path): every iteration
/// still retires the gate, so the join stays clean and the token leak-free.
template <typename Body>
void run_range(LoopDesc<Body>& desc, std::int64_t lo, std::int64_t hi) {
  ThreadPool& pool = *desc.pool;
  CompletionGate& gate = *desc.gate;
  const bool on_worker = pool.on_worker_thread();
  while (lo < hi) {
    if (hi - lo > desc.min_grain && pool.has_hungry_thief() &&
        !desc.error.has_failed() && !desc.cancel.cancelled()) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      LoopDesc<Body>* desc_ptr = &desc;
      const std::int64_t split_lo = mid;
      const std::int64_t split_hi = hi;
      const auto split_fn = [desc_ptr, split_lo, split_hi] {
        run_range(*desc_ptr, split_lo, split_hi);
      };
      if (on_worker) {
        // Deque/slab full: keep the range and run it inline.
        if (pool.try_push_local(split_fn)) hi = mid;
      } else if (hi - lo > desc.leaf_cap) {
        // A non-worker caller (the external-dispatch root 0) has no deque;
        // shed through the injection ring instead so a heavy leading range
        // cannot stay pinned to the calling thread while workers starve.
        // Only shed spans a hungry worker can meaningfully re-split.
        pool.inject(Task::inline_of(split_fn));
        hi = mid;
      }
    }
    const std::int64_t span_hi = std::min(hi, lo + desc.leaf_cap);
    if (!desc.error.has_failed() && !desc.cancel.cancelled()) {
      try {
        JSCERES_SCHED_EVENT();
        (*desc.body)(lo, span_hi);
      } catch (...) {
        desc.error.capture();
      }
    }
    gate.arrive(span_hi - lo);  // last touch of desc for this span
    lo = span_hi;
  }
}

}  // namespace detail

/// Run body(begin, end) over [begin, end) chunks in parallel and wait.
/// `body` must be data-race free across disjoint ranges — which is precisely
/// the property the dependence analyzer certifies for "easy" loop nests.
/// The first exception a body region throws is rethrown here after every
/// iteration has been retired (no deadlock, no dangling captures).
///
/// `grain` is the smallest range the Static splitter will divide (and the
/// Dynamic chunk size). 0 picks a default from n and the worker count.
///
/// `cancel` (default inert) is observed cooperatively at split points and
/// before each leaf span; a cancelled loop drains every remaining iteration
/// as a no-op and then throws CancelledError here at the join. When a body
/// exception and cancellation race, the exception wins (first-exception-wins
/// discipline is unchanged).
template <typename Body>
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end, Body body,
                  Schedule schedule = Schedule::Static, std::int64_t grain = 0,
                  CancelToken cancel = {}) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  cancel.raise_if_cancelled();
  const auto workers = std::int64_t(pool.size());
  if (workers <= 1 || n == 1) {
    body(begin, end);
    return;
  }

  if (schedule == Schedule::Static) {
    if (grain <= 0) grain = std::max<std::int64_t>(1, n / (workers * 32));
    CompletionGate gate{n};
    detail::LoopDesc<Body> desc{&pool, &body, &gate, grain,
                                std::max<std::int64_t>(grain, n / (workers * 8)),
                                cancel};
    // One root per worker; the caller keeps the first range for itself
    // (running it beats waking a worker for small kernels) and helps until
    // the gate closes. Each root retires its own iterations, so the gate
    // cannot close while any root is still queued — descriptor lifetime is
    // safe.
    const std::int64_t roots = std::min<std::int64_t>(workers, n);
    detail::LoopDesc<Body>* desc_ptr = &desc;
    if (pool.on_worker_thread()) {
      // Nested: feed our own deque so siblings can steal, then join.
      for (std::int64_t c = 1; c < roots; ++c) {
        const std::int64_t lo = begin + n * c / roots;
        const std::int64_t hi = begin + n * (c + 1) / roots;
        if (!pool.try_push_local(
                [desc_ptr, lo, hi] { detail::run_range(*desc_ptr, lo, hi); })) {
          detail::run_range(desc, lo, hi);
        }
      }
    } else {
      std::vector<Task> injected;
      injected.reserve(std::size_t(roots) - 1);
      for (std::int64_t c = 1; c < roots; ++c) {
        const std::int64_t lo = begin + n * c / roots;
        const std::int64_t hi = begin + n * (c + 1) / roots;
        injected.push_back(Task::inline_of(
            [desc_ptr, lo, hi] { detail::run_range(*desc_ptr, lo, hi); }));
      }
      pool.inject_bulk(injected.data(), injected.size());
    }
    detail::run_range(desc, begin, begin + n / roots);
    detail::help_until(pool, gate);
    desc.error.rethrow_if_failed();
    cancel.raise_if_cancelled();
    return;
  }

  // Dynamic: atomic work counter, `grain` iterations at a time. The default
  // grain is clamped from below so tiny ranges don't degenerate into
  // one-iteration chunks (a fetch_add per iteration costs more than the
  // iteration itself for small kernels), and the worker count is trimmed so
  // no task wakes up to find an already-drained counter.
  constexpr std::int64_t kMinDynamicGrain = 16;
  if (grain <= 0) {
    grain = std::max(kMinDynamicGrain, n / (workers * 8));
  }
  // The gate counts DRAIN TASKS, not iterations: helper tasks share one
  // counter, so a straggler that wakes to an already-empty counter must
  // still be awaited — it touches the descriptor, and the caller's frame
  // owns the descriptor. (The caller helps run stragglers, so the wait is
  // short.)
  const std::int64_t helper_tasks =
      std::max<std::int64_t>(0, std::min<std::int64_t>(
                                    workers - 1, (n + grain - 1) / grain - 1));
  struct DynDesc {
    std::atomic<std::int64_t> next;
    std::int64_t end;
    std::int64_t grain;
    const Body* body;
    CompletionGate* gate;
    CancelToken cancel;
    detail::ErrorSlot error;
  };
  CompletionGate gate{helper_tasks + 1};
  DynDesc desc{{begin}, end, grain, &body, &gate, cancel};
  DynDesc* desc_ptr = &desc;
  const auto drain = [](DynDesc& d) {
    while (true) {
      const std::int64_t lo = d.next.fetch_add(d.grain, std::memory_order_relaxed);
      if (lo >= d.end) break;
      const std::int64_t hi = std::min(lo + d.grain, d.end);
      // A cancelled drain keeps claiming chunks so the shared counter
      // empties fast, but skips every body: the gate still counts tasks.
      if (!d.error.has_failed() && !d.cancel.cancelled()) {
        try {
          JSCERES_SCHED_EVENT();
          (*d.body)(lo, hi);
        } catch (...) {
          d.error.capture();
        }
      }
    }
    d.gate->arrive();  // always runs, exception or not: last touch of d
  };
  std::vector<Task> injected;
  injected.reserve(std::size_t(helper_tasks));
  for (std::int64_t w = 0; w < helper_tasks; ++w) {
    injected.push_back(Task::inline_of([desc_ptr, drain] { drain(*desc_ptr); }));
  }
  pool.inject_bulk(injected.data(), injected.size());
  drain(desc);  // caller participates
  detail::help_until(pool, gate);
  desc.error.rethrow_if_failed();
  cancel.raise_if_cancelled();
}

/// Run `fn(c, lo, hi)` for chunks c in [0, chunks) with the deterministic
/// equal-split boundaries lo = n*c/chunks. The fixed boundaries are the
/// point: par_reduce and other order-sensitive combines need partials whose
/// extents never depend on scheduling. Launched as inline tasks through the
/// batched injection path; the caller runs chunk 0 and helps.
template <typename ChunkFn>
void parallel_chunks(ThreadPool& pool, std::int64_t n, std::int64_t chunks,
                     const ChunkFn& fn, CancelToken cancel = {}) {
  if (n <= 0 || chunks <= 0) return;
  struct ChunkDesc {
    const ChunkFn* fn;
    CompletionGate* gate;
    std::int64_t n;
    std::int64_t chunks;
    CancelToken cancel;
    detail::ErrorSlot error;
  };
  CompletionGate gate{chunks};
  ChunkDesc desc{&fn, &gate, n, chunks, cancel};
  ChunkDesc* desc_ptr = &desc;
  const auto run_chunk = [](ChunkDesc& d, std::int64_t c) {
    CompletionGate& g = *d.gate;
    if (!d.error.has_failed() && !d.cancel.cancelled()) {
      try {
        JSCERES_SCHED_EVENT();
        (*d.fn)(c, d.n * c / d.chunks, d.n * (c + 1) / d.chunks);
      } catch (...) {
        d.error.capture();
      }
    }
    g.arrive();  // last touch of d for this chunk
  };
  if (pool.size() <= 1 || chunks == 1) {
    for (std::int64_t c = 0; c < chunks; ++c) run_chunk(desc, c);
  } else {
    std::vector<Task> injected;
    injected.reserve(std::size_t(chunks) - 1);
    for (std::int64_t c = 1; c < chunks; ++c) {
      injected.push_back(
          Task::inline_of([desc_ptr, run_chunk, c] { run_chunk(*desc_ptr, c); }));
    }
    pool.inject_bulk(injected.data(), injected.size());
    run_chunk(desc, 0);
    detail::help_until(pool, gate);
  }
  desc.error.rethrow_if_failed();
  cancel.raise_if_cancelled();
}

/// River-Trail-style data-parallel map: out[i] = fn(in[i]).
template <typename T, typename U, typename Fn>
void par_map(ThreadPool& pool, const std::vector<T>& in, std::vector<U>& out, Fn fn,
             Schedule schedule = Schedule::Static) {
  out.resize(in.size());
  parallel_for(
      pool, 0, std::int64_t(in.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) out[std::size_t(i)] = fn(in[std::size_t(i)]);
      },
      schedule);
}

/// Deterministic parallel reduction: per-chunk partials combined in chunk
/// order. Chunk boundaries come from parallel_chunks' fixed formula — NOT
/// from the adaptive splitter — so floating-point results are reproducible
/// run-to-run for a fixed worker count regardless of how steals landed.
template <typename T, typename Acc, typename Transform, typename Combine>
Acc par_reduce(ThreadPool& pool, const std::vector<T>& in, Acc identity,
               Transform transform, Combine combine) {
  const auto workers = std::int64_t(pool.size());
  const std::int64_t n = std::int64_t(in.size());
  if (n == 0) return identity;
  const std::int64_t chunks = std::min<std::int64_t>(std::max<std::int64_t>(workers, 1), n);
  std::vector<Acc> partials(std::size_t(chunks), identity);
  parallel_chunks(pool, n, chunks,
                  [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                    Acc acc = identity;
                    for (std::int64_t i = lo; i < hi; ++i) {
                      acc = combine(acc, transform(in[std::size_t(i)]));
                    }
                    partials[std::size_t(c)] = acc;
                  });
  Acc result = identity;
  for (const Acc& partial : partials) result = combine(result, partial);
  return result;
}

}  // namespace jsceres::rivertrail
