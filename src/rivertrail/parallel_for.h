#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "rivertrail/thread_pool.h"

namespace jsceres::rivertrail {

/// Scheduling policy for parallel_for. Uniform kernels (pixel filters)
/// favour Static; divergent kernels (the raytracer's variable-depth
/// recursion — exactly the control-flow-divergence issue of Table 3)
/// favour Dynamic.
enum class Schedule { Static, Dynamic };

/// Blocking completion latch (std::latch-alike; kept local so the pool stays
/// task-agnostic).
class CompletionGate {
 public:
  explicit CompletionGate(int count) : remaining_(count) {}
  void arrive() {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard lock(mutex_);
      cv_.notify_all();
    }
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return remaining_.load(std::memory_order_acquire) == 0; });
  }

 private:
  std::atomic<int> remaining_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Run body(begin, end) over [begin, end) chunks in parallel and wait.
/// `body` must be data-race free across disjoint ranges — which is precisely
/// the property the dependence analyzer certifies for "easy" loop nests.
template <typename Body>
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end, Body body,
                  Schedule schedule = Schedule::Static, std::int64_t grain = 0) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const auto workers = std::int64_t(pool.size());
  if (workers <= 1 || n == 1) {
    body(begin, end);
    return;
  }

  if (schedule == Schedule::Static) {
    const std::int64_t chunks = std::min<std::int64_t>(workers, n);
    CompletionGate gate{int(chunks)};
    std::vector<std::function<void()>> tasks;
    tasks.reserve(std::size_t(chunks));
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = begin + n * c / chunks;
      const std::int64_t hi = begin + n * (c + 1) / chunks;
      tasks.push_back([&body, &gate, lo, hi] {
        body(lo, hi);
        gate.arrive();
      });
    }
    pool.submit_bulk(std::move(tasks));
    gate.wait();
    return;
  }

  // Dynamic: atomic work counter, `grain` iterations at a time. The default
  // grain is clamped from below so tiny ranges don't degenerate into
  // one-iteration chunks (a fetch_add per iteration costs more than the
  // iteration itself for small kernels), and the worker count is trimmed so
  // no task wakes up to find an already-drained counter.
  constexpr std::int64_t kMinDynamicGrain = 16;
  if (grain <= 0) {
    grain = std::max(kMinDynamicGrain, n / (workers * 8));
  }
  const std::int64_t tasks_needed =
      std::min<std::int64_t>(workers, (n + grain - 1) / grain);
  auto next = std::make_shared<std::atomic<std::int64_t>>(begin);
  CompletionGate gate{int(tasks_needed)};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(std::size_t(tasks_needed));
  for (std::int64_t w = 0; w < tasks_needed; ++w) {
    tasks.push_back([&body, &gate, next, end, grain] {
      while (true) {
        const std::int64_t lo = next->fetch_add(grain, std::memory_order_relaxed);
        if (lo >= end) break;
        body(lo, std::min(lo + grain, end));
      }
      gate.arrive();
    });
  }
  pool.submit_bulk(std::move(tasks));
  gate.wait();
}

/// River-Trail-style data-parallel map: out[i] = fn(in[i]).
template <typename T, typename U, typename Fn>
void par_map(ThreadPool& pool, const std::vector<T>& in, std::vector<U>& out, Fn fn,
             Schedule schedule = Schedule::Static) {
  out.resize(in.size());
  parallel_for(
      pool, 0, std::int64_t(in.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) out[std::size_t(i)] = fn(in[std::size_t(i)]);
      },
      schedule);
}

/// Deterministic parallel reduction: per-chunk partials combined in chunk
/// order. Floating-point results are reproducible run-to-run for a fixed
/// worker count (partials are combined in index order, not completion
/// order).
template <typename T, typename Acc, typename Transform, typename Combine>
Acc par_reduce(ThreadPool& pool, const std::vector<T>& in, Acc identity,
               Transform transform, Combine combine) {
  const auto workers = std::int64_t(pool.size());
  const std::int64_t n = std::int64_t(in.size());
  if (n == 0) return identity;
  const std::int64_t chunks = std::min<std::int64_t>(std::max<std::int64_t>(workers, 1), n);
  std::vector<Acc> partials(std::size_t(chunks), identity);
  CompletionGate gate{int(chunks)};
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = n * c / chunks;
    const std::int64_t hi = n * (c + 1) / chunks;
    pool.submit([&, lo, hi, c] {
      Acc acc = identity;
      for (std::int64_t i = lo; i < hi; ++i) {
        acc = combine(acc, transform(in[std::size_t(i)]));
      }
      partials[std::size_t(c)] = acc;
      gate.arrive();
    });
  }
  gate.wait();
  Acc result = identity;
  for (const Acc& partial : partials) result = combine(result, partial);
  return result;
}

}  // namespace jsceres::rivertrail
