#include "rivertrail/kernels.h"

#include <algorithm>
#include <cmath>

#include "support/rng.h"

namespace jsceres::rivertrail::kernels {

namespace {

std::uint8_t clamp8(double v) {
  return std::uint8_t(std::clamp(v, 0.0, 255.0));
}

void pixel_filter_range(std::vector<std::uint8_t>& rgba, std::int64_t lo,
                        std::int64_t hi, int brightness, double contrast) {
  for (std::int64_t p = lo; p < hi; ++p) {
    const std::size_t i = std::size_t(p) * 4;
    for (int c = 0; c < 3; ++c) {
      double v = rgba[i + std::size_t(c)];
      v = (v - 128.0) * contrast + 128.0 + brightness;
      rgba[i + std::size_t(c)] = clamp8(v);
    }
  }
}

void fluid_row_range(const std::vector<double>& src, std::vector<double>& dst,
                     int n, double a, std::int64_t row_lo, std::int64_t row_hi) {
  const int stride = n + 2;
  for (std::int64_t j = row_lo; j < row_hi; ++j) {
    for (int i = 1; i <= n; ++i) {
      const std::size_t at = std::size_t(j) * std::size_t(stride) + std::size_t(i);
      dst[at] = (src[at] + a * (src[at - 1] + src[at + 1] +
                                src[at - std::size_t(stride)] +
                                src[at + std::size_t(stride)])) /
                (1.0 + 4.0 * a);
    }
  }
}

// -- raytracer ---------------------------------------------------------------

struct Vec3 {
  double x = 0, y = 0, z = 0;
};
Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
Vec3 operator*(Vec3 a, double s) { return {a.x * s, a.y * s, a.z * s}; }
double dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
Vec3 normalize(Vec3 v) {
  const double len = std::sqrt(dot(v, v));
  return len > 0 ? v * (1.0 / len) : v;
}

struct Sphere {
  Vec3 center;
  double radius;
  Vec3 color;
  double reflect;
};

const Sphere kSpheres[] = {
    {{0.0, -100.5, -1.0}, 100.0, {0.6, 0.7, 0.3}, 0.1},
    {{0.0, 0.0, -1.0}, 0.5, {0.9, 0.2, 0.2}, 0.5},
    {{-1.0, 0.1, -1.2}, 0.4, {0.2, 0.4, 0.9}, 0.7},
    {{1.0, -0.1, -0.9}, 0.35, {0.9, 0.9, 0.2}, 0.3},
};

bool hit_sphere(const Sphere& s, Vec3 origin, Vec3 dir, double* t_out) {
  const Vec3 oc = origin - s.center;
  const double b = dot(oc, dir);
  const double c = dot(oc, oc) - s.radius * s.radius;
  const double disc = b * b - c;
  if (disc < 0) return false;
  const double t = -b - std::sqrt(disc);
  if (t < 1e-4) return false;
  *t_out = t;
  return true;
}

Vec3 trace(Vec3 origin, Vec3 dir, int depth) {
  double best_t = 1e30;
  const Sphere* best = nullptr;
  for (const Sphere& s : kSpheres) {
    double t = 0;
    if (hit_sphere(s, origin, dir, &t) && t < best_t) {
      best_t = t;
      best = &s;
    }
  }
  if (best == nullptr) {
    const double f = 0.5 * (dir.y + 1.0);
    return Vec3{1.0, 1.0, 1.0} * (1.0 - f) + Vec3{0.5, 0.7, 1.0} * f;
  }
  const Vec3 hit = origin + dir * best_t;
  const Vec3 normal = normalize(hit - best->center);
  const Vec3 light = normalize(Vec3{0.7, 1.0, 0.4});
  double diffuse = std::max(0.0, dot(normal, light));
  Vec3 color = best->color * (0.2 + 0.8 * diffuse);
  if (depth > 0 && best->reflect > 0) {
    const Vec3 refl_dir = dir - normal * (2.0 * dot(dir, normal));
    // Variable-depth recursion: the raytracer's control-flow divergence.
    const Vec3 refl = trace(hit, normalize(refl_dir), depth - 1);
    color = color * (1.0 - best->reflect) + refl * best->reflect;
  }
  return color;
}

void raytrace_rows(const RayScene& scene, std::vector<std::uint8_t>& rgba,
                   std::int64_t row_lo, std::int64_t row_hi) {
  const double aspect = double(scene.width) / scene.height;
  for (std::int64_t y = row_lo; y < row_hi; ++y) {
    for (int x = 0; x < scene.width; ++x) {
      const double u = (2.0 * (x + 0.5) / scene.width - 1.0) * aspect;
      const double v = 1.0 - 2.0 * (double(y) + 0.5) / scene.height;
      const Vec3 dir = normalize(Vec3{u, v, -1.5});
      const Vec3 c = trace(Vec3{0, 0, 1}, dir, scene.max_depth);
      const std::size_t i =
          (std::size_t(y) * std::size_t(scene.width) + std::size_t(x)) * 4;
      rgba[i] = clamp8(c.x * 255.0);
      rgba[i + 1] = clamp8(c.y * 255.0);
      rgba[i + 2] = clamp8(c.z * 255.0);
      rgba[i + 3] = 255;
    }
  }
}

void normal_map_rows(const std::vector<double>& height, int w, int h, double lx,
                     double ly, double lz, std::vector<std::uint8_t>& rgba,
                     std::int64_t row_lo, std::int64_t row_hi) {
  const double llen = std::sqrt(lx * lx + ly * ly + lz * lz);
  const double nlx = lx / llen;
  const double nly = ly / llen;
  const double nlz = lz / llen;
  const auto at = [&](int x, int y) {
    x = std::clamp(x, 0, w - 1);
    y = std::clamp(y, 0, h - 1);
    return height[std::size_t(y) * std::size_t(w) + std::size_t(x)];
  };
  for (std::int64_t y = row_lo; y < row_hi; ++y) {
    for (int x = 0; x < w; ++x) {
      // Central-difference tangent-space normal.
      const double dx = at(x + 1, int(y)) - at(x - 1, int(y));
      const double dy = at(x, int(y) + 1) - at(x, int(y) - 1);
      double nx = -dx;
      double ny = -dy;
      double nz = 2.0 / w;
      const double len = std::sqrt(nx * nx + ny * ny + nz * nz);
      nx /= len;
      ny /= len;
      nz /= len;
      const double lum = std::max(0.0, nx * nlx + ny * nly + nz * nlz);
      const std::size_t i = (std::size_t(y) * std::size_t(w) + std::size_t(x)) * 4;
      rgba[i] = clamp8(40 + 215 * lum);
      rgba[i + 1] = clamp8(40 + 180 * lum);
      rgba[i + 2] = clamp8(60 + 140 * lum);
      rgba[i + 3] = 255;
    }
  }
}

void cloth_range(std::vector<ClothParticle>& particles, double gravity, double dt,
                 std::int64_t lo, std::int64_t hi) {
  const double dt2 = dt * dt;
  for (std::int64_t i = lo; i < hi; ++i) {
    ClothParticle& p = particles[std::size_t(i)];
    if (p.pinned) continue;
    const double vx = (p.x - p.px) * 0.99;
    const double vy = (p.y - p.py) * 0.99;
    p.px = p.x;
    p.py = p.y;
    p.x += vx;
    p.y += vy + gravity * dt2;
  }
}

}  // namespace

void pixel_filter_seq(std::vector<std::uint8_t>& rgba, int brightness,
                      double contrast) {
  pixel_filter_range(rgba, 0, std::int64_t(rgba.size() / 4), brightness, contrast);
}

void pixel_filter_par(ThreadPool& pool, std::vector<std::uint8_t>& rgba,
                      int brightness, double contrast, Schedule schedule) {
  parallel_for(
      pool, 0, std::int64_t(rgba.size() / 4),
      [&](std::int64_t lo, std::int64_t hi) {
        pixel_filter_range(rgba, lo, hi, brightness, contrast);
      },
      schedule);
}

void fluid_diffuse_seq(const std::vector<double>& src, std::vector<double>& dst,
                       int n, double a) {
  dst = src;  // keep the boundary cells
  fluid_row_range(src, dst, n, a, 1, n + 1);
}

void fluid_diffuse_par(ThreadPool& pool, const std::vector<double>& src,
                       std::vector<double>& dst, int n, double a,
                       Schedule schedule, std::int64_t grain) {
  // Copy only the boundary ring; the interior is fully overwritten by the
  // sweep (avoids a serial full-grid memcpy ahead of the parallel region).
  const int stride = n + 2;
  dst.resize(src.size());
  for (int i = 0; i < stride; ++i) {
    dst[std::size_t(i)] = src[std::size_t(i)];                              // top
    dst[std::size_t((n + 1) * stride + i)] = src[std::size_t((n + 1) * stride + i)];
    dst[std::size_t(i) * std::size_t(stride)] = src[std::size_t(i) * std::size_t(stride)];
    dst[std::size_t(i) * std::size_t(stride) + std::size_t(n + 1)] =
        src[std::size_t(i) * std::size_t(stride) + std::size_t(n + 1)];
  }
  parallel_for(
      pool, 1, std::int64_t(n) + 1,
      [&](std::int64_t lo, std::int64_t hi) { fluid_row_range(src, dst, n, a, lo, hi); },
      schedule, grain);
}

void raytrace_seq(const RayScene& scene, std::vector<std::uint8_t>& rgba) {
  rgba.assign(std::size_t(scene.width) * std::size_t(scene.height) * 4, 0);
  raytrace_rows(scene, rgba, 0, scene.height);
}

void raytrace_par(ThreadPool& pool, const RayScene& scene,
                  std::vector<std::uint8_t>& rgba, Schedule schedule,
                  std::int64_t grain) {
  rgba.assign(std::size_t(scene.width) * std::size_t(scene.height) * 4, 0);
  parallel_for(
      pool, 0, scene.height,
      [&](std::int64_t lo, std::int64_t hi) { raytrace_rows(scene, rgba, lo, hi); },
      schedule, grain);
}

void normal_map_seq(const std::vector<double>& height, int w, int h, double lx,
                    double ly, double lz, std::vector<std::uint8_t>& rgba) {
  rgba.assign(std::size_t(w) * std::size_t(h) * 4, 0);
  normal_map_rows(height, w, h, lx, ly, lz, rgba, 0, h);
}

void normal_map_par(ThreadPool& pool, const std::vector<double>& height, int w,
                    int h, double lx, double ly, double lz,
                    std::vector<std::uint8_t>& rgba, Schedule schedule) {
  rgba.assign(std::size_t(w) * std::size_t(h) * 4, 0);
  parallel_for(
      pool, 0, h,
      [&](std::int64_t lo, std::int64_t hi) {
        normal_map_rows(height, w, h, lx, ly, lz, rgba, lo, hi);
      },
      schedule);
}

void cloth_integrate_seq(std::vector<ClothParticle>& particles, double gravity,
                         double dt) {
  cloth_range(particles, gravity, dt, 0, std::int64_t(particles.size()));
}

void cloth_integrate_par(ThreadPool& pool, std::vector<ClothParticle>& particles,
                         double gravity, double dt, Schedule schedule) {
  parallel_for(
      pool, 0, std::int64_t(particles.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        cloth_range(particles, gravity, dt, lo, hi);
      },
      schedule);
}

CenterOfMass nbody_step_seq(std::vector<Body>& bodies, double dt) {
  CenterOfMass com;
  for (Body& b : bodies) {
    b.vx += b.fx / b.m * dt;
    b.vy += b.fy / b.m * dt;
    b.x += b.vx * dt;
    b.y += b.vy * dt;
    com.m += b.m;
    com.x += b.x * b.m;
    com.y += b.y * b.m;
  }
  if (com.m > 0) {
    com.x /= com.m;
    com.y /= com.m;
  }
  return com;
}

CenterOfMass nbody_step_par(ThreadPool& pool, std::vector<Body>& bodies, double dt) {
  // Fused map + reduction: the paper's flow dependence (com) becomes
  // per-chunk partials combined in chunk order (deterministic), computed in
  // the same pass as the integration map. parallel_chunks keeps the chunk
  // boundaries fixed regardless of scheduling, so the combine order — and
  // the floating-point result — is reproducible run to run.
  const auto workers = std::int64_t(pool.size());
  const std::int64_t n = std::int64_t(bodies.size());
  const std::int64_t chunks = std::max<std::int64_t>(1, std::min(workers, n));
  struct Partial {
    double m = 0, x = 0, y = 0;
  };
  std::vector<Partial> partials{std::size_t(chunks)};
  parallel_chunks(pool, n, chunks,
                  [&bodies, &partials, dt](std::int64_t c, std::int64_t lo,
                                           std::int64_t hi) {
                    Partial acc;
                    for (std::int64_t i = lo; i < hi; ++i) {
                      Body& b = bodies[std::size_t(i)];
                      b.vx += b.fx / b.m * dt;
                      b.vy += b.fy / b.m * dt;
                      b.x += b.vx * dt;
                      b.y += b.vy * dt;
                      acc.m += b.m;
                      acc.x += b.x * b.m;
                      acc.y += b.y * b.m;
                    }
                    partials[std::size_t(c)] = acc;
                  });
  CenterOfMass com;
  for (const Partial& p : partials) {
    com.m += p.m;
    com.x += p.x;
    com.y += p.y;
  }
  if (com.m > 0) {
    com.x /= com.m;
    com.y /= com.m;
  }
  return com;
}

std::vector<std::uint8_t> make_test_image(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> rgba(std::size_t(w) * std::size_t(h) * 4);
  for (auto& byte : rgba) byte = std::uint8_t(rng.next_below(256));
  return rgba;
}

std::vector<double> make_height_field(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> height(std::size_t(w) * std::size_t(h));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double base = std::sin(x * 0.15) * std::cos(y * 0.11);
      height[std::size_t(y) * std::size_t(w) + std::size_t(x)] =
          base + 0.1 * rng.next_double();
    }
  }
  return height;
}

std::vector<ClothParticle> make_cloth(int cols, int rows) {
  std::vector<ClothParticle> particles;
  particles.reserve(std::size_t(cols) * std::size_t(rows));
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      ClothParticle p;
      p.x = p.px = x * 10.0;
      p.y = p.py = y * 10.0;
      p.pinned = y == 0 && x % 5 == 0;
      particles.push_back(p);
    }
  }
  return particles;
}

std::vector<Body> make_bodies(int count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Body> bodies{std::size_t(count)};
  for (Body& b : bodies) {
    b.x = rng.next_double() * 100;
    b.y = rng.next_double() * 100;
    b.fx = rng.next_double() - 0.5;
    b.fy = rng.next_double() - 0.5;
    b.m = 0.5 + rng.next_double();
  }
  return bodies;
}

}  // namespace jsceres::rivertrail::kernels
