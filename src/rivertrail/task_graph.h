#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "rivertrail/parallel_for.h"
#include "rivertrail/thread_pool.h"
#include "support/cancel.h"

namespace jsceres::rivertrail {

/// Explicit dependence graph over the work-stealing pool: the primitive the
/// event loop's frame-graph mode and `parallel_pipeline` are built from.
///
/// Nodes carry an arbitrary body (type-erased once, at build time — the
/// cold path) plus an atomic dependency counter; the unit the *scheduler*
/// moves is still the 48-byte inline Task ({graph, node id} fits the inline
/// payload), so running a graph allocates nothing on the dispatch path.
///
/// Edge retirement is help-first: when a node finishes, the finishing
/// worker decrements every successor's counter, pushes all newly-ready
/// successors but one onto its own deque (stealable by hungry thieves) and
/// continues into the remaining one itself — the same caller-runs
/// discipline parallel_for's joins use, so a chain of nodes runs as a loop
/// on one cache-warm worker while genuine fan-out spreads through steals.
///
/// Exception semantics match parallel_for's gate: the first body to throw
/// wins, every remaining body is skipped, but every node still *retires*
/// (counters decrement, the gate closes), and the exception is rethrown at
/// the `run()` join — the graph never deadlocks and never leaks inflight
/// tasks into a destroyed frame.
///
/// A graph is reusable: `run()` re-arms the dependency counters from the
/// recorded edge counts, so a per-frame graph can be built once and run
/// every frame.
class TaskGraph {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kInvalidNode = ~NodeId(0);

  explicit TaskGraph(ThreadPool& pool) : pool_(&pool) {}

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Add a node. Bodies may themselves use the pool (nested parallel_for
  /// inside a node is supported by the help-first join).
  NodeId add(std::function<void()> body);

  /// Declare that `after` must not start until `before` has finished.
  void depend(NodeId before, NodeId after);

  /// Execute the whole graph and wait; rethrows the first node exception
  /// after every node has retired. Throws std::logic_error on a cyclic
  /// graph (checked up front — a cycle would otherwise hang the join).
  ///
  /// `cancel` (default inert) is observed before every node body: once
  /// cancelled, remaining bodies are skipped but every node still retires
  /// (counters decrement, the gate closes), then CancelledError is thrown
  /// here. A node exception racing the cancel wins; either way the graph is
  /// fully drained and reusable. Tests sweep the (cancel point, throwing
  /// node) product to pin this down.
  void run(CancelToken cancel = {});

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::function<void()> body;
    std::vector<NodeId> successors;
    std::int32_t initial_pending = 0;
    std::atomic<std::int32_t> pending{0};
  };

  /// Run node `id`, retire its out-edges, and loop into one newly-ready
  /// successor (help-first: the others go to the local deque for thieves).
  void execute(NodeId id);
  void spawn(NodeId id);
  void check_acyclic() const;

  ThreadPool* pool_;
  std::deque<Node> nodes_;  // deque: stable addresses, Node is not movable
  detail::ErrorSlot error_;
  CancelToken cancel_;              // live only inside run()
  CompletionGate* gate_ = nullptr;  // live only inside run()
  /// Cycle check already passed for the current edge set (cleared by
  /// depend(); adding an edge-less node cannot create a cycle).
  bool topology_validated_ = true;
};

}  // namespace jsceres::rivertrail
