#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "rivertrail/task.h"

namespace jsceres::rivertrail {

/// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05; memory orderings
/// after Lê/Pop/Cohen/Nardelli, PPoPP'13). The owning worker pushes and pops
/// at the bottom; thieves steal from the top with a compare-exchange.
///
/// Differences from the textbook version, both deliberate:
///
/// 1. Cells hold `Task*` in `std::atomic` cells instead of multi-word values.
///    A stale thief may read a cell the owner is concurrently republishing —
///    with atomic pointer cells that read is merely stale (and is discarded
///    when the top CAS fails), never torn, and ThreadSanitizer agrees.
/// 2. The buffer is a fixed-capacity ring and `push` fails when full instead
///    of growing. Capacity equals the owner's task-slab capacity, so a full
///    deque just means "stop splitting" — and the no-grow rule is what makes
///    (1) sound: a cell can only be overwritten after `top` has advanced
///    past it (push refuses while `bottom - top >= capacity`), and `top`
///    advancing is exactly what makes the racing thief's CAS fail.
/// 3. Where the PPoPP'13 version uses standalone seq_cst fences we put the
///    ordering on the `top`/`bottom` operations themselves: the owner's
///    bottom store in `pop` and the subsequent top load are both seq_cst,
///    giving the StoreLoad ordering the algorithm needs while staying inside
///    the memory model TSan instruments precisely.
///
/// Correctness sketch for the steal path: the cell is loaded *before* the
/// claiming CAS. If the CAS succeeds, `top` was still `t` at claim time; the
/// owner can only have overwritten cell `t % capacity` after observing
/// `top > t` (full-guard in push), which would have made this CAS fail.
/// Publication of the task payload itself rides the release store of
/// `bottom` in push paired with the acquire load of `bottom` in steal.
class WsDeque {
 public:
  /// `capacity` is rounded up to a power of two (the ring index is a mask).
  explicit WsDeque(std::size_t capacity)
      : cells_(std::bit_ceil(capacity)), mask_(std::bit_ceil(capacity) - 1) {
    for (auto& cell : cells_) cell.store(nullptr, std::memory_order_relaxed);
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner only. False when the ring is full (caller keeps the task).
  bool push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= std::int64_t(cells_.size())) return false;
    cells_[std::size_t(b) & mask_].store(task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. LIFO pop from the bottom; nullptr when empty.
  Task* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t < b) {
      return cells_[std::size_t(b) & mask_].load(std::memory_order_relaxed);
    }
    Task* task = nullptr;
    if (t == b) {
      // Last element: race the thieves for it.
      task = cells_[std::size_t(b) & mask_].load(std::memory_order_relaxed);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief won
      }
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return task;
  }

  /// Any thread. FIFO steal from the top; nullptr when empty or when the
  /// claiming CAS loses a race (callers just move to the next victim).
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task = cells_[std::size_t(t) & mask_].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

  [[nodiscard]] bool empty() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::atomic<Task*>> cells_;
  std::size_t mask_;
  // Owner and thieves hammer different indices; keep them on separate lines.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace jsceres::rivertrail
