#pragma once

#include <cstdint>
#include <vector>

#include "rivertrail/parallel_for.h"

namespace jsceres::rivertrail::kernels {

/// C++ ports of the parallelizable hot loops Table 3 certifies as "easy"
/// (or better). These are the validation arm of the study: the dependence
/// analyzer *claims* these loops have breakable dependencies; executing them
/// on the thread pool with bit-identical results *demonstrates* it.
///
/// Every kernel has a sequential reference and a parallel variant over the
/// same memory layout; the validator checks outputs element-wise.

// --- CamanJS: brightness + contrast over packed RGBA -----------------------
void pixel_filter_seq(std::vector<std::uint8_t>& rgba, int brightness,
                      double contrast);
void pixel_filter_par(ThreadPool& pool, std::vector<std::uint8_t>& rgba,
                      int brightness, double contrast,
                      Schedule schedule = Schedule::Static);

// --- fluidSim: one Jacobi diffusion sweep on an (n+2)^2 grid ---------------
void fluid_diffuse_seq(const std::vector<double>& src, std::vector<double>& dst,
                       int n, double a);
void fluid_diffuse_par(ThreadPool& pool, const std::vector<double>& src,
                       std::vector<double>& dst, int n, double a,
                       Schedule schedule = Schedule::Static,
                       std::int64_t grain = 0);

// --- Raytracing: sphere scene, variable-depth reflections ------------------
struct RayScene {
  int width = 64;
  int height = 64;
  int max_depth = 4;  // recursion depth -> control-flow divergence
};
void raytrace_seq(const RayScene& scene, std::vector<std::uint8_t>& rgba);
void raytrace_par(ThreadPool& pool, const RayScene& scene,
                  std::vector<std::uint8_t>& rgba,
                  Schedule schedule = Schedule::Static, std::int64_t grain = 1);

// --- Normal mapping: per-pixel lighting from a height field ----------------
void normal_map_seq(const std::vector<double>& height, int w, int h, double lx,
                    double ly, double lz, std::vector<std::uint8_t>& rgba);
void normal_map_par(ThreadPool& pool, const std::vector<double>& height, int w,
                    int h, double lx, double ly, double lz,
                    std::vector<std::uint8_t>& rgba,
                    Schedule schedule = Schedule::Static);

// --- Tear-able Cloth: Verlet integration (per-particle independent) --------
struct ClothParticle {
  double x = 0;
  double y = 0;
  double px = 0;  // previous position
  double py = 0;
  bool pinned = false;
};
void cloth_integrate_seq(std::vector<ClothParticle>& particles, double gravity,
                         double dt);
void cloth_integrate_par(ThreadPool& pool, std::vector<ClothParticle>& particles,
                         double gravity, double dt,
                         Schedule schedule = Schedule::Static);

// --- N-body (Fig. 6): velocity/position update + center-of-mass reduction --
struct Body {
  double x = 0, y = 0, vx = 0, vy = 0, fx = 0, fy = 0, m = 1;
};
struct CenterOfMass {
  double x = 0, y = 0, m = 0;
};
/// Integration is a parallel map; the center of mass — the paper's flow
/// dependence — is re-expressed as a reduction, the "code change" §4.1 says
/// exploiting the parallelism requires.
CenterOfMass nbody_step_seq(std::vector<Body>& bodies, double dt);
CenterOfMass nbody_step_par(ThreadPool& pool, std::vector<Body>& bodies, double dt);

/// Deterministic input builders (seeded) shared by tests and benches.
std::vector<std::uint8_t> make_test_image(int w, int h, std::uint64_t seed);
std::vector<double> make_height_field(int w, int h, std::uint64_t seed);
std::vector<ClothParticle> make_cloth(int cols, int rows);
std::vector<Body> make_bodies(int count, std::uint64_t seed);

}  // namespace jsceres::rivertrail::kernels
