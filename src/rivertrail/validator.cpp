#include "rivertrail/validator.h"

#include <chrono>
#include <cmath>

#include "rivertrail/kernels.h"
#include "support/table.h"
#include "support/str.h"

namespace jsceres::rivertrail {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

template <typename T>
double max_abs_diff(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return 1e300;
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(double(a[i]) - double(b[i])));
  }
  return worst;
}

}  // namespace

std::vector<ValidationResult> validate_all(ThreadPool& pool, double scale) {
  std::vector<ValidationResult> results;
  const int dim = std::max(64, int(256 * std::sqrt(scale)));

  // Warm the pool (first dispatch pays thread wake-up costs).
  std::vector<double> warmup(1 << 16);
  parallel_for(pool, 0, std::int64_t(warmup.size()),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) warmup[std::size_t(i)] = double(i);
               });

  {  // CamanJS pixel filter
    ValidationResult r;
    r.kernel = "pixel_filter (CamanJS)";
    auto seq_img = kernels::make_test_image(dim * 2, dim * 2, 11);
    auto par_img = seq_img;
    auto t0 = Clock::now();
    kernels::pixel_filter_seq(seq_img, 12, 1.2);
    r.seq_ms = ms_since(t0);
    t0 = Clock::now();
    kernels::pixel_filter_par(pool, par_img, 12, 1.2);
    r.par_ms = ms_since(t0);
    r.max_abs_error = max_abs_diff(seq_img, par_img);
    r.outputs_match = r.max_abs_error == 0;
    results.push_back(r);
  }
  {  // fluidSim diffusion
    ValidationResult r;
    r.kernel = "fluid_diffuse (fluidSim)";
    const int n = dim;
    std::vector<double> src(std::size_t(n + 2) * std::size_t(n + 2));
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = double(i % 97) / 97.0;
    std::vector<double> seq_dst;
    std::vector<double> par_dst;
    auto t0 = Clock::now();
    kernels::fluid_diffuse_seq(src, seq_dst, n, 0.12);
    r.seq_ms = ms_since(t0);
    t0 = Clock::now();
    kernels::fluid_diffuse_par(pool, src, par_dst, n, 0.12);
    r.par_ms = ms_since(t0);
    r.max_abs_error = max_abs_diff(seq_dst, par_dst);
    r.outputs_match = r.max_abs_error == 0;
    results.push_back(r);
  }
  {  // raytracer (dynamic schedule: divergent rows)
    ValidationResult r;
    r.kernel = "raytrace (Raytracing)";
    kernels::RayScene scene;
    scene.width = dim;
    scene.height = dim;
    std::vector<std::uint8_t> seq_img;
    std::vector<std::uint8_t> par_img;
    auto t0 = Clock::now();
    kernels::raytrace_seq(scene, seq_img);
    r.seq_ms = ms_since(t0);
    t0 = Clock::now();
    kernels::raytrace_par(pool, scene, par_img);
    r.par_ms = ms_since(t0);
    r.max_abs_error = max_abs_diff(seq_img, par_img);
    r.outputs_match = r.max_abs_error == 0;
    results.push_back(r);
  }
  {  // normal mapping
    ValidationResult r;
    r.kernel = "normal_map (Normal Mapping)";
    const auto height = kernels::make_height_field(dim * 2, dim * 2, 5);
    std::vector<std::uint8_t> seq_img;
    std::vector<std::uint8_t> par_img;
    auto t0 = Clock::now();
    kernels::normal_map_seq(height, dim * 2, dim * 2, 0.4, 0.5, 0.8, seq_img);
    r.seq_ms = ms_since(t0);
    t0 = Clock::now();
    kernels::normal_map_par(pool, height, dim * 2, dim * 2, 0.4, 0.5, 0.8, par_img);
    r.par_ms = ms_since(t0);
    r.max_abs_error = max_abs_diff(seq_img, par_img);
    r.outputs_match = r.max_abs_error == 0;
    results.push_back(r);
  }
  {  // cloth integration
    ValidationResult r;
    r.kernel = "cloth_integrate (Tear-able Cloth)";
    auto seq_cloth = kernels::make_cloth(dim * 2, dim * 2);
    auto par_cloth = seq_cloth;
    auto t0 = Clock::now();
    for (int step = 0; step < 5; ++step) {
      kernels::cloth_integrate_seq(seq_cloth, 9.8, 0.016);
    }
    r.seq_ms = ms_since(t0);
    t0 = Clock::now();
    for (int step = 0; step < 5; ++step) {
      kernels::cloth_integrate_par(pool, par_cloth, 9.8, 0.016);
    }
    r.par_ms = ms_since(t0);
    double worst = 0;
    for (std::size_t i = 0; i < seq_cloth.size(); ++i) {
      worst = std::max(worst, std::fabs(seq_cloth[i].x - par_cloth[i].x));
      worst = std::max(worst, std::fabs(seq_cloth[i].y - par_cloth[i].y));
    }
    r.max_abs_error = worst;
    r.outputs_match = worst == 0;
    results.push_back(r);
  }
  {  // N-body step + center-of-mass reduction
    ValidationResult r;
    r.kernel = "nbody_step (Fig. 6)";
    auto seq_bodies = kernels::make_bodies(int(400000 * scale), 3);
    auto par_bodies = seq_bodies;
    auto t0 = Clock::now();
    const auto seq_com = kernels::nbody_step_seq(seq_bodies, 0.01);
    r.seq_ms = ms_since(t0);
    t0 = Clock::now();
    const auto par_com = kernels::nbody_step_par(pool, par_bodies, 0.01);
    r.par_ms = ms_since(t0);
    double worst = 0;
    for (std::size_t i = 0; i < seq_bodies.size(); ++i) {
      worst = std::max(worst, std::fabs(seq_bodies[i].x - par_bodies[i].x));
    }
    // The reduction reassociates floating point: compare with a tolerance
    // and record the defect honestly.
    worst = std::max(worst, std::fabs(seq_com.x - par_com.x));
    worst = std::max(worst, std::fabs(seq_com.y - par_com.y));
    r.max_abs_error = worst;
    r.outputs_match = worst < 1e-9;
    results.push_back(r);
  }
  return results;
}

std::string render_validation_table(const std::vector<ValidationResult>& results,
                                    unsigned threads) {
  Table table({"kernel", "match", "max |err|", "seq ms", "par ms", "speedup"});
  for (std::size_t c = 2; c <= 5; ++c) table.set_align(c, Table::Align::Right);
  for (const auto& r : results) {
    table.add_row({r.kernel, r.outputs_match ? "yes" : "NO",
                   r.max_abs_error == 0 ? "0" : str::fixed(r.max_abs_error, 12),
                   str::fixed(r.seq_ms, 2), str::fixed(r.par_ms, 2),
                   str::fixed(r.speedup(), 2) + "x"});
  }
  return "parallel validation on " + std::to_string(threads) + " thread(s)\n" +
         table.render();
}

}  // namespace jsceres::rivertrail
