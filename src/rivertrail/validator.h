#pragma once

#include <string>
#include <vector>

#include "rivertrail/thread_pool.h"

namespace jsceres::rivertrail {

/// Result of one sequential-vs-parallel validation run.
struct ValidationResult {
  std::string kernel;
  bool outputs_match = false;
  double max_abs_error = 0;  // 0 for bit-identical kernels
  double seq_ms = 0;
  double par_ms = 0;
  [[nodiscard]] double speedup() const { return par_ms > 0 ? seq_ms / par_ms : 0; }
};

/// Run every kernel port sequentially and in parallel on `pool`, check the
/// outputs agree, and time both. `scale` multiplies the default problem
/// sizes (1 = test-suite friendly, larger for benches).
std::vector<ValidationResult> validate_all(ThreadPool& pool, double scale = 1.0);

std::string render_validation_table(const std::vector<ValidationResult>& results,
                                    unsigned threads);

}  // namespace jsceres::rivertrail
