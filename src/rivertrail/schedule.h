#pragma once

namespace jsceres::rivertrail {

/// Scheduling policy for parallel_for.
///
/// Static is adaptive recursive range splitting on the work-stealing
/// runtime: one root per worker, and a running range splits off half
/// whenever a thief is hungry. Uniform kernels degenerate to equal chunks
/// with near-zero extra overhead; divergent kernels (the raytracer's
/// variable-depth recursion — exactly the control-flow-divergence issue of
/// Table 3) rebalance through steals without paying per-grain atomics.
///
/// Dynamic is the classic shared-counter schedule: `grain` iterations per
/// fetch_add. It remains useful as a comparison point and when per-iteration
/// cost is so wildly skewed that even split halves are uneven.
///
/// Lives in its own header so consumers that only carry a schedule choice
/// (workloads/workload.h) don't pull in the whole scheduler.
enum class Schedule { Static, Dynamic };

/// Frame-scheduling policy for a workload's event-loop session.
///
/// Serial is the browser baseline: every requestAnimationFrame tick runs
/// kernel, canvas upload and commit back to back on the main thread — the
/// shape behind the paper's In-Loops > Active gap (Table 2).
///
/// FrameGraph decomposes each tick into kernel -> canvas-upload -> commit
/// pipeline stages over the work-stealing pool (dom::EventLoop::
/// enable_frame_graph), overlapping frame t's upload with frame t+1's
/// kernel. Virtual-time results are identical by construction; the win is
/// real-thread overlap, reported as per-stage spans.
enum class PipelineSchedule { Serial, FrameGraph };

}  // namespace jsceres::rivertrail
