#pragma once

// Scheduler-level fault injection (PR 6's fail-after-N-allocations sweep,
// lifted to the scheduling layer). Every cooperative scheduling event — a
// task popped/stolen/claimed by the pool, a parallel_for leaf span, a
// pipeline stage body, a TaskGraph node body — reports through
// JSCERES_SCHED_EVENT*; an armed plan fires exactly one fault at the K-th
// event:
//
//   TaskThrow       throw InjectedFault from inside the task body's try
//                   region (drains through the first-exception-wins gate),
//   Cancel          request_cancel() on the armed victim CancelSource,
//   DeadlineExpire  expire_now() on the victim (deadline-miss flavor).
//
// Sweeping K across the event count of a fixed workload proves every
// interleaving leaves the pool (and any supervised session) reusable.
//
// Compile-time-zero-cost when off: build with -DJSCERES_SCHED_FAULTS=0 and
// the event macros expand to nothing. The default keeps the hook compiled in
// as a single relaxed atomic load and branch per event (disarmed), which is
// noise against any task body; test binaries rely on the default so the
// sweep runs in the stock tier-1 / TSan / ASan builds.

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "support/cancel.h"

#ifndef JSCERES_SCHED_FAULTS
#define JSCERES_SCHED_FAULTS 1
#endif

namespace jsceres::rivertrail::sched_faults {

/// The injected task-body exception. Deliberately NOT an EngineError: the
/// supervisor classifies it as a transient runtime fault (retryable),
/// distinct from sandbox limit trips (degradable) and cancellation.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class Kind : int { TaskThrow = 0, Cancel = 1, DeadlineExpire = 2 };

struct State {
  std::atomic<bool> armed{false};
  std::atomic<std::int64_t> countdown{0};  // fires when a fetch_sub hits 1
  std::atomic<int> kind{0};
  /// A TaskThrow that landed on a non-throwing site (the pool's dispatch
  /// path, where an exception would escape worker_main) is deferred here and
  /// consumed by the next throwing site.
  std::atomic<bool> pending_throw{false};
  /// Victim for Cancel/DeadlineExpire. Written before arming (release),
  /// must outlive the armed window.
  std::atomic<CancelSource*> victim{nullptr};
  /// Scheduling events observed while armed. Arm with a huge countdown to
  /// count a workload's events without firing (sweep sizing).
  std::atomic<std::int64_t> events{0};
};

inline State& state() {
  static State s;
  return s;
}

/// Arm one fault at the `after`-th scheduling event from now (1 = the very
/// next event). Process-global: tests arm/disarm around a quiesced pool.
inline void arm(Kind kind, std::int64_t after, CancelSource* victim = nullptr) {
  State& s = state();
  s.kind.store(int(kind), std::memory_order_relaxed);
  s.victim.store(victim, std::memory_order_relaxed);
  s.pending_throw.store(false, std::memory_order_relaxed);
  s.events.store(0, std::memory_order_relaxed);
  s.countdown.store(after, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

inline void disarm() {
  State& s = state();
  s.armed.store(false, std::memory_order_release);
  s.pending_throw.store(false, std::memory_order_relaxed);
  s.victim.store(nullptr, std::memory_order_relaxed);
}

[[nodiscard]] inline std::int64_t events_observed() {
  return state().events.load(std::memory_order_relaxed);
}

/// Slow path, called only while armed. `may_throw` marks sites whose
/// enclosing try region captures into an ErrorSlot; non-throwing sites
/// defer TaskThrow to the next throwing one.
inline void fire(bool may_throw) {
  State& s = state();
  s.events.fetch_add(1, std::memory_order_relaxed);
  if (may_throw && s.pending_throw.exchange(false, std::memory_order_acq_rel)) {
    throw InjectedFault("injected task-body fault (deferred)");
  }
  if (s.countdown.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  switch (Kind(s.kind.load(std::memory_order_acquire))) {
    case Kind::TaskThrow:
      if (may_throw) throw InjectedFault("injected task-body fault");
      s.pending_throw.store(true, std::memory_order_release);
      return;
    case Kind::Cancel:
      if (CancelSource* v = s.victim.load(std::memory_order_acquire)) {
        v->request_cancel();
      }
      return;
    case Kind::DeadlineExpire:
      if (CancelSource* v = s.victim.load(std::memory_order_acquire)) {
        v->expire_now();
      }
      return;
  }
}

inline void event(bool may_throw) {
  if (state().armed.load(std::memory_order_acquire)) fire(may_throw);
}

}  // namespace jsceres::rivertrail::sched_faults

#if JSCERES_SCHED_FAULTS
/// A scheduling event inside a try region that drains through an ErrorSlot.
#define JSCERES_SCHED_EVENT() ::jsceres::rivertrail::sched_faults::event(true)
/// A scheduling event on the pool's dispatch path (throwing would escape
/// worker_main): fires only cancel/deadline faults, defers TaskThrow.
#define JSCERES_SCHED_EVENT_NOTHROW() \
  ::jsceres::rivertrail::sched_faults::event(false)
#else
#define JSCERES_SCHED_EVENT() ((void)0)
#define JSCERES_SCHED_EVENT_NOTHROW() ((void)0)
#endif
