#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rivertrail/fault_injection.h"
#include "rivertrail/task.h"
#include "rivertrail/ws_deque.h"
#include "support/obs.h"

namespace jsceres::rivertrail {

#if defined(__x86_64__) || defined(__i386__)
inline void cpu_relax() { __builtin_ia32_pause(); }
#else
inline void cpu_relax() { std::this_thread::yield(); }
#endif

/// Fixed pool of task slots, one per worker. The owning worker allocates
/// (single consumer); any thread that finishes a stolen task frees (multiple
/// producers). The free list is a Treiber stack over slot indices — safe
/// from ABA precisely because there is exactly one popper: a node the owner
/// is inspecting cannot be re-pushed underneath it, since only the owner
/// ever pops.
///
/// The acquire/release pair on the head CAS is load-bearing beyond the list
/// itself: it orders a thief's reads of a task's payload before the owner's
/// rewrite of the recycled slot.
class TaskSlab {
 public:
  explicit TaskSlab(std::size_t capacity) : slots_(capacity), next_(capacity) {
    for (std::size_t i = 0; i < capacity; ++i) {
      next_[i].store(std::int32_t(i) + 1 < std::int32_t(capacity) ? std::int32_t(i) + 1
                                                                  : -1,
                     std::memory_order_relaxed);
    }
    free_head_.store(0, std::memory_order_relaxed);
  }

  /// Owner thread only. nullptr when exhausted (caller stops splitting).
  Task* acquire() {
    std::int32_t head = free_head_.load(std::memory_order_acquire);
    while (head >= 0 &&
           !free_head_.compare_exchange_weak(
               head, next_[std::size_t(head)].load(std::memory_order_relaxed),
               std::memory_order_acquire, std::memory_order_acquire)) {
    }
    return head < 0 ? nullptr : &slots_[std::size_t(head)];
  }

  /// Any thread.
  void release(Task* task) {
    const auto index = std::int32_t(task - slots_.data());
    std::int32_t head = free_head_.load(std::memory_order_relaxed);
    do {
      next_[std::size_t(index)].store(head, std::memory_order_relaxed);
    } while (!free_head_.compare_exchange_weak(head, index, std::memory_order_release,
                                               std::memory_order_relaxed));
  }

 private:
  std::vector<Task> slots_;
  std::vector<std::atomic<std::int32_t>> next_;
  std::atomic<std::int32_t> free_head_{-1};
};

/// Work-stealing worker pool. Each worker owns a Chase–Lev deque (ws_deque.h)
/// fed by its own recursive splits, plus a mutex-protected injection ring for
/// external submissions (round-robin across workers, so no single shared
/// queue serializes dispatch the way the old mutex+condvar pool did).
///
/// Work discovery order per worker: own deque (LIFO — cache-warm splits
/// first), own injection ring, then randomized stealing from other workers
/// with exponential backoff (pause → yield → park on the idle condvar).
/// Parking is missed-wakeup-free: a worker records the work epoch, rescans
/// everything, and only sleeps if the epoch is still current; producers bump
/// the epoch before checking for sleepers.
///
/// The destructor drains: workers only exit once stopping is set AND a full
/// scan (own deque, every injection ring, every victim) finds nothing.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned thread_count = 0) {
    if (thread_count == 0) {
      thread_count = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i) {
      workers_.push_back(std::make_unique<Worker>(this, i));
    }
    threads_.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i) {
      threads_.emplace_back([this, i] { worker_main(*workers_[i]); });
    }
  }

  ~ThreadPool() {
    stopping_.store(true, std::memory_order_seq_cst);
    {
      const std::lock_guard lock(idle_mutex_);
      idle_cv_.notify_all();
    }
    for (auto& thread : threads_) thread.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // --- submission ----------------------------------------------------------

  /// Generic fire-and-forget submission (cold path: boxes the callable).
  void submit(std::function<void()> fn) { inject(Task::boxed(std::move(fn))); }

  /// Enqueue a batch with one round-robin pass and one wakeup.
  void submit_bulk(std::vector<std::function<void()>> fns) {
    if (fns.empty()) return;
    std::vector<Task> tasks;
    tasks.reserve(fns.size());
    for (auto& fn : fns) tasks.push_back(Task::boxed(std::move(fn)));
    inject_bulk(tasks.data(), tasks.size());
  }

  /// Inject one prebuilt task round-robin.
  void inject(Task task) {
    Worker& target = *workers_[next_inject_.fetch_add(1, std::memory_order_relaxed) %
                               workers_.size()];
    {
      const std::lock_guard lock(target.inject_mutex);
      target.inject.push_back(task);
      target.inject_nonempty.store(true, std::memory_order_release);
    }
    signal_work();
  }

  /// Inject `count` prebuilt tasks round-robin under one wakeup. This is the
  /// batched path parallel_for and par_reduce use to launch their roots.
  void inject_bulk(const Task* tasks, std::size_t count) {
    if (count == 0) return;
    const std::size_t start =
        next_inject_.fetch_add(count, std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) {
      Worker& target = *workers_[(start + i) % workers_.size()];
      const std::lock_guard lock(target.inject_mutex);
      target.inject.push_back(tasks[i]);
      target.inject_nonempty.store(true, std::memory_order_release);
    }
    signal_work();
  }

  // --- worker-context services (used by parallel_for) ----------------------

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const {
    return tls_worker_ != nullptr && tls_worker_->pool == this;
  }

  /// Push a task onto the calling worker's own deque (splitting hot path —
  /// no locks, no allocation; the slot comes from the worker's slab). False
  /// when not on a worker thread or when slab/deque are full: the caller
  /// keeps the work and runs it inline instead.
  template <typename F>
  bool try_push_local(F fn) {
    if (!on_worker_thread()) return false;
    Worker& self = *tls_worker_;
    Task* slot = self.slab.acquire();
    if (slot == nullptr) return false;
    *slot = Task::inline_of(fn);
    if (!self.deque.push(slot)) {
      self.slab.release(slot);
      return false;
    }
    JSCERES_OBS_COUNT("sched.splits", 1);
    // Unconditional, like inject(): the epoch bump must precede the
    // sleepers check or a worker parking between its rescan and its
    // sleepers_ increment sleeps through this push. Splits only happen
    // while somebody is hungry, so the seq_cst RMW here is rare.
    signal_work();
    return true;
  }

  /// Somebody is out of work right now (scanning for a steal, helping at a
  /// join, or parked). parallel_for's adaptive splitter keys off this: split
  /// while thieves are hungry, run the rest of the range inline once
  /// everyone is busy.
  [[nodiscard]] bool has_hungry_thief() const {
    return hungry_.load(std::memory_order_relaxed) > 0 ||
           sleepers_.load(std::memory_order_relaxed) > 0;
  }

  /// Run one pending task if any can be found (own deque when on a worker
  /// thread, else injection rings / steals). Used by join loops so a thread
  /// waiting on a gate helps instead of blocking — which is also what makes
  /// nested parallel_for deadlock-free. The scan counts as hungry so that
  /// running ranges split for the helper to steal.
  bool try_run_one() {
    if (on_worker_thread()) {
      Worker& self = *tls_worker_;
      if (Task* task = self.deque.pop()) {
        run_owned(self, task);
        return true;
      }
    }
    Task task;
    hungry_.fetch_add(1, std::memory_order_relaxed);
    const bool found = find_nonlocal(scan_origin(), &task);
    hungry_.fetch_sub(1, std::memory_order_relaxed);
    if (found) {
      JSCERES_SCHED_EVENT_NOTHROW();  // claim-by-helper scheduling event
      JSCERES_OBS_COUNT("sched.tasks_helped", 1);
      JSCERES_OBS_SPAN("sched", "task");
      task.run();
    }
    return found;
  }

  [[nodiscard]] unsigned size() const { return unsigned(workers_.size()); }

 private:
  struct Worker {
    Worker(ThreadPool* pool_, unsigned index_)
        : pool(pool_), index(index_), deque(kDequeCapacity), slab(kDequeCapacity),
          rng_state(0x9e3779b97f4a7c15ull ^ (index_ + 1)) {}

    ThreadPool* pool;
    unsigned index;
    WsDeque deque;
    TaskSlab slab;
    std::mutex inject_mutex;
    std::deque<Task> inject;
    /// Lock-free "ring might be non-empty" peek so the (frequent) idle and
    /// help scans skip empty rings without touching the mutex. Producers
    /// set it after pushing under the lock; consumers clear it under the
    /// lock when they drain the last task. A stale-false read is bridged by
    /// the epoch protocol (work published before the bump), a stale-true
    /// read just costs one lock.
    std::atomic<bool> inject_nonempty{false};
    std::uint64_t rng_state;
  };

  // Per-worker split budget. A full deque/slab just degrades to running
  // ranges inline, so this bounds memory, not correctness.
  static constexpr std::size_t kDequeCapacity = 1024;

  static thread_local Worker* tls_worker_;

  void worker_main(Worker& self) {
    tls_worker_ = &self;
    JSCERES_OBS_SET_THREAD_NAME("worker-" + std::to_string(self.index));
    while (true) {
      if (Task* task = self.deque.pop()) {
        run_owned(self, task);
        continue;
      }
      // Out of local work: stay marked hungry for the whole search so
      // running ranges keep splitting on our behalf.
      Task task;
      bool found = false;
      hungry_.fetch_add(1, std::memory_order_relaxed);
      int idle_rounds = 0;
      while (true) {
        found = find_nonlocal(self.index, &task);
        if (found || stopping_.load(std::memory_order_acquire)) break;
        // Backoff: brief spin (work showing up right after a split is the
        // common case), then yield to let producers run on oversubscribed
        // hosts, then park.
        ++idle_rounds;
        if (idle_rounds <= 2) {
          for (int i = 0; i < 32; ++i) cpu_relax();
        } else if (idle_rounds <= 8) {
          std::this_thread::yield();
        } else {
          found = park(self, &task);
          if (found) break;
          idle_rounds = 0;
        }
      }
      hungry_.fetch_sub(1, std::memory_order_relaxed);
      if (found) {
        JSCERES_SCHED_EVENT_NOTHROW();  // steal/inject-claim scheduling event
        JSCERES_OBS_SPAN("sched", "task");
        task.run();
        continue;
      }
      break;  // stopping, and a full scan found nothing
    }
    tls_worker_ = nullptr;
  }

  /// Run a task popped from `self`'s own deque: copy out, recycle the slot,
  /// then execute.
  void run_owned(Worker& self, Task* task) {
    Task local = *task;
    self.slab.release(task);
    JSCERES_SCHED_EVENT_NOTHROW();  // own-deque pop scheduling event
    JSCERES_OBS_COUNT("sched.tasks_own", 1);
    JSCERES_OBS_SPAN("sched", "task");
    local.run();
  }

  /// One full scan for non-local work, starting near `origin`: injection
  /// rings first (external submissions are the oldest work), then one steal
  /// attempt per victim in randomized order. Copies the found task into
  /// `*out`; stolen slots are recycled here, before the task runs.
  bool find_nonlocal(unsigned origin, Task* out) {
    const unsigned n = unsigned(workers_.size());
    for (unsigned i = 0; i < n; ++i) {
      Worker& victim = *workers_[(origin + i) % n];
      if (!victim.inject_nonempty.load(std::memory_order_acquire)) continue;
      const std::lock_guard lock(victim.inject_mutex);
      if (!victim.inject.empty()) {
        *out = victim.inject.front();
        victim.inject.pop_front();
        if (victim.inject.empty()) {
          victim.inject_nonempty.store(false, std::memory_order_relaxed);
        }
        JSCERES_OBS_COUNT("sched.inject_claims", 1);
        return true;
      }
    }
    const unsigned start = victim_seed();
    for (unsigned i = 0; i < n; ++i) {
      Worker& victim = *workers_[(start + i) % n];
      if (Task* task = victim.deque.steal()) {
        *out = *task;
        victim.slab.release(task);
        JSCERES_OBS_COUNT("sched.steals", 1);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] unsigned scan_origin() const {
    return unsigned(next_inject_.load(std::memory_order_relaxed)) %
           unsigned(workers_.size());
  }

  unsigned victim_seed() {
    // Workers advance their own xorshift state; external helper threads use
    // a thread_local seeded from its own address, so concurrent helpers do
    // not all start every scan at the same victim.
    static thread_local std::uint64_t tls_helper_seed = 0;
    std::uint64_t* state;
    if (tls_worker_ != nullptr && tls_worker_->pool == this) {
      state = &tls_worker_->rng_state;
    } else {
      if (tls_helper_seed == 0) {
        tls_helper_seed =
            0x9e3779b97f4a7c15ull ^ std::uint64_t(reinterpret_cast<std::uintptr_t>(&tls_helper_seed));
      }
      state = &tls_helper_seed;
    }
    std::uint64_t x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    return unsigned(x % workers_.size());
  }

  /// Missed-wakeup-free parking: record the epoch, rescan, and only sleep if
  /// the epoch is still current. Producers publish work first and bump the
  /// epoch second, so either the rescan sees the work or the wait predicate
  /// sees the bumped epoch. Returns true with `*out` filled when the rescan
  /// found work instead of sleeping.
  bool park(Worker& self, Task* out) {
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_seq_cst);
    if (find_nonlocal(self.index, out)) return true;
    JSCERES_OBS_COUNT("sched.parks", 1);
    std::unique_lock lock(idle_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    idle_cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_acquire) ||
             work_epoch_.load(std::memory_order_seq_cst) != epoch;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    return false;
  }

  void signal_work() {
    work_epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      const std::lock_guard lock(idle_mutex_);
      idle_cv_.notify_all();
    }
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_inject_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<int> hungry_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

inline thread_local ThreadPool::Worker* ThreadPool::tls_worker_ = nullptr;

}  // namespace jsceres::rivertrail
