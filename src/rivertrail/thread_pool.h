#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jsceres::rivertrail {

/// A fixed-size worker pool. Tasks are arbitrary callables; completion is
/// coordinated by the callers (see parallel_for), keeping the pool itself
/// free of per-task bookkeeping.
///
/// Per the C++ Core Guidelines concurrency rules: all shared state is
/// mutex-protected, workers are joined in the destructor (RAII), and no
/// detached threads exist.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned thread_count = 0) {
    if (thread_count == 0) {
      thread_count = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) {
    {
      const std::lock_guard lock(mutex_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Enqueue a batch under a single lock acquisition and wake all workers
  /// once, instead of paying a lock + wakeup per task. This is what
  /// parallel_for uses to launch its per-chunk tasks: for small kernels the
  /// per-chunk notify_one was a measurable share of the dispatch cost.
  void submit_bulk(std::vector<std::function<void()>> tasks) {
    if (tasks.empty()) return;
    {
      const std::lock_guard lock(mutex_);
      for (auto& task : tasks) queue_.push_back(std::move(task));
    }
    cv_.notify_all();
  }

  [[nodiscard]] unsigned size() const { return unsigned(workers_.size()); }

 private:
  void worker_loop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace jsceres::rivertrail
