#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "rivertrail/fault_injection.h"
#include "rivertrail/parallel_for.h"
#include "rivertrail/thread_pool.h"
#include "support/cancel.h"
#include "support/obs.h"

namespace jsceres::rivertrail {

/// One stage of a parallel_pipeline. Serial stages execute tokens strictly
/// in ticket order, one at a time (TBB's serial_in_order); parallel stages
/// execute any ready token immediately on whichever worker carries it.
///
/// The stage body receives the token's ticket (0, 1, 2, ...). The FIRST
/// stage may return false to end the stream early ("input dried up"); later
/// stages' return values are ignored. Use serial_stage / parallel_stage to
/// build one from a void- or bool-returning callable.
struct PipelineStage {
  bool serial = true;
  std::function<bool(std::size_t)> fn;
};

namespace pipe_detail {

template <typename F>
std::function<bool(std::size_t)> adapt(F fn) {
  if constexpr (std::is_void_v<std::invoke_result_t<F, std::size_t>>) {
    return [fn = std::move(fn)](std::size_t token) mutable {
      fn(token);
      return true;
    };
  } else {
    return std::function<bool(std::size_t)>(std::move(fn));
  }
}

}  // namespace pipe_detail

template <typename F>
PipelineStage serial_stage(F fn) {
  return PipelineStage{true, pipe_detail::adapt(std::move(fn))};
}

template <typename F>
PipelineStage parallel_stage(F fn) {
  return PipelineStage{false, pipe_detail::adapt(std::move(fn))};
}

namespace pipe_detail {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Shared state of one pipeline invocation (on the calling thread's stack;
/// the gate is the lifetime fence, exactly like LoopDesc).
///
/// Tokens are tickets 0..total-1, spawned in ticket order with at most
/// `in_flight` alive at once (a retiring token spawns the next ticket).
/// Each token walks the stage list as a chain of 48-byte inline tasks
/// ({run, ticket, stage} is 24 bytes). Serial stages order tokens with a
/// per-stage ticket turnstile: a token arriving out of turn parks in a ring
/// of flags and is re-spawned by its predecessor — the parking token's task
/// simply ends, so nothing blocks and help-first joins stay live. The ring
/// needs only `in_flight` slots: every parked ticket t satisfies
/// stage.next < t < stage.next + in_flight (all tickets in between are
/// alive, and at most in_flight tokens are alive), so ticket % capacity is
/// collision-free.
///
/// End-of-stream: when the input stage returns false at ticket t, tickets
/// > t still flow through as "bubbles" (bodies skipped, turnstiles and the
/// gate still retired) — the cost of a bubble is a few atomic ops, and it
/// keeps the gate's count statically known. Exceptions behave like
/// parallel_for: first wins, all later bodies are skipped, every token
/// retires, rethrow at the join.
struct PipelineRun {
  ThreadPool* pool = nullptr;
  std::vector<PipelineStage> stages;

  struct Turnstile {
    std::mutex mutex;
    std::size_t next = 0;                // next ticket allowed to execute
    std::vector<std::uint8_t> parked;    // ring of "waiting" flags
  };
  std::deque<Turnstile> turnstiles;      // one per stage (unused if parallel)
  std::size_t ring_mask = 0;
  std::size_t total = 0;
  std::atomic<std::size_t> next_spawn{0};
  std::atomic<std::size_t> end_ticket{kNone};
  CompletionGate gate;
  CancelToken cancel;  // observed per stage body; cancelled tokens -> bubbles
  detail::ErrorSlot error;

  PipelineRun(ThreadPool& p, std::vector<PipelineStage> s, std::size_t tokens,
              std::size_t in_flight)
      : pool(&p), stages(std::move(s)), total(tokens), gate(std::int64_t(tokens)) {
    const std::size_t cap = std::bit_ceil(std::max<std::size_t>(in_flight, 1));
    ring_mask = cap - 1;
    for (std::size_t i = 0; i < stages.size(); ++i) {
      Turnstile& turnstile = turnstiles.emplace_back();
      if (stages[i].serial) turnstile.parked.assign(cap, 0);
    }
  }

  void spawn(std::size_t ticket, std::size_t stage) {
    PipelineRun* self = this;
    const auto task = [self, ticket, stage] { self->advance(ticket, stage); };
    if (!pool->try_push_local(task)) pool->inject(Task::inline_of(task));
  }

  void run_body(std::size_t ticket, std::size_t stage) {
    // A cancelled run turns every not-yet-executed stage body into a
    // bubble: turnstiles keep turning, the gate keeps retiring, and the
    // stream drains to the join with no token leaked — the same discipline
    // as first-exception-wins, raised as CancelledError at the join.
    if (error.has_failed() || cancel.cancelled()) return;
    if (ticket >= end_ticket.load(std::memory_order_relaxed)) return;  // bubble
    JSCERES_OBS_SPAN_ARG("pipeline", "stage", "stage", stage);
#if JSCERES_OBS
    const std::int64_t obs_body_start = obs::mono_ns();
#endif
    try {
      JSCERES_SCHED_EVENT();
      if (!stages[stage].fn(ticket) && stage == 0) {
        // Input dried up at this ticket: it and everything after are
        // bubbles. min-CAS so a (misused) parallel input stage stays safe.
        std::size_t cur = end_ticket.load(std::memory_order_relaxed);
        while (ticket < cur && !end_ticket.compare_exchange_weak(
                                   cur, ticket, std::memory_order_relaxed)) {
        }
      }
    } catch (...) {
      error.capture();
    }
#if JSCERES_OBS
    // Per-stage ticket latency (body wall time, ns). One histogram across
    // stages keeps the hot path to a single probe; the trace spans carry
    // the per-stage breakdown via the "stage" arg.
    JSCERES_OBS_HIST("pipeline.stage_ns", obs::mono_ns() - obs_body_start);
#endif
  }

  /// Walk `ticket` from `stage` to retirement (or park it at a turnstile).
  void advance(std::size_t ticket, std::size_t stage) {
    while (stage < stages.size()) {
      if (stages[stage].serial) {
        Turnstile& turnstile = turnstiles[stage];
        {
          const std::lock_guard lock(turnstile.mutex);
          if (turnstile.next != ticket) {
            // Out of turn: park. Our predecessor (which must still be at or
            // before this turnstile) re-spawns us when it passes.
            turnstile.parked[ticket & ring_mask] = 1;
            return;
          }
        }
        run_body(ticket, stage);
        std::size_t resume = kNone;
        {
          const std::lock_guard lock(turnstile.mutex);
          turnstile.next = ticket + 1;
          if (turnstile.next < total &&
              turnstile.parked[turnstile.next & ring_mask] != 0) {
            turnstile.parked[turnstile.next & ring_mask] = 0;
            resume = turnstile.next;
          }
        }
        // Help-first: the successor goes to the deque for thieves; we keep
        // carrying our own token downstream.
        if (resume != kNone) spawn(resume, stage);
      } else {
        run_body(ticket, stage);
      }
      ++stage;
    }
    // Retired: hand the freed in-flight slot to the next unspawned ticket.
    JSCERES_OBS_COUNT("pipeline.tokens", 1);
    const std::size_t next = next_spawn.fetch_add(1, std::memory_order_relaxed);
    if (next < total) spawn(next, 0);
    else JSCERES_OBS_GAUGE_ADD("pipeline.in_flight", -1);
    gate.arrive(1);  // last touch of the run state for this token
  }
};

}  // namespace pipe_detail

/// Run a token stream through `stages` on the work-stealing pool and wait.
///
/// Tokens are dense tickets 0..max_tokens-1 entering stage 0 in order, with
/// at most `max_in_flight` tokens alive at once (backpressure: a token must
/// retire from the last stage before the next ticket starts; 0 picks
/// 2 x workers). Serial stages see tickets in strictly increasing order —
/// a serial-out final stage is therefore byte-deterministic run to run —
/// while parallel stages overlap freely. The input stage may end the stream
/// early by returning false. Returns the number of tokens the input stage
/// actually produced.
///
/// The first exception thrown by any stage body is rethrown here after the
/// stream quiesces (all tokens retired), matching parallel_for's gate.
///
/// `cancel` (default inert) is observed before every stage body: once
/// cancelled, in-flight and unspawned tokens flow through as bubbles until
/// the stream drains, then CancelledError is thrown here. A body exception
/// racing a cancel wins, as everywhere else.
inline std::size_t run_pipeline(ThreadPool& pool, std::size_t max_tokens,
                                std::size_t max_in_flight,
                                std::vector<PipelineStage> stages,
                                CancelToken cancel = {}) {
  if (max_tokens == 0 || stages.empty()) return 0;
  cancel.raise_if_cancelled();
  if (max_in_flight == 0) max_in_flight = 2 * std::size_t(pool.size());
  max_in_flight = std::min(std::max<std::size_t>(max_in_flight, 1), max_tokens);
  pipe_detail::PipelineRun run(pool, std::move(stages), max_tokens, max_in_flight);
  run.cancel = cancel;
  // In-flight depth gauge: +max_in_flight now (tickets 0..k-1 go live),
  // retired tokens that spawn a successor keep the level, the last
  // max_in_flight retirements drain it back down.
  JSCERES_OBS_GAUGE_ADD("pipeline.in_flight", std::int64_t(max_in_flight));
  run.next_spawn.store(max_in_flight, std::memory_order_relaxed);
  for (std::size_t ticket = 1; ticket < max_in_flight; ++ticket) {
    run.spawn(ticket, 0);
  }
  run.advance(0, 0);  // caller-runs: ticket 0 starts on the calling thread
  detail::help_until(pool, run.gate);
  run.error.rethrow_if_failed();
  cancel.raise_if_cancelled();
  const std::size_t end = run.end_ticket.load(std::memory_order_relaxed);
  return std::min(end, max_tokens);
}

/// Variadic convenience: parallel_pipeline(pool, n, k, serial_stage(...),
/// parallel_stage(...), serial_stage(...)).
template <typename... Stages>
std::size_t parallel_pipeline(ThreadPool& pool, std::size_t max_tokens,
                              std::size_t max_in_flight, Stages... stages) {
  std::vector<PipelineStage> list;
  list.reserve(sizeof...(stages));
  (list.push_back(std::move(stages)), ...);
  return run_pipeline(pool, max_tokens, max_in_flight, std::move(list));
}

}  // namespace jsceres::rivertrail
