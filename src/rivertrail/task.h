#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstring>
#include <functional>
#include <type_traits>

namespace jsceres::rivertrail {

/// A schedulable unit with a fixed 48-byte footprint: one thunk pointer plus
/// 40 bytes of inline payload. Small trivially-copyable callables (the
/// parallel_for range tasks: a descriptor pointer and two indices) are
/// stored inline, so the dispatch hot path never touches the heap — this is
/// the allocation the old `std::function` queue paid per chunk. Larger or
/// non-trivial callables (the generic `submit(std::function)` path) fall
/// back to a heap box.
///
/// Tasks are trivially copyable and destructible so they can live in the
/// lock-free deque's atomic cells (as pointers into per-worker slabs) and be
/// copied by value through the injection rings. Ownership discipline: a task
/// is run exactly once; boxed tasks free their box when run.
class Task {
 public:
  static constexpr std::size_t kInlineBytes = 40;

  Task() = default;

  /// Wrap a small trivially-copyable callable inline.
  template <typename F>
  static Task inline_of(F fn) {
    static_assert(sizeof(F) <= kInlineBytes, "callable too large for inline task");
    static_assert(std::is_trivially_copyable_v<F> && std::is_trivially_destructible_v<F>,
                  "inline tasks must be trivially copyable");
    Task task;
    task.invoke_ = [](Task& self) {
      std::array<unsigned char, sizeof(F)> bytes;
      std::memcpy(bytes.data(), self.storage_, sizeof(F));
      std::bit_cast<F>(bytes)();
    };
    std::memcpy(task.storage_, &fn, sizeof(F));
    return task;
  }

  /// Wrap an arbitrary callable behind one heap allocation (cold path:
  /// external fire-and-forget submission).
  static Task boxed(std::function<void()> fn) {
    auto* box = new std::function<void()>(std::move(fn));
    Task task;
    task.invoke_ = [](Task& self) {
      std::function<void()>* owned = nullptr;
      std::memcpy(&owned, self.storage_, sizeof(owned));
      (*owned)();
      delete owned;
    };
    std::memcpy(task.storage_, &box, sizeof(box));
    return task;
  }

  void run() { invoke_(*this); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

 private:
  using InvokeFn = void (*)(Task&);

  InvokeFn invoke_ = nullptr;
  alignas(void*) unsigned char storage_[kInlineBytes];
};

static_assert(sizeof(Task) == 48, "Task is sized to stay allocation-free");
static_assert(std::is_trivially_copyable_v<Task>);
static_assert(std::is_trivially_destructible_v<Task>);

}  // namespace jsceres::rivertrail
