#include "net/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/obs.h"

namespace jsceres::net {

namespace {

std::int64_t mono_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AnalysisServer::AnalysisServer(AnalysisService& service, ServerOptions options)
    : service_(&service), options_(options) {}

AnalysisServer::~AnalysisServer() { stop(); }

bool AnalysisServer::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 64) < 0) return fail("listen");

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_main(); });
  return true;
}

void AnalysisServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listen socket unblocks the accept loop's poll at its next
  // tick; handler threads observe stopping_ on theirs and enter drain.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (;;) {
    std::thread victim;
    {
      const std::lock_guard lock(conn_mutex_);
      reap_finished_locked();
      if (connections_.empty()) break;
      auto it = connections_.begin();
      victim = std::move(it->second);
      connections_.erase(it);
    }
    if (victim.joinable()) victim.join();
  }
  JSCERES_OBS_GAUGE_SET("net.connections_open", 0);
}

ServerStats AnalysisServer::stats() const {
  ServerStats out;
  out.connections_accepted = accepted_.load(std::memory_order_relaxed);
  out.connections_rejected = rejected_.load(std::memory_order_relaxed);
  out.connections_open = open_connections_.load(std::memory_order_relaxed);
  out.connections_timed_out = timed_out_.load(std::memory_order_relaxed);
  out.frames_read = frames_read_.load(std::memory_order_relaxed);
  out.frames_written = frames_written_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.requests_submitted = requests_submitted_.load(std::memory_order_relaxed);
  out.responses_written = responses_written_.load(std::memory_order_relaxed);
  out.error_frames = error_frames_.load(std::memory_order_relaxed);
  out.malformed_frames = malformed_.load(std::memory_order_relaxed);
  out.auth_failures = auth_failures_.load(std::memory_order_relaxed);
  out.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  out.in_flight_rejected = in_flight_rejected_.load(std::memory_order_relaxed);
  return out;
}

void AnalysisServer::accept_main() {
  JSCERES_OBS_SET_THREAD_NAME("net-accept");
  while (!stopping_.load(std::memory_order_acquire)) {
    const IoStatus ready = wait_readable(listen_fd_, 50);
    if (ready == IoStatus::Timeout) continue;
    if (ready == IoStatus::Error) break;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // listen socket closed by stop()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    {
      const std::lock_guard lock(conn_mutex_);
      reap_finished_locked();
    }
    if (open_connections_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      // The wire mirror of the service's structured shed: the excess
      // connection learns WHY before the close, within a short write
      // budget so a non-reading flooder cannot stall the accept loop.
      const std::vector<std::uint8_t> busy = make_error_frame(
          0, WireError::ServerBusy, "connection cap reached, retry later");
      write_all(fd, busy.data(), busy.size(), 200);
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      JSCERES_OBS_COUNT("net.connections_rejected", 1);
      continue;
    }

    accepted_.fetch_add(1, std::memory_order_relaxed);
    JSCERES_OBS_COUNT("net.connections_accepted", 1);
    const std::size_t open =
        open_connections_.fetch_add(1, std::memory_order_acq_rel) + 1;
    JSCERES_OBS_GAUGE_SET("net.connections_open", open);
    const std::lock_guard lock(conn_mutex_);
    const std::uint64_t conn_id = next_conn_id_++;
    connections_.emplace(
        conn_id, std::thread([this, fd, conn_id] {
          connection_main(fd, conn_id);
          const std::size_t now_open =
              open_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
          JSCERES_OBS_GAUGE_SET("net.connections_open", now_open);
          const std::lock_guard done_lock(conn_mutex_);
          finished_.push_back(conn_id);
        }));
  }
}

void AnalysisServer::reap_finished_locked() {
  for (const std::uint64_t id : finished_) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    it->second.join();
    connections_.erase(it);
  }
  finished_.clear();
}

bool AnalysisServer::write_frame(int fd, const std::vector<std::uint8_t>& bytes) {
  const IoStatus status =
      write_all(fd, bytes.data(), bytes.size(), options_.write_timeout_ms);
  if (status == IoStatus::Ok) {
    frames_written_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
    JSCERES_OBS_COUNT("net.frames_written", 1);
    JSCERES_OBS_COUNT("net.bytes_written", bytes.size());
    return true;
  }
  if (status == IoStatus::Timeout) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    JSCERES_OBS_COUNT("net.connections_timed_out", 1);
  }
  return false;
}

void AnalysisServer::send_error(int fd, std::uint32_t id, WireError code,
                                const std::string& message) {
  error_frames_.fetch_add(1, std::memory_order_relaxed);
  JSCERES_OBS_COUNT("net.error_frames", 1);
  write_frame(fd, make_error_frame(id, code, message));
}

bool AnalysisServer::rate_allow(const std::string& tenant) {
  if (options_.tenant_requests_per_sec == 0) return true;
  const std::int64_t now = mono_ms();
  const std::lock_guard lock(rate_mutex_);
  RateWindow& window = rate_[tenant];
  if (now - window.window_start_ms >= 1000) {
    window.window_start_ms = now;
    window.count = 0;
  }
  return ++window.count <= options_.tenant_requests_per_sec;
}

bool AnalysisServer::handle_frame(int fd, const Frame& frame,
                                  std::deque<Pending>& pending) {
  if (frame.kind != FrameKind::Request) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    JSCERES_OBS_COUNT("net.malformed_frames", 1);
    send_error(fd, 0, WireError::BadKind,
               "clients may only send Request frames");
    return false;
  }

  WireRequest request;
  if (!decode_request(frame.payload, request)) {
    // Malformed input never reaches the engine: answered and closed here,
    // with the decoder having touched nothing but its own buffer.
    malformed_.fetch_add(1, std::memory_order_relaxed);
    JSCERES_OBS_COUNT("net.malformed_frames", 1);
    send_error(fd, 0, WireError::MalformedPayload,
               "request payload failed to decode");
    return false;
  }

  // Tenant authentication ahead of admission: a bad token is a hostile or
  // misconfigured client — reject and close before any engine work.
  std::string tenant;
  if (options_.tenants.empty()) {
    tenant = frame.tenant;
  } else {
    const auto it = options_.tenants.find(frame.tenant);
    if (it == options_.tenants.end()) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      JSCERES_OBS_COUNT("net.auth_failures", 1);
      send_error(fd, request.id, WireError::AuthFailed,
                 "unknown tenant token");
      return false;
    }
    tenant = it->second;
  }

  // Policy rejections (quota, pipeline cap) answer through the pending
  // FIFO so responses keep strict request order, and the connection lives:
  // a client may back off and continue.
  const auto reject = [&](WireError code, const std::string& message,
                          std::atomic<std::size_t>& counter,
                          const char* metric) {
    counter.fetch_add(1, std::memory_order_relaxed);
#if JSCERES_OBS
    obs::Counter::at(metric).add(1);
#else
    (void)metric;
#endif
    Pending item;
    item.id = request.id;
    item.tenant = tenant;
    item.received_ms = mono_ms();
    item.is_error = true;
    item.error = code;
    item.error_message = message;
    pending.push_back(std::move(item));
  };

  if (!rate_allow(tenant)) {
    reject(WireError::RateLimited,
           "tenant exceeded " +
               std::to_string(options_.tenant_requests_per_sec) +
               " requests/sec",
           rate_limited_, "net.rate_limited");
    return true;
  }
  if (pending.size() >= options_.max_in_flight_per_conn) {
    reject(WireError::TooManyInFlight,
           "connection already has " + std::to_string(pending.size()) +
               " requests in flight",
           in_flight_rejected_, "net.in_flight_rejected");
    return true;
  }

  ServiceRequest service_request;
  service_request.tenant = tenant;
  service_request.memory_estimate = std::size_t(request.memory_estimate);
  service_request.session.name =
      request.name.empty() ? "wire-" + std::to_string(request.id)
                           : request.name;
  service_request.session.source = std::move(request.source);
  service_request.session.mode = int(request.mode);
  service_request.session.has_timers = request.has_timers;
  service_request.session.deadline_ms = std::int64_t(request.deadline_ms);
  service_request.session.max_ticks = request.max_ticks;
  service_request.session.limits.max_memory_bytes =
      std::size_t(request.max_memory_bytes);
  // The frame cap already bounded the source; reflect it into the sandbox
  // too so a decoded-but-huge script trips the front-end limit, not RAM.
  service_request.session.limits.max_source_bytes = options_.max_frame_bytes;

  Pending item;
  item.id = request.id;
  item.tenant = tenant;
  item.received_ms = mono_ms();
  // submit() never blocks: worst case the ticket is already complete with
  // a structured shed, which the flush loop serializes like any outcome.
  item.ticket = service_->submit(std::move(service_request));
  pending.push_back(std::move(item));
  requests_submitted_.fetch_add(1, std::memory_order_relaxed);
  JSCERES_OBS_COUNT("net.requests_submitted", 1);
  return true;
}

bool AnalysisServer::flush_pending(int fd, std::deque<Pending>& pending,
                                   bool block, std::int64_t block_deadline_ms) {
  while (!pending.empty()) {
    Pending& front = pending.front();
    std::vector<std::uint8_t> bytes;
    if (front.is_error) {
      error_frames_.fetch_add(1, std::memory_order_relaxed);
      JSCERES_OBS_COUNT("net.error_frames", 1);
      bytes = make_error_frame(front.id, front.error, front.error_message);
    } else {
      std::optional<ServiceOutcome> outcome;
      if (block) {
        // Drain path: bounded patience per ticket, never a bare wait() —
        // the writer loop must stay finite even if a session wedges.
        const std::int64_t left = block_deadline_ms - mono_ms();
        outcome = front.ticket->wait_for(left > 0 ? left : 0);
        if (!outcome.has_value()) {
          error_frames_.fetch_add(1, std::memory_order_relaxed);
          JSCERES_OBS_COUNT("net.error_frames", 1);
          bytes = make_error_frame(front.id, WireError::ShuttingDown,
                                   "server draining before outcome was ready");
        }
      } else {
        outcome = front.ticket->wait_for(0);
        if (!outcome.has_value()) return true;  // front still running
      }
      if (outcome.has_value()) {
        Frame frame;
        frame.kind = FrameKind::Response;
        frame.payload = encode_response(front.id, *outcome);
        bytes = encode_frame(frame);
#if JSCERES_OBS
        const std::int64_t wire_ms = mono_ms() - front.received_ms;
        JSCERES_OBS_HIST("net.request_ms", wire_ms);
        obs::Histogram::at("net.request_ms." + (front.tenant.empty()
                                                    ? std::string("anon")
                                                    : front.tenant))
            .record(std::uint64_t(wire_ms < 0 ? 0 : wire_ms));
#endif
        responses_written_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!write_frame(fd, bytes)) return false;
    pending.pop_front();
  }
  return true;
}

void AnalysisServer::connection_main(int fd, std::uint64_t conn_id) {
  JSCERES_OBS_SET_THREAD_NAME("net-conn-" + std::to_string(conn_id));
  JSCERES_OBS_SPAN("net", "connection");

  std::vector<std::uint8_t> buffer;
  std::deque<Pending> pending;
  std::int64_t last_activity_ms = mono_ms();
  std::int64_t frame_started_ms = 0;
  bool peer_alive = true;

  while (!stopping_.load(std::memory_order_acquire)) {
    if (!flush_pending(fd, pending, /*block=*/false, 0)) {
      peer_alive = false;
      break;
    }

    const IoStatus readable = wait_readable(fd, 5);
    if (readable == IoStatus::Error) {
      peer_alive = false;
      break;
    }
    if (readable == IoStatus::Ok) {
      std::uint8_t chunk[4096];
      const std::ptrdiff_t got = read_some(fd, chunk, sizeof(chunk));
      if (got == 0) {
        // Orderly EOF — possibly mid-frame (a hostile half-close) or with
        // responses still owed (disconnect mid-response). Either way the
        // peer is gone: drop state, free the fd.
        peer_alive = false;
        break;
      }
      if (got < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          peer_alive = false;
          break;
        }
      } else {
        if (buffer.empty()) frame_started_ms = mono_ms();
        last_activity_ms = mono_ms();
        bytes_read_.fetch_add(std::size_t(got), std::memory_order_relaxed);
        JSCERES_OBS_COUNT("net.bytes_read", std::size_t(got));
        buffer.insert(buffer.end(), chunk, chunk + got);

        bool close_now = false;
        for (;;) {
          const DecodeResult decoded =
              decode_frame(buffer.data(), buffer.size(),
                           options_.max_frame_bytes);
          if (decoded.status == DecodeStatus::NeedMore) break;
          if (decoded.status == DecodeStatus::Bad) {
            malformed_.fetch_add(1, std::memory_order_relaxed);
            JSCERES_OBS_COUNT("net.malformed_frames", 1);
            // Flush outcomes already owed, then the typed verdict, then
            // close: a framing violation is unrecoverable — the byte
            // stream has no trustworthy resynchronization point.
            flush_pending(fd, pending, /*block=*/true,
                          mono_ms() + options_.drain_timeout_ms);
            send_error(fd, 0, decoded.error, decoded.detail);
            close_now = true;
            break;
          }
          frames_read_.fetch_add(1, std::memory_order_relaxed);
          JSCERES_OBS_COUNT("net.frames_read", 1);
          buffer.erase(buffer.begin(),
                       buffer.begin() + std::ptrdiff_t(decoded.consumed));
          frame_started_ms = buffer.empty() ? 0 : mono_ms();
          if (!handle_frame(fd, decoded.frame, pending)) {
            close_now = true;
            break;
          }
        }
        if (close_now) break;
      }
    }

    const std::int64_t now = mono_ms();
    if (!buffer.empty() && options_.read_timeout_ms > 0 &&
        now - frame_started_ms > options_.read_timeout_ms) {
      // Slowloris: a frame begun but drip-fed dies with a structured
      // verdict instead of occupying the handler indefinitely.
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      JSCERES_OBS_COUNT("net.connections_timed_out", 1);
      flush_pending(fd, pending, /*block=*/true,
                    now + options_.drain_timeout_ms);
      send_error(fd, 0, WireError::ReadTimeout,
                 "frame incomplete after " +
                     std::to_string(options_.read_timeout_ms) + " ms");
      break;
    }
    if (buffer.empty() && pending.empty() && options_.idle_timeout_ms > 0 &&
        now - last_activity_ms > options_.idle_timeout_ms) {
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      JSCERES_OBS_COUNT("net.connections_timed_out", 1);
      send_error(fd, 0, WireError::IdleTimeout,
                 "no traffic for " + std::to_string(options_.idle_timeout_ms) +
                     " ms");
      break;
    }
  }

  // Graceful drain: outcomes already admitted still reach the client (the
  // wire mirror of "queued requests still run" in the service destructor),
  // each bounded so a wedged session cannot wedge shutdown.
  if (peer_alive && stopping_.load(std::memory_order_acquire) &&
      !pending.empty()) {
    flush_pending(fd, pending, /*block=*/true,
                  mono_ms() + options_.drain_timeout_ms);
  }
  ::close(fd);
}

}  // namespace jsceres::net
