#pragma once

// AnalysisServer: the TCP ingress that turns AnalysisService from an
// in-process library into a server. A plain POSIX accept loop feeds
// per-connection handler threads; each connection speaks the framed
// protocol of net/frame.h, submits decoded requests to the service, and
// writes outcomes back in request order. The headline is hostile-client
// defense, not throughput: every way a client can misbehave — drip-feeding
// a frame (slowloris), announcing an oversized payload, flooding past the
// connection cap or the per-tenant rate quota, pipelining past the
// in-flight cap, sending garbage, vanishing mid-response — ends in a typed
// Error frame and/or an orderly close, never a hung fd and never an
// un-served sibling connection. Malformed input is answered and closed
// before it ever touches the engine.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "support/service.h"

namespace jsceres::net {

struct ServerOptions {
  /// Listen port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// AnalysisServer::port() — how every test and the loopback oracle run).
  std::uint16_t port = 0;
  /// Hard cap on concurrent connections. The excess connection is told so
  /// — a best-effort ServerBusy error frame — then closed, mirroring the
  /// service's shed-never-hang admission contract at the socket layer.
  std::size_t max_connections = 64;
  /// Per-frame payload cap, enforced from the header's length field before
  /// any payload byte is buffered.
  std::size_t max_frame_bytes = 1u << 20;
  /// Requests a connection may pipeline before reading responses; excess
  /// requests get a TooManyInFlight error frame (connection survives).
  std::size_t max_in_flight_per_conn = 8;
  /// A started frame must arrive completely within this window — the
  /// slowloris defense. The offender gets a ReadTimeout error frame.
  int read_timeout_ms = 2000;
  /// One response write must drain within this window (a client that stops
  /// reading cannot pin a handler).
  int write_timeout_ms = 2000;
  /// Close connections with no traffic and nothing in flight after this.
  int idle_timeout_ms = 30'000;
  /// stop(): total budget for flushing in-flight outcomes before
  /// still-pending requests are answered with ShuttingDown errors.
  int drain_timeout_ms = 5000;
  /// Accepted tenant tokens -> tenant names (the name is what the service
  /// caps and meters on). Empty map: open server — the raw token bytes are
  /// the tenant name and the anonymous (empty) token is allowed.
  std::unordered_map<std::string, std::string> tenants;
  /// Per-tenant request-rate quota, requests per rolling second, checked
  /// ahead of service admission. 0 = unlimited.
  std::size_t tenant_requests_per_sec = 0;
};

/// Monotonic wire-layer counters (gauge: connections_open).
struct ServerStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_rejected = 0;  // over the connection cap
  std::size_t connections_open = 0;      // gauge
  std::size_t connections_timed_out = 0;  // read/idle/write deadline closes
  std::size_t frames_read = 0;
  std::size_t frames_written = 0;
  std::size_t bytes_read = 0;
  std::size_t bytes_written = 0;
  std::size_t requests_submitted = 0;   // reached AnalysisService::submit
  std::size_t responses_written = 0;
  std::size_t error_frames = 0;         // typed rejections of any flavor
  std::size_t malformed_frames = 0;
  std::size_t auth_failures = 0;
  std::size_t rate_limited = 0;
  std::size_t in_flight_rejected = 0;
};

/// The ingress server. One accept thread, one handler thread per live
/// connection (bounded by max_connections — lifecycle robustness over
/// throughput; an event-loop ingress can replace the inside later without
/// touching the wire contract). All deadlines route through the
/// deadline-bounded I/O of frame.cpp, so every blocking point is finite,
/// and ServiceTicket::wait_for keeps the writer loop from ever parking
/// forever on an outcome.
class AnalysisServer {
 public:
  explicit AnalysisServer(AnalysisService& service, ServerOptions options = {});
  /// stop()s if still running.
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  /// Bind 127.0.0.1:<port>, listen, start accepting. False (with `error`
  /// filled) when the socket setup fails.
  bool start(std::string* error = nullptr);

  /// Graceful drain: stop accepting, let every connection flush in-flight
  /// outcomes (bounded by drain_timeout_ms), answer what cannot finish
  /// with ShuttingDown errors, close everything, join all threads.
  /// Idempotent.
  void stop();

  /// The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;

 private:
  /// One queued unit of the per-connection writer: either a live service
  /// ticket or a pre-completed typed rejection. Keeping rejections in the
  /// same FIFO preserves strict response ordering per connection.
  struct Pending {
    std::uint32_t id = 0;
    std::string tenant;
    std::int64_t received_ms = 0;
    std::optional<ServiceTicket> ticket;
    bool is_error = false;
    WireError error = WireError::RateLimited;
    std::string error_message;
  };

  void accept_main();
  void connection_main(int fd, std::uint64_t conn_id);
  /// Decode-and-dispatch one frame. Returns false when the connection must
  /// close (a close-reason error frame has already been queued/sent).
  bool handle_frame(int fd, const Frame& frame, std::deque<Pending>& pending);
  /// Write every finished pending response (FIFO; stops at the first
  /// still-running ticket unless `block`). False: the connection is dead.
  bool flush_pending(int fd, std::deque<Pending>& pending, bool block,
                     std::int64_t block_deadline_ms);
  bool write_frame(int fd, const std::vector<std::uint8_t>& bytes);
  /// Best-effort typed goodbye before a close.
  void send_error(int fd, std::uint32_t id, WireError code,
                  const std::string& message);
  [[nodiscard]] bool rate_allow(const std::string& tenant);
  void reap_finished_locked();

  AnalysisService* service_;
  ServerOptions options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mutex_;
  std::unordered_map<std::uint64_t, std::thread> connections_;
  std::vector<std::uint64_t> finished_;
  std::uint64_t next_conn_id_ = 1;
  std::atomic<std::size_t> open_connections_{0};

  std::mutex rate_mutex_;
  struct RateWindow {
    std::int64_t window_start_ms = 0;
    std::size_t count = 0;
  };
  std::unordered_map<std::string, RateWindow> rate_;

  // Wire counters; atomics so handler threads never serialize on stats.
  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> timed_out_{0};
  std::atomic<std::size_t> frames_read_{0};
  std::atomic<std::size_t> frames_written_{0};
  std::atomic<std::size_t> bytes_read_{0};
  std::atomic<std::size_t> bytes_written_{0};
  std::atomic<std::size_t> requests_submitted_{0};
  std::atomic<std::size_t> responses_written_{0};
  std::atomic<std::size_t> error_frames_{0};
  std::atomic<std::size_t> malformed_{0};
  std::atomic<std::size_t> auth_failures_{0};
  std::atomic<std::size_t> rate_limited_{0};
  std::atomic<std::size_t> in_flight_rejected_{0};
};

}  // namespace jsceres::net
