#pragma once

// The wire protocol of the analysis server: length-prefixed binary frames
// with a fixed 28-byte header carrying magic, version, frame kind, the
// tenant token, and the payload length. Three frame kinds flow over a
// connection — Request (client -> server: script source + mode + limits +
// memory estimate), Response (server -> client: the full serialized
// ServiceOutcome, shed reason and attempt history included), and Error
// (server -> client: a typed rejection from the WireError taxonomy). The
// grammar, defaults, and taxonomy are documented in src/net/README.md.
//
// Alongside the codec live the deadline-bounded socket I/O helpers
// (read_exact / write_all / wait_readable) every server and client I/O
// path routes through; each poll/recv/send round is one fault-injection
// event for net_faults.h.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/service.h"

namespace jsceres::net {

// --- frame grammar ---------------------------------------------------------

/// "JSCA" little-endian; the first four bytes of every frame.
inline constexpr std::uint32_t kMagic = 0x4143534Au;
inline constexpr std::uint8_t kProtocolVersion = 1;
/// Fixed-size tenant token field in the header, NUL-padded.
inline constexpr std::size_t kTenantTokenBytes = 16;
/// magic(4) + version(1) + kind(1) + reserved(2) + token(16) + length(4).
inline constexpr std::size_t kHeaderBytes = 28;

enum class FrameKind : std::uint8_t {
  Request = 1,
  Response = 2,
  Error = 3,
};

/// The typed rejection taxonomy. Every way the server refuses work answers
/// with exactly one of these inside an Error frame — hostile clients get a
/// structured verdict, never a silent close and never a hang.
enum class WireError : std::uint8_t {
  BadMagic = 1,        // header did not start with kMagic (closes)
  BadVersion = 2,      // unknown protocol version (closes)
  BadKind = 3,         // frame kind the server does not accept (closes)
  FrameTooLarge = 4,   // payload length above max_frame_bytes (closes)
  MalformedPayload = 5,  // header fine, payload failed to decode (closes)
  ReadTimeout = 6,     // a started frame did not complete in time (closes)
  IdleTimeout = 7,     // no traffic and nothing in flight (closes)
  WriteTimeout = 8,    // client refused to drain a response (closes)
  TooManyInFlight = 9,   // per-connection pipeline cap (connection survives)
  ServerBusy = 10,     // total connection cap (closes the excess socket)
  AuthFailed = 11,     // unknown tenant token (closes)
  RateLimited = 12,    // per-tenant request-rate quota (connection survives)
  ShuttingDown = 13,   // server draining; request not accepted
};

const char* to_string(WireError error);

/// One decoded frame: kind, the tenant token (trailing NULs stripped), and
/// the raw payload bytes.
struct Frame {
  FrameKind kind = FrameKind::Request;
  std::string tenant;
  std::vector<std::uint8_t> payload;
};

/// Request payload: what one submit() needs, flattened onto the wire.
struct WireRequest {
  std::uint32_t id = 0;  // echoed in the matching Response/Error frame
  std::uint8_t mode = 3;
  bool has_timers = false;
  std::uint32_t deadline_ms = 0;
  std::int64_t max_ticks = 0;
  std::uint64_t memory_estimate = 1u << 20;
  std::uint64_t max_memory_bytes = 0;
  std::string name;
  std::string source;
};

/// Error payload: the typed code plus a human-readable detail line. id is 0
/// when the error is not tied to a specific request (malformed input, idle
/// timeout, connection-level rejections).
struct WireErrorFrame {
  std::uint32_t id = 0;
  WireError code = WireError::MalformedPayload;
  std::string message;
};

// --- codec -----------------------------------------------------------------

/// Serialize a frame (header + payload). Tokens longer than
/// kTenantTokenBytes are truncated — validate at the call site.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  Ok,        // one whole frame decoded; `consumed` bytes eaten
  NeedMore,  // the buffer holds a valid prefix of a frame
  Bad,       // protocol violation; `error`/`detail` say which
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::NeedMore;
  WireError error = WireError::BadMagic;
  std::string detail;
  Frame frame;
  std::size_t consumed = 0;
};

/// Decode one frame from the front of `data`. Never reads past `len`;
/// rejects payload lengths above `max_frame_bytes` before buffering them.
DecodeResult decode_frame(const std::uint8_t* data, std::size_t len,
                          std::size_t max_frame_bytes);

std::vector<std::uint8_t> encode_request(const WireRequest& request);
[[nodiscard]] bool decode_request(const std::vector<std::uint8_t>& payload,
                                  WireRequest& out);

/// Response payload carries the echoed request id plus the complete
/// ServiceOutcome — state, shed reason, watchdog flag, and the attempt
/// history with per-attempt modes/outcomes/clocks.
std::vector<std::uint8_t> encode_response(std::uint32_t id,
                                          const ServiceOutcome& outcome);
[[nodiscard]] bool decode_response(const std::vector<std::uint8_t>& payload,
                                   std::uint32_t& id, ServiceOutcome& out);

std::vector<std::uint8_t> encode_error(std::uint32_t id, WireError code,
                                       const std::string& message);
[[nodiscard]] bool decode_error(const std::vector<std::uint8_t>& payload,
                                WireErrorFrame& out);

/// Convenience: a fully encoded request/error frame ready to write.
std::vector<std::uint8_t> make_request_frame(const std::string& tenant_token,
                                             const WireRequest& request);
std::vector<std::uint8_t> make_error_frame(std::uint32_t id, WireError code,
                                           const std::string& message);

// --- deadline-bounded socket I/O -------------------------------------------

enum class IoStatus : std::uint8_t {
  Ok,
  Timeout,  // the deadline elapsed before the transfer finished
  Closed,   // orderly EOF / peer reset mid-transfer
  Error,    // unrecoverable errno
};

/// Read exactly `n` bytes within `timeout_ms` (<= 0: a single non-blocking
/// attempt round). Loops over poll+recv; EINTR and short reads resume.
IoStatus read_exact(int fd, void* buf, std::size_t n, int timeout_ms);

/// Write all `n` bytes within `timeout_ms`. MSG_NOSIGNAL: a dead peer
/// yields Closed, not SIGPIPE.
IoStatus write_all(int fd, const void* buf, std::size_t n, int timeout_ms);

/// Wait until `fd` is readable (Ok), the timeout elapses (Timeout), or the
/// socket errors/hangs up with nothing to read (Error).
IoStatus wait_readable(int fd, int timeout_ms);

/// One bounded recv into `buf` after readability: >0 bytes read, 0 on
/// orderly EOF, -1 on error. EINTR retries internally.
std::ptrdiff_t read_some(int fd, void* buf, std::size_t n);

}  // namespace jsceres::net
