#include "net/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace jsceres::net {

namespace {

std::int64_t mono_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool AnalysisClient::connect(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    return false;
  };

  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.host + ")");
  }

  // Bounded connect: non-blocking + poll, then back to blocking I/O (the
  // frame helpers carry their own deadlines via poll).
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) return fail("connect");
    struct pollfd pfd {
      fd_, POLLOUT, 0
    };
    const int ready = ::poll(&pfd, 1, options_.connect_timeout_ms);
    if (ready <= 0) {
      errno = ready == 0 ? ETIMEDOUT : errno;
      return fail("connect");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      errno = so_error;
      return fail("connect");
    }
  }
  ::fcntl(fd_, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  buffer_.clear();
  return true;
}

void AnalysisClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool AnalysisClient::send_request(WireRequest request, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  if (request.id == 0) request.id = next_id_++;
  const std::vector<std::uint8_t> bytes =
      make_request_frame(options_.token, request);
  const IoStatus status =
      write_all(fd_, bytes.data(), bytes.size(), options_.io_timeout_ms);
  if (status != IoStatus::Ok) {
    if (error != nullptr) {
      *error = status == IoStatus::Timeout ? "write timeout"
                                           : "connection lost during write";
    }
    return false;
  }
  return true;
}

WireResult AnalysisClient::read_result() {
  WireResult result;
  if (fd_ < 0) {
    result.transport = "not connected";
    return result;
  }
  const std::int64_t deadline = mono_ms() + options_.io_timeout_ms;
  for (;;) {
    const DecodeResult decoded = decode_frame(buffer_.data(), buffer_.size(),
                                              options_.max_frame_bytes);
    if (decoded.status == DecodeStatus::Bad) {
      result.transport = std::string("protocol violation from server: ") +
                         to_string(decoded.error);
      close();
      return result;
    }
    if (decoded.status == DecodeStatus::Ok) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + std::ptrdiff_t(decoded.consumed));
      if (decoded.frame.kind == FrameKind::Error) {
        if (!decode_error(decoded.frame.payload, result.error)) {
          result.transport = "malformed error frame from server";
          close();
          return result;
        }
        result.kind = WireResult::Kind::ErrorFrame;
        result.id = result.error.id;
        return result;
      }
      if (decoded.frame.kind == FrameKind::Response) {
        std::uint32_t id = 0;
        if (!decode_response(decoded.frame.payload, id, result.outcome)) {
          result.transport = "malformed response frame from server";
          close();
          return result;
        }
        result.kind = WireResult::Kind::Outcome;
        result.id = id;
        return result;
      }
      result.transport = "unexpected frame kind from server";
      close();
      return result;
    }

    const std::int64_t left = deadline - mono_ms();
    if (left <= 0) {
      result.transport = "timeout";
      return result;
    }
    const IoStatus ready =
        wait_readable(fd_, int(left > 60'000 ? 60'000 : left));
    if (ready == IoStatus::Timeout) {
      result.transport = "timeout";
      return result;
    }
    if (ready == IoStatus::Error) {
      result.transport = "connection lost";
      close();
      return result;
    }
    std::uint8_t chunk[4096];
    const std::ptrdiff_t got = read_some(fd_, chunk, sizeof(chunk));
    if (got == 0) {
      result.transport = "connection closed by server";
      close();
      return result;
    }
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      result.transport = std::string("read error: ") + std::strerror(errno);
      close();
      return result;
    }
    buffer_.insert(buffer_.end(), chunk, chunk + got);
  }
}

WireResult AnalysisClient::roundtrip(WireRequest request) {
  if (request.id == 0) request.id = next_id_++;
  const std::uint32_t want = request.id;
  std::string error;
  if (!send_request(request, &error)) {
    WireResult result;
    result.transport = error;
    return result;
  }
  // FIFO per connection: skip any stale earlier answers (pipelined use),
  // bail on transport failure, return the frame matching our id. A frame
  // with id 0 is a connection-level verdict (timeout, shutdown) and ends
  // the exchange too.
  for (;;) {
    WireResult result = read_result();
    if (result.kind == WireResult::Kind::Transport) return result;
    if (result.id == want || result.id == 0) return result;
  }
}

}  // namespace jsceres::net
