#include "net/frame.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>

#include "net/net_faults.h"

namespace jsceres::net {

const char* to_string(WireError error) {
  switch (error) {
    case WireError::BadMagic:
      return "bad-magic";
    case WireError::BadVersion:
      return "bad-version";
    case WireError::BadKind:
      return "bad-kind";
    case WireError::FrameTooLarge:
      return "frame-too-large";
    case WireError::MalformedPayload:
      return "malformed-payload";
    case WireError::ReadTimeout:
      return "read-timeout";
    case WireError::IdleTimeout:
      return "idle-timeout";
    case WireError::WriteTimeout:
      return "write-timeout";
    case WireError::TooManyInFlight:
      return "too-many-in-flight";
    case WireError::ServerBusy:
      return "server-busy";
    case WireError::AuthFailed:
      return "auth-failed";
    case WireError::RateLimited:
      return "rate-limited";
    case WireError::ShuttingDown:
      return "shutting-down";
  }
  return "?";
}

namespace {

// Little-endian byte serialization. The wire format is explicit bytes, not
// struct memcpy, so it is layout- and endianness-independent.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(std::uint8_t(v));
  out.push_back(std::uint8_t(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(std::uint8_t(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(std::uint8_t(v >> shift));
  }
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, std::uint32_t(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked forward reader over a payload; any overrun latches
/// failure and every later read returns zero values, so decoders can read
/// a whole struct and check ok() once.
struct Reader {
  const std::uint8_t* data;
  std::size_t len;
  std::size_t pos = 0;
  bool failed = false;

  bool take(std::size_t n) {
    if (failed || len - pos < n) {
      failed = true;
      return false;
    }
    return true;
  }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data[pos++];
  }

  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = std::uint16_t(data[pos]) | std::uint16_t(data[pos + 1]) << 8;
    pos += 2;
    return v;
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }

  [[nodiscard]] bool ok() const { return !failed; }
  [[nodiscard]] bool exhausted() const { return !failed && pos == len; }
};

Reader reader(const std::vector<std::uint8_t>& payload) {
  return Reader{payload.data(), payload.size()};
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + frame.payload.size());
  put_u32(out, kMagic);
  put_u8(out, kProtocolVersion);
  put_u8(out, std::uint8_t(frame.kind));
  put_u16(out, 0);  // reserved
  for (std::size_t i = 0; i < kTenantTokenBytes; ++i) {
    put_u8(out, i < frame.tenant.size() ? std::uint8_t(frame.tenant[i]) : 0);
  }
  put_u32(out, std::uint32_t(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t len,
                          std::size_t max_frame_bytes) {
  DecodeResult result;
  if (len < kHeaderBytes) {
    // Magic is validated as soon as its bytes exist so garbage fails fast
    // instead of stalling in NeedMore until a read timeout.
    for (std::size_t i = 0; i < len && i < 4; ++i) {
      if (data[i] != std::uint8_t(kMagic >> (8 * i))) {
        result.status = DecodeStatus::Bad;
        result.error = WireError::BadMagic;
        result.detail = "frame does not start with JSCA";
        return result;
      }
    }
    result.status = DecodeStatus::NeedMore;
    return result;
  }

  Reader header{data, kHeaderBytes};
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint8_t kind = header.u8();
  header.u16();  // reserved
  std::string tenant;
  for (std::size_t i = 0; i < kTenantTokenBytes; ++i) {
    const char c = char(header.u8());
    if (c != '\0') tenant.push_back(c);
  }
  const std::uint32_t payload_len = header.u32();

  if (magic != kMagic) {
    result.status = DecodeStatus::Bad;
    result.error = WireError::BadMagic;
    result.detail = "frame does not start with JSCA";
    return result;
  }
  if (version != kProtocolVersion) {
    result.status = DecodeStatus::Bad;
    result.error = WireError::BadVersion;
    result.detail = "unsupported protocol version " + std::to_string(version);
    return result;
  }
  if (kind < std::uint8_t(FrameKind::Request) ||
      kind > std::uint8_t(FrameKind::Error)) {
    result.status = DecodeStatus::Bad;
    result.error = WireError::BadKind;
    result.detail = "unknown frame kind " + std::to_string(kind);
    return result;
  }
  // The length check precedes buffering: an attacker announcing a 4 GiB
  // payload is refused from the 28th byte, having cost the server nothing.
  if (payload_len > max_frame_bytes) {
    result.status = DecodeStatus::Bad;
    result.error = WireError::FrameTooLarge;
    result.detail = "payload of " + std::to_string(payload_len) +
                    " bytes exceeds the frame cap of " +
                    std::to_string(max_frame_bytes);
    return result;
  }
  if (len < kHeaderBytes + payload_len) {
    result.status = DecodeStatus::NeedMore;
    return result;
  }

  result.status = DecodeStatus::Ok;
  result.frame.kind = FrameKind(kind);
  result.frame.tenant = std::move(tenant);
  result.frame.payload.assign(data + kHeaderBytes,
                              data + kHeaderBytes + payload_len);
  result.consumed = kHeaderBytes + payload_len;
  return result;
}

std::vector<std::uint8_t> encode_request(const WireRequest& request) {
  std::vector<std::uint8_t> out;
  put_u32(out, request.id);
  put_u8(out, request.mode);
  put_u8(out, request.has_timers ? 1 : 0);
  put_u16(out, 0);  // reserved
  put_u32(out, request.deadline_ms);
  put_u64(out, std::uint64_t(request.max_ticks));
  put_u64(out, request.memory_estimate);
  put_u64(out, request.max_memory_bytes);
  put_str(out, request.name);
  put_str(out, request.source);
  return out;
}

bool decode_request(const std::vector<std::uint8_t>& payload,
                    WireRequest& out) {
  Reader r = reader(payload);
  out.id = r.u32();
  out.mode = r.u8();
  out.has_timers = r.u8() != 0;
  r.u16();  // reserved
  out.deadline_ms = r.u32();
  out.max_ticks = std::int64_t(r.u64());
  out.memory_estimate = r.u64();
  out.max_memory_bytes = r.u64();
  out.name = r.str();
  out.source = r.str();
  // Trailing bytes are a violation, not slack: a frame that says 100 bytes
  // and encodes 60 is malformed (forward compatibility is the version
  // byte's job, not silent padding).
  return r.exhausted() && out.mode <= 3;
}

std::vector<std::uint8_t> encode_response(std::uint32_t id,
                                          const ServiceOutcome& outcome) {
  std::vector<std::uint8_t> out;
  put_u32(out, id);
  put_u8(out, std::uint8_t(outcome.state));
  put_u8(out, outcome.watchdog_quarantined ? 1 : 0);
  put_u8(out, std::uint8_t(outcome.session.final_mode));
  put_u8(out, 0);  // reserved
  put_u32(out, std::uint32_t(outcome.session.attempts));
  put_str(out, outcome.shed_reason);
  put_str(out, outcome.session.name);
  put_str(out, outcome.session.error);
  put_str(out, outcome.session.console);
  put_u64(out, std::uint64_t(outcome.session.cpu_ns));
  put_u64(out, std::uint64_t(outcome.session.wall_ns));
  put_u64(out, outcome.session.peak_bytes);
  put_u8(out, outcome.session.runtime_fault ? 1 : 0);
  put_u32(out, std::uint32_t(outcome.session.history.size()));
  for (const AttemptRecord& attempt : outcome.session.history) {
    put_u8(out, std::uint8_t(attempt.mode));
    put_str(out, attempt.outcome);
    put_str(out, attempt.error);
    put_u64(out, std::uint64_t(attempt.cpu_ns));
    put_u64(out, std::uint64_t(attempt.wall_ns));
    put_u64(out, attempt.peak_bytes);
  }
  return out;
}

bool decode_response(const std::vector<std::uint8_t>& payload,
                     std::uint32_t& id, ServiceOutcome& out) {
  Reader r = reader(payload);
  id = r.u32();
  const std::uint8_t state = r.u8();
  if (state > std::uint8_t(ServiceState::Shed)) return false;
  out.state = ServiceState(state);
  out.watchdog_quarantined = r.u8() != 0;
  out.session.final_mode = r.u8();
  r.u8();  // reserved
  out.session.attempts = int(r.u32());
  out.shed_reason = r.str();
  out.session.name = r.str();
  out.session.error = r.str();
  out.session.console = r.str();
  out.session.cpu_ns = std::int64_t(r.u64());
  out.session.wall_ns = std::int64_t(r.u64());
  out.session.peak_bytes = r.u64();
  out.session.runtime_fault = r.u8() != 0;
  const std::uint32_t history = r.u32();
  // A hostile length field cannot force a huge reserve: each record needs
  // at least 33 payload bytes, so the remaining buffer bounds the count.
  if (r.ok() && std::size_t(history) > (r.len - r.pos) / 33 + 1) return false;
  out.session.history.clear();
  for (std::uint32_t i = 0; i < history && r.ok(); ++i) {
    AttemptRecord attempt;
    attempt.mode = int(r.u8());
    attempt.outcome = r.str();
    attempt.error = r.str();
    attempt.cpu_ns = std::int64_t(r.u64());
    attempt.wall_ns = std::int64_t(r.u64());
    attempt.peak_bytes = r.u64();
    out.session.history.push_back(std::move(attempt));
  }
  // The first five ServiceState values mirror SessionState one-to-one; a
  // shed never became a session, so its session field keeps the default.
  if (out.state != ServiceState::Shed) {
    out.session.state = SessionState(std::uint8_t(out.state));
  }
  return r.exhausted();
}

std::vector<std::uint8_t> encode_error(std::uint32_t id, WireError code,
                                       const std::string& message) {
  std::vector<std::uint8_t> out;
  put_u32(out, id);
  put_u8(out, std::uint8_t(code));
  put_str(out, message);
  return out;
}

bool decode_error(const std::vector<std::uint8_t>& payload,
                  WireErrorFrame& out) {
  Reader r = reader(payload);
  out.id = r.u32();
  const std::uint8_t code = r.u8();
  if (code < std::uint8_t(WireError::BadMagic) ||
      code > std::uint8_t(WireError::ShuttingDown)) {
    return false;
  }
  out.code = WireError(code);
  out.message = r.str();
  return r.exhausted();
}

std::vector<std::uint8_t> make_request_frame(const std::string& tenant_token,
                                             const WireRequest& request) {
  Frame frame;
  frame.kind = FrameKind::Request;
  frame.tenant = tenant_token.substr(0, kTenantTokenBytes);
  frame.payload = encode_request(request);
  return encode_frame(frame);
}

std::vector<std::uint8_t> make_error_frame(std::uint32_t id, WireError code,
                                           const std::string& message) {
  Frame frame;
  frame.kind = FrameKind::Error;
  frame.payload = encode_error(id, code, message);
  return encode_frame(frame);
}

// --- deadline-bounded socket I/O -------------------------------------------

namespace {

std::int64_t mono_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget against `deadline`, clamped for poll(). A deadline of
/// 0 means "one immediate attempt": poll with timeout 0.
int remaining_ms(std::int64_t deadline) {
  if (deadline <= 0) return 0;
  const std::int64_t left = deadline - mono_ms();
  if (left <= 0) return -1;  // expired
  return int(left > 60'000 ? 60'000 : left);
}

}  // namespace

std::ptrdiff_t read_some(int fd, void* buf, std::size_t n) {
  const io_faults::Decision fault = io_faults::on_event(fd, /*is_read=*/true);
  if (fault.act == io_faults::Decision::Act::Eintr) {
    errno = EINTR;
    return -1;
  }
  if (fault.cap != 0 && fault.cap < n) n = fault.cap;
  for (;;) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got >= 0) return got;
    if (errno == EINTR) continue;
    return -1;
  }
}

IoStatus read_exact(int fd, void* buf, std::size_t n, int timeout_ms) {
  std::uint8_t* at = static_cast<std::uint8_t*>(buf);
  const std::int64_t deadline = timeout_ms > 0 ? mono_ms() + timeout_ms : 0;
  while (n > 0) {
    const int wait = remaining_ms(deadline);
    if (wait < 0) return IoStatus::Timeout;
    struct pollfd pfd {
      fd, POLLIN, 0
    };
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::Error;
    }
    if (ready == 0) {
      if (deadline == 0) return IoStatus::Timeout;
      continue;  // poll clamped below the deadline; loop re-checks it
    }
    const std::ptrdiff_t got = read_some(fd, at, n);
    if (got == 0) return IoStatus::Closed;
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return errno == ECONNRESET ? IoStatus::Closed : IoStatus::Error;
    }
    at += got;
    n -= std::size_t(got);
  }
  return IoStatus::Ok;
}

IoStatus write_all(int fd, const void* buf, std::size_t n, int timeout_ms) {
  const std::uint8_t* at = static_cast<const std::uint8_t*>(buf);
  const std::int64_t deadline = timeout_ms > 0 ? mono_ms() + timeout_ms : 0;
  while (n > 0) {
    const int wait = remaining_ms(deadline);
    if (wait < 0) return IoStatus::Timeout;
    struct pollfd pfd {
      fd, POLLOUT, 0
    };
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::Error;
    }
    if (ready == 0) {
      if (deadline == 0) return IoStatus::Timeout;
      continue;
    }
    const io_faults::Decision fault =
        io_faults::on_event(fd, /*is_read=*/false);
    if (fault.act == io_faults::Decision::Act::Eintr) continue;
    std::size_t chunk = n;
    if (fault.cap != 0 && fault.cap < chunk) chunk = fault.cap;
    const ssize_t wrote = ::send(fd, at, chunk, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return (errno == EPIPE || errno == ECONNRESET) ? IoStatus::Closed
                                                     : IoStatus::Error;
    }
    at += wrote;
    n -= std::size_t(wrote);
  }
  return IoStatus::Ok;
}

IoStatus wait_readable(int fd, int timeout_ms) {
  for (;;) {
    struct pollfd pfd {
      fd, POLLIN, 0
    };
    const int ready = ::poll(&pfd, 1, timeout_ms < 0 ? 0 : timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::Error;
    }
    if (ready == 0) return IoStatus::Timeout;
    // POLLHUP/POLLERR still count as readable: recv() will report the EOF
    // or error, which is the structured path the caller handles.
    return IoStatus::Ok;
  }
}

}  // namespace jsceres::net
