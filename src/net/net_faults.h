#pragma once

// Socket-level fault injection (the scheduler hook of
// rivertrail/fault_injection.h, lifted to the wire). Every socket I/O
// event — one poll/recv/send round inside net::read_exact / net::write_all
// — reports through on_event(); an armed plan fires exactly one fault at
// the K-th event:
//
//   ShortRead    cap this recv to 1 byte (the loop must resume),
//   ShortWrite   cap this send to 1 byte (ditto),
//   Eintr        skip the syscall once, as if it returned -1/EINTR,
//   Disconnect   shutdown(fd, SHUT_RDWR) mid-frame — the next I/O on the
//                connection observes EOF / ECONNRESET.
//
// Sweeping K across the event count of a fixed loopback request proves
// every interleaving ends in either a served outcome or a structured
// client-side error, with the server still accepting afterwards — never a
// hang and never a crash. Disarmed cost is one relaxed atomic load per
// I/O event, noise against the syscall it guards.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include <sys/socket.h>

namespace jsceres::net::io_faults {

enum class Kind : int { ShortRead = 0, ShortWrite = 1, Eintr = 2, Disconnect = 3 };

/// What the I/O wrapper should do for this event.
struct Decision {
  enum class Act : int { Proceed, Eintr, Disconnect };
  Act act = Act::Proceed;
  /// Byte budget for this syscall (<= the requested size; 0 = no cap).
  std::size_t cap = 0;
};

struct State {
  std::atomic<bool> armed{false};
  std::atomic<std::int64_t> countdown{0};  // fires when a fetch_sub hits 1
  std::atomic<int> kind{0};
  /// I/O events observed while armed. Arm with a huge countdown to count a
  /// workload's events without firing (sweep sizing).
  std::atomic<std::int64_t> events{0};
  /// Faults actually fired since arm() (0 or 1 per plan).
  std::atomic<std::int64_t> fired{0};
};

inline State& state() {
  static State s;
  return s;
}

/// Arm one fault at the `after`-th socket I/O event from now (1 = the very
/// next event). Process-global: tests arm/disarm around quiesced sockets.
inline void arm(Kind kind, std::int64_t after) {
  State& s = state();
  s.kind.store(int(kind), std::memory_order_relaxed);
  s.events.store(0, std::memory_order_relaxed);
  s.fired.store(0, std::memory_order_relaxed);
  s.countdown.store(after, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

inline void disarm() { state().armed.store(false, std::memory_order_release); }

[[nodiscard]] inline std::int64_t events_observed() {
  return state().events.load(std::memory_order_relaxed);
}

[[nodiscard]] inline std::int64_t faults_fired() {
  return state().fired.load(std::memory_order_relaxed);
}

/// Slow path, called only while armed.
inline Decision fire(int fd, bool is_read) {
  State& s = state();
  s.events.fetch_add(1, std::memory_order_relaxed);
  if (s.countdown.fetch_sub(1, std::memory_order_acq_rel) != 1) return {};
  s.fired.fetch_add(1, std::memory_order_relaxed);
  switch (Kind(s.kind.load(std::memory_order_acquire))) {
    case Kind::ShortRead:
      if (is_read) return {Decision::Act::Proceed, 1};
      return {};
    case Kind::ShortWrite:
      if (!is_read) return {Decision::Act::Proceed, 1};
      return {};
    case Kind::Eintr:
      return {Decision::Act::Eintr, 0};
    case Kind::Disconnect:
      ::shutdown(fd, SHUT_RDWR);
      return {Decision::Act::Disconnect, 0};
  }
  return {};
}

/// One socket I/O event on `fd`. Returns the injected decision (a default
/// Decision when disarmed or the plan already fired).
inline Decision on_event(int fd, bool is_read) {
  if (!state().armed.load(std::memory_order_acquire)) return {};
  return fire(fd, is_read);
}

}  // namespace jsceres::net::io_faults
