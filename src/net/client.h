#pragma once

// AnalysisClient: the blocking counterpart of AnalysisServer — connect to
// a loopback/remote server, send framed requests, read framed outcomes.
// Every read and write carries a deadline, so a dead or stalled server
// yields a structured client-side error instead of a hang; a typed Error
// frame from the server is surfaced verbatim. Used by the examples, the
// loopback tests, and the wire-level fuzz driver.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.h"

namespace jsceres::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Tenant token stamped into every frame header (<= kTenantTokenBytes).
  std::string token;
  int connect_timeout_ms = 2000;
  /// Deadline for each whole-frame read and write.
  int io_timeout_ms = 10'000;
  std::size_t max_frame_bytes = 1u << 20;
};

/// What one wire exchange produced, exactly one of three shapes: a served
/// outcome, a typed rejection from the server, or a transport failure.
struct WireResult {
  enum class Kind : std::uint8_t { Outcome, ErrorFrame, Transport };
  Kind kind = Kind::Transport;
  std::uint32_t id = 0;
  ServiceOutcome outcome;   // Kind::Outcome
  WireErrorFrame error;     // Kind::ErrorFrame
  std::string transport;    // Kind::Transport: what broke ("timeout", ...)

  [[nodiscard]] bool ok() const { return kind == Kind::Outcome; }
};

class AnalysisClient {
 public:
  explicit AnalysisClient(ClientOptions options) : options_(options) {}
  ~AnalysisClient() { close(); }

  AnalysisClient(const AnalysisClient&) = delete;
  AnalysisClient& operator=(const AnalysisClient&) = delete;

  /// Connect (bounded). False with `error` filled on failure.
  bool connect(std::string* error = nullptr);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Fire one request and assign it a fresh id. False on transport failure.
  bool send_request(WireRequest request, std::string* error = nullptr);

  /// Read the next whole frame (Response or Error) within io_timeout_ms.
  WireResult read_result();

  /// send_request + read frames until the matching id answers (responses
  /// arrive in FIFO order per connection, so with a single outstanding
  /// request this is one read).
  WireResult roundtrip(WireRequest request);

 private:
  ClientOptions options_;
  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  std::vector<std::uint8_t> buffer_;
};

}  // namespace jsceres::net
